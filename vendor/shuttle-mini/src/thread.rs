//! Model-aware thread spawning (`model_thread` in the issue's naming).
//!
//! [`spawn`] called from inside a model run registers the new thread
//! with the execution's scheduler, so every one of its instrumented
//! operations becomes part of the explored schedule; called from an
//! ordinary thread it is `std::thread::spawn` with the same API shape.

use std::sync::{Arc, Mutex};

use crate::exec::{current, run_model_thread, Block};

enum Inner<T> {
    Std(std::thread::JoinHandle<T>),
    Model {
        exec: Arc<crate::exec::Execution>,
        id: usize,
        result: Arc<Mutex<Option<T>>>,
    },
}

/// Handle to a spawned thread; mirrors `std::thread::JoinHandle`.
pub struct JoinHandle<T> {
    inner: Inner<T>,
}

/// Spawns a thread.  Inside a model run the thread is scheduled
/// deterministically with every other model thread; outside it is a
/// plain `std` thread.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let Some(ctx) = current() else {
        return JoinHandle {
            inner: Inner::Std(std::thread::spawn(f)),
        };
    };
    let id = ctx.exec.register_thread();
    let result = Arc::new(Mutex::new(None));
    let slot = Arc::clone(&result);
    let exec = Arc::clone(&ctx.exec);
    let os_handle = std::thread::spawn(move || {
        let exec_for_body = Arc::clone(&exec);
        run_model_thread(exec, id, move || {
            let value = f();
            *slot.lock().expect("thread result slot poisoned") = Some(value);
            let _ = exec_for_body; // Keeps the execution alive for the body.
        });
    });
    ctx.exec.adopt_os_handle(os_handle);
    // Spawning is itself a scheduling point: the child may run first.
    ctx.exec.schedule(ctx.id, None);
    JoinHandle {
        inner: Inner::Model {
            exec: ctx.exec,
            id,
            result,
        },
    }
}

impl<T> JoinHandle<T> {
    /// Waits for the thread to finish and returns its value, `Err` if it
    /// panicked — the `std::thread::Result` contract.
    pub fn join(self) -> std::thread::Result<T> {
        match self.inner {
            Inner::Std(handle) => handle.join(),
            Inner::Model { exec, id, result } => {
                let me = current().expect("model JoinHandle joined outside its run");
                while !exec.is_finished(id) {
                    me.exec.schedule(me.id, Some(Block::Join(id)));
                }
                // One more scheduling point so join itself interleaves.
                me.exec.schedule(me.id, None);
                match result.lock().expect("thread result slot poisoned").take() {
                    Some(value) => Ok(value),
                    None => Err(Box::new("model thread panicked".to_string())),
                }
            }
        }
    }
}
