//! A miniature deterministic concurrency model checker, in the spirit of
//! AWS's *shuttle* and tokio's *loom*, vendored because the build
//! environment has no access to crates.io.
//!
//! The workspace's lock-free search core (the shared
//! `SearchThreshold` best-k floor, the `RwLock`-per-shard
//! `CorpusService`) is exercised by stress tests, but stress tests only
//! sample a handful of interleavings per run.  This crate makes the
//! interleavings themselves the test input:
//!
//! * **Instrumented shims** — [`sync::atomic::AtomicU64`],
//!   [`sync::Mutex`], [`sync::RwLock`] and [`thread::spawn`] mirror the
//!   `std::sync` API exactly.  Outside a model run they are zero-cost
//!   pass-throughs to `std` (one thread-local probe per operation), so
//!   production code can use them unconditionally.  Inside a model run
//!   every operation becomes a *scheduling point*.
//! * **A deterministic scheduler** — model threads are real OS threads,
//!   but only one ever runs at a time: at each scheduling point the
//!   running thread hands a token to the scheduler, which picks the next
//!   runnable thread.  The sequence of picks is the *schedule*.
//! * **Two explorers** — [`check_exhaustive`] walks the schedule tree
//!   depth-first (complete for small state spaces, bounded by a schedule
//!   cap), and [`check_random`] samples schedules from a seeded RNG, so a
//!   failure reproduces from `(seed, iteration)` alone.
//!
//! A failing execution yields a [`Failure`] carrying the exact schedule
//! trace (the sequence of thread ids chosen at every scheduling point),
//! which is stable across runs: same seed, same schedule, same failure.
//!
//! ## What the model does and does not check
//!
//! The scheduler serializes instrumented operations, so it explores all
//! *interleavings* under sequentially consistent semantics.  It does not
//! model weak-memory reorderings (neither does shuttle); `Relaxed` versus
//! `Acquire`/`Release` bugs need the justification comments the
//! `wfsim_lint` `ordering-comment` rule enforces.
//!
//! ## Rules for code under test
//!
//! * Create all shared state *inside* the closure passed to a checker, so
//!   every execution starts fresh.
//! * Only touch instrumented shims from model threads (the closure's
//!   thread and [`thread::spawn`]ed threads).  Code that internally
//!   spawns plain `std::thread` workers (e.g. batch APIs) must not run
//!   inside a model run: those workers would interleave uncontrolled.
//! * Executions must be deterministic apart from the schedule: no time,
//!   no I/O, no ambient randomness.
//!
//! ```
//! use shuttle_mini::{check_exhaustive, sync::atomic::AtomicU64, thread};
//! use std::sync::atomic::Ordering;
//! use std::sync::Arc;
//!
//! let report = check_exhaustive(1_000, || {
//!     let n = Arc::new(AtomicU64::new(0));
//!     let a = Arc::clone(&n);
//!     let t = thread::spawn(move || a.fetch_add(1, Ordering::Relaxed));
//!     n.fetch_add(1, Ordering::Relaxed);
//!     t.join().unwrap();
//!     assert_eq!(n.load(Ordering::Relaxed), 2);
//! });
//! report.assert_ok();
//! assert!(report.complete, "fetch_add tree is tiny: fully explored");
//! ```

mod exec;
pub mod sync;
pub mod thread;

/// The issue-facing name for the spawn/join module: model-checked threads.
pub use thread as model_thread;

use std::sync::Arc;

use exec::{Execution, Policy};

/// Hard cap on scheduling points in one execution; beyond it the
/// execution fails (runaway loop under test).
const MAX_STEPS: usize = 200_000;

/// Where a failing schedule came from, so it can be replayed exactly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScheduleSource {
    /// The `index`-th schedule visited by [`check_exhaustive`]'s
    /// deterministic depth-first walk.
    Exhaustive {
        /// 0-based index in DFS visit order.
        index: usize,
    },
    /// The `iteration`-th schedule drawn by [`check_random`] from `seed`.
    Random {
        /// The seed passed to [`check_random`].
        seed: u64,
        /// 0-based iteration that failed.
        iteration: usize,
    },
}

/// One failing execution: what went wrong and the exact schedule that
/// made it go wrong.
#[derive(Debug, Clone)]
pub struct Failure {
    /// The panic / assertion / deadlock message.
    pub message: String,
    /// Thread id chosen at every scheduling point, in order — the full
    /// deterministic schedule of the failing execution.
    pub trace: Vec<usize>,
    /// How to reproduce the schedule.
    pub source: ScheduleSource,
}

impl Failure {
    /// The schedule trace as a compact printable string.
    pub fn trace_string(&self) -> String {
        let picks: Vec<String> = self.trace.iter().map(|t| t.to_string()).collect();
        let source = match &self.source {
            ScheduleSource::Exhaustive { index } => format!("exhaustive schedule #{index}"),
            ScheduleSource::Random { seed, iteration } => {
                format!("seed {seed}, iteration {iteration}")
            }
        };
        format!("{source}; thread picks [{}]", picks.join(" "))
    }
}

impl std::fmt::Display for Failure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}\n  schedule: {}", self.message, self.trace_string())
    }
}

/// The outcome of a model-checking run.
#[derive(Debug)]
pub struct Report {
    /// Number of schedules executed.
    pub schedules: usize,
    /// True when an exhaustive walk covered the whole schedule tree
    /// within its cap (always false for [`check_random`]).
    pub complete: bool,
    /// The first failing execution, if any (exploration stops at the
    /// first failure so the reported schedule is minimal in visit order).
    pub failure: Option<Failure>,
}

impl Report {
    /// Panics with the failure message and schedule trace if any
    /// explored schedule failed.
    pub fn assert_ok(&self) {
        if let Some(failure) = &self.failure {
            panic!(
                "model check failed after {} schedule(s):\n{failure}",
                self.schedules
            );
        }
    }
}

/// Explores schedules depth-first until the tree is exhausted or
/// `max_schedules` executions have run, whichever comes first.
///
/// The walk order is deterministic, so the first failing schedule — and
/// its [`Failure::trace`] — is identical on every run.
pub fn check_exhaustive<F>(max_schedules: usize, f: F) -> Report
where
    F: Fn() + Send + Sync + 'static,
{
    let f: Arc<dyn Fn() + Send + Sync> = Arc::new(f);
    let mut prefix: Vec<usize> = Vec::new();
    let mut schedules = 0usize;
    loop {
        let outcome = Execution::run(Policy::replay(prefix.clone()), MAX_STEPS, Arc::clone(&f));
        schedules += 1;
        if let Some(message) = outcome.failure {
            return Report {
                schedules,
                complete: false,
                failure: Some(Failure {
                    message,
                    trace: outcome.trace,
                    source: ScheduleSource::Exhaustive {
                        index: schedules - 1,
                    },
                }),
            };
        }
        // Backtrack: advance the deepest choice point that still has an
        // untried alternative; drop exhausted suffixes.
        let mut log = outcome.branch_log;
        let mut complete = false;
        loop {
            match log.pop() {
                None => {
                    complete = true;
                    break;
                }
                Some((rank, alternatives)) if rank + 1 < alternatives => {
                    log.push((rank + 1, alternatives));
                    break;
                }
                Some(_) => {}
            }
        }
        if complete {
            return Report {
                schedules,
                complete: true,
                failure: None,
            };
        }
        if schedules >= max_schedules {
            return Report {
                schedules,
                complete: false,
                failure: None,
            };
        }
        prefix = log.into_iter().map(|(rank, _)| rank).collect();
    }
}

/// Runs `iterations` executions whose schedules are drawn from a
/// SplitMix64 stream seeded with `(seed, iteration)` — fully reproducible
/// from the seed alone, across processes and platforms.
pub fn check_random<F>(seed: u64, iterations: usize, f: F) -> Report
where
    F: Fn() + Send + Sync + 'static,
{
    let f: Arc<dyn Fn() + Send + Sync> = Arc::new(f);
    for iteration in 0..iterations {
        let outcome = Execution::run(
            Policy::random(mix_seed(seed, iteration as u64)),
            MAX_STEPS,
            Arc::clone(&f),
        );
        if let Some(message) = outcome.failure {
            return Report {
                schedules: iteration + 1,
                complete: false,
                failure: Some(Failure {
                    message,
                    trace: outcome.trace,
                    source: ScheduleSource::Random { seed, iteration },
                }),
            };
        }
    }
    Report {
        schedules: iterations,
        complete: false,
        failure: None,
    }
}

/// Derives the per-iteration RNG state from the user seed.
fn mix_seed(seed: u64, iteration: u64) -> u64 {
    // SplitMix64 finalizer over the (seed, iteration) pair.
    let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15u64.wrapping_mul(iteration.wrapping_add(1)));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::Ordering;
    use std::sync::Arc;

    /// A deliberately racy counter: load + store instead of fetch_add.
    fn racy_increment(n: &sync::atomic::AtomicU64) {
        let v = n.load(Ordering::Relaxed);
        n.store(v + 1, Ordering::Relaxed);
    }

    fn racy_counter_check() -> impl Fn() + Send + Sync + 'static {
        || {
            let n = Arc::new(sync::atomic::AtomicU64::new(0));
            let a = Arc::clone(&n);
            let t = thread::spawn(move || racy_increment(&a));
            racy_increment(&n);
            t.join().unwrap();
            assert_eq!(n.load(Ordering::Relaxed), 2, "lost update");
        }
    }

    #[test]
    fn exhaustive_finds_the_lost_update() {
        let report = check_exhaustive(10_000, racy_counter_check());
        let failure = report.failure.expect("the racy counter must fail");
        assert!(failure.message.contains("lost update"), "{failure}");
        assert!(!failure.trace.is_empty());
        // Deterministic: the same DFS finds the same first failing
        // schedule, trace and all.
        let again = check_exhaustive(10_000, racy_counter_check())
            .failure
            .expect("same DFS, same failure");
        assert_eq!(failure.trace, again.trace);
        assert_eq!(failure.source, again.source);
    }

    #[test]
    fn random_failures_reproduce_from_the_seed() {
        let a = check_random(42, 500, racy_counter_check());
        let b = check_random(42, 500, racy_counter_check());
        let (fa, fb) = (a.failure.expect("racy"), b.failure.expect("racy"));
        assert_eq!(fa.trace, fb.trace);
        assert_eq!(fa.source, fb.source);
        assert_eq!(fa.trace_string(), fb.trace_string());
    }

    #[test]
    fn fetch_add_counter_is_exhaustively_correct() {
        let report = check_exhaustive(10_000, || {
            let n = Arc::new(sync::atomic::AtomicU64::new(0));
            let a = Arc::clone(&n);
            let t = thread::spawn(move || {
                a.fetch_add(1, Ordering::Relaxed);
            });
            n.fetch_add(1, Ordering::Relaxed);
            t.join().unwrap();
            assert_eq!(n.load(Ordering::Relaxed), 2);
        });
        report.assert_ok();
        assert!(report.complete, "small tree must be fully explored");
        assert!(report.schedules > 1, "more than one interleaving exists");
    }

    #[test]
    fn abba_lock_order_deadlock_is_detected() {
        let report = check_exhaustive(10_000, || {
            let a = Arc::new(sync::Mutex::new(0u32));
            let b = Arc::new(sync::Mutex::new(0u32));
            let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
            let t = thread::spawn(move || {
                let _ga = a2.lock().unwrap();
                let _gb = b2.lock().unwrap();
            });
            let _gb = b.lock().unwrap();
            let _ga = a.lock().unwrap();
            drop((_ga, _gb));
            t.join().unwrap();
        });
        let failure = report.failure.expect("ABBA must deadlock somewhere");
        assert!(failure.message.contains("deadlock"), "{failure}");
    }

    #[test]
    fn rwlock_writer_excludes_readers() {
        // Writer makes the pair temporarily inconsistent; readers must
        // never observe the intermediate state, under any schedule.
        let report = check_exhaustive(20_000, || {
            let pair = Arc::new(sync::RwLock::new((0u64, 0u64)));
            let w = Arc::clone(&pair);
            let t = thread::spawn(move || {
                let mut g = w.write().unwrap();
                g.0 += 1;
                g.1 += 1;
            });
            let (x, y) = *pair.read().unwrap();
            assert_eq!(x, y, "reader saw a half-applied write");
            t.join().unwrap();
        });
        report.assert_ok();
        assert!(report.complete);
    }

    #[test]
    fn shims_pass_through_outside_a_model_run() {
        let n = sync::atomic::AtomicU64::new(7);
        assert_eq!(n.fetch_add(1, Ordering::Relaxed), 7);
        assert_eq!(n.load(Ordering::Relaxed), 8);
        let m = sync::Mutex::new(5u32);
        *m.lock().unwrap() += 1;
        assert_eq!(m.into_inner().unwrap(), 6);
        let rw = sync::RwLock::new(String::from("x"));
        rw.write().unwrap().push('y');
        assert_eq!(rw.read().unwrap().as_str(), "xy");
        let t = thread::spawn(|| 41 + 1);
        assert_eq!(t.join().unwrap(), 42);
    }

    #[test]
    fn join_observes_everything_the_joined_thread_wrote() {
        let report = check_exhaustive(10_000, || {
            let n = Arc::new(sync::atomic::AtomicU64::new(0));
            let a = Arc::clone(&n);
            let t = thread::spawn(move || {
                a.store(3, Ordering::Relaxed);
                9
            });
            assert_eq!(t.join().unwrap(), 9);
            assert_eq!(n.load(Ordering::Relaxed), 3);
        });
        report.assert_ok();
        assert!(report.complete);
    }
}
