//! The deterministic scheduler behind every model run.
//!
//! Model threads are ordinary OS threads coordinated through one mutex +
//! condvar pair: exactly one thread holds the *run token* at any time.
//! At every scheduling point the running thread calls back into
//! [`Execution::schedule`], which picks the next runnable thread
//! according to the execution's [`Policy`] (a replayed DFS prefix or a
//! seeded RNG), records the pick in the schedule trace, and parks the
//! caller until the token comes back.  Serializing all instrumented
//! operations this way makes every execution a pure function of its
//! schedule, which is what lets failures replay exactly.

use std::cell::RefCell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};

/// Marker payload for the panic that unwinds bystander threads once an
/// execution has failed; the wrapper swallows it.
pub(crate) struct Abort;

/// What a parked thread is waiting for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Block {
    /// Waiting for the thread with this id to finish.
    Join(usize),
    /// Waiting for the lock with this id to become available.
    Lock(u64),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    /// Schedulable (the running thread also has this status; `running`
    /// says who actually holds the token).
    Ready,
    Blocked(Block),
    Finished,
}

/// How the scheduler picks among runnable threads.
pub(crate) enum Policy {
    /// Replay `prefix` (ranks into the sorted runnable set), then always
    /// pick rank 0 — the backbone of the DFS explorer.
    Replay { prefix: Vec<usize>, position: usize },
    /// Draw ranks from a SplitMix64 stream.
    Random { state: u64 },
}

impl Policy {
    pub(crate) fn replay(prefix: Vec<usize>) -> Self {
        Policy::Replay {
            prefix,
            position: 0,
        }
    }

    pub(crate) fn random(state: u64) -> Self {
        Policy::Random { state }
    }

    fn next_rank(&mut self, alternatives: usize) -> usize {
        match self {
            Policy::Replay { prefix, position } => {
                let rank = prefix.get(*position).copied().unwrap_or(0);
                *position += 1;
                // A replayed prefix always matches the tree shape; min
                // guards the impossible case instead of indexing out.
                rank.min(alternatives - 1)
            }
            Policy::Random { state } => {
                *state = (*state ^ (*state >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                *state = (*state ^ (*state >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                *state ^= *state >> 31;
                (*state % alternatives as u64) as usize
            }
        }
    }
}

struct ExecState {
    threads: Vec<Status>,
    /// The thread currently holding the run token.
    running: Option<usize>,
    policy: Policy,
    /// Thread id chosen at every scheduling point.
    trace: Vec<usize>,
    /// `(rank chosen, runnable alternatives)` per scheduling point — the
    /// DFS explorer backtracks over this.
    branch_log: Vec<(usize, usize)>,
    failure: Option<String>,
    abort: bool,
    steps: usize,
    max_steps: usize,
    /// OS handles of spawned model threads, joined at teardown.
    os_handles: Vec<std::thread::JoinHandle<()>>,
}

/// One model-checked execution: the scheduler state shared by all of the
/// execution's threads.
pub(crate) struct Execution {
    state: Mutex<ExecState>,
    turn: Condvar,
}

/// The calling thread's identity inside a model run, if any.
#[derive(Clone)]
pub(crate) struct Ctx {
    pub(crate) exec: Arc<Execution>,
    pub(crate) id: usize,
}

thread_local! {
    static CURRENT: RefCell<Option<Ctx>> = const { RefCell::new(None) };
}

/// The current thread's model context (`None` on ordinary threads — the
/// shims pass through to `std` in that case).
pub(crate) fn current() -> Option<Ctx> {
    CURRENT.with(|c| c.borrow().clone())
}

/// Result of one execution, consumed by the explorers in `lib.rs`.
pub(crate) struct Outcome {
    pub(crate) trace: Vec<usize>,
    pub(crate) branch_log: Vec<(usize, usize)>,
    pub(crate) failure: Option<String>,
}

impl Execution {
    /// Runs `f` as model thread 0 under `policy` and waits for every
    /// thread of the execution to finish.
    pub(crate) fn run(policy: Policy, max_steps: usize, f: Arc<dyn Fn() + Send + Sync>) -> Outcome {
        install_quiet_panic_hook();
        let exec = Arc::new(Execution {
            state: Mutex::new(ExecState {
                threads: vec![Status::Ready],
                running: None,
                policy,
                trace: Vec::new(),
                branch_log: Vec::new(),
                failure: None,
                abort: false,
                steps: 0,
                max_steps,
                os_handles: Vec::new(),
            }),
            turn: Condvar::new(),
        });
        let root_exec = Arc::clone(&exec);
        let root = std::thread::spawn(move || {
            run_model_thread(root_exec, 0, move || {
                f();
            });
        });
        // Hand the token to thread 0 (the only runnable thread; still a
        // recorded choice so traces cover the whole execution).
        {
            let mut state = exec.state.lock().expect("scheduler state poisoned");
            exec.pick_next(&mut state);
        }
        exec.turn.notify_all();
        // Wait for the execution to drain, then join the OS threads.
        let spawned = {
            let mut state = exec.state.lock().expect("scheduler state poisoned");
            while !state.threads.iter().all(|t| *t == Status::Finished) {
                state = exec.turn.wait(state).expect("scheduler state poisoned");
            }
            std::mem::take(&mut state.os_handles)
        };
        let _ = root.join();
        for handle in spawned {
            let _ = handle.join();
        }
        let mut state = exec.state.lock().expect("scheduler state poisoned");
        Outcome {
            trace: std::mem::take(&mut state.trace),
            branch_log: std::mem::take(&mut state.branch_log),
            failure: state.failure.take(),
        }
    }

    /// Registers a freshly spawned model thread and returns its id.
    pub(crate) fn register_thread(&self) -> usize {
        let mut state = self.state.lock().expect("scheduler state poisoned");
        state.threads.push(Status::Ready);
        state.threads.len() - 1
    }

    /// Keeps the OS handle of a spawned model thread for teardown.
    pub(crate) fn adopt_os_handle(&self, handle: std::thread::JoinHandle<()>) {
        let mut state = self.state.lock().expect("scheduler state poisoned");
        state.os_handles.push(handle);
    }

    /// The universal scheduling point: parks the caller (Ready to
    /// context-switch, or Blocked until woken) and returns once the
    /// scheduler hands the token back.  Panics with [`Abort`] if the
    /// execution failed in the meantime.
    pub(crate) fn schedule(&self, me: usize, block: Option<Block>) {
        {
            let mut state = self.state.lock().expect("scheduler state poisoned");
            state.threads[me] = match block {
                None => Status::Ready,
                Some(b) => Status::Blocked(b),
            };
            state.running = None;
            self.pick_next(&mut state);
        }
        self.turn.notify_all();
        self.wait_for_turn(me);
    }

    /// Marks a finished thread, wakes its joiners, records any failure,
    /// and passes the token on.
    pub(crate) fn thread_finished(&self, me: usize, panic_message: Option<String>) {
        {
            let mut state = self.state.lock().expect("scheduler state poisoned");
            if let Some(message) = panic_message {
                fail(&mut state, message);
            }
            state.threads[me] = Status::Finished;
            for status in state.threads.iter_mut() {
                if *status == Status::Blocked(Block::Join(me)) {
                    *status = Status::Ready;
                }
            }
            if state.running == Some(me) {
                state.running = None;
            }
            self.pick_next(&mut state);
        }
        self.turn.notify_all();
    }

    /// True once the thread with `id` has finished (join polling).
    pub(crate) fn is_finished(&self, id: usize) -> bool {
        let state = self.state.lock().expect("scheduler state poisoned");
        state.threads[id] == Status::Finished
    }

    /// Wakes every thread parked on lock `lock_id` (they re-attempt the
    /// acquisition when next scheduled).
    pub(crate) fn unblock_lock_waiters(&self, lock_id: u64) {
        let mut state = self.state.lock().expect("scheduler state poisoned");
        for status in state.threads.iter_mut() {
            if *status == Status::Blocked(Block::Lock(lock_id)) {
                *status = Status::Ready;
            }
        }
    }

    /// Picks the next runnable thread per policy; flags deadlock or a
    /// runaway schedule as execution failures.
    fn pick_next(&self, state: &mut ExecState) {
        if state.abort {
            return;
        }
        let runnable: Vec<usize> = state
            .threads
            .iter()
            .enumerate()
            .filter(|(_, s)| **s == Status::Ready)
            .map(|(i, _)| i)
            .collect();
        if runnable.is_empty() {
            if state.threads.iter().all(|t| *t == Status::Finished) {
                return; // Execution drained cleanly.
            }
            let stuck: Vec<String> = state
                .threads
                .iter()
                .enumerate()
                .filter_map(|(i, s)| match s {
                    Status::Blocked(b) => Some(format!("thread {i} on {b:?}")),
                    _ => None,
                })
                .collect();
            fail(state, format!("deadlock: {}", stuck.join(", ")));
            return;
        }
        state.steps += 1;
        if state.steps > state.max_steps {
            fail(
                state,
                format!("schedule exceeded {} scheduling points", state.max_steps),
            );
            return;
        }
        let rank = state.policy.next_rank(runnable.len());
        let chosen = runnable[rank];
        state.branch_log.push((rank, runnable.len()));
        state.trace.push(chosen);
        state.running = Some(chosen);
    }

    /// Parks until the scheduler hands this thread the token; unwinds
    /// with [`Abort`] when the execution has failed.
    pub(crate) fn wait_for_turn(&self, me: usize) {
        let mut state = self.state.lock().expect("scheduler state poisoned");
        loop {
            if state.abort {
                drop(state);
                std::panic::panic_any(Abort);
            }
            if state.running == Some(me) {
                return;
            }
            state = self.turn.wait(state).expect("scheduler state poisoned");
        }
    }
}

/// Records the first failure and switches the execution into abort mode
/// (every parked thread unwinds at its next wakeup).
fn fail(state: &mut ExecState, message: String) {
    if state.failure.is_none() {
        state.failure = Some(message);
    }
    state.abort = true;
}

/// Body shared by the root thread and every spawned model thread: set the
/// thread-local context, wait for the first turn, run, clean up.
pub(crate) fn run_model_thread<F: FnOnce()>(exec: Arc<Execution>, id: usize, f: F) {
    CURRENT.with(|c| {
        *c.borrow_mut() = Some(Ctx {
            exec: Arc::clone(&exec),
            id,
        });
    });
    exec.wait_for_turn(id);
    let result = catch_unwind(AssertUnwindSafe(f));
    let panic_message = match result {
        Ok(()) => None,
        Err(payload) => {
            if payload.downcast_ref::<Abort>().is_some() {
                None // Bystander unwound by a failure elsewhere.
            } else {
                // `as_ref` matters: `&payload` would coerce the Box
                // itself into `dyn Any` and every downcast would miss.
                Some(payload_message(payload.as_ref()))
            }
        }
    };
    CURRENT.with(|c| {
        *c.borrow_mut() = None;
    });
    exec.thread_finished(id, panic_message);
}

fn payload_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "model thread panicked".to_string()
    }
}

/// Suppresses panic-hook output for model threads: expected failures
/// (mutation tests, deadlock probes) would otherwise spray backtraces
/// over the test log.  Ordinary threads keep the previous hook.
fn install_quiet_panic_hook() {
    use std::sync::Once;
    static INSTALL: Once = Once::new();
    INSTALL.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if current().is_some() {
                return;
            }
            previous(info);
        }));
    });
}
