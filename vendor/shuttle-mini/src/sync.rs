//! Instrumented drop-in replacements for `std::sync` primitives.
//!
//! Each type wraps the `std` primitive it mirrors and adds exactly one
//! behavior: when the calling thread belongs to a model run, every
//! operation first passes through a scheduling point, and blocking
//! acquisitions park in the model scheduler (via `try_*`) instead of the
//! OS so the explorer keeps control of the interleaving.  On ordinary
//! threads every method is a direct delegation — same semantics, same
//! `LockResult` poisoning behavior — at the cost of one thread-local
//! probe.

use std::sync::atomic::Ordering;
use std::sync::{LockResult, PoisonError, TryLockError};

use crate::exec::{current, Block};

/// One scheduling point, if the caller is a model thread.
fn maybe_yield() {
    if let Some(ctx) = current() {
        ctx.exec.schedule(ctx.id, None);
    }
}

/// Next id for lock identity (which waiters to wake on release).
fn next_lock_id() -> u64 {
    use std::sync::atomic::AtomicU64 as StdAtomicU64;
    static NEXT: StdAtomicU64 = StdAtomicU64::new(1);
    // ordering: Relaxed — a unique id is all that is needed; no other
    // memory depends on the counter.
    NEXT.fetch_add(1, Ordering::Relaxed)
}

/// Wakes model threads parked on `lock_id`; called from guard drops.
/// Skips the voluntary context switch during unwinding: a panicking
/// thread must not re-enter the scheduler (it could be told to abort,
/// and a panic-inside-panic aborts the process).
fn on_lock_release(lock_id: u64) {
    if let Some(ctx) = current() {
        ctx.exec.unblock_lock_waiters(lock_id);
        if !std::thread::panicking() {
            ctx.exec.schedule(ctx.id, None);
        }
    }
}

pub mod atomic {
    //! Model-aware atomics (the `std::sync::atomic` mirror).

    use super::maybe_yield;
    use std::sync::atomic::Ordering;

    macro_rules! model_atomic {
        ($name:ident, $std:ty, $value:ty) => {
            /// A model-aware atomic: identical to its `std` counterpart,
            /// plus a scheduling point before every operation inside a
            /// model run.
            #[derive(Debug, Default)]
            pub struct $name {
                inner: $std,
            }

            impl $name {
                /// Creates the atomic (const, like `std`).
                pub const fn new(value: $value) -> Self {
                    Self {
                        inner: <$std>::new(value),
                    }
                }

                /// Loads the value.
                pub fn load(&self, order: Ordering) -> $value {
                    maybe_yield();
                    self.inner.load(order)
                }

                /// Stores a value.
                pub fn store(&self, value: $value, order: Ordering) {
                    maybe_yield();
                    self.inner.store(value, order);
                }

                /// Swaps the value, returning the previous one.
                pub fn swap(&self, value: $value, order: Ordering) -> $value {
                    maybe_yield();
                    self.inner.swap(value, order)
                }

                /// Adds, returning the previous value.
                pub fn fetch_add(&self, value: $value, order: Ordering) -> $value {
                    maybe_yield();
                    self.inner.fetch_add(value, order)
                }

                /// Subtracts, returning the previous value.
                pub fn fetch_sub(&self, value: $value, order: Ordering) -> $value {
                    maybe_yield();
                    self.inner.fetch_sub(value, order)
                }

                /// Maximum, returning the previous value.
                pub fn fetch_max(&self, value: $value, order: Ordering) -> $value {
                    maybe_yield();
                    self.inner.fetch_max(value, order)
                }

                /// Minimum, returning the previous value.
                pub fn fetch_min(&self, value: $value, order: Ordering) -> $value {
                    maybe_yield();
                    self.inner.fetch_min(value, order)
                }

                /// Compare-and-exchange with `std` semantics.
                pub fn compare_exchange(
                    &self,
                    expected: $value,
                    new: $value,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$value, $value> {
                    maybe_yield();
                    self.inner.compare_exchange(expected, new, success, failure)
                }

                /// Consumes the atomic, returning the value.
                pub fn into_inner(self) -> $value {
                    self.inner.into_inner()
                }
            }
        };
    }

    model_atomic!(AtomicU64, std::sync::atomic::AtomicU64, u64);
    model_atomic!(AtomicUsize, std::sync::atomic::AtomicUsize, usize);

    /// A model-aware `AtomicBool` (separate: no fetch_add/min/max).
    #[derive(Debug, Default)]
    pub struct AtomicBool {
        inner: std::sync::atomic::AtomicBool,
    }

    impl AtomicBool {
        /// Creates the atomic (const, like `std`).
        pub const fn new(value: bool) -> Self {
            AtomicBool {
                inner: std::sync::atomic::AtomicBool::new(value),
            }
        }

        /// Loads the value.
        pub fn load(&self, order: Ordering) -> bool {
            maybe_yield();
            self.inner.load(order)
        }

        /// Stores a value.
        pub fn store(&self, value: bool, order: Ordering) {
            maybe_yield();
            self.inner.store(value, order);
        }

        /// Swaps the value, returning the previous one.
        pub fn swap(&self, value: bool, order: Ordering) -> bool {
            maybe_yield();
            self.inner.swap(value, order)
        }
    }
}

/// A model-aware mutual-exclusion lock mirroring `std::sync::Mutex`.
#[derive(Debug)]
pub struct Mutex<T: ?Sized> {
    id: u64,
    inner: std::sync::Mutex<T>,
}

/// Guard for a [`Mutex`]; releasing it wakes model waiters.
pub struct MutexGuard<'a, T: ?Sized> {
    // Option so Drop can release the std guard *before* waking waiters.
    inner: Option<std::sync::MutexGuard<'a, T>>,
    lock_id: u64,
}

impl<T> Mutex<T> {
    /// Creates the lock.
    pub fn new(value: T) -> Self {
        Mutex {
            id: next_lock_id(),
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Acquires the lock, parking in the model scheduler inside a model
    /// run (so the explorer controls who waits) and in the OS otherwise.
    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        let Some(ctx) = current() else {
            return wrap_lock(self.inner.lock(), self.id);
        };
        loop {
            ctx.exec.schedule(ctx.id, None);
            match self.inner.try_lock() {
                Ok(guard) => return Ok(guard_of(guard, self.id)),
                Err(TryLockError::Poisoned(poisoned)) => {
                    return Err(PoisonError::new(guard_of(poisoned.into_inner(), self.id)));
                }
                Err(TryLockError::WouldBlock) => {
                    ctx.exec.schedule(ctx.id, Some(Block::Lock(self.id)));
                }
            }
        }
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> LockResult<T> {
        self.inner.into_inner()
    }
}

fn guard_of<T: ?Sized>(inner: std::sync::MutexGuard<'_, T>, lock_id: u64) -> MutexGuard<'_, T> {
    MutexGuard {
        inner: Some(inner),
        lock_id,
    }
}

fn wrap_lock<'a, T: ?Sized>(
    result: LockResult<std::sync::MutexGuard<'a, T>>,
    lock_id: u64,
) -> LockResult<MutexGuard<'a, T>> {
    match result {
        Ok(guard) => Ok(guard_of(guard, lock_id)),
        Err(poisoned) => Err(PoisonError::new(guard_of(poisoned.into_inner(), lock_id))),
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard accessed after release")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard accessed after release")
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        drop(self.inner.take()); // Release before waking waiters.
        on_lock_release(self.lock_id);
    }
}

/// A model-aware reader-writer lock mirroring `std::sync::RwLock`.
#[derive(Debug)]
pub struct RwLock<T: ?Sized> {
    id: u64,
    inner: std::sync::RwLock<T>,
}

/// Shared guard for an [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: Option<std::sync::RwLockReadGuard<'a, T>>,
    lock_id: u64,
}

/// Exclusive guard for an [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: Option<std::sync::RwLockWriteGuard<'a, T>>,
    lock_id: u64,
}

impl<T> RwLock<T> {
    /// Creates the lock.
    pub fn new(value: T) -> Self {
        RwLock {
            id: next_lock_id(),
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Acquires shared access (model-scheduler parking inside a run).
    pub fn read(&self) -> LockResult<RwLockReadGuard<'_, T>> {
        let Some(ctx) = current() else {
            return match self.inner.read() {
                Ok(guard) => Ok(read_guard(guard, self.id)),
                Err(poisoned) => Err(PoisonError::new(read_guard(poisoned.into_inner(), self.id))),
            };
        };
        loop {
            ctx.exec.schedule(ctx.id, None);
            match self.inner.try_read() {
                Ok(guard) => return Ok(read_guard(guard, self.id)),
                Err(TryLockError::Poisoned(poisoned)) => {
                    return Err(PoisonError::new(read_guard(poisoned.into_inner(), self.id)));
                }
                Err(TryLockError::WouldBlock) => {
                    ctx.exec.schedule(ctx.id, Some(Block::Lock(self.id)));
                }
            }
        }
    }

    /// Acquires exclusive access (model-scheduler parking inside a run).
    pub fn write(&self) -> LockResult<RwLockWriteGuard<'_, T>> {
        let Some(ctx) = current() else {
            return match self.inner.write() {
                Ok(guard) => Ok(write_guard(guard, self.id)),
                Err(poisoned) => Err(PoisonError::new(write_guard(
                    poisoned.into_inner(),
                    self.id,
                ))),
            };
        };
        loop {
            ctx.exec.schedule(ctx.id, None);
            match self.inner.try_write() {
                Ok(guard) => return Ok(write_guard(guard, self.id)),
                Err(TryLockError::Poisoned(poisoned)) => {
                    return Err(PoisonError::new(write_guard(
                        poisoned.into_inner(),
                        self.id,
                    )));
                }
                Err(TryLockError::WouldBlock) => {
                    ctx.exec.schedule(ctx.id, Some(Block::Lock(self.id)));
                }
            }
        }
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> LockResult<T> {
        self.inner.into_inner()
    }
}

fn read_guard<T: ?Sized>(
    inner: std::sync::RwLockReadGuard<'_, T>,
    lock_id: u64,
) -> RwLockReadGuard<'_, T> {
    RwLockReadGuard {
        inner: Some(inner),
        lock_id,
    }
}

fn write_guard<T: ?Sized>(
    inner: std::sync::RwLockWriteGuard<'_, T>,
    lock_id: u64,
) -> RwLockWriteGuard<'_, T> {
    RwLockWriteGuard {
        inner: Some(inner),
        lock_id,
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard accessed after release")
    }
}

impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        drop(self.inner.take());
        on_lock_release(self.lock_id);
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard accessed after release")
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard accessed after release")
    }
}

impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        drop(self.inner.take());
        on_lock_release(self.lock_id);
    }
}
