//! The [`Strategy`] trait and the built-in strategies: numeric ranges,
//! regex-subset strings, tuples, and the `prop_map` / `prop_flat_map`
//! combinators.

use crate::test_runner::TestRng;
use rand::Rng;

/// A recipe for generating random values of one type.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms every generated value with `f`.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }

    /// Builds a second strategy from every generated value and draws from
    /// that.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, T> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

/// A fixed value (proptest's `Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+ ; $($idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A; 0);
impl_tuple_strategy!(A, B; 0, 1);
impl_tuple_strategy!(A, B, C; 0, 1, 2);
impl_tuple_strategy!(A, B, C, D; 0, 1, 2, 3);
impl_tuple_strategy!(A, B, C, D, E; 0, 1, 2, 3, 4);
impl_tuple_strategy!(A, B, C, D, E, F; 0, 1, 2, 3, 4, 5);
impl_tuple_strategy!(A, B, C, D, E, F, G; 0, 1, 2, 3, 4, 5, 6);
impl_tuple_strategy!(A, B, C, D, E, F, G, H; 0, 1, 2, 3, 4, 5, 6, 7);

/// String literals act as regex strategies (a subset: literal characters,
/// `[...]` classes with ranges, and `{m}` / `{m,n}` repetition).
impl Strategy for str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let atoms = parse_regex(self);
        let mut out = String::new();
        generate_atoms(&atoms, rng, &mut out);
        out
    }
}

fn generate_atoms(atoms: &[Atom], rng: &mut TestRng, out: &mut String) {
    for atom in atoms {
        let count = match atom.repeat {
            Some((lo, hi)) => rng.gen_range(lo..=hi),
            None => 1,
        };
        for _ in 0..count {
            match &atom.kind {
                AtomKind::Literal(c) => out.push(*c),
                AtomKind::Class(chars) => {
                    let idx = rng.gen_range(0..chars.len());
                    out.push(chars[idx]);
                }
                AtomKind::Group(inner) => generate_atoms(inner, rng, out),
            }
        }
    }
}

enum AtomKind {
    Literal(char),
    Class(Vec<char>),
    Group(Vec<Atom>),
}

struct Atom {
    kind: AtomKind,
    repeat: Option<(usize, usize)>,
}

/// Parses the supported regex subset into a sequence of atoms.
fn parse_regex(pattern: &str) -> Vec<Atom> {
    let chars: Vec<char> = pattern.chars().collect();
    let (atoms, consumed) = parse_sequence(&chars, 0, pattern);
    assert!(
        consumed == chars.len(),
        "unbalanced `)` in regex {pattern:?}"
    );
    atoms
}

/// Parses atoms from `chars[start..]` until end of input or an unmatched
/// `)`; returns the atoms and the index just past what was consumed.
fn parse_sequence(chars: &[char], start: usize, pattern: &str) -> (Vec<Atom>, usize) {
    let mut atoms = Vec::new();
    let mut i = start;
    while i < chars.len() {
        let kind = match chars[i] {
            ')' => return (atoms, i),
            '(' => {
                let (inner, end) = parse_sequence(chars, i + 1, pattern);
                assert!(
                    end < chars.len() && chars[end] == ')',
                    "unterminated group in regex {pattern:?}"
                );
                i = end + 1;
                AtomKind::Group(inner)
            }
            '[' => {
                let mut class = Vec::new();
                i += 1;
                while i < chars.len() && chars[i] != ']' {
                    if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                        let (lo, hi) = (chars[i], chars[i + 2]);
                        assert!(lo <= hi, "bad range {lo}-{hi} in regex {pattern:?}");
                        class.extend((lo..=hi).filter(|c| c.is_ascii()));
                        i += 3;
                    } else {
                        class.push(chars[i]);
                        i += 1;
                    }
                }
                assert!(i < chars.len(), "unterminated class in regex {pattern:?}");
                i += 1; // consume ']'
                assert!(!class.is_empty(), "empty class in regex {pattern:?}");
                AtomKind::Class(class)
            }
            '\\' => {
                i += 1;
                assert!(i < chars.len(), "trailing backslash in regex {pattern:?}");
                let c = chars[i];
                i += 1;
                AtomKind::Literal(c)
            }
            c => {
                assert!(
                    !matches!(c, '|' | '*' | '+' | '?' | '.'),
                    "unsupported regex feature `{c}` in {pattern:?}"
                );
                i += 1;
                AtomKind::Literal(c)
            }
        };
        // Optional {m} / {m,n} repetition.
        let repeat = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .map(|off| i + off)
                .unwrap_or_else(|| panic!("unterminated repetition in regex {pattern:?}"));
            let spec: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            let (lo, hi) = match spec.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse().expect("bad repetition bound"),
                    hi.trim().parse().expect("bad repetition bound"),
                ),
                None => {
                    let n = spec.trim().parse().expect("bad repetition bound");
                    (n, n)
                }
            };
            Some((lo, hi))
        } else {
            None
        };
        atoms.push(Atom { kind, repeat });
    }
    (atoms, i)
}
