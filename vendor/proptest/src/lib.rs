//! Offline stand-in for `proptest`.
//!
//! Implements the slice of the proptest API this workspace uses: the
//! [`Strategy`] trait with `prop_map` / `prop_flat_map`, numeric range
//! strategies, string strategies from a regex subset (character classes
//! with `{m}` / `{m,n}` repetition), tuple composition,
//! [`collection::vec`], [`option::of`], [`ProptestConfig`], and the
//! [`proptest!`] / [`prop_assert!`] / [`prop_assert_eq!`] macros.
//!
//! Cases are generated from a fixed seed so test runs are deterministic.
//! Failing inputs are not shrunk — the panic message carries the case
//! number instead, which together with the fixed seed reproduces the case.

pub mod strategy;

pub use strategy::Strategy;

/// Runner configuration (`cases` = number of random inputs per property).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// How many random cases each property is checked against.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Test-runner plumbing used by the [`proptest!`] macro expansion.
pub mod test_runner {
    pub use rand::rngs::StdRng as TestRng;
    pub use rand::SeedableRng;

    /// Fixed master seed: runs are reproducible across invocations.
    pub const MASTER_SEED: u64 = 0x5eed_cafe_f00d_0001;
}

/// Strategies for collections.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Sizes acceptable to [`vec`]: a fixed size or a (half-open /
    /// inclusive) range of sizes.
    pub trait IntoSize {
        /// Draws a concrete length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl IntoSize for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl IntoSize for std::ops::Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    impl IntoSize for std::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    /// Strategy producing `Vec`s of values drawn from `element`.
    pub struct VecStrategy<S, Z> {
        element: S,
        size: Z,
    }

    /// Vector of `size` values drawn from `element`.
    pub fn vec<S: Strategy, Z: IntoSize>(element: S, size: Z) -> VecStrategy<S, Z> {
        VecStrategy { element, size }
    }

    impl<S: Strategy, Z: IntoSize> Strategy for VecStrategy<S, Z> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Strategies for optional values.
pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Strategy producing `None` half the time, `Some(inner)` otherwise.
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// Optional value drawn from `inner`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            if rng.gen_bool(0.5) {
                Some(self.inner.generate(rng))
            } else {
                None
            }
        }
    }
}

/// Everything a property test module typically imports.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that checks the body over `config.cases` random
/// inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($config) $($rest)*);
    };
    (@run ($config:expr)
        $( $(#[$meta:meta])* fn $name:ident
            ( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                use $crate::test_runner::SeedableRng as _;
                let config: $crate::ProptestConfig = $config;
                let mut rng = $crate::test_runner::TestRng::seed_from_u64(
                    $crate::test_runner::MASTER_SEED,
                );
                // Build each strategy once (bound under the argument's own
                // name, shadowed by the generated value inside the loop).
                $(
                    let $arg = $strategy;
                )+
                for _case in 0..config.cases {
                    $(
                        let $arg = $crate::strategy::Strategy::generate(&$arg, &mut rng);
                    )+
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// `assert!` inside a property body (no shrinking, plain panic).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// `assert_eq!` inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// `assert_ne!` inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn regex_strategy_matches_shape() {
        use crate::test_runner::{SeedableRng, TestRng};
        let strat = "[A-Za-z][a-z0-9 ]{0,30}";
        let mut rng = TestRng::seed_from_u64(3);
        for _ in 0..200 {
            let s = Strategy::generate(&strat, &mut rng);
            assert!(!s.is_empty() && s.len() <= 31, "bad length: {s:?}");
            assert!(s.chars().next().unwrap().is_ascii_alphabetic());
            assert!(s
                .chars()
                .skip(1)
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == ' '));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(n in 1usize..=6, x in 0.0f64..1.0) {
            prop_assert!((1..=6).contains(&n));
            prop_assert!((0.0..1.0).contains(&x));
        }

        #[test]
        fn vec_sizes_respect_range(v in crate::collection::vec(0usize..5, 2..=4)) {
            prop_assert!(v.len() >= 2 && v.len() <= 4);
            prop_assert!(v.iter().all(|&x| x < 5));
        }

        #[test]
        fn maps_compose(pair in (1usize..4, 1usize..4).prop_map(|(a, b)| a * b)) {
            prop_assert!((1..16).contains(&pair));
        }

        #[test]
        fn flat_map_uses_inner_value(
            v in (2usize..=5).prop_flat_map(|n| crate::collection::vec(0usize..10, n))
        ) {
            prop_assert!(v.len() >= 2 && v.len() <= 5);
        }
    }
}
