//! Offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! Only the API surface the workspace uses is provided: [`Mutex`] and
//! [`RwLock`] with panic-free (`lock()`/`read()`/`write()` return guards
//! directly, recovering from poisoning like `parking_lot` which has no
//! poisoning at all).

use std::sync::{self, PoisonError};

/// A mutual-exclusion lock whose `lock` returns the guard directly.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex and returns the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader–writer lock whose accessors return guards directly.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Shared guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock and returns the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn mutex_extends_across_threads() {
        let shared = Arc::new(Mutex::new(Vec::new()));
        let handles: Vec<_> = (0..8)
            .map(|i| {
                let shared = Arc::clone(&shared);
                thread::spawn(move || shared.lock().push(i))
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let mut v = shared.lock().clone();
        v.sort_unstable();
        assert_eq!(v, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn rwlock_allows_concurrent_reads() {
        let lock = RwLock::new(5);
        let a = lock.read();
        let b = lock.read();
        assert_eq!(*a + *b, 10);
    }
}
