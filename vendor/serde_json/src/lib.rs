//! Offline stand-in for `serde_json`.
//!
//! Serializes [`serde::Serialize`] types to JSON text (compact and pretty)
//! and parses JSON text back through [`serde::Deserialize`], via the
//! vendored `serde` value tree.  Covers standard JSON: objects, arrays,
//! strings with escapes (`\" \\ \/ \b \f \n \r \t \uXXXX` including
//! surrogate pairs), integers, floats with exponents, booleans and null.

use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// Error for JSON parsing or value-to-type mismatches.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Error {
        Error {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(value: serde::Error) -> Self {
        Error::new(value.0)
    }
}

/// Serializes `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.serialize_value(), &mut out, None, 0);
    Ok(out)
}

/// Serializes `value` as pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.serialize_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Parses JSON text into any [`Deserialize`] type.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
        depth: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.error("trailing characters after JSON value"));
    }
    Ok(T::deserialize_value(&value)?)
}

fn write_value(value: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::Float(x) => write_float(*x, out),
        Value::String(s) => write_string(s, out),
        Value::Array(items) => {
            write_seq(out, indent, depth, items.is_empty(), '[', ']', |out| {
                for (i, item) in items.iter().enumerate() {
                    write_item_separator(out, indent, depth + 1, i == 0);
                    write_value(item, out, indent, depth + 1);
                }
            });
        }
        Value::Object(fields) => {
            write_seq(out, indent, depth, fields.is_empty(), '{', '}', |out| {
                for (i, (key, item)) in fields.iter().enumerate() {
                    write_item_separator(out, indent, depth + 1, i == 0);
                    write_string(key, out);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    write_value(item, out, indent, depth + 1);
                }
            });
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    empty: bool,
    open: char,
    close: char,
    body: impl FnOnce(&mut String),
) {
    out.push(open);
    if empty {
        out.push(close);
        return;
    }
    body(out);
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * depth));
    }
    out.push(close);
}

fn write_item_separator(out: &mut String, indent: Option<usize>, depth: usize, first: bool) {
    if !first {
        out.push(',');
    }
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * depth));
    }
}

fn write_float(x: f64, out: &mut String) {
    if x.is_finite() {
        let text = x.to_string();
        out.push_str(&text);
        // Keep floats recognisable as floats so that round trips stay in
        // the number domain JSON can represent.
        if !text.contains(['.', 'e', 'E']) {
            out.push_str(".0");
        }
    } else {
        // JSON has no NaN / infinity; serde_json writes null.
        out.push_str("null");
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Maximum nesting depth of arrays/objects (mirrors real serde_json's
/// recursion limit); deeper input is a parse error, not a stack overflow.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, message: &str) -> Error {
        Error::new(format!("{message} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_literal(&mut self, word: &str) -> bool {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'{') => self.nested(Parser::parse_object),
            Some(b'[') => self.nested(Parser::parse_array),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn nested(
        &mut self,
        parse: fn(&mut Parser<'a>) -> Result<Value, Error>,
    ) -> Result<Value, Error> {
        if self.depth >= MAX_DEPTH {
            return Err(self.error("recursion limit exceeded"));
        }
        self.depth += 1;
        let result = parse(self);
        self.depth -= 1;
        result
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(self.error("expected `,` or `}` in object")),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.error("expected `,` or `]` in array")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain UTF-8 up to the next quote or escape.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.error("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self
                        .peek()
                        .ok_or_else(|| self.error("unterminated escape"))?;
                    self.pos += 1;
                    match escape {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'b' => s.push('\u{08}'),
                        b'f' => s.push('\u{0c}'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'u' => {
                            let first = self.parse_hex4()?;
                            let code = if (0xd800..0xdc00).contains(&first) {
                                // Surrogate pair: expect a \uXXXX low half.
                                if !self.eat_literal("\\u") {
                                    return Err(self.error("unpaired surrogate"));
                                }
                                let low = self.parse_hex4()?;
                                if !(0xdc00..0xe000).contains(&low) {
                                    return Err(self.error("invalid low surrogate"));
                                }
                                0x10000 + ((first - 0xd800) << 10) + (low - 0xdc00)
                            } else {
                                first
                            };
                            s.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.error("invalid unicode escape"))?,
                            );
                        }
                        other => {
                            return Err(self.error(&format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                Some(_) => return Err(self.error("control character in string")),
                None => return Err(self.error("unterminated string")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        let chunk = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| self.error("truncated \\u escape"))?;
        let text = std::str::from_utf8(chunk).map_err(|_| self.error("invalid \\u escape"))?;
        let code = u32::from_str_radix(text, 16).map_err(|_| self.error("invalid \\u escape"))?;
        self.pos = end;
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| self.error("invalid number"))
        } else if let Ok(n) = text.parse::<u64>() {
            Ok(Value::UInt(n))
        } else if let Ok(n) = text.parse::<i64>() {
            Ok(Value::Int(n))
        } else {
            // Integer out of 64-bit range: fall back to floating point.
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| self.error("invalid number"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        assert!(from_str::<bool>("true").unwrap());
        assert_eq!(from_str::<u32>(" 42 ").unwrap(), 42);
        assert_eq!(from_str::<i64>("-7").unwrap(), -7);
        assert_eq!(from_str::<f64>("2.5e3").unwrap(), 2500.0);
        assert_eq!(from_str::<String>("\"a\\nb\"").unwrap(), "a\nb");
    }

    #[test]
    fn float_round_trip_stays_float() {
        let text = to_string(&2.0f64).unwrap();
        assert_eq!(text, "2.0");
        assert_eq!(from_str::<f64>(&text).unwrap(), 2.0);
    }

    #[test]
    fn string_escapes_round_trip() {
        let original = "tab\there \"quoted\" back\\slash\nnewline \u{1F600} high";
        let text = to_string(&original.to_string()).unwrap();
        assert_eq!(from_str::<String>(&text).unwrap(), original);
    }

    #[test]
    fn unicode_escape_surrogate_pair() {
        assert_eq!(
            from_str::<String>("\"\\ud83d\\ude00\"").unwrap(),
            "\u{1F600}"
        );
    }

    #[test]
    fn nested_collections_round_trip() {
        let v: Vec<Vec<u32>> = vec![vec![1, 2], vec![], vec![3]];
        let compact = to_string(&v).unwrap();
        assert_eq!(compact, "[[1,2],[],[3]]");
        assert_eq!(from_str::<Vec<Vec<u32>>>(&compact).unwrap(), v);
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(from_str::<Vec<Vec<u32>>>(&pretty).unwrap(), v);
    }

    #[test]
    fn deep_nesting_errors_instead_of_overflowing() {
        let deep = "[".repeat(100_000);
        let err = from_str::<Vec<u32>>(&deep).unwrap_err();
        assert!(err.to_string().contains("recursion limit"), "{err}");
        // The limit leaves ordinary documents untouched.
        let ok = format!("{}1{}", "[".repeat(64), "]".repeat(64));
        assert!(from_str::<Value>(&ok).is_ok());
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str::<u32>("1 x").is_err());
        assert!(from_str::<Vec<u32>>("[1,]").is_err());
    }
}
