//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! re-implements exactly the slice of the `rand 0.8` API that the workspace
//! uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], the [`Rng`]
//! extension trait (`gen`, `gen_range`, `gen_bool`) and
//! [`seq::SliceRandom`] (`shuffle`, `choose`).
//!
//! The generator is xoshiro256** seeded through SplitMix64 — statistically
//! solid for simulation workloads, deterministic for a given seed, and not
//! suitable for cryptography (neither is `StdRng` misuse of this kind).

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction of reproducible generators from seeds.
pub trait SeedableRng: Sized {
    /// Creates a generator whose entire stream is determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic general-purpose generator (xoshiro256**).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Types producible by [`Rng::gen`] (stand-in for the `Standard`
/// distribution of real `rand`).
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng)
    }
}

/// Uniform value in `[0, 1)` with 53 bits of precision.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Primitive types that can be drawn uniformly from a range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)`; `inclusive` widens to `[lo, hi]`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self {
                let span = if inclusive {
                    (hi as i128) - (lo as i128) + 1
                } else {
                    (hi as i128) - (lo as i128)
                };
                assert!(span > 0, "cannot sample empty range {lo}..{hi}");
                let draw = (rng.next_u64() as u128 % span as u128) as i128;
                (lo as i128 + draw) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, _inclusive: bool) -> Self {
        assert!(lo <= hi, "cannot sample empty range {lo}..{hi}");
        lo + unit_f64(rng) * (hi - lo)
    }
}

/// Ranges acceptable to [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample(rng, *self.start(), *self.end(), true)
    }
}

/// Extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of any [`Standard`]-producible type.
    fn gen<T: Standard>(&mut self) -> T {
        T::from_rng(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T: SampleUniform, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range: {p}"
        );
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Sequence-related randomness (shuffling, choosing).
pub mod seq {
    use super::{Rng, SampleUniform};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly chosen element, or `None` if the slice is empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = usize::sample(rng, 0, i, true);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[usize::sample(rng, 0, self.len(), false)])
            }
        }
    }
}

/// Prelude mirroring `rand::prelude`.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3..10usize);
            assert!((3..10).contains(&v));
            let f = rng.gen_range(-1.0f64..=1.0);
            assert!((-1.0..=1.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "got {hits}");
    }
}
