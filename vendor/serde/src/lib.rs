//! Offline stand-in for `serde`.
//!
//! crates.io is unreachable in this build environment, so this crate
//! provides the serialization contract the workspace needs: the
//! [`Serialize`] / [`Deserialize`] traits (value-tree based rather than
//! visitor based), a generic [`Value`] tree, and re-exported derive macros
//! (`#[derive(Serialize, Deserialize)]`) that understand the subset of
//! `#[serde(...)]` attributes used in this repository: `transparent`,
//! `default`, and `skip_serializing_if = "path"`.
//!
//! `serde_json` (also vendored) renders [`Value`] trees to JSON text and
//! parses them back.

use std::collections::BTreeMap;
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing serialized value tree (the JSON data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Absent / null.
    Null,
    /// Boolean.
    Bool(bool),
    /// Non-negative integer.
    UInt(u64),
    /// Negative integer.
    Int(i64),
    /// Floating point number.
    Float(f64),
    /// String.
    String(String),
    /// Ordered sequence.
    Array(Vec<Value>),
    /// Ordered map (field order is preserved).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The fields of an object value, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// Looks up a field of an object value by name.
    pub fn get_field<'a>(&'a self, name: &str) -> Option<&'a Value> {
        self.as_object()
            .and_then(|fields| fields.iter().find(|(k, _)| k == name))
            .map(|(_, v)| v)
    }

    /// A short human-readable description of the value's kind.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::UInt(_) | Value::Int(_) => "integer",
            Value::Float(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Error produced when a [`Value`] tree does not match the target type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl Error {
    /// A "expected X, found Y" error.
    pub fn expected(what: &str, found: &Value) -> Error {
        Error(format!("expected {what}, found {}", found.kind()))
    }

    /// A missing-field error for struct deserialization.
    pub fn missing_field(ty: &str, field: &str) -> Error {
        Error(format!("missing field `{field}` while deserializing {ty}"))
    }

    /// An unknown-enum-variant error.
    pub fn unknown_variant(ty: &str, variant: &str) -> Error {
        Error(format!("unknown {ty} variant `{variant}`"))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can be rendered to a [`Value`] tree.
pub trait Serialize {
    /// Renders `self` as a value tree.
    fn serialize_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a value tree.
    fn deserialize_value(value: &Value) -> Result<Self, Error>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl Serialize for bool {
    fn serialize_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::expected("bool", other)),
        }
    }
}

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }

        impl Deserialize for $t {
            fn deserialize_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::UInt(n) => <$t>::try_from(*n)
                        .map_err(|_| Error(format!("integer {n} out of range"))),
                    other => Err(Error::expected("unsigned integer", other)),
                }
            }
        }
    )*};
}

impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 { Value::UInt(v as u64) } else { Value::Int(v) }
            }
        }

        impl Deserialize for $t {
            fn deserialize_value(value: &Value) -> Result<Self, Error> {
                let wide: i64 = match value {
                    Value::UInt(n) => i64::try_from(*n)
                        .map_err(|_| Error(format!("integer {n} out of range")))?,
                    Value::Int(n) => *n,
                    other => return Err(Error::expected("integer", other)),
                };
                <$t>::try_from(wide).map_err(|_| Error(format!("integer {wide} out of range")))
            }
        }
    )*};
}

impl_serde_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn serialize_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Float(x) => Ok(*x),
            Value::UInt(n) => Ok(*n as f64),
            Value::Int(n) => Ok(*n as f64),
            other => Err(Error::expected("number", other)),
        }
    }
}

impl Serialize for f32 {
    fn serialize_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        f64::deserialize_value(value).map(|x| x as f32)
    }
}

impl Serialize for String {
    fn serialize_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for str {
    fn serialize_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for String {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::String(s) => Ok(s.clone()),
            other => Err(Error::expected("string", other)),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for std::sync::Arc<T> {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl<T: Deserialize> Deserialize for std::sync::Arc<T> {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        T::deserialize_value(value).map(std::sync::Arc::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_value(&self) -> Value {
        match self {
            Some(v) => v.serialize_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::deserialize_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) => items.iter().map(T::deserialize_value).collect(),
            other => Err(Error::expected("array", other)),
        }
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn serialize_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.serialize_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Object(fields) => fields
                .iter()
                .map(|(k, v)| V::deserialize_value(v).map(|v| (k.clone(), v)))
                .collect(),
            other => Err(Error::expected("object", other)),
        }
    }
}

impl Serialize for Value {
    fn serialize_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_null_round_trip() {
        let none: Option<String> = None;
        assert_eq!(none.serialize_value(), Value::Null);
        assert_eq!(Option::<String>::deserialize_value(&Value::Null), Ok(None));
    }

    #[test]
    fn integers_preserve_sign_and_width() {
        assert_eq!((-3i64).serialize_value(), Value::Int(-3));
        assert_eq!(7u32.serialize_value(), Value::UInt(7));
        assert_eq!(i32::deserialize_value(&Value::UInt(12)), Ok(12));
        assert!(u8::deserialize_value(&Value::UInt(300)).is_err());
    }

    #[test]
    fn map_round_trip_preserves_entries() {
        let mut m = BTreeMap::new();
        m.insert("a".to_string(), 1u32);
        m.insert("b".to_string(), 2u32);
        let v = m.serialize_value();
        assert_eq!(BTreeMap::<String, u32>::deserialize_value(&v), Ok(m));
    }
}
