//! Hand-rolled `#[derive(Serialize, Deserialize)]` macros for the vendored
//! `serde` stand-in.
//!
//! syn/quote are not available offline, so the derive input is parsed
//! directly from the `proc_macro` token stream and the generated impls are
//! assembled as source text.  Supported shapes — which cover every derived
//! type in this workspace — are:
//!
//! * structs with named fields, honouring `#[serde(default)]` and
//!   `#[serde(skip_serializing_if = "path")]` field attributes;
//! * single-field tuple structs marked `#[serde(transparent)]`;
//! * enums whose variants are unit or single-field tuple ("newtype")
//!   variants, serialized with serde's external tagging: a unit variant
//!   becomes the variant-name string, a newtype variant becomes a
//!   single-entry object `{"Variant": inner}`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Field-level facts the generated impls need.
struct Field {
    name: String,
    has_default: bool,
    skip_serializing_if: Option<String>,
    is_option: bool,
}

/// One enum variant: its name and whether it carries a newtype payload.
struct Variant {
    name: String,
    has_payload: bool,
}

/// The shapes of type this derive supports.
enum Shape {
    NamedStruct {
        name: String,
        fields: Vec<Field>,
    },
    TransparentNewtype {
        name: String,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Serde attribute items collected from one `#[serde(...)]` group.
#[derive(Default)]
struct SerdeAttrs {
    transparent: bool,
    default: bool,
    skip_serializing_if: Option<String>,
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let shape = parse_shape(input);
    let code = match &shape {
        Shape::NamedStruct { name, fields } => {
            let mut body =
                String::from("let mut fields: Vec<(String, ::serde::Value)> = Vec::new();\n");
            for f in fields {
                let push = format!(
                    "fields.push((\"{n}\".to_string(), ::serde::Serialize::serialize_value(&self.{n})));",
                    n = f.name
                );
                match &f.skip_serializing_if {
                    Some(path) => {
                        body.push_str(&format!("if !{path}(&self.{}) {{ {push} }}\n", f.name));
                    }
                    None => {
                        body.push_str(&push);
                        body.push('\n');
                    }
                }
            }
            body.push_str("::serde::Value::Object(fields)");
            impl_serialize(name, &body)
        }
        Shape::TransparentNewtype { name } => {
            impl_serialize(name, "::serde::Serialize::serialize_value(&self.0)")
        }
        Shape::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    if v.has_payload {
                        format!(
                            "{name}::{vn}(inner) => ::serde::Value::Object(vec![\
                             (\"{vn}\".to_string(), ::serde::Serialize::serialize_value(inner))]),\n"
                        )
                    } else {
                        format!(
                            "{name}::{vn} => ::serde::Value::String(\"{vn}\".to_string()),\n"
                        )
                    }
                })
                .collect();
            impl_serialize(name, &format!("match self {{\n{arms}}}"))
        }
    };
    code.parse()
        .expect("derive(Serialize) generated invalid code")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let shape = parse_shape(input);
    let code = match &shape {
        Shape::NamedStruct { name, fields } => {
            let mut body = format!(
                "if value.as_object().is_none() {{\n\
                 return Err(::serde::Error::expected(\"object\", value));\n\
                 }}\n\
                 Ok({name} {{\n"
            );
            for f in fields {
                let fallback = if f.has_default || f.is_option {
                    "::core::default::Default::default()".to_string()
                } else {
                    format!(
                        "return Err(::serde::Error::missing_field(\"{name}\", \"{n}\"))",
                        n = f.name
                    )
                };
                body.push_str(&format!(
                    "{n}: match value.get_field(\"{n}\") {{\n\
                     Some(v) => ::serde::Deserialize::deserialize_value(v)?,\n\
                     None => {fallback},\n\
                     }},\n",
                    n = f.name
                ));
            }
            body.push_str("})");
            impl_deserialize(name, &body)
        }
        Shape::TransparentNewtype { name } => impl_deserialize(
            name,
            &format!("Ok({name}(::serde::Deserialize::deserialize_value(value)?))"),
        ),
        Shape::Enum { name, variants } => {
            let unit_arms: String = variants
                .iter()
                .filter(|v| !v.has_payload)
                .map(|v| format!("\"{n}\" => Ok({name}::{n}),\n", n = v.name))
                .collect();
            let newtype_arms: String = variants
                .iter()
                .filter(|v| v.has_payload)
                .map(|v| {
                    format!(
                        "\"{n}\" => Ok({name}::{n}(::serde::Deserialize::deserialize_value(v)?)),\n",
                        n = v.name
                    )
                })
                .collect();
            impl_deserialize(
                name,
                &format!(
                    "match value {{\n\
                     ::serde::Value::String(s) => match s.as_str() {{\n\
                     {unit_arms}\
                     other => Err(::serde::Error::unknown_variant(\"{name}\", other)),\n\
                     }},\n\
                     ::serde::Value::Object(fields) if fields.len() == 1 => {{\n\
                     let (tag, v) = &fields[0];\n\
                     match tag.as_str() {{\n\
                     {newtype_arms}\
                     other => Err(::serde::Error::unknown_variant(\"{name}\", other)),\n\
                     }}\n\
                     }},\n\
                     other => Err(::serde::Error::expected(\"string or single-entry object\", other)),\n\
                     }}"
                ),
            )
        }
    };
    code.parse()
        .expect("derive(Deserialize) generated invalid code")
}

fn impl_serialize(name: &str, body: &str) -> String {
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
         fn serialize_value(&self) -> ::serde::Value {{\n{body}\n}}\n\
         }}\n"
    )
}

fn impl_deserialize(name: &str, body: &str) -> String {
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
         fn deserialize_value(value: &::serde::Value) \
         -> ::core::result::Result<Self, ::serde::Error> {{\n{body}\n}}\n\
         }}\n"
    )
}

/// Parses the derive input into one of the supported [`Shape`]s.
fn parse_shape(input: TokenStream) -> Shape {
    let mut iter = input.into_iter().peekable();
    let mut container_attrs = SerdeAttrs::default();

    // Container attributes and visibility precede `struct` / `enum`.
    let kind = loop {
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(g)) = iter.next() {
                    merge_serde_attrs(&mut container_attrs, &g.stream());
                }
            }
            Some(TokenTree::Ident(id)) => {
                let word = id.to_string();
                if word == "struct" || word == "enum" {
                    break word;
                }
                // `pub` or other modifiers: skip (a following `(crate)`
                // group is consumed by the next iteration harmlessly).
            }
            Some(_) => {}
            None => panic!("derive input ended before `struct` or `enum` keyword"),
        }
    };

    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected type name after `{kind}`, found {other:?}"),
    };

    match iter.next() {
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
            panic!("derive stand-in does not support generic type `{name}`")
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            if kind == "struct" {
                Shape::NamedStruct {
                    name,
                    fields: parse_named_fields(g.stream()),
                }
            } else {
                Shape::Enum {
                    name,
                    variants: parse_variants(g.stream()),
                }
            }
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            if !container_attrs.transparent {
                panic!("tuple struct `{name}` must be #[serde(transparent)]");
            }
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            let commas = inner
                .iter()
                .filter(|t| matches!(t, TokenTree::Punct(p) if p.as_char() == ','))
                .count();
            if commas > 1 {
                panic!("transparent struct `{name}` must have exactly one field");
            }
            Shape::TransparentNewtype { name }
        }
        other => panic!("unsupported shape for `{name}`: {other:?}"),
    }
}

/// Collects `default` / `transparent` / `skip_serializing_if` facts out of
/// one attribute token group (the `[...]` part of `#[...]`).
fn merge_serde_attrs(attrs: &mut SerdeAttrs, bracket_stream: &TokenStream) {
    let mut iter = bracket_stream.clone().into_iter();
    match iter.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return, // #[doc = ...], #[derive(...)] etc.
    }
    let Some(TokenTree::Group(args)) = iter.next() else {
        return;
    };
    let mut items = args.stream().into_iter().peekable();
    while let Some(tree) = items.next() {
        let TokenTree::Ident(id) = tree else { continue };
        match id.to_string().as_str() {
            "transparent" => attrs.transparent = true,
            "default" => attrs.default = true,
            "skip_serializing_if" => {
                // Consume `=` then the quoted path literal.
                if let Some(TokenTree::Punct(p)) = items.next() {
                    if p.as_char() == '=' {
                        if let Some(TokenTree::Literal(lit)) = items.next() {
                            let raw = lit.to_string();
                            attrs.skip_serializing_if = Some(raw.trim_matches('"').to_string());
                        }
                    }
                }
            }
            other => panic!("unsupported serde attribute `{other}`"),
        }
    }
}

/// Parses `name: Type` fields (with attributes) out of a brace group.
fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let mut fields = Vec::new();
    let mut iter = stream.into_iter().peekable();
    loop {
        let mut attrs = SerdeAttrs::default();
        // Attributes and visibility before the field name.
        let field_name = loop {
            match iter.next() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    if let Some(TokenTree::Group(g)) = iter.next() {
                        merge_serde_attrs(&mut attrs, &g.stream());
                    }
                }
                Some(TokenTree::Ident(id)) => {
                    let word = id.to_string();
                    if word != "pub" {
                        break word;
                    }
                    // Skip an optional `(crate)` restriction group.
                    if matches!(iter.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                    {
                        iter.next();
                    }
                }
                Some(other) => panic!("unexpected token in field position: {other}"),
                None => return fields,
            }
        };
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("expected `:` after field `{field_name}`, found {other:?}"),
        }
        // Consume the type, tracking `<...>` nesting so commas inside
        // generics don't terminate the field early.
        let mut angle_depth = 0i32;
        let mut first_type_token: Option<String> = None;
        loop {
            match iter.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '<' => angle_depth += 1,
                Some(TokenTree::Punct(p)) if p.as_char() == '>' => angle_depth -= 1,
                Some(TokenTree::Punct(p)) if p.as_char() == ',' && angle_depth == 0 => {
                    iter.next();
                    break;
                }
                Some(TokenTree::Ident(id)) if first_type_token.is_none() => {
                    first_type_token = Some(id.to_string());
                }
                Some(_) => {}
                None => break,
            }
            iter.next();
        }
        fields.push(Field {
            name: field_name,
            has_default: attrs.default,
            skip_serializing_if: attrs.skip_serializing_if,
            is_option: first_type_token.as_deref() == Some("Option"),
        });
    }
}

/// Parses enum variants (unit or single-field tuple) out of an enum body.
fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut variants: Vec<Variant> = Vec::new();
    let mut iter = stream.into_iter();
    while let Some(tree) = iter.next() {
        match tree {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                iter.next(); // skip the attribute body
            }
            TokenTree::Punct(p) if p.as_char() == ',' => {}
            TokenTree::Ident(id) => variants.push(Variant {
                name: id.to_string(),
                has_payload: false,
            }),
            TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis => {
                let last = variants
                    .last_mut()
                    .unwrap_or_else(|| panic!("payload group without a variant name: {g}"));
                let commas = g
                    .stream()
                    .into_iter()
                    .filter(|t| matches!(t, TokenTree::Punct(p) if p.as_char() == ','))
                    .count();
                if commas > 1 {
                    panic!("multi-field enum variant `{}` is not supported", last.name);
                }
                last.has_payload = true;
            }
            TokenTree::Group(g) => {
                panic!("struct-style enum variant is not supported: {g}")
            }
            other => panic!("unexpected token in enum body: {other}"),
        }
    }
    variants
}
