//! Offline stand-in for `criterion`.
//!
//! Provides the structural API the workspace's benches use —
//! [`Criterion`], [`BenchmarkGroup`], [`BenchmarkId`], [`Bencher::iter`],
//! [`black_box`], [`criterion_group!`], [`criterion_main!`] — with a
//! deliberately simple measurement loop: a short warm-up followed by a
//! fixed number of timed samples, reporting the mean per-iteration time.
//! It has none of real criterion's statistics, but `cargo bench` runs and
//! prints comparable wall-clock numbers, and `cargo bench --no-run`
//! compiles the same targets.

use std::fmt::{self, Display};
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver handed to each target function.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Registers and immediately runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&id.to_string(), self.sample_size, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _criterion: self,
        }
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides how many timed samples each benchmark takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&format!("{}/{}", self.name, id), self.sample_size, f);
        self
    }

    /// Runs one parameterised benchmark inside the group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_benchmark(&format!("{}/{}", self.name, id), self.sample_size, |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group (kept for API compatibility; nothing to flush).
    pub fn finish(self) {}
}

/// Identifier combining a function name and a parameter value.
pub struct BenchmarkId {
    name: String,
    parameter: String,
}

impl BenchmarkId {
    /// An id like `"name/parameter"`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            name: name.into(),
            parameter: parameter.to_string(),
        }
    }

    /// An id carrying only a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            name: String::new(),
            parameter: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.name.is_empty() {
            write!(f, "{}", self.parameter)
        } else {
            write!(f, "{}/{}", self.name, self.parameter)
        }
    }
}

/// Timing harness passed to the benchmark closure.
pub struct Bencher {
    samples: usize,
    mean: Option<Duration>,
}

impl Bencher {
    /// Times `routine`, recording the mean duration per call.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: one untimed call (also primes lazy statics/caches).
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(routine());
        }
        self.mean = Some(start.elapsed() / self.samples as u32);
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(id: &str, samples: usize, mut f: F) {
    let mut bencher = Bencher {
        samples,
        mean: None,
    };
    f(&mut bencher);
    match bencher.mean {
        Some(mean) => println!("{id:<60} {mean:>12.2?}/iter ({samples} samples)"),
        None => println!("{id:<60} (no measurement taken)"),
    }
}

/// Declares a function that runs the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_records_a_mean() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
    }

    #[test]
    fn groups_run_parameterised_benches() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(5);
        group.bench_with_input(BenchmarkId::new("double", 21), &21u32, |b, &x| {
            b.iter(|| x * 2)
        });
        group.finish();
    }
}
