//! Transferability to another workflow format: compare module comparison
//! schemes on the Galaxy-like corpus, where annotations are sparse and
//! labels are tool-like (paper Section 5.3 / Fig. 12).
//!
//! Run with:
//! ```text
//! cargo run --release --example galaxy_transfer
//! ```

use wfsim::corpus::{generate_galaxy_corpus, GalaxyCorpusConfig};
use wfsim::repo::Repository;
use wfsim::sim::{ModuleComparisonScheme, SimilarityConfig, WorkflowSimilarity};

fn main() {
    let (corpus, meta) = generate_galaxy_corpus(&GalaxyCorpusConfig::small(60, 3));
    let repository = Repository::from_workflows(corpus);

    // Pick a seed workflow and one family variant plus one unrelated workflow.
    let ids: Vec<_> = repository.ids().into_iter().cloned().collect();
    let seed = repository.get(&ids[0]).unwrap();
    let seed_meta = meta.get(&seed.id).unwrap();
    let sibling = repository
        .iter()
        .find(|w| w.id != seed.id && meta.get(&w.id).map(|m| m.family) == Some(seed_meta.family))
        .expect("the generator always produces at least one variant per family");
    let stranger = repository
        .iter()
        .find(|w| meta.get(&w.id).map(|m| m.topic) != Some(seed_meta.topic))
        .expect("several topics exist");

    println!(
        "Galaxy corpus: {} workflows; comparing seed {} against variant {} and unrelated {}\n",
        repository.len(),
        seed.id,
        sibling.id,
        stranger.id
    );

    println!("{:<22} {:>10} {:>12}", "algorithm", "variant", "unrelated");
    println!("{}", "-".repeat(46));
    for scheme in [ModuleComparisonScheme::gw1(), ModuleComparisonScheme::gll()] {
        for base in [
            SimilarityConfig::module_sets_default(),
            SimilarityConfig::path_sets_default(),
        ] {
            let measure = WorkflowSimilarity::new(base.with_scheme(scheme.clone()));
            println!(
                "{:<22} {:>10.3} {:>12.3}",
                measure.name(),
                measure.similarity(seed, sibling),
                measure.similarity(seed, stranger)
            );
        }
    }
    let bag_of_words = WorkflowSimilarity::new(SimilarityConfig::bag_of_words());
    println!(
        "{:<22} {:>10.3} {:>12.3}",
        "BW",
        bag_of_words.similarity(seed, sibling),
        bag_of_words.similarity(seed, stranger)
    );
    println!("\nexpected shape (paper Fig. 12): structural measures separate variant from unrelated; BW is unreliable because Galaxy annotations are sparse");
}
