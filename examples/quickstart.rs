//! Quickstart: build two scientific workflows and compare them with every
//! measure of the framework.
//!
//! Run with:
//! ```text
//! cargo run --example quickstart
//! ```

use wfsim::model::{ModuleType, WorkflowBuilder};
use wfsim::sim::{Ensemble, SimilarityConfig, WorkflowSimilarity};

fn main() {
    // A workflow that retrieves a KEGG pathway and extracts its genes …
    let kegg_a = WorkflowBuilder::new("1189")
        .title("KEGG pathway analysis")
        .description("Retrieves a KEGG pathway and extracts the genes it contains")
        .tag("kegg")
        .tag("pathway")
        .module("get_pathway", ModuleType::WsdlService, |m| {
            m.service(
                "kegg.jp",
                "get_pathway_by_id",
                "http://soap.genome.jp/KEGG.wsdl",
            )
        })
        .module("split_gene_list", ModuleType::LocalOperation, |m| m)
        .module("extract_genes", ModuleType::BeanshellScript, |m| {
            m.script("for (entry : pathway) { genes.add(entry.id); }")
        })
        .link("get_pathway", "split_gene_list")
        .link("split_gene_list", "extract_genes")
        .build()
        .expect("valid workflow");

    // … and a near-duplicate uploaded by a different author.
    let kegg_b = WorkflowBuilder::new("2805")
        .title("Get Pathway-Genes by Entrez gene id")
        .description("Maps an Entrez gene id onto KEGG pathways and lists the pathway genes")
        .tag("kegg")
        .tag("entrez")
        .module("getPathway", ModuleType::WsdlService, |m| {
            m.service(
                "kegg.jp",
                "get_pathway_by_id",
                "http://soap.genome.jp/KEGG.wsdl",
            )
        })
        .module("extract_gene_ids", ModuleType::BeanshellScript, |m| {
            m.script("for (entry : pathway) { ids.add(entry.id); }")
        })
        .module("render_report", ModuleType::WsdlService, |m| {
            m.service(
                "kegg.jp",
                "color_pathway_by_objects",
                "http://soap.genome.jp/KEGG.wsdl",
            )
        })
        .link("getPathway", "extract_gene_ids")
        .link("extract_gene_ids", "render_report")
        .build()
        .expect("valid workflow");

    // An unrelated workflow for contrast.
    let weather = WorkflowBuilder::new("9999")
        .title("Weather station data aggregation")
        .tag("climate")
        .module("fetch_observations", ModuleType::RestService, |m| {
            m.service("noaa.gov", "observations", "http://noaa.gov/api")
        })
        .module("aggregate_daily_means", ModuleType::RShell, |m| {
            m.script("aggregate(obs)")
        })
        .link("fetch_observations", "aggregate_daily_means")
        .build()
        .expect("valid workflow");

    println!(
        "comparing workflow {} against {} and {}\n",
        kegg_a.id, kegg_b.id, weather.id
    );
    println!(
        "{:<16} {:>12} {:>12}",
        "algorithm", "kegg pair", "unrelated"
    );
    println!("{}", "-".repeat(42));
    for config in [
        SimilarityConfig::module_sets_default(),
        SimilarityConfig::best_module_sets(),
        SimilarityConfig::path_sets_default(),
        SimilarityConfig::best_path_sets(),
        SimilarityConfig::graph_edit_default(),
        SimilarityConfig::bag_of_words(),
        SimilarityConfig::bag_of_tags(),
    ] {
        let measure = WorkflowSimilarity::new(config);
        println!(
            "{:<16} {:>12.3} {:>12.3}",
            measure.name(),
            measure.similarity(&kegg_a, &kegg_b),
            measure.similarity(&kegg_a, &weather),
        );
    }
    let ensemble = Ensemble::bw_plus_module_sets();
    println!(
        "{:<16} {:>12.3} {:>12.3}",
        ensemble.name(),
        ensemble.similarity(&kegg_a, &kegg_b),
        ensemble.similarity(&kegg_a, &weather),
    );
}
