//! Duplicate detection: scan a (synthetic) repository for pairs of
//! functionally equivalent workflows — one of the repository-management use
//! cases motivating the paper.
//!
//! Run with:
//! ```text
//! cargo run --release --example duplicate_detection
//! ```

use wfsim::corpus::{generate_taverna_corpus, TavernaCorpusConfig};
use wfsim::repo::Repository;
use wfsim::sim::{SimilarityConfig, WorkflowSimilarity};

fn main() {
    // A small myExperiment-like corpus: families of re-uploaded variants.
    let (corpus, meta) = generate_taverna_corpus(&TavernaCorpusConfig::small(60, 7));
    let repository = Repository::from_workflows(corpus);
    let measure = WorkflowSimilarity::new(SimilarityConfig::best_module_sets());

    // Compare every pair once and report near-duplicates.
    let threshold = 0.85;
    let workflows: Vec<_> = repository.iter().collect();
    let mut duplicates = Vec::new();
    for (i, a) in workflows.iter().enumerate() {
        for b in workflows.iter().skip(i + 1) {
            let similarity = measure.similarity(a, b);
            if similarity >= threshold {
                duplicates.push((a.id.clone(), b.id.clone(), similarity));
            }
        }
    }
    duplicates.sort_by(|x, y| y.2.partial_cmp(&x.2).unwrap_or(std::cmp::Ordering::Equal));

    println!(
        "scanned {} workflows with {} — {} candidate duplicate pairs above {:.2}\n",
        repository.len(),
        measure.name(),
        duplicates.len(),
        threshold
    );
    println!(
        "{:<8} {:<8} {:>10}  same family (latent truth)?",
        "a", "b", "similarity"
    );
    println!("{}", "-".repeat(52));
    for (a, b, similarity) in duplicates.iter().take(15) {
        let same_family = match (meta.get(a), meta.get(b)) {
            (Some(ma), Some(mb)) => ma.family == mb.family,
            _ => false,
        };
        println!(
            "{:<8} {:<8} {:>10.3}  {}",
            a,
            b,
            similarity,
            if same_family { "yes" } else { "NO" }
        );
    }
    let correct = duplicates
        .iter()
        .filter(|(a, b, _)| {
            matches!((meta.get(a), meta.get(b)), (Some(x), Some(y)) if x.family == y.family)
        })
        .count();
    if !duplicates.is_empty() {
        println!(
            "\n{}/{} flagged pairs really are family variants",
            correct,
            duplicates.len()
        );
    }
}
