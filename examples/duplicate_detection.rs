//! Duplicate detection: scan a (synthetic) repository for pairs of
//! functionally equivalent workflows — one of the repository-management use
//! cases motivating the paper.
//!
//! Run with:
//! ```text
//! cargo run --release --example duplicate_detection
//! ```

use wfsim::cluster::{duplicate_pairs, PairwiseSimilarities};
use wfsim::corpus::{generate_taverna_corpus, TavernaCorpusConfig};
use wfsim::sim::{Corpus, SimilarityConfig};

fn main() {
    // A small myExperiment-like corpus: families of re-uploaded variants,
    // profiled once into a shared Corpus.
    let (workflows, meta) = generate_taverna_corpus(&TavernaCorpusConfig::small(60, 7));
    let corpus = Corpus::build(SimilarityConfig::best_module_sets(), workflows);

    // Compare every pair once (from cached profiles) and report
    // near-duplicates.
    let threshold = 0.85;
    let matrix = PairwiseSimilarities::compute_profiled_parallel(&corpus, 4);
    let duplicates: Vec<_> = duplicate_pairs(&matrix, threshold)
        .into_iter()
        .map(|pair| {
            (
                matrix.id(pair.first).clone(),
                matrix.id(pair.second).clone(),
                pair.similarity,
            )
        })
        .collect();

    println!(
        "scanned {} workflows with {} — {} candidate duplicate pairs above {:.2}\n",
        corpus.len(),
        corpus.measure_name(),
        duplicates.len(),
        threshold
    );
    println!(
        "{:<8} {:<8} {:>10}  same family (latent truth)?",
        "a", "b", "similarity"
    );
    println!("{}", "-".repeat(52));
    for (a, b, similarity) in duplicates.iter().take(15) {
        let same_family = match (meta.get(a), meta.get(b)) {
            (Some(ma), Some(mb)) => ma.family == mb.family,
            _ => false,
        };
        println!(
            "{:<8} {:<8} {:>10.3}  {}",
            a,
            b,
            similarity,
            if same_family { "yes" } else { "NO" }
        );
    }
    let correct = duplicates
        .iter()
        .filter(|(a, b, _)| {
            matches!((meta.get(a), meta.get(b)), (Some(x), Some(y)) if x.family == y.family)
        })
        .count();
    if !duplicates.is_empty() {
        println!(
            "\n{}/{} flagged pairs really are family variants",
            correct,
            duplicates.len()
        );
    }
}
