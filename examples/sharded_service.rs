//! The serving architecture end to end: partition a corpus into shards,
//! prove scatter-gather search equals the single-corpus engine, persist
//! and restore the sharded snapshot, then serve concurrent queries while
//! a churn thread uploads and deletes workflows.
//!
//! Run with:
//! ```text
//! cargo run --release --example sharded_service
//! ```

use wfsim::corpus::{generate_taverna_corpus, TavernaCorpusConfig};
use wfsim::model::WorkflowId;
use wfsim::sim::{Corpus, ShardPartition, SimilarityConfig};
use wfsim::{CorpusService, ShardedCorpus};

fn main() {
    let (workflows, _) = generate_taverna_corpus(&TavernaCorpusConfig::small(120, 11));
    let config = SimilarityConfig::best_module_sets();

    // Scatter-gather over 4 shards is bit-identical to one corpus.
    let single = Corpus::build(config.clone(), workflows.clone());
    let sharded = ShardedCorpus::build(config.clone(), 4, workflows.clone());
    let query = single.ids()[5].clone();
    let expected = single.top_k(&query, 5).expect("resident");
    let got = sharded.search(&query, 5).expect("resident");
    assert_eq!(got, expected);
    println!(
        "scatter-gather over {} shards ({} workflows) equals the single-corpus engine:",
        sharded.shard_count(),
        sharded.len()
    );
    for (rank, hit) in got.iter().enumerate() {
        println!("  {:<2} {:<10} {:.3}", rank + 1, hit.id, hit.score);
    }

    // Per-shard snapshots behind one manifest: a serving fleet restores
    // each shard independently and falls back to a rebuild on corruption.
    let dir = std::env::temp_dir().join("wfsim-example-shards");
    sharded.save(&dir).expect("sharded snapshot written");
    let (restored, origin) = ShardedCorpus::load_or_build(
        &dir,
        config.clone(),
        4,
        ShardPartition::HashId,
        workflows.clone(),
    );
    println!(
        "\nsharded snapshot: {} shards restored from {} (from snapshot: {})",
        restored.shard_count(),
        dir.display(),
        origin.is_snapshot()
    );
    let _ = std::fs::remove_dir_all(&dir);

    // The concurrent service: queries proceed while churn write-locks only
    // the owning shard.
    let service = CorpusService::new(restored).with_threads(4);
    let queries: Vec<WorkflowId> = single.ids().iter().step_by(10).cloned().collect();
    let victims: Vec<WorkflowId> = single
        .ids()
        .iter()
        .filter(|id| !queries.contains(id))
        .take(30)
        .cloned()
        .collect();
    let (served, churned) = std::thread::scope(|scope| {
        let service = &service;
        let churner = scope.spawn(|| {
            let mut ops = 0usize;
            for id in &victims {
                let removed = service.remove(id).expect("victim resident");
                service.add(removed); // replace in place: size stays stable
                ops += 2;
            }
            ops
        });
        let mut served = 0usize;
        for _ in 0..5 {
            served += service
                .search_batch(&queries, 5)
                .iter()
                .filter(|hits| hits.is_some())
                .count();
        }
        (served, churner.join().expect("churn thread panicked"))
    });
    println!(
        "\nservice: answered {served} queries concurrently with {churned} churn ops \
         across {} shards ({} workflows remain)",
        service.shard_count(),
        service.len()
    );
}
