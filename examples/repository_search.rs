//! Similarity search over a repository: retrieve the top-10 workflows most
//! similar to a query, comparing an annotation measure, a structural measure
//! and their ensemble — the paper's retrieval scenario (Section 5.2).
//!
//! Run with:
//! ```text
//! cargo run --release --example repository_search
//! ```

use wfsim::corpus::{generate_taverna_corpus, select_queries, TavernaCorpusConfig};
use wfsim::repo::{Repository, SearchEngine};
use wfsim::sim::{Ensemble, SimilarityConfig, WorkflowSimilarity};

fn main() {
    let (corpus, meta) = generate_taverna_corpus(&TavernaCorpusConfig::small(200, 11));
    let repository = Repository::from_workflows(corpus);
    let query_id = select_queries(&meta, 1, 4, 5)[0].clone();
    let query = repository.get(&query_id).expect("query exists").clone();

    println!(
        "query workflow {} — \"{}\"\n",
        query.id,
        query.annotations.title.as_deref().unwrap_or("(untitled)")
    );

    let bag_of_words = WorkflowSimilarity::new(SimilarityConfig::bag_of_words());
    let module_sets = WorkflowSimilarity::new(SimilarityConfig::best_module_sets());
    let ensemble = Ensemble::bw_plus_module_sets();

    type Scorer = Box<dyn Fn(&wfsim::model::Workflow, &wfsim::model::Workflow) -> f64 + Sync>;
    let named: Vec<(String, Scorer)> = vec![
        (
            "BW".to_string(),
            Box::new(move |a, b| bag_of_words.similarity(a, b)),
        ),
        (
            "MS_ip_te_pll".to_string(),
            Box::new(move |a, b| module_sets.similarity(a, b)),
        ),
        (
            ensemble.name(),
            Box::new(move |a, b| ensemble.similarity(a, b)),
        ),
    ];

    for (name, score) in named {
        let engine = SearchEngine::new(&repository, score).with_threads(8);
        let hits = engine.top_k_parallel(&query, 10);
        println!("top-10 by {name}:");
        println!(
            "{:<4} {:<8} {:>8}  relation to query (latent truth)",
            "rank", "id", "score"
        );
        for (rank, hit) in hits.iter().enumerate() {
            let relation = match (meta.get(&query.id), meta.get(&hit.id)) {
                (Some(q), Some(c)) if q.family == c.family => "same family",
                (Some(q), Some(c)) if q.topic == c.topic => "same topic",
                _ => "other topic",
            };
            println!(
                "{:<4} {:<8} {:>8.3}  {}",
                rank + 1,
                hit.id,
                hit.score,
                relation
            );
        }
        println!();
    }
}
