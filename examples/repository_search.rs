//! Similarity search over a repository: retrieve the top-10 workflows most
//! similar to a query, comparing an annotation measure, a structural measure
//! and their ensemble — the paper's retrieval scenario (Section 5.2).
//!
//! The single-measure engines run on a shared [`wfsim::sim::Corpus`]: the
//! workflows are profiled and indexed once, queries are answered through
//! upper-bound pruning, and the built corpus round-trips through a snapshot
//! (the serving-process startup path).  The ensemble, which has no profiled
//! form, uses the exhaustive scan engine.
//!
//! Run with:
//! ```text
//! cargo run --release --example repository_search
//! ```

use wfsim::corpus::{generate_taverna_corpus, select_queries, TavernaCorpusConfig};
use wfsim::repo::{Repository, SearchEngine, SearchHit};
use wfsim::sim::{Corpus, Ensemble, SimilarityConfig};

fn print_hits(
    name: &str,
    hits: &[SearchHit],
    query: &wfsim::model::WorkflowId,
    meta: &wfsim::corpus::CorpusMeta,
) {
    println!("top-10 by {name}:");
    println!(
        "{:<4} {:<8} {:>8}  relation to query (latent truth)",
        "rank", "id", "score"
    );
    for (rank, hit) in hits.iter().enumerate() {
        let relation = match (meta.get(query), meta.get(&hit.id)) {
            (Some(q), Some(c)) if q.family == c.family => "same family",
            (Some(q), Some(c)) if q.topic == c.topic => "same topic",
            _ => "other topic",
        };
        println!(
            "{:<4} {:<8} {:>8.3}  {}",
            rank + 1,
            hit.id,
            hit.score,
            relation
        );
    }
    println!();
}

fn main() {
    let (workflows, meta) = generate_taverna_corpus(&TavernaCorpusConfig::small(200, 11));
    let query_id = select_queries(&meta, 1, 4, 5)[0].clone();
    let query_title = workflows
        .iter()
        .find(|wf| wf.id == query_id)
        .and_then(|wf| wf.annotations.title.clone())
        .unwrap_or_else(|| "(untitled)".to_string());
    println!("query workflow {query_id} — \"{query_title}\"\n");

    // One corpus per single measure: profiles + inverted index built once,
    // every query answered with exact upper-bound pruning.
    for config in [
        SimilarityConfig::bag_of_words(),
        SimilarityConfig::best_module_sets(),
    ] {
        let corpus = Corpus::build(config, workflows.clone());
        let hits = corpus
            .top_k(&query_id, 10)
            .expect("query id is in the corpus");
        print_hits(&corpus.measure_name(), &hits, &query_id, &meta);
    }

    // Snapshot round-trip: a serving process would save the built corpus
    // once and start by deserializing it instead of re-profiling.
    let snapshot_path = std::env::temp_dir().join("wfsim-example-corpus.snap");
    let corpus = Corpus::build(SimilarityConfig::best_module_sets(), workflows.clone());
    corpus.save(&snapshot_path).expect("snapshot written");
    let (restored, origin) = Corpus::load_or_build(
        &snapshot_path,
        SimilarityConfig::best_module_sets(),
        workflows.clone(),
    );
    println!(
        "snapshot: reloaded {} profiled workflows from {} (from snapshot: {})\n",
        restored.len(),
        snapshot_path.display(),
        origin.is_snapshot()
    );
    let _ = std::fs::remove_file(&snapshot_path);

    // The ensemble has no profiled form: exhaustive parallel scan.
    let repository = Repository::from_workflows(workflows);
    let query = repository.get(&query_id).expect("query exists").clone();
    let ensemble = Ensemble::bw_plus_module_sets();
    let name = ensemble.name();
    let engine = SearchEngine::new(
        &repository,
        move |a: &wfsim::model::Workflow, b: &wfsim::model::Workflow| ensemble.similarity(a, b),
    )
    .with_threads(8);
    let hits = engine.top_k_parallel(&query, 10);
    print_hits(&name, &hits, &query_id, &meta);
}
