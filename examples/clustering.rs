//! Clustering a workflow repository into functional groups.
//!
//! The paper's introduction names "grouping of workflows into functional
//! clusters" and "detection of functionally equivalent workflows" as the
//! repository-management tasks that similarity measures enable.  This
//! example generates a small Taverna-like corpus, computes the pairwise
//! similarity matrix under the paper's best structural configuration,
//! clusters it hierarchically, reports the cluster quality against the
//! corpus' latent family structure, and lists near-duplicate pairs.
//!
//! Run with:
//! ```text
//! cargo run --example clustering
//! ```

use wfsim::cluster::{
    adjusted_rand_index, duplicate_pairs, hierarchical_clustering, kmedoids,
    normalized_mutual_information, purity, Linkage, PairwiseSimilarities,
};
use wfsim::corpus::{generate_taverna_corpus, TavernaCorpusConfig};
use wfsim::sim::{Corpus, SimilarityConfig};

fn main() {
    // A small corpus with known latent families (seed workflows plus
    // mutated variants).
    let (workflows, meta) = generate_taverna_corpus(&TavernaCorpusConfig::small(80, 7));
    let truth: Vec<usize> = workflows
        .iter()
        .map(|wf| {
            meta.get(&wf.id)
                .expect("generated workflow has metadata")
                .family
        })
        .collect();
    let families = {
        let mut f = truth.clone();
        f.sort_unstable();
        f.dedup();
        f.len()
    };
    println!(
        "corpus: {} workflows drawn from {} latent families",
        workflows.len(),
        families
    );

    // The paper's best structural configuration: Module Sets with
    // importance projection, type-equivalence preselection and
    // label-edit-distance module comparison.  Building a Corpus profiles
    // every workflow once; the O(n²) matrix is then filled from the cached
    // profiles instead of re-deriving features per pair.
    let corpus = Corpus::build(SimilarityConfig::best_module_sets(), workflows);
    println!("measure: {}", corpus.measure_name());

    // O(n²) pairwise comparisons, spread over four threads.
    let matrix = PairwiseSimilarities::compute_profiled_parallel(&corpus, 4);
    println!("mean pairwise similarity: {:.3}", matrix.mean_similarity());
    println!();

    // Agglomerative clustering, cut at the known family count.
    let dendrogram = hierarchical_clustering(&matrix, Linkage::Average);
    let clusters = dendrogram.cut_k(families);
    println!(
        "hierarchical clustering (average linkage, k = {families}): {} clusters",
        clusters.cluster_count()
    );
    println!(
        "  purity = {:.3}, adjusted Rand index = {:.3}, NMI = {:.3}",
        purity(&clusters, &truth),
        adjusted_rand_index(&clusters, &truth),
        normalized_mutual_information(&clusters, &truth)
    );

    // K-medoids gives every cluster a representative workflow.
    let pam = kmedoids(&matrix, families, 30);
    println!(
        "k-medoids: cost {:.2} after {} iterations; first medoids: {}",
        pam.cost,
        pam.iterations,
        pam.medoids
            .iter()
            .take(5)
            .map(|&m| matrix.id(m).as_str().to_string())
            .collect::<Vec<_>>()
            .join(", ")
    );
    println!();

    // Near-duplicate detection: pairs above a strict similarity threshold.
    let duplicates = duplicate_pairs(&matrix, 0.9);
    println!(
        "near-duplicate pairs (similarity >= 0.9): {}",
        duplicates.len()
    );
    for pair in duplicates.iter().take(5) {
        println!(
            "  {} ~ {} (similarity {:.3})",
            matrix.id(pair.first).as_str(),
            matrix.id(pair.second).as_str(),
            pair.similarity
        );
    }
}
