//! Ensemble ranking: reproduce, on a small scale, the paper's finding that
//! averaging an annotation measure with a tuned structural measure ranks
//! workflows closer to the expert consensus than either measure alone
//! (Section 5.1.6 / Fig. 9b).
//!
//! Run with:
//! ```text
//! cargo run --release --example ensemble_ranking
//! ```

use wfsim::corpus::{
    generate_taverna_corpus, select_candidates, select_queries, ExpertPanel, ExpertPanelConfig,
    TavernaCorpusConfig,
};
use wfsim::gold::{
    bioconsert_consensus, ranking_correctness_completeness, BioConsertConfig, Ranking,
};
use wfsim::repo::Repository;
use wfsim::sim::{Ensemble, SimilarityConfig, WorkflowSimilarity};

fn main() {
    // Corpus, queries, candidates and a simulated expert consensus.
    let (corpus, meta) = generate_taverna_corpus(&TavernaCorpusConfig::small(150, 21));
    let repository = Repository::from_workflows(corpus);
    let queries = select_queries(&meta, 8, 3, 1);
    let panel = ExpertPanel::new(ExpertPanelConfig::default());

    let bag_of_words = WorkflowSimilarity::new(SimilarityConfig::bag_of_words());
    let module_sets = WorkflowSimilarity::new(SimilarityConfig::best_module_sets());
    let ensemble = Ensemble::bw_plus_module_sets();

    let mut totals = [0.0f64; 3];
    println!(
        "{:<10} {:>8} {:>14} {:>16}",
        "query",
        "BW",
        "MS_ip_te_pll",
        &ensemble.name()
    );
    println!("{}", "-".repeat(52));
    for (qi, query_id) in queries.iter().enumerate() {
        let query = repository.get(query_id).expect("query exists");
        let candidates = select_candidates(&meta, query_id, 10, 100 + qi as u64);
        let pairs: Vec<_> = candidates
            .iter()
            .map(|c| (query_id.clone(), c.clone()))
            .collect();
        let ratings = panel.rate_pairs(&meta, &pairs);
        let expert_rankings: Vec<Ranking> = ratings
            .expert_rankings(query_id.as_str())
            .into_iter()
            .map(|(_, r)| r)
            .collect();
        let consensus = bioconsert_consensus(&expert_rankings, &BioConsertConfig::default());

        let rank_with =
            |score: &dyn Fn(&wfsim::model::Workflow, &wfsim::model::Workflow) -> f64| {
                let scored: Vec<(String, f64)> = candidates
                    .iter()
                    .filter_map(|c| {
                        repository
                            .get(c)
                            .map(|wf| (c.as_str().to_string(), score(query, wf)))
                    })
                    .collect();
                Ranking::from_scores(scored, 1e-9)
            };

        let correctness = [
            ranking_correctness_completeness(
                &rank_with(&|a, b| bag_of_words.similarity(a, b)),
                &consensus,
            )
            .correctness,
            ranking_correctness_completeness(
                &rank_with(&|a, b| module_sets.similarity(a, b)),
                &consensus,
            )
            .correctness,
            ranking_correctness_completeness(
                &rank_with(&|a, b| ensemble.similarity(a, b)),
                &consensus,
            )
            .correctness,
        ];
        for (t, c) in totals.iter_mut().zip(correctness.iter()) {
            *t += c;
        }
        println!(
            "{:<10} {:>8.3} {:>14.3} {:>16.3}",
            query_id.as_str(),
            correctness[0],
            correctness[1],
            correctness[2]
        );
    }
    println!("{}", "-".repeat(52));
    println!(
        "{:<10} {:>8.3} {:>14.3} {:>16.3}",
        "mean",
        totals[0] / queries.len() as f64,
        totals[1] / queries.len() as f64,
        totals[2] / queries.len() as f64
    );
    println!("\nexpected shape (paper Fig. 9b): the ensemble's mean correctness is at least as high as either member's");
}
