//! Ranking correctness and completeness.
//!
//! Section 4.3 of the paper adopts the measures of Cheng et al. \[8\]:
//!
//! * *correctness* `= (#concordant − #discordant) / (#concordant + #discordant)`
//!   over all item pairs that are untied in both rankings,
//! * *completeness* `= (#concordant + #discordant) / #pairs ranked by experts`,
//!   penalising pairs the algorithm ties (or fails to rank) although the
//!   expert consensus distinguishes them.

use crate::ranking::Ranking;

/// The outcome of comparing one algorithmic ranking against one expert
/// (consensus) ranking.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RankingQuality {
    /// Number of concordant pairs.
    pub concordant: usize,
    /// Number of discordant pairs.
    pub discordant: usize,
    /// Number of pairs the expert ranking distinguishes (the completeness
    /// denominator).
    pub expert_pairs: usize,
    /// Ranking correctness in `[-1, 1]`.
    pub correctness: f64,
    /// Ranking completeness in `[0, 1]`.
    pub completeness: f64,
}

/// Compares an algorithm's ranking against the expert (consensus) ranking.
///
/// Only items ranked by the expert ranking are considered.  Pairs tied in
/// the expert ranking never count; pairs untied in the expert ranking but
/// tied in (or missing from) the algorithmic ranking count against
/// completeness but not against correctness — exactly the behaviour the
/// paper describes for the annotation measures that tie workflows or cannot
/// rank them for lack of tags.
pub fn ranking_correctness_completeness(algorithm: &Ranking, expert: &Ranking) -> RankingQuality {
    let pos_e = expert.position_map();
    let pos_a = algorithm.position_map();
    let items: Vec<&str> = pos_e.keys().copied().collect();

    let mut concordant = 0usize;
    let mut discordant = 0usize;
    let mut expert_pairs = 0usize;

    for (i, &x) in items.iter().enumerate() {
        for &y in &items[i + 1..] {
            let (ex, ey) = (pos_e[x], pos_e[y]);
            if ex == ey {
                continue; // tied by the experts: never counts
            }
            expert_pairs += 1;
            let (Some(&ax), Some(&ay)) = (pos_a.get(x), pos_a.get(y)) else {
                continue; // not ranked by the algorithm: completeness penalty only
            };
            if ax == ay {
                continue; // tied by the algorithm: completeness penalty only
            }
            if (ex < ey) == (ax < ay) {
                concordant += 1;
            } else {
                discordant += 1;
            }
        }
    }

    let compared = concordant + discordant;
    let correctness = if compared == 0 {
        0.0
    } else {
        (concordant as f64 - discordant as f64) / compared as f64
    };
    let completeness = if expert_pairs == 0 {
        1.0
    } else {
        compared as f64 / expert_pairs as f64
    };
    RankingQuality {
        concordant,
        discordant,
        expert_pairs,
        correctness,
        completeness,
    }
}

/// Summary statistics over the per-query qualities of one algorithm — what
/// the bar charts of Figures 4–9 and 12 plot (mean correctness, its standard
/// deviation, and mean completeness).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QualitySummary {
    /// Number of queries aggregated.
    pub queries: usize,
    /// Mean ranking correctness.
    pub mean_correctness: f64,
    /// Sample standard deviation of the correctness values.
    pub stddev_correctness: f64,
    /// Mean ranking completeness.
    pub mean_completeness: f64,
}

impl QualitySummary {
    /// Aggregates per-query qualities.  Returns `None` for an empty slice.
    pub fn of(qualities: &[RankingQuality]) -> Option<QualitySummary> {
        if qualities.is_empty() {
            return None;
        }
        let n = qualities.len() as f64;
        let mean_correctness = qualities.iter().map(|q| q.correctness).sum::<f64>() / n;
        let mean_completeness = qualities.iter().map(|q| q.completeness).sum::<f64>() / n;
        let variance = if qualities.len() > 1 {
            qualities
                .iter()
                .map(|q| (q.correctness - mean_correctness).powi(2))
                .sum::<f64>()
                / (n - 1.0)
        } else {
            0.0
        };
        Some(QualitySummary {
            queries: qualities.len(),
            mean_correctness,
            stddev_correctness: variance.sqrt(),
            mean_completeness,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strict(items: &[&str]) -> Ranking {
        Ranking::from_buckets(items.iter().map(|i| vec![*i]))
    }

    #[test]
    fn perfect_agreement() {
        let e = strict(&["a", "b", "c", "d"]);
        let q = ranking_correctness_completeness(&e, &e);
        assert_eq!(q.correctness, 1.0);
        assert_eq!(q.completeness, 1.0);
        assert_eq!(q.concordant, 6);
        assert_eq!(q.discordant, 0);
        assert_eq!(q.expert_pairs, 6);
    }

    #[test]
    fn complete_reversal_gives_minus_one() {
        let e = strict(&["a", "b", "c"]);
        let a = strict(&["c", "b", "a"]);
        let q = ranking_correctness_completeness(&a, &e);
        assert_eq!(q.correctness, -1.0);
        assert_eq!(q.completeness, 1.0);
    }

    #[test]
    fn algorithm_ties_reduce_completeness_not_correctness() {
        let e = strict(&["a", "b", "c"]);
        let a = Ranking::from_buckets(vec![vec!["a"], vec!["b", "c"]]);
        let q = ranking_correctness_completeness(&a, &e);
        // Pairs (a,b) and (a,c) are concordant; (b,c) is tied by the
        // algorithm and only hurts completeness.
        assert_eq!(q.concordant, 2);
        assert_eq!(q.discordant, 0);
        assert_eq!(q.correctness, 1.0);
        assert!((q.completeness - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn expert_ties_do_not_count_at_all() {
        let e = Ranking::from_buckets(vec![vec!["a", "b"], vec!["c"]]);
        let a = strict(&["b", "a", "c"]);
        let q = ranking_correctness_completeness(&a, &e);
        // Only (a,c) and (b,c) are expert-distinguished.
        assert_eq!(q.expert_pairs, 2);
        assert_eq!(q.concordant, 2);
        assert_eq!(q.correctness, 1.0);
        assert_eq!(q.completeness, 1.0);
    }

    #[test]
    fn items_missing_from_algorithm_hurt_completeness() {
        let e = strict(&["a", "b", "c"]);
        let a = strict(&["a", "b"]); // never ranked c
        let q = ranking_correctness_completeness(&a, &e);
        assert_eq!(q.expert_pairs, 3);
        assert_eq!(q.concordant, 1);
        assert_eq!(q.correctness, 1.0);
        assert!((q.completeness - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn empty_rankings_are_neutral() {
        let q = ranking_correctness_completeness(&Ranking::new(), &Ranking::new());
        assert_eq!(q.correctness, 0.0);
        assert_eq!(q.completeness, 1.0);
        assert_eq!(q.expert_pairs, 0);
    }

    #[test]
    fn mixed_case_matches_hand_computation() {
        let e = strict(&["a", "b", "c", "d"]);
        let a = strict(&["b", "a", "c", "d"]);
        let q = ranking_correctness_completeness(&a, &e);
        // 6 pairs, 5 concordant, 1 discordant.
        assert_eq!(q.concordant, 5);
        assert_eq!(q.discordant, 1);
        assert!((q.correctness - 4.0 / 6.0).abs() < 1e-9);
        assert_eq!(q.completeness, 1.0);
    }

    #[test]
    fn summary_aggregates_mean_and_stddev() {
        let e = strict(&["a", "b", "c"]);
        let perfect = ranking_correctness_completeness(&e, &e);
        let reversed = ranking_correctness_completeness(&strict(&["c", "b", "a"]), &e);
        let summary = QualitySummary::of(&[perfect, reversed]).unwrap();
        assert_eq!(summary.queries, 2);
        assert!((summary.mean_correctness - 0.0).abs() < 1e-9);
        assert!((summary.stddev_correctness - std::f64::consts::SQRT_2).abs() < 1e-9);
        assert_eq!(summary.mean_completeness, 1.0);
        assert!(QualitySummary::of(&[]).is_none());
    }
}
