//! BioConsert consensus (median) ranking.
//!
//! "The individual experts' rankings were aggregated into consensus rankings
//! using the BioConsert algorithm, extended to allow incomplete rankings
//! with unsure ratings" (Section 4.2, citing Cohen-Boulakia, Denise & Hamel
//! \[9\]).  BioConsert is a local-search heuristic for the median-ranking
//! problem under the generalized Kendall tau distance with ties:
//!
//! 1. every input ranking (completed with the missing items in a trailing
//!    tie bucket) is used as a starting point, plus the all-tied ranking;
//! 2. from each start, two kinds of moves are applied greedily until a local
//!    optimum is reached: *changing* an item to another existing bucket, and
//!    *inserting* an item as a new singleton bucket at any position;
//! 3. the best local optimum over all starts is returned.

use std::collections::BTreeSet;

use crate::kendall::{total_distance, KendallConfig};
use crate::ranking::Ranking;

/// Configuration of the BioConsert consensus search.
#[derive(Debug, Clone, PartialEq)]
pub struct BioConsertConfig {
    /// The Kendall distance parameters (tie penalty).
    pub kendall: KendallConfig,
    /// Upper bound on full local-search sweeps per starting point; a
    /// safeguard against pathological cycling (which cannot happen with
    /// strictly improving moves, but keeps worst-case time predictable).
    pub max_sweeps: usize,
}

impl Default for BioConsertConfig {
    fn default() -> Self {
        BioConsertConfig {
            kendall: KendallConfig::default(),
            max_sweeps: 50,
        }
    }
}

/// Computes a consensus ranking of the given input rankings.
///
/// The universe of the consensus is the union of all items appearing in any
/// input ranking; inputs need not rank every item.  Returns an empty ranking
/// if no input ranks anything.
pub fn bioconsert_consensus(inputs: &[Ranking], config: &BioConsertConfig) -> Ranking {
    let universe: BTreeSet<String> = inputs
        .iter()
        .flat_map(|r| r.items().into_iter().map(str::to_string))
        .collect();
    if universe.is_empty() {
        return Ranking::new();
    }
    let universe: Vec<String> = universe.into_iter().collect();

    // Starting points: each unified input ranking plus the all-tied ranking.
    let mut starts: Vec<Ranking> = inputs
        .iter()
        .filter(|r| !r.is_empty())
        .map(|r| unify(r, &universe))
        .collect();
    starts.push(Ranking::from_buckets(vec![universe.clone()]));

    let mut best: Option<(f64, Ranking)> = None;
    for start in starts {
        let optimised = local_search(start, inputs, config);
        let d = total_distance(&optimised, inputs, &config.kendall);
        match &best {
            Some((bd, _)) if *bd <= d => {}
            _ => best = Some((d, optimised)),
        }
    }
    best.map(|(_, r)| r).unwrap_or_default()
}

/// Extends a ranking to the whole universe by appending the missing items as
/// one trailing tie bucket.
fn unify(r: &Ranking, universe: &[String]) -> Ranking {
    let mut out = r.clone();
    let missing: Vec<String> = universe
        .iter()
        .filter(|i| !r.contains(i))
        .cloned()
        .collect();
    out.push_bucket(missing);
    out
}

/// Greedy local search: repeatedly applies the best improving change/insert
/// move until none exists.
fn local_search(start: Ranking, inputs: &[Ranking], config: &BioConsertConfig) -> Ranking {
    let mut current = start;
    let mut current_cost = total_distance(&current, inputs, &config.kendall);
    for _ in 0..config.max_sweeps {
        let mut improved = false;
        let items: Vec<String> = current.items().into_iter().map(str::to_string).collect();
        for item in &items {
            let (best_cost, best_ranking) = best_move_for(item, &current, inputs, config);
            if best_cost + 1e-12 < current_cost {
                current = best_ranking;
                current_cost = best_cost;
                improved = true;
            }
        }
        if !improved {
            break;
        }
    }
    current
}

/// Evaluates every change/insert move for one item and returns the cheapest
/// resulting ranking (possibly the unchanged one).
fn best_move_for(
    item: &str,
    current: &Ranking,
    inputs: &[Ranking],
    config: &BioConsertConfig,
) -> (f64, Ranking) {
    let mut best_cost = total_distance(current, inputs, &config.kendall);
    let mut best = current.clone();

    // Remove the item from its bucket.
    let mut buckets: Vec<Vec<String>> = current.buckets().to_vec();
    let from = current.position(item).expect("item is ranked");
    buckets[from].retain(|x| x != item);
    let stripped: Vec<Vec<String>> = buckets.into_iter().filter(|b| !b.is_empty()).collect();

    // Move into every existing bucket ("change" move).
    for target in 0..stripped.len() {
        let mut candidate = stripped.clone();
        candidate[target].push(item.to_string());
        let ranking = Ranking::from_buckets(candidate);
        let cost = total_distance(&ranking, inputs, &config.kendall);
        if cost < best_cost {
            best_cost = cost;
            best = ranking;
        }
    }
    // Insert as a new singleton bucket at every position ("insert" move).
    for pos in 0..=stripped.len() {
        let mut candidate = stripped.clone();
        candidate.insert(pos, vec![item.to_string()]);
        let ranking = Ranking::from_buckets(candidate);
        let cost = total_distance(&ranking, inputs, &config.kendall);
        if cost < best_cost {
            best_cost = cost;
            best = ranking;
        }
    }
    (best_cost, best)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strict(items: &[&str]) -> Ranking {
        Ranking::from_buckets(items.iter().map(|i| vec![*i]))
    }

    #[test]
    fn empty_input_yields_empty_consensus() {
        assert!(bioconsert_consensus(&[], &BioConsertConfig::default()).is_empty());
        assert!(bioconsert_consensus(&[Ranking::new()], &BioConsertConfig::default()).is_empty());
    }

    #[test]
    fn consensus_of_identical_rankings_is_that_ranking() {
        let r = strict(&["a", "b", "c"]);
        let consensus = bioconsert_consensus(
            &[r.clone(), r.clone(), r.clone()],
            &BioConsertConfig::default(),
        );
        assert_eq!(consensus, r);
    }

    #[test]
    fn majority_order_wins() {
        let inputs = vec![
            strict(&["a", "b", "c"]),
            strict(&["a", "b", "c"]),
            strict(&["c", "a", "b"]),
        ];
        let consensus = bioconsert_consensus(&inputs, &BioConsertConfig::default());
        // "a before b" holds in all three inputs; the majority also puts a
        // before c and b before c.
        let pos = consensus.position_map();
        assert!(pos["a"] <= pos["b"]);
        assert!(pos["a"] <= pos["c"]);
    }

    #[test]
    fn consensus_covers_the_whole_universe() {
        let inputs = vec![strict(&["a", "b"]), strict(&["c", "d"])];
        let consensus = bioconsert_consensus(&inputs, &BioConsertConfig::default());
        for item in ["a", "b", "c", "d"] {
            assert!(consensus.contains(item), "{item} missing from consensus");
        }
    }

    #[test]
    fn incomplete_rankings_do_not_drag_unknown_items_down() {
        // Three experts rank {a,b}; a fourth only ranked c (top of its own
        // ranking).  c must still appear in the consensus.
        let inputs = vec![
            strict(&["a", "b"]),
            strict(&["a", "b"]),
            strict(&["b", "a"]),
            strict(&["c"]),
        ];
        let consensus = bioconsert_consensus(&inputs, &BioConsertConfig::default());
        assert!(consensus.contains("c"));
        let pos = consensus.position_map();
        assert!(pos["a"] <= pos["b"], "majority prefers a over b");
    }

    #[test]
    fn consensus_cost_is_no_worse_than_any_input() {
        let inputs = vec![
            strict(&["a", "b", "c", "d"]),
            strict(&["b", "a", "d", "c"]),
            strict(&["a", "c", "b", "d"]),
            Ranking::from_buckets(vec![vec!["a", "b"], vec!["c", "d"]]),
        ];
        let config = BioConsertConfig::default();
        let consensus = bioconsert_consensus(&inputs, &config);
        let consensus_cost = total_distance(&consensus, &inputs, &config.kendall);
        for input in &inputs {
            let unified = unify(input, &["a".into(), "b".into(), "c".into(), "d".into()]);
            let input_cost = total_distance(&unified, &inputs, &config.kendall);
            assert!(
                consensus_cost <= input_cost + 1e-9,
                "consensus ({consensus_cost}) worse than input ({input_cost})"
            );
        }
    }

    #[test]
    fn ties_survive_when_inputs_disagree_symmetrically() {
        // Two experts exactly disagree; tying the two items is optimal
        // (cost 0.5 + 0.5 = 1.0, either strict order costs 1.0 as well, so
        // we only check the consensus is no worse).
        let inputs = vec![strict(&["a", "b"]), strict(&["b", "a"])];
        let config = BioConsertConfig::default();
        let consensus = bioconsert_consensus(&inputs, &config);
        assert!(total_distance(&consensus, &inputs, &config.kendall) <= 1.0 + 1e-9);
    }
}
