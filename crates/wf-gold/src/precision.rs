//! Retrieval precision at k.
//!
//! The retrieval experiment (Section 5.2) evaluates the top-10 search
//! results of each algorithm with `P@k = (1/k) · Σ rel(r_i)` where the
//! relevance of a result is derived from the median expert rating and one of
//! three thresholds: *related*, *similar* or *very similar* (Figures 10 and
//! 11 show one panel per threshold).

use crate::likert::LikertRating;

/// The relevance thresholds of Figures 10 and 11.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RelevanceThreshold {
    /// A result is relevant if rated at least *related*.
    Related,
    /// A result is relevant if rated at least *similar*.
    Similar,
    /// A result is relevant only if rated *very similar*.
    VerySimilar,
}

impl RelevanceThreshold {
    /// All thresholds in increasing strictness, as iterated by the figures.
    pub const ALL: [RelevanceThreshold; 3] = [
        RelevanceThreshold::Related,
        RelevanceThreshold::Similar,
        RelevanceThreshold::VerySimilar,
    ];

    /// True if a median rating meets this threshold.  Unsure / missing
    /// ratings are never relevant.
    pub fn is_relevant(self, rating: Option<LikertRating>) -> bool {
        let Some(value) = rating.and_then(|r| r.value()) else {
            return false;
        };
        let needed = match self {
            RelevanceThreshold::Related => 1,
            RelevanceThreshold::Similar => 2,
            RelevanceThreshold::VerySimilar => 3,
        };
        value >= needed
    }

    /// The label used in the figure captions.
    pub fn label(self) -> &'static str {
        match self {
            RelevanceThreshold::Related => ">=related",
            RelevanceThreshold::Similar => ">=similar",
            RelevanceThreshold::VerySimilar => ">=very_similar",
        }
    }
}

/// Precision at `k` of a ranked result list under a relevance predicate.
///
/// Results beyond the end of the list count as non-relevant (an algorithm
/// that returns fewer than `k` results is penalised accordingly).  `k` must
/// be at least 1.
pub fn precision_at_k<T>(results: &[T], mut is_relevant: impl FnMut(&T) -> bool, k: usize) -> f64 {
    assert!(k >= 1, "precision@k requires k >= 1");
    let relevant = results.iter().take(k).filter(|r| is_relevant(r)).count();
    relevant as f64 / k as f64
}

/// The precision curve `P@1 … P@max_k` of one result list.
pub fn precision_curve<T>(
    results: &[T],
    is_relevant: impl FnMut(&T) -> bool,
    max_k: usize,
) -> Vec<f64> {
    let flags: Vec<bool> = results.iter().map(is_relevant).collect();
    let mut curve = Vec::with_capacity(max_k);
    let mut hits = 0usize;
    for k in 1..=max_k {
        if k <= flags.len() && flags[k - 1] {
            hits += 1;
        }
        curve.push(hits as f64 / k as f64);
    }
    curve
}

/// The mean precision curve over several queries (the "Workflow: mean"
/// aggregation in the figure captions).  All curves must have equal length.
/// Returns an empty vector when no curves are given.
pub fn mean_precision_at_k(curves: &[Vec<f64>]) -> Vec<f64> {
    let Some(first) = curves.first() else {
        return Vec::new();
    };
    let len = first.len();
    assert!(
        curves.iter().all(|c| c.len() == len),
        "all precision curves must cover the same k range"
    );
    (0..len)
        .map(|i| curves.iter().map(|c| c[i]).sum::<f64>() / curves.len() as f64)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thresholds_order_by_strictness() {
        use LikertRating::*;
        let related = Some(Related);
        let similar = Some(Similar);
        let very = Some(VerySimilar);
        let dissimilar = Some(Dissimilar);

        assert!(RelevanceThreshold::Related.is_relevant(related));
        assert!(RelevanceThreshold::Related.is_relevant(very));
        assert!(!RelevanceThreshold::Related.is_relevant(dissimilar));

        assert!(!RelevanceThreshold::Similar.is_relevant(related));
        assert!(RelevanceThreshold::Similar.is_relevant(similar));

        assert!(!RelevanceThreshold::VerySimilar.is_relevant(similar));
        assert!(RelevanceThreshold::VerySimilar.is_relevant(very));

        assert!(!RelevanceThreshold::Related.is_relevant(Some(Unsure)));
        assert!(!RelevanceThreshold::Related.is_relevant(None));
    }

    #[test]
    fn labels_match_figure_captions() {
        assert_eq!(RelevanceThreshold::Related.label(), ">=related");
        assert_eq!(RelevanceThreshold::VerySimilar.label(), ">=very_similar");
        assert_eq!(RelevanceThreshold::ALL.len(), 3);
    }

    #[test]
    fn precision_at_k_basics() {
        let results = ["hit", "miss", "hit", "miss"];
        let relevant = |r: &&str| *r == "hit";
        assert_eq!(precision_at_k(&results, relevant, 1), 1.0);
        assert_eq!(precision_at_k(&results, relevant, 2), 0.5);
        assert_eq!(precision_at_k(&results, relevant, 4), 0.5);
        // Short lists are padded with non-relevant results.
        assert_eq!(precision_at_k(&results, relevant, 8), 0.25);
    }

    #[test]
    #[should_panic(expected = "k >= 1")]
    fn precision_at_zero_panics() {
        precision_at_k(&["x"], |_| true, 0);
    }

    #[test]
    fn curve_is_prefix_consistent() {
        let results = ["hit", "hit", "miss", "hit"];
        let curve = precision_curve(&results, |r| *r == "hit", 5);
        assert_eq!(curve.len(), 5);
        assert_eq!(curve[0], 1.0);
        assert_eq!(curve[1], 1.0);
        assert!((curve[2] - 2.0 / 3.0).abs() < 1e-9);
        assert_eq!(curve[3], 0.75);
        assert_eq!(curve[4], 0.6);
        for (k, p) in curve.iter().enumerate() {
            assert_eq!(
                *p,
                precision_at_k(&results, |r| *r == "hit", k + 1),
                "curve and point computation agree at k={}",
                k + 1
            );
        }
    }

    #[test]
    fn mean_curve_averages_pointwise() {
        let a = vec![1.0, 0.5];
        let b = vec![0.0, 0.5];
        assert_eq!(mean_precision_at_k(&[a, b]), vec![0.5, 0.5]);
        assert!(mean_precision_at_k(&[]).is_empty());
    }

    #[test]
    #[should_panic(expected = "same k range")]
    fn mean_curve_rejects_ragged_input() {
        mean_precision_at_k(&[vec![1.0], vec![1.0, 0.5]]);
    }
}
