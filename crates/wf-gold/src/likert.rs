//! The Likert rating scale used by the expert study.
//!
//! "The ratings were to be given along a four step Likert scale with the
//! options *very similar*, *similar*, *related*, and *dissimilar* plus an
//! additional option *unsure*" (Section 4.2).  Unsure ratings are excluded
//! from all aggregations.

use std::fmt;

use serde::{Deserialize, Serialize};

/// One expert rating of a workflow pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum LikertRating {
    /// The pair is dissimilar (numeric value 0).
    Dissimilar,
    /// The pair is related (numeric value 1).
    Related,
    /// The pair is similar (numeric value 2).
    Similar,
    /// The pair is very similar (numeric value 3).
    VerySimilar,
    /// The expert was unsure; excluded from aggregation.
    Unsure,
}

impl LikertRating {
    /// The numeric value of the rating (3 = very similar … 0 = dissimilar),
    /// or `None` for unsure.
    pub fn value(self) -> Option<u8> {
        match self {
            LikertRating::VerySimilar => Some(3),
            LikertRating::Similar => Some(2),
            LikertRating::Related => Some(1),
            LikertRating::Dissimilar => Some(0),
            LikertRating::Unsure => None,
        }
    }

    /// Builds a rating from a numeric value (values > 3 clamp to very
    /// similar).
    pub fn from_value(value: u8) -> LikertRating {
        match value {
            0 => LikertRating::Dissimilar,
            1 => LikertRating::Related,
            2 => LikertRating::Similar,
            _ => LikertRating::VerySimilar,
        }
    }

    /// True unless the rating is *unsure*.
    pub fn is_decided(self) -> bool {
        !matches!(self, LikertRating::Unsure)
    }

    /// A stable lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            LikertRating::VerySimilar => "very_similar",
            LikertRating::Similar => "similar",
            LikertRating::Related => "related",
            LikertRating::Dissimilar => "dissimilar",
            LikertRating::Unsure => "unsure",
        }
    }
}

impl fmt::Display for LikertRating {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The median of a set of ratings, ignoring *unsure* votes.
///
/// The paper aggregates "different experts' opinions … as the median rating
/// for each pair of query and result workflow" (Section 4.2).  With an even
/// number of decided votes the lower median is taken (the conservative
/// choice: a pair needs a majority at or above a level to reach it).
/// Returns `None` when no decided rating exists.
pub fn median_rating(ratings: &[LikertRating]) -> Option<LikertRating> {
    let mut values: Vec<u8> = ratings.iter().filter_map(|r| r.value()).collect();
    if values.is_empty() {
        return None;
    }
    values.sort_unstable();
    let mid = (values.len() - 1) / 2;
    Some(LikertRating::from_value(values[mid]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_and_round_trip() {
        assert_eq!(LikertRating::VerySimilar.value(), Some(3));
        assert_eq!(LikertRating::Dissimilar.value(), Some(0));
        assert_eq!(LikertRating::Unsure.value(), None);
        for v in 0..=3 {
            assert_eq!(LikertRating::from_value(v).value(), Some(v));
        }
        assert_eq!(LikertRating::from_value(17), LikertRating::VerySimilar);
    }

    #[test]
    fn decided_and_names() {
        assert!(LikertRating::Related.is_decided());
        assert!(!LikertRating::Unsure.is_decided());
        assert_eq!(LikertRating::VerySimilar.to_string(), "very_similar");
    }

    #[test]
    fn median_of_odd_count() {
        let r = [
            LikertRating::Dissimilar,
            LikertRating::Similar,
            LikertRating::VerySimilar,
        ];
        assert_eq!(median_rating(&r), Some(LikertRating::Similar));
    }

    #[test]
    fn median_of_even_count_takes_lower_median() {
        let r = [LikertRating::Similar, LikertRating::VerySimilar];
        assert_eq!(median_rating(&r), Some(LikertRating::Similar));
    }

    #[test]
    fn unsure_votes_are_ignored() {
        let r = [
            LikertRating::Unsure,
            LikertRating::Related,
            LikertRating::Unsure,
        ];
        assert_eq!(median_rating(&r), Some(LikertRating::Related));
        assert_eq!(median_rating(&[LikertRating::Unsure]), None);
        assert_eq!(median_rating(&[]), None);
    }

    #[test]
    fn ordering_follows_similarity_strength() {
        assert!(LikertRating::Dissimilar < LikertRating::Related);
        assert!(LikertRating::Related < LikertRating::Similar);
        assert!(LikertRating::Similar < LikertRating::VerySimilar);
    }
}
