//! # wf-gold — gold-standard machinery and evaluation metrics
//!
//! The paper evaluates similarity algorithms against an expert-generated
//! gold standard (Section 4).  This crate implements every piece of that
//! evaluation pipeline:
//!
//! * [`likert`] — the four-step Likert scale (*very similar*, *similar*,
//!   *related*, *dissimilar*) plus the *unsure* option, and median
//!   aggregation of ratings.
//! * [`ratings`] — storage of per-expert ratings for (query, candidate)
//!   workflow pairs and their aggregation.
//! * [`ranking`] — rankings with ties (and possibly missing elements), the
//!   common currency of the evaluation: expert rankings, consensus rankings
//!   and algorithmic rankings all use this type.
//! * [`kendall`] — the generalized Kendall tau distance with ties used as
//!   the objective of consensus ranking.
//! * [`bioconsert`] — the BioConsert local-search median-ranking algorithm
//!   (Cohen-Boulakia et al., reference \[9\]), extended to incomplete
//!   rankings with *unsure* ratings, used to aggregate the individual
//!   experts' rankings into the consensus the algorithms are scored against.
//! * [`metrics`] — ranking *correctness* and *completeness* (Cheng et al.,
//!   reference \[8\]), the measures behind Figures 4–9 and 12.
//! * [`precision`] — retrieval precision at k with configurable relevance
//!   thresholds, the measure behind Figures 10 and 11.
//! * [`graded`] — graded retrieval metrics (nDCG over the Likert gains,
//!   average precision), an extension beyond the paper's precision@k.
//! * [`stats`] — descriptive statistics and paired significance tests
//!   (paired t-test, Wilcoxon signed-rank), the machinery behind the paper's
//!   "significant (p<0.05, paired ttest)" statements.

#![deny(unsafe_code)]

pub mod bioconsert;
pub mod graded;
pub mod kendall;
pub mod likert;
pub mod metrics;
pub mod precision;
pub mod ranking;
pub mod ratings;
pub mod stats;

pub use bioconsert::{bioconsert_consensus, BioConsertConfig};
pub use graded::{average_precision, likert_gain, mean_average_precision, mean_ndcg, ndcg_at_k};
pub use kendall::{generalized_kendall_distance, KendallConfig};
pub use likert::{median_rating, LikertRating};
pub use metrics::{ranking_correctness_completeness, RankingQuality};
pub use precision::{mean_precision_at_k, precision_at_k, RelevanceThreshold};
pub use ranking::Ranking;
pub use ratings::{ExpertRating, RatingCorpus};
pub use stats::{paired_t_test, wilcoxon_signed_rank, Descriptive, PairedTest, StatsError};
