//! Significance testing for paired evaluation results.
//!
//! The paper reports several of its findings with significance markers
//! obtained from a *paired t-test* at p < 0.05 (e.g. "simGE [...] is the only
//! algorithm in this set with a statistically significant (p<0.05, paired
//! ttest) difference to simBW", Section 5.1.1; the pw0-vs-pll comparison in
//! Section 5.1.2; the ensemble improvement in Section 5.1.6).  This module
//! implements the paired t-test (with a two-tailed p-value computed from the
//! regularized incomplete beta function) plus the Wilcoxon signed-rank test
//! as a distribution-free alternative, and the descriptive statistics (mean,
//! sample standard deviation) used throughout the figures.

/// Descriptive statistics of one sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Descriptive {
    /// Number of observations.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n − 1 denominator); 0 for n < 2.
    pub stddev: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
}

impl Descriptive {
    /// Computes descriptive statistics; returns `None` for an empty sample.
    pub fn of(sample: &[f64]) -> Option<Descriptive> {
        if sample.is_empty() {
            return None;
        }
        let n = sample.len();
        let mean = sample.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            sample.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n as f64 - 1.0)
        } else {
            0.0
        };
        let min = sample.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = sample.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        Some(Descriptive {
            n,
            mean,
            stddev: var.sqrt(),
            min,
            max,
        })
    }
}

/// The outcome of a paired two-sample test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PairedTest {
    /// Number of pairs that entered the test (pairs with a zero difference
    /// are dropped by the Wilcoxon test but kept by the t-test).
    pub n: usize,
    /// Mean of the pairwise differences (first sample minus second sample).
    pub mean_difference: f64,
    /// The test statistic: Student's t for [`paired_t_test`], the
    /// normal-approximation z for [`wilcoxon_signed_rank`].
    pub statistic: f64,
    /// Two-tailed p-value.
    pub p_value: f64,
}

impl PairedTest {
    /// True when the two-tailed p-value is below the significance level the
    /// paper uses throughout (α = 0.05).
    pub fn significant_at_05(&self) -> bool {
        self.p_value < 0.05
    }

    /// True when the two-tailed p-value is below the given α.
    pub fn significant_at(&self, alpha: f64) -> bool {
        self.p_value < alpha
    }
}

/// Errors from the significance tests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StatsError {
    /// The two samples have different lengths and cannot be paired.
    LengthMismatch {
        /// Length of the first sample.
        first: usize,
        /// Length of the second sample.
        second: usize,
    },
    /// Fewer than two usable pairs — no test can be computed.
    TooFewPairs,
}

impl std::fmt::Display for StatsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StatsError::LengthMismatch { first, second } => write!(
                f,
                "paired test requires samples of equal length, got {first} and {second}"
            ),
            StatsError::TooFewPairs => write!(f, "paired test requires at least two usable pairs"),
        }
    }
}

impl std::error::Error for StatsError {}

/// Student's paired t-test (two-tailed).
///
/// `first` and `second` are per-query (or per-pair) scores of two algorithms
/// on the same evaluation items.  Returns the t statistic on the pairwise
/// differences and the two-tailed p-value under the t distribution with
/// n − 1 degrees of freedom.
pub fn paired_t_test(first: &[f64], second: &[f64]) -> Result<PairedTest, StatsError> {
    if first.len() != second.len() {
        return Err(StatsError::LengthMismatch {
            first: first.len(),
            second: second.len(),
        });
    }
    let n = first.len();
    if n < 2 {
        return Err(StatsError::TooFewPairs);
    }
    let diffs: Vec<f64> = first.iter().zip(second).map(|(a, b)| a - b).collect();
    let mean = diffs.iter().sum::<f64>() / n as f64;
    let var = diffs.iter().map(|d| (d - mean).powi(2)).sum::<f64>() / (n as f64 - 1.0);
    let se = (var / n as f64).sqrt();
    // All differences identical: either no difference at all (p = 1) or a
    // constant shift that is trivially "significant" in the limit (p -> 0).
    if se == 0.0 {
        let p = if mean == 0.0 { 1.0 } else { 0.0 };
        return Ok(PairedTest {
            n,
            mean_difference: mean,
            statistic: if mean == 0.0 { 0.0 } else { f64::INFINITY },
            p_value: p,
        });
    }
    let t = mean / se;
    let df = (n - 1) as f64;
    let p = two_tailed_t_p_value(t, df);
    Ok(PairedTest {
        n,
        mean_difference: mean,
        statistic: t,
        p_value: p,
    })
}

/// The Wilcoxon signed-rank test (two-tailed, normal approximation with tie
/// and zero handling following Pratt).
///
/// A distribution-free alternative to the paired t-test; useful because the
/// per-query correctness values of Figures 5–9 are bounded in \[-1, 1\] and
/// not necessarily normal.
pub fn wilcoxon_signed_rank(first: &[f64], second: &[f64]) -> Result<PairedTest, StatsError> {
    if first.len() != second.len() {
        return Err(StatsError::LengthMismatch {
            first: first.len(),
            second: second.len(),
        });
    }
    let mut diffs: Vec<f64> = first
        .iter()
        .zip(second)
        .map(|(a, b)| a - b)
        .filter(|d| *d != 0.0)
        .collect();
    let mean_difference = if first.is_empty() {
        0.0
    } else {
        first.iter().zip(second).map(|(a, b)| a - b).sum::<f64>() / first.len() as f64
    };
    let n = diffs.len();
    if n < 2 {
        return Err(StatsError::TooFewPairs);
    }
    // Rank |d| with average ranks for ties.
    diffs.sort_by(|a, b| a.abs().partial_cmp(&b.abs()).expect("no NaN differences"));
    let mut ranks = vec![0.0f64; n];
    let mut tie_correction = 0.0f64;
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && (diffs[j + 1].abs() - diffs[i].abs()).abs() < 1e-12 {
            j += 1;
        }
        let avg_rank = (i + j + 2) as f64 / 2.0; // ranks are 1-based
        for r in ranks.iter_mut().take(j + 1).skip(i) {
            *r = avg_rank;
        }
        let t = (j - i + 1) as f64;
        tie_correction += t.powi(3) - t;
        i = j + 1;
    }
    let w_plus: f64 = diffs
        .iter()
        .zip(&ranks)
        .filter(|(d, _)| **d > 0.0)
        .map(|(_, r)| *r)
        .sum();
    let nf = n as f64;
    let mean_w = nf * (nf + 1.0) / 4.0;
    let var_w = nf * (nf + 1.0) * (2.0 * nf + 1.0) / 24.0 - tie_correction / 48.0;
    if var_w <= 0.0 {
        return Ok(PairedTest {
            n,
            mean_difference,
            statistic: 0.0,
            p_value: 1.0,
        });
    }
    // Continuity correction.
    let z = (w_plus - mean_w - 0.5 * (w_plus - mean_w).signum()) / var_w.sqrt();
    let p = 2.0 * (1.0 - standard_normal_cdf(z.abs()));
    Ok(PairedTest {
        n,
        mean_difference,
        statistic: z,
        p_value: p.clamp(0.0, 1.0),
    })
}

/// Two-tailed p-value of a t statistic with `df` degrees of freedom.
pub fn two_tailed_t_p_value(t: f64, df: f64) -> f64 {
    if !t.is_finite() {
        return 0.0;
    }
    let x = df / (df + t * t);
    regularized_incomplete_beta(df / 2.0, 0.5, x).clamp(0.0, 1.0)
}

/// The cumulative distribution function of the standard normal distribution.
pub fn standard_normal_cdf(z: f64) -> f64 {
    0.5 * (1.0 + erf(z / std::f64::consts::SQRT_2))
}

/// The error function, via the Abramowitz–Stegun 7.1.26 rational
/// approximation (absolute error < 1.5e-7, far below what a p-value needs).
fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let y = 1.0
        - (((((1.061405429 * t - 1.453152027) * t) + 1.421413741) * t - 0.284496736) * t
            + 0.254829592)
            * t
            * (-x * x).exp();
    sign * y
}

/// The regularized incomplete beta function I_x(a, b), computed with the
/// continued-fraction expansion of Numerical Recipes (Lentz's method).
pub fn regularized_incomplete_beta(a: f64, b: f64, x: f64) -> f64 {
    if x <= 0.0 {
        return 0.0;
    }
    if x >= 1.0 {
        return 1.0;
    }
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    let front = ln_front.exp();
    // Use the symmetry relation to keep the continued fraction convergent.
    // `<=` (not `<`) so that the boundary point does not recurse forever
    // when a == b and x == 0.5.
    if x <= (a + 1.0) / (a + b + 2.0) {
        front * beta_continued_fraction(a, b, x) / a
    } else {
        1.0 - regularized_incomplete_beta(b, a, 1.0 - x)
    }
}

fn beta_continued_fraction(a: f64, b: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 300;
    const EPS: f64 = 1e-14;
    const TINY: f64 = 1e-300;

    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < TINY {
        d = TINY;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let delta = d * c;
        h *= delta;
        if (delta - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

/// The natural logarithm of the gamma function (Lanczos approximation).
pub fn ln_gamma(x: f64) -> f64 {
    // The canonical Lanczos g=7, n=9 coefficients, kept at full published
    // precision (the trailing digits are below f64 resolution).
    #[allow(clippy::excessive_precision)]
    const G: [f64; 9] = [
        0.999_999_999_999_809_93,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_13,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_571_6e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        std::f64::consts::PI.ln() - (std::f64::consts::PI * x).sin().ln() - ln_gamma(1.0 - x)
    } else {
        let x = x - 1.0;
        let mut a = G[0];
        let t = x + 7.5;
        for (i, &g) in G.iter().enumerate().skip(1) {
            a += g / (x + i as f64);
        }
        0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn descriptive_of_empty_sample_is_none() {
        assert!(Descriptive::of(&[]).is_none());
    }

    #[test]
    fn descriptive_of_singleton_has_zero_stddev() {
        let d = Descriptive::of(&[0.7]).unwrap();
        assert_eq!(d.n, 1);
        assert_eq!(d.mean, 0.7);
        assert_eq!(d.stddev, 0.0);
        assert_eq!(d.min, 0.7);
        assert_eq!(d.max, 0.7);
    }

    #[test]
    fn descriptive_matches_hand_computation() {
        let d = Descriptive::of(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert!((d.mean - 2.5).abs() < 1e-12);
        // Sample variance of 1..4 is 5/3.
        assert!((d.stddev - (5.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert_eq!(d.min, 1.0);
        assert_eq!(d.max, 4.0);
    }

    #[test]
    fn ln_gamma_matches_known_values() {
        // Γ(1) = 1, Γ(2) = 1, Γ(5) = 24, Γ(0.5) = sqrt(pi).
        assert!(ln_gamma(1.0).abs() < 1e-10);
        assert!(ln_gamma(2.0).abs() < 1e-10);
        assert!((ln_gamma(5.0) - 24.0f64.ln()).abs() < 1e-9);
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-9);
    }

    #[test]
    fn incomplete_beta_boundary_values() {
        assert_eq!(regularized_incomplete_beta(2.0, 3.0, 0.0), 0.0);
        assert_eq!(regularized_incomplete_beta(2.0, 3.0, 1.0), 1.0);
    }

    #[test]
    fn incomplete_beta_symmetric_point() {
        // I_{0.5}(a, a) = 0.5 for any a.
        for a in [0.5, 1.0, 3.0, 10.0] {
            let v = regularized_incomplete_beta(a, a, 0.5);
            assert!((v - 0.5).abs() < 1e-9, "a={a}: {v}");
        }
    }

    #[test]
    fn incomplete_beta_uniform_case_is_identity() {
        // I_x(1, 1) = x.
        for x in [0.1, 0.25, 0.5, 0.9] {
            assert!((regularized_incomplete_beta(1.0, 1.0, x) - x).abs() < 1e-9);
        }
    }

    #[test]
    fn t_p_value_matches_reference_values() {
        // Reference values from standard t tables (two-tailed).
        // df = 10, t = 2.228 -> p ≈ 0.05.
        let p = two_tailed_t_p_value(2.228, 10.0);
        assert!((p - 0.05).abs() < 2e-3, "got {p}");
        // df = 20, t = 2.845 -> p ≈ 0.01.
        let p = two_tailed_t_p_value(2.845, 20.0);
        assert!((p - 0.01).abs() < 1e-3, "got {p}");
        // t = 0 -> p = 1.
        assert!((two_tailed_t_p_value(0.0, 5.0) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn normal_cdf_matches_reference_values() {
        assert!((standard_normal_cdf(0.0) - 0.5).abs() < 1e-9);
        assert!((standard_normal_cdf(1.96) - 0.975).abs() < 1e-3);
        assert!((standard_normal_cdf(-1.96) - 0.025).abs() < 1e-3);
    }

    #[test]
    fn paired_t_test_rejects_mismatched_lengths() {
        let err = paired_t_test(&[1.0, 2.0], &[1.0]).unwrap_err();
        assert_eq!(
            err,
            StatsError::LengthMismatch {
                first: 2,
                second: 1
            }
        );
    }

    #[test]
    fn paired_t_test_rejects_tiny_samples() {
        assert_eq!(
            paired_t_test(&[1.0], &[2.0]).unwrap_err(),
            StatsError::TooFewPairs
        );
    }

    #[test]
    fn paired_t_test_identical_samples_is_not_significant() {
        let a = [0.5, 0.6, 0.7, 0.8];
        let test = paired_t_test(&a, &a).unwrap();
        assert_eq!(test.p_value, 1.0);
        assert_eq!(test.mean_difference, 0.0);
        assert!(!test.significant_at_05());
    }

    #[test]
    fn paired_t_test_constant_shift_is_significant() {
        let a = [0.5, 0.6, 0.7, 0.8];
        let b = [0.4, 0.5, 0.6, 0.7];
        let test = paired_t_test(&a, &b).unwrap();
        assert!(test.significant_at_05());
        assert!((test.mean_difference - 0.1).abs() < 1e-12);
    }

    #[test]
    fn paired_t_test_matches_hand_computed_example() {
        // Differences: [1, 2, 3, 4, 5]; mean 3, sd sqrt(2.5), n 5
        // t = 3 / (sqrt(2.5)/sqrt(5)) = 3 / 0.7071 ≈ 4.2426, df = 4
        // two-tailed p ≈ 0.0132.
        let a = [2.0, 4.0, 6.0, 8.0, 10.0];
        let b = [1.0, 2.0, 3.0, 4.0, 5.0];
        let test = paired_t_test(&a, &b).unwrap();
        assert!(
            (test.statistic - 4.2426).abs() < 1e-3,
            "t={}",
            test.statistic
        );
        assert!((test.p_value - 0.0132).abs() < 1e-3, "p={}", test.p_value);
        assert!(test.significant_at_05());
        assert!(!test.significant_at(0.01));
    }

    #[test]
    fn paired_t_test_noise_is_not_significant() {
        // Alternating small differences cancel out.
        let a = [0.50, 0.62, 0.71, 0.79, 0.55, 0.68];
        let b = [0.51, 0.60, 0.72, 0.78, 0.56, 0.67];
        let test = paired_t_test(&a, &b).unwrap();
        assert!(!test.significant_at_05(), "p={}", test.p_value);
    }

    #[test]
    fn wilcoxon_rejects_mismatched_lengths() {
        assert!(matches!(
            wilcoxon_signed_rank(&[1.0, 2.0], &[1.0]),
            Err(StatsError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn wilcoxon_all_zero_differences_is_too_few_pairs() {
        let a = [0.5, 0.6, 0.7];
        assert_eq!(
            wilcoxon_signed_rank(&a, &a).unwrap_err(),
            StatsError::TooFewPairs
        );
    }

    #[test]
    fn wilcoxon_detects_a_systematic_shift() {
        let a: Vec<f64> = (0..20).map(|i| 0.5 + 0.01 * i as f64 + 0.05).collect();
        let b: Vec<f64> = (0..20).map(|i| 0.5 + 0.01 * i as f64).collect();
        let test = wilcoxon_signed_rank(&a, &b).unwrap();
        assert!(test.significant_at_05(), "p={}", test.p_value);
        assert!(test.mean_difference > 0.0);
    }

    #[test]
    fn wilcoxon_symmetric_noise_is_not_significant() {
        let a = [0.5, 0.7, 0.6, 0.8, 0.4, 0.9, 0.55, 0.65];
        let b = [0.52, 0.68, 0.62, 0.78, 0.42, 0.88, 0.57, 0.63];
        let test = wilcoxon_signed_rank(&a, &b).unwrap();
        assert!(!test.significant_at_05(), "p={}", test.p_value);
    }

    #[test]
    fn t_test_and_wilcoxon_agree_on_a_clear_effect() {
        let a: Vec<f64> = (0..24).map(|i| 0.6 + (i % 5) as f64 * 0.02).collect();
        let b: Vec<f64> = (0..24).map(|i| 0.4 + (i % 7) as f64 * 0.02).collect();
        let t = paired_t_test(&a, &b).unwrap();
        let w = wilcoxon_signed_rank(&a, &b).unwrap();
        assert!(t.significant_at_05());
        assert!(w.significant_at_05());
    }

    #[test]
    fn stats_error_messages_are_informative() {
        let msg = StatsError::LengthMismatch {
            first: 3,
            second: 5,
        }
        .to_string();
        assert!(msg.contains('3') && msg.contains('5'));
        assert!(StatsError::TooFewPairs.to_string().contains("two"));
    }
}
