//! Graded retrieval metrics: nDCG and (mean) average precision.
//!
//! The paper evaluates retrieval with precision@k at three relevance
//! thresholds, which flattens the quaternary Likert ratings into binary
//! relevance.  Normalized discounted cumulative gain (nDCG) uses the graded
//! ratings directly (a *very similar* result at rank 1 is worth more than a
//! *related* one), and average precision summarises a whole precision curve
//! in a single number.  Both are standard IR metrics and complement the
//! paper's Figures 10 and 11; the experiment binaries report them as an
//! extension.

use crate::likert::LikertRating;

/// The gain value of a Likert rating for nDCG: *very similar* = 3,
/// *similar* = 2, *related* = 1, *dissimilar* = 0; *unsure* and missing
/// ratings count as 0.
pub fn likert_gain(rating: Option<LikertRating>) -> f64 {
    match rating {
        Some(LikertRating::VerySimilar) => 3.0,
        Some(LikertRating::Similar) => 2.0,
        Some(LikertRating::Related) => 1.0,
        Some(LikertRating::Dissimilar) | Some(LikertRating::Unsure) | None => 0.0,
    }
}

/// Discounted cumulative gain over the first `k` gains (log2 discount,
/// ranks are 1-based).
pub fn dcg_at_k(gains: &[f64], k: usize) -> f64 {
    gains
        .iter()
        .take(k)
        .enumerate()
        .map(|(i, g)| g / ((i + 2) as f64).log2())
        .sum()
}

/// Normalized DCG at `k`: the DCG of the ranked gains divided by the DCG of
/// the ideal (descending) ordering of the same gains.  Returns 1.0 when all
/// gains are zero (an empty result list cannot be ordered better).
pub fn ndcg_at_k(gains: &[f64], k: usize) -> f64 {
    let dcg = dcg_at_k(gains, k);
    let mut ideal: Vec<f64> = gains.to_vec();
    ideal.sort_by(|a, b| b.partial_cmp(a).expect("gains are finite"));
    let idcg = dcg_at_k(&ideal, k);
    if idcg == 0.0 {
        1.0
    } else {
        (dcg / idcg).clamp(0.0, 1.0)
    }
}

/// Average precision over the first `k` results: the mean of precision@i
/// over the ranks `i` that hold a relevant result.  Returns 0.0 when no
/// relevant result appears in the top `k`.
pub fn average_precision(relevant: &[bool], k: usize) -> f64 {
    let mut hits = 0usize;
    let mut sum = 0.0;
    for (i, &is_relevant) in relevant.iter().take(k).enumerate() {
        if is_relevant {
            hits += 1;
            sum += hits as f64 / (i + 1) as f64;
        }
    }
    if hits == 0 {
        0.0
    } else {
        sum / hits as f64
    }
}

/// The mean of per-query nDCG@k values (0.0 for an empty input).
pub fn mean_ndcg(per_query_gains: &[Vec<f64>], k: usize) -> f64 {
    if per_query_gains.is_empty() {
        return 0.0;
    }
    per_query_gains.iter().map(|g| ndcg_at_k(g, k)).sum::<f64>() / per_query_gains.len() as f64
}

/// The mean of per-query average precisions (0.0 for an empty input) — MAP.
pub fn mean_average_precision(per_query_relevance: &[Vec<bool>], k: usize) -> f64 {
    if per_query_relevance.is_empty() {
        return 0.0;
    }
    per_query_relevance
        .iter()
        .map(|r| average_precision(r, k))
        .sum::<f64>()
        / per_query_relevance.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn likert_gains_are_monotone_in_the_scale() {
        let gains = [
            likert_gain(Some(LikertRating::VerySimilar)),
            likert_gain(Some(LikertRating::Similar)),
            likert_gain(Some(LikertRating::Related)),
            likert_gain(Some(LikertRating::Dissimilar)),
        ];
        for pair in gains.windows(2) {
            assert!(pair[0] > pair[1]);
        }
        assert_eq!(likert_gain(Some(LikertRating::Unsure)), 0.0);
        assert_eq!(likert_gain(None), 0.0);
    }

    #[test]
    fn dcg_matches_hand_computation() {
        // gains [3, 2, 0, 1]: 3/log2(2) + 2/log2(3) + 0 + 1/log2(5)
        let expected = 3.0 / 2f64.log2() + 2.0 / 3f64.log2() + 1.0 / 5f64.log2();
        assert!((dcg_at_k(&[3.0, 2.0, 0.0, 1.0], 10) - expected).abs() < 1e-12);
        // k truncates.
        assert!((dcg_at_k(&[3.0, 2.0, 0.0, 1.0], 2) - (3.0 + 2.0 / 3f64.log2())).abs() < 1e-12);
    }

    #[test]
    fn ndcg_is_one_for_ideal_orderings_and_less_otherwise() {
        assert!((ndcg_at_k(&[3.0, 2.0, 1.0, 0.0], 10) - 1.0).abs() < 1e-12);
        let shuffled = ndcg_at_k(&[0.0, 1.0, 2.0, 3.0], 10);
        assert!(shuffled < 1.0 && shuffled > 0.0);
        assert!(ndcg_at_k(&[3.0, 2.0], 10) > ndcg_at_k(&[2.0, 3.0], 10));
    }

    #[test]
    fn ndcg_of_all_zero_gains_is_one() {
        assert_eq!(ndcg_at_k(&[0.0, 0.0, 0.0], 10), 1.0);
        assert_eq!(ndcg_at_k(&[], 10), 1.0);
    }

    #[test]
    fn average_precision_matches_hand_computation() {
        // relevant at ranks 1 and 3: (1/1 + 2/3) / 2
        let ap = average_precision(&[true, false, true, false], 10);
        assert!((ap - (1.0 + 2.0 / 3.0) / 2.0).abs() < 1e-12);
        assert_eq!(average_precision(&[false, false], 10), 0.0);
        assert_eq!(average_precision(&[], 10), 0.0);
    }

    #[test]
    fn average_precision_rewards_early_hits() {
        let early = average_precision(&[true, false, false, false], 10);
        let late = average_precision(&[false, false, false, true], 10);
        assert!(early > late);
        assert_eq!(early, 1.0);
    }

    #[test]
    fn k_truncation_is_respected() {
        // The relevant result at rank 4 is invisible at k = 3.
        assert_eq!(average_precision(&[false, false, false, true], 3), 0.0);
        assert_eq!(dcg_at_k(&[0.0, 0.0, 0.0, 5.0], 3), 0.0);
    }

    #[test]
    fn mean_helpers_average_per_query_values() {
        let ndcg = mean_ndcg(&[vec![3.0, 2.0], vec![0.0, 3.0]], 10);
        let expected = (1.0 + ndcg_at_k(&[0.0, 3.0], 10)) / 2.0;
        assert!((ndcg - expected).abs() < 1e-12);
        let map = mean_average_precision(&[vec![true], vec![false, true]], 10);
        assert!((map - (1.0 + 0.5) / 2.0).abs() < 1e-12);
        assert_eq!(mean_ndcg(&[], 10), 0.0);
        assert_eq!(mean_average_precision(&[], 10), 0.0);
    }
}
