//! Generalized Kendall tau distance between rankings with ties.
//!
//! BioConsert (reference \[9\] of the paper) searches for a median ranking,
//! i.e. one minimising the sum of generalized Kendall tau distances to the
//! input rankings.  The generalized distance `K^{(p)}` over rankings with
//! ties charges, for every pair of items:
//!
//! * `1` if the two rankings order the pair in opposite directions,
//! * `p` (the *tie penalty*, `0 ≤ p ≤ 1`) if the pair is tied in exactly one
//!   of the rankings,
//! * `0` otherwise.
//!
//! Pairs involving an item that is missing from either ranking contribute
//! nothing — this is the extension "to allow incomplete rankings with unsure
//! ratings" described in Section 4.2 of the paper.

use crate::ranking::Ranking;

/// Configuration of the generalized Kendall tau distance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KendallConfig {
    /// Penalty for a pair tied in one ranking but ordered in the other.
    /// The usual choice (and our default) is `0.5`.
    pub tie_penalty: f64,
}

impl Default for KendallConfig {
    fn default() -> Self {
        KendallConfig { tie_penalty: 0.5 }
    }
}

/// Computes the generalized Kendall tau distance between two rankings with
/// ties, restricted to the items present in both.
pub fn generalized_kendall_distance(a: &Ranking, b: &Ranking, config: &KendallConfig) -> f64 {
    let pos_a = a.position_map();
    let pos_b = b.position_map();
    let common: Vec<&str> = pos_a
        .keys()
        .filter(|k| pos_b.contains_key(*k))
        .copied()
        .collect();
    let mut distance = 0.0;
    for (i, &x) in common.iter().enumerate() {
        for &y in &common[i + 1..] {
            let (ax, ay) = (pos_a[x], pos_a[y]);
            let (bx, by) = (pos_b[x], pos_b[y]);
            let tied_a = ax == ay;
            let tied_b = bx == by;
            if tied_a && tied_b {
                continue;
            }
            if tied_a != tied_b {
                distance += config.tie_penalty;
            } else {
                // Ordered in both: discordant if directions differ.
                let concordant = (ax < ay) == (bx < by);
                if !concordant {
                    distance += 1.0;
                }
            }
        }
    }
    distance
}

/// The sum of distances from `candidate` to every ranking in `inputs` — the
/// objective BioConsert minimises.
pub fn total_distance(candidate: &Ranking, inputs: &[Ranking], config: &KendallConfig) -> f64 {
    inputs
        .iter()
        .map(|r| generalized_kendall_distance(candidate, r, config))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strict(items: &[&str]) -> Ranking {
        Ranking::from_buckets(items.iter().map(|i| vec![*i]))
    }

    #[test]
    fn identical_rankings_have_zero_distance() {
        let r = strict(&["a", "b", "c"]);
        assert_eq!(
            generalized_kendall_distance(&r, &r, &KendallConfig::default()),
            0.0
        );
    }

    #[test]
    fn full_reversal_counts_all_pairs() {
        let a = strict(&["a", "b", "c"]);
        let b = strict(&["c", "b", "a"]);
        // 3 pairs, all discordant.
        assert_eq!(
            generalized_kendall_distance(&a, &b, &KendallConfig::default()),
            3.0
        );
    }

    #[test]
    fn single_swap_costs_one() {
        let a = strict(&["a", "b", "c"]);
        let b = strict(&["b", "a", "c"]);
        assert_eq!(
            generalized_kendall_distance(&a, &b, &KendallConfig::default()),
            1.0
        );
    }

    #[test]
    fn tie_in_one_ranking_costs_the_tie_penalty() {
        let a = strict(&["a", "b"]);
        let b = Ranking::from_buckets(vec![vec!["a", "b"]]);
        assert_eq!(
            generalized_kendall_distance(&a, &b, &KendallConfig::default()),
            0.5
        );
        let harsh = KendallConfig { tie_penalty: 1.0 };
        assert_eq!(generalized_kendall_distance(&a, &b, &harsh), 1.0);
    }

    #[test]
    fn ties_in_both_rankings_cost_nothing() {
        let a = Ranking::from_buckets(vec![vec!["a", "b"], vec!["c"]]);
        let b = Ranking::from_buckets(vec![vec!["b", "a"], vec!["c"]]);
        assert_eq!(
            generalized_kendall_distance(&a, &b, &KendallConfig::default()),
            0.0
        );
    }

    #[test]
    fn missing_items_are_ignored() {
        let a = strict(&["a", "b", "c", "d"]);
        let b = strict(&["b", "a"]); // only knows a and b, reversed
        assert_eq!(
            generalized_kendall_distance(&a, &b, &KendallConfig::default()),
            1.0
        );
        let empty = Ranking::new();
        assert_eq!(
            generalized_kendall_distance(&a, &empty, &KendallConfig::default()),
            0.0
        );
    }

    #[test]
    fn distance_is_symmetric() {
        let a = Ranking::from_buckets(vec![vec!["a"], vec!["b", "c"], vec!["d"]]);
        let b = Ranking::from_buckets(vec![vec!["c"], vec!["a", "d"], vec!["b"]]);
        let cfg = KendallConfig::default();
        assert_eq!(
            generalized_kendall_distance(&a, &b, &cfg),
            generalized_kendall_distance(&b, &a, &cfg)
        );
    }

    #[test]
    fn total_distance_sums_over_inputs() {
        let c = strict(&["a", "b"]);
        let inputs = vec![strict(&["a", "b"]), strict(&["b", "a"])];
        assert_eq!(total_distance(&c, &inputs, &KendallConfig::default()), 1.0);
    }
}
