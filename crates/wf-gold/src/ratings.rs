//! Storage and aggregation of expert ratings.
//!
//! The study collected 2424 ratings from 15 experts over 485 workflow pairs
//! (Section 4.2).  A [`RatingCorpus`] holds such ratings, indexes them by
//! (query, candidate) pair and by expert, derives per-expert rankings for
//! the ranking experiment and median ratings for the retrieval experiment.

use std::collections::{BTreeMap, BTreeSet};

use serde::{Deserialize, Serialize};

use crate::likert::{median_rating, LikertRating};
use crate::ranking::Ranking;

/// One rating given by one expert to one (query, candidate) workflow pair.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExpertRating {
    /// Identifier of the expert (e.g. `"expert-03"`).
    pub expert: String,
    /// Identifier of the query workflow.
    pub query: String,
    /// Identifier of the candidate workflow being compared to the query.
    pub candidate: String,
    /// The rating on the Likert scale.
    pub rating: LikertRating,
}

impl ExpertRating {
    /// Convenience constructor.
    pub fn new(
        expert: impl Into<String>,
        query: impl Into<String>,
        candidate: impl Into<String>,
        rating: LikertRating,
    ) -> Self {
        ExpertRating {
            expert: expert.into(),
            query: query.into(),
            candidate: candidate.into(),
            rating,
        }
    }
}

/// A collection of expert ratings with the lookups the evaluation needs.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RatingCorpus {
    ratings: Vec<ExpertRating>,
}

impl RatingCorpus {
    /// Creates an empty corpus.
    pub fn new() -> Self {
        RatingCorpus::default()
    }

    /// Adds one rating.  If the same expert rates the same pair twice, the
    /// later rating replaces the earlier one.
    pub fn add(&mut self, rating: ExpertRating) {
        if let Some(existing) = self.ratings.iter_mut().find(|r| {
            r.expert == rating.expert && r.query == rating.query && r.candidate == rating.candidate
        }) {
            *existing = rating;
        } else {
            self.ratings.push(rating);
        }
    }

    /// Total number of stored ratings (the paper reports 2424).
    pub fn len(&self) -> usize {
        self.ratings.len()
    }

    /// True if no ratings are stored.
    pub fn is_empty(&self) -> bool {
        self.ratings.is_empty()
    }

    /// All ratings.
    pub fn ratings(&self) -> &[ExpertRating] {
        &self.ratings
    }

    /// The distinct experts, sorted.
    pub fn experts(&self) -> Vec<&str> {
        let set: BTreeSet<&str> = self.ratings.iter().map(|r| r.expert.as_str()).collect();
        set.into_iter().collect()
    }

    /// The distinct query workflows, sorted.
    pub fn queries(&self) -> Vec<&str> {
        let set: BTreeSet<&str> = self.ratings.iter().map(|r| r.query.as_str()).collect();
        set.into_iter().collect()
    }

    /// The candidates rated for a query (by any expert), sorted.
    pub fn candidates_for(&self, query: &str) -> Vec<&str> {
        let set: BTreeSet<&str> = self
            .ratings
            .iter()
            .filter(|r| r.query == query)
            .map(|r| r.candidate.as_str())
            .collect();
        set.into_iter().collect()
    }

    /// All decided ratings one expert gave for a query, as
    /// `(candidate, rating)` pairs.
    pub fn expert_ratings_for(&self, expert: &str, query: &str) -> Vec<(&str, LikertRating)> {
        self.ratings
            .iter()
            .filter(|r| r.expert == expert && r.query == query && r.rating.is_decided())
            .map(|r| (r.candidate.as_str(), r.rating))
            .collect()
    }

    /// The ranking (with ties) induced by one expert's ratings of the
    /// candidates for a query.  Candidates the expert marked *unsure* (or
    /// did not rate) are absent — the incomplete-ranking case BioConsert has
    /// to handle.
    pub fn expert_ranking(&self, expert: &str, query: &str) -> Ranking {
        let rated = self.expert_ratings_for(expert, query);
        let mut by_level: BTreeMap<std::cmp::Reverse<u8>, Vec<String>> = BTreeMap::new();
        for (candidate, rating) in rated {
            if let Some(v) = rating.value() {
                by_level
                    .entry(std::cmp::Reverse(v))
                    .or_default()
                    .push(candidate.to_string());
            }
        }
        Ranking::from_buckets(by_level.into_values())
    }

    /// The per-expert rankings of all experts who rated at least one
    /// candidate of the query.
    pub fn expert_rankings(&self, query: &str) -> Vec<(String, Ranking)> {
        self.experts()
            .into_iter()
            .map(|e| (e.to_string(), self.expert_ranking(e, query)))
            .filter(|(_, r)| !r.is_empty())
            .collect()
    }

    /// The median rating of a (query, candidate) pair over all experts,
    /// ignoring unsure votes.
    pub fn median(&self, query: &str, candidate: &str) -> Option<LikertRating> {
        let votes: Vec<LikertRating> = self
            .ratings
            .iter()
            .filter(|r| r.query == query && r.candidate == candidate)
            .map(|r| r.rating)
            .collect();
        median_rating(&votes)
    }

    /// The number of (query, candidate) pairs with at least one rating —
    /// the paper reports 485 such pairs.
    pub fn pair_count(&self) -> usize {
        let set: BTreeSet<(&str, &str)> = self
            .ratings
            .iter()
            .map(|r| (r.query.as_str(), r.candidate.as_str()))
            .collect();
        set.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus() -> RatingCorpus {
        let mut c = RatingCorpus::new();
        for (e, q, cand, r) in [
            ("e1", "q1", "a", LikertRating::VerySimilar),
            ("e1", "q1", "b", LikertRating::Related),
            ("e1", "q1", "c", LikertRating::Unsure),
            ("e2", "q1", "a", LikertRating::Similar),
            ("e2", "q1", "b", LikertRating::Dissimilar),
            ("e2", "q1", "c", LikertRating::Related),
            ("e1", "q2", "d", LikertRating::Similar),
        ] {
            c.add(ExpertRating::new(e, q, cand, r));
        }
        c
    }

    #[test]
    fn counting_and_lookups() {
        let c = corpus();
        assert_eq!(c.len(), 7);
        assert!(!c.is_empty());
        assert_eq!(c.experts(), vec!["e1", "e2"]);
        assert_eq!(c.queries(), vec!["q1", "q2"]);
        assert_eq!(c.candidates_for("q1"), vec!["a", "b", "c"]);
        assert_eq!(c.pair_count(), 4);
    }

    #[test]
    fn duplicate_rating_replaces_previous() {
        let mut c = corpus();
        c.add(ExpertRating::new("e1", "q1", "a", LikertRating::Dissimilar));
        assert_eq!(c.len(), 7, "no new entry");
        assert_eq!(
            c.expert_ratings_for("e1", "q1")
                .iter()
                .find(|(cand, _)| *cand == "a")
                .unwrap()
                .1,
            LikertRating::Dissimilar
        );
    }

    #[test]
    fn expert_ranking_orders_by_rating_and_skips_unsure() {
        let c = corpus();
        let r = c.expert_ranking("e1", "q1");
        assert_eq!(r.buckets().len(), 2);
        assert_eq!(r.buckets()[0], vec!["a"]);
        assert_eq!(r.buckets()[1], vec!["b"]);
        assert!(!r.contains("c"), "unsure candidate is not ranked");
    }

    #[test]
    fn expert_rankings_excludes_experts_without_ratings() {
        let c = corpus();
        let rankings = c.expert_rankings("q2");
        assert_eq!(rankings.len(), 1);
        assert_eq!(rankings[0].0, "e1");
    }

    #[test]
    fn median_aggregation() {
        let c = corpus();
        // a: {very_similar, similar} -> lower median = similar
        assert_eq!(c.median("q1", "a"), Some(LikertRating::Similar));
        // b: {related, dissimilar} -> dissimilar
        assert_eq!(c.median("q1", "b"), Some(LikertRating::Dissimilar));
        // c: {unsure, related} -> related
        assert_eq!(c.median("q1", "c"), Some(LikertRating::Related));
        assert_eq!(c.median("q1", "zzz"), None);
    }
}
