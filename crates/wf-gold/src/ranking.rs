//! Rankings with ties over string-identified items.
//!
//! Expert rankings, BioConsert consensus rankings and algorithmic rankings
//! are all *rankings with ties*: an ordered sequence of buckets, each bucket
//! holding the items considered equally good.  Rankings may be incomplete —
//! an expert who was unsure about a workflow simply does not rank it — so
//! the type also tracks which items are present.

use std::collections::BTreeMap;

/// A ranking with ties: `buckets[0]` holds the top-ranked items.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Ranking {
    buckets: Vec<Vec<String>>,
}

impl Ranking {
    /// Creates an empty ranking.
    pub fn new() -> Self {
        Ranking::default()
    }

    /// Creates a ranking from explicit buckets.  Empty buckets are dropped;
    /// duplicate items keep only their first (best) occurrence.
    pub fn from_buckets<I, B, S>(buckets: I) -> Self
    where
        I: IntoIterator<Item = B>,
        B: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut seen = std::collections::BTreeSet::new();
        let mut out = Vec::new();
        for bucket in buckets {
            let mut b: Vec<String> = Vec::new();
            for item in bucket {
                let item = item.into();
                if seen.insert(item.clone()) {
                    b.push(item);
                }
            }
            if !b.is_empty() {
                out.push(b);
            }
        }
        Ranking { buckets: out }
    }

    /// Builds a ranking from `(item, score)` pairs, higher scores first.
    ///
    /// Items whose scores differ by at most `tie_epsilon` *and* fall into
    /// the same maximal chain of near-equal scores are placed in the same
    /// bucket.  Use `tie_epsilon = 0.0` for exact ties only.
    pub fn from_scores<S: Into<String>>(scores: Vec<(S, f64)>, tie_epsilon: f64) -> Self {
        let mut scored: Vec<(String, f64)> =
            scores.into_iter().map(|(s, v)| (s.into(), v)).collect();
        scored.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.0.cmp(&b.0))
        });
        let mut buckets: Vec<Vec<String>> = Vec::new();
        let mut bucket_score = f64::NAN;
        for (item, score) in scored {
            let start_new = buckets.is_empty() || (bucket_score - score).abs() > tie_epsilon;
            if start_new {
                buckets.push(vec![item]);
                bucket_score = score;
            } else {
                buckets.last_mut().expect("non-empty").push(item);
            }
        }
        Ranking::from_buckets(buckets)
    }

    /// The buckets, best first.
    pub fn buckets(&self) -> &[Vec<String>] {
        &self.buckets
    }

    /// Number of ranked items.
    pub fn len(&self) -> usize {
        self.buckets.iter().map(Vec::len).sum()
    }

    /// True if nothing is ranked.
    pub fn is_empty(&self) -> bool {
        self.buckets.is_empty()
    }

    /// All ranked items in rank order (ties flattened in bucket order).
    pub fn items(&self) -> Vec<&str> {
        self.buckets
            .iter()
            .flat_map(|b| b.iter().map(String::as_str))
            .collect()
    }

    /// True if the item appears in the ranking.
    pub fn contains(&self, item: &str) -> bool {
        self.position(item).is_some()
    }

    /// The 0-based bucket index of an item, if ranked.
    pub fn position(&self, item: &str) -> Option<usize> {
        self.buckets
            .iter()
            .position(|b| b.iter().any(|x| x == item))
    }

    /// A map from item to bucket index, for bulk comparisons.
    pub fn position_map(&self) -> BTreeMap<&str, usize> {
        let mut map = BTreeMap::new();
        for (i, bucket) in self.buckets.iter().enumerate() {
            for item in bucket {
                map.insert(item.as_str(), i);
            }
        }
        map
    }

    /// Appends one bucket of tied items at the bottom of the ranking.
    pub fn push_bucket<S: Into<String>>(&mut self, items: Vec<S>) {
        let bucket: Vec<String> = items
            .into_iter()
            .map(Into::into)
            .filter(|i| !self.contains(i))
            .collect();
        if !bucket.is_empty() {
            self.buckets.push(bucket);
        }
    }

    /// Restricts the ranking to the given items, dropping everything else
    /// (used to compare an algorithm's ranking against the subset of items
    /// an expert actually rated).
    pub fn restricted_to(&self, items: &[&str]) -> Ranking {
        let keep: std::collections::BTreeSet<&str> = items.iter().copied().collect();
        Ranking::from_buckets(self.buckets.iter().map(|b| {
            b.iter()
                .filter(|i| keep.contains(i.as_str()))
                .cloned()
                .collect::<Vec<_>>()
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_buckets_drops_empties_and_duplicates() {
        let r = Ranking::from_buckets(vec![vec!["a", "b"], vec![], vec!["b", "c"]]);
        assert_eq!(r.buckets().len(), 2);
        assert_eq!(r.len(), 3);
        assert_eq!(r.position("b"), Some(0), "first occurrence wins");
        assert_eq!(r.position("c"), Some(1));
    }

    #[test]
    fn from_scores_orders_descending_and_groups_ties() {
        let r = Ranking::from_scores(vec![("a", 0.9), ("b", 0.5), ("c", 0.9), ("d", 0.1)], 0.0);
        assert_eq!(r.buckets().len(), 3);
        assert_eq!(r.buckets()[0], vec!["a", "c"]);
        assert_eq!(r.buckets()[1], vec!["b"]);
        assert_eq!(r.buckets()[2], vec!["d"]);
    }

    #[test]
    fn from_scores_with_epsilon_groups_near_ties() {
        let r = Ranking::from_scores(vec![("a", 0.90), ("b", 0.89), ("c", 0.5)], 0.02);
        assert_eq!(r.buckets().len(), 2);
        assert_eq!(r.buckets()[0], vec!["a", "b"]);
    }

    #[test]
    fn positions_and_membership() {
        let r = Ranking::from_buckets(vec![vec!["x"], vec!["y", "z"]]);
        assert_eq!(r.position("x"), Some(0));
        assert_eq!(r.position("z"), Some(1));
        assert_eq!(r.position("q"), None);
        assert!(r.contains("y"));
        assert!(!r.contains("q"));
        assert_eq!(r.items(), vec!["x", "y", "z"]);
        let map = r.position_map();
        assert_eq!(map.get("y"), Some(&1));
    }

    #[test]
    fn push_bucket_skips_already_ranked_items() {
        let mut r = Ranking::from_buckets(vec![vec!["a"]]);
        r.push_bucket(vec!["a", "b"]);
        assert_eq!(r.buckets().len(), 2);
        assert_eq!(r.buckets()[1], vec!["b"]);
        r.push_bucket(Vec::<String>::new());
        assert_eq!(r.buckets().len(), 2);
    }

    #[test]
    fn restriction_keeps_order() {
        let r = Ranking::from_buckets(vec![vec!["a", "b"], vec!["c"], vec!["d"]]);
        let restricted = r.restricted_to(&["d", "a"]);
        assert_eq!(restricted.buckets().len(), 2);
        assert_eq!(restricted.buckets()[0], vec!["a"]);
        assert_eq!(restricted.buckets()[1], vec!["d"]);
    }

    #[test]
    fn empty_ranking_properties() {
        let r = Ranking::new();
        assert!(r.is_empty());
        assert_eq!(r.len(), 0);
        assert!(r.items().is_empty());
    }
}
