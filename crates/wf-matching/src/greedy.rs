//! Greedy module mapping (Silva et al., reference \[34\] of the paper).
//!
//! The greedy strategy repeatedly selects the highest-similarity pair among
//! the still-unmapped left and right items until no pair with positive
//! similarity remains.  The paper found (Section 5.1.3, Fig. 7) that on its
//! corpus this simple strategy produces rankings indistinguishable from the
//! optimal maximum-weight mapping, because module mappings are mostly
//! unambiguous; reproducing that comparison is the point of keeping both.

use crate::mapping::{MappedPair, Mapping, SimilarityMatrix};

/// Computes a greedy one-to-one mapping.
///
/// Ties are broken deterministically by (row, column) order so that results
/// are reproducible across runs.
pub fn greedy_mapping(matrix: &SimilarityMatrix) -> Mapping {
    if matrix.is_empty() {
        return Mapping::default();
    }
    // Collect all positive cells and sort by descending weight, then by
    // ascending (row, col) for deterministic tie breaking.
    let mut cells: Vec<MappedPair> = Vec::new();
    for i in 0..matrix.rows() {
        for j in 0..matrix.cols() {
            let w = matrix.get(i, j);
            if w > 0.0 {
                cells.push(MappedPair {
                    left: i,
                    right: j,
                    weight: w,
                });
            }
        }
    }
    cells.sort_by(|a, b| {
        b.weight
            .partial_cmp(&a.weight)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.left.cmp(&b.left))
            .then(a.right.cmp(&b.right))
    });

    let mut used_left = vec![false; matrix.rows()];
    let mut used_right = vec![false; matrix.cols()];
    let mut pairs = Vec::new();
    for cell in cells {
        if !used_left[cell.left] && !used_right[cell.right] {
            used_left[cell.left] = true;
            used_right[cell.right] = true;
            pairs.push(cell);
        }
    }
    Mapping::new(pairs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_matrix_yields_empty_mapping() {
        assert!(greedy_mapping(&SimilarityMatrix::zeros(0, 0)).is_empty());
        assert!(greedy_mapping(&SimilarityMatrix::zeros(3, 0)).is_empty());
    }

    #[test]
    fn zero_weights_are_never_mapped() {
        let m = SimilarityMatrix::zeros(2, 2);
        assert!(greedy_mapping(&m).is_empty());
    }

    #[test]
    fn picks_best_pairs_first() {
        let m = SimilarityMatrix::from_rows(vec![vec![0.9, 0.8], vec![0.8, 0.1]]);
        let mapping = greedy_mapping(&m);
        assert_eq!(mapping.len(), 2);
        assert_eq!(
            mapping.right_of(0),
            Some(0),
            "greedy grabs the 0.9 cell first"
        );
        assert_eq!(mapping.right_of(1), Some(1));
        assert!((mapping.total_weight() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn is_one_to_one_on_rectangular_matrices() {
        let m = SimilarityMatrix::from_rows(vec![vec![0.5, 0.6, 0.7], vec![0.5, 0.6, 0.7]]);
        let mapping = greedy_mapping(&m);
        assert_eq!(mapping.len(), 2);
        let mut rights: Vec<usize> = mapping.pairs.iter().map(|p| p.right).collect();
        rights.dedup();
        assert_eq!(rights.len(), 2);
    }

    #[test]
    fn tie_breaking_is_deterministic() {
        let m = SimilarityMatrix::from_rows(vec![vec![0.5, 0.5], vec![0.5, 0.5]]);
        let a = greedy_mapping(&m);
        let b = greedy_mapping(&m);
        assert_eq!(a, b);
        assert_eq!(a.right_of(0), Some(0), "row-major tie break");
        assert_eq!(a.right_of(1), Some(1));
    }

    #[test]
    fn perfect_identity_matrix_maps_diagonally() {
        let m = SimilarityMatrix::from_fn(4, 4, |i, j| if i == j { 1.0 } else { 0.2 });
        let mapping = greedy_mapping(&m);
        assert_eq!(mapping.len(), 4);
        for p in &mapping.pairs {
            assert_eq!(p.left, p.right);
            assert_eq!(p.weight, 1.0);
        }
    }
}
