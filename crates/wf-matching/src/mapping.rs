//! Common types shared by all mapping algorithms.

use std::fmt;

/// One mapped pair of items: a left index, a right index and the similarity
/// weight of the pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MappedPair {
    /// Index into the left item list (rows of the similarity matrix).
    pub left: usize,
    /// Index into the right item list (columns of the similarity matrix).
    pub right: usize,
    /// The similarity weight of the pair.
    pub weight: f64,
}

/// A (partial) one-to-one mapping between two item lists.
///
/// Every left index and every right index occurs in at most one pair.  Pairs
/// with zero weight are never included: they contribute nothing to the
/// additive similarity scores of the paper and their omission keeps greedy
/// and optimal mappings comparable.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Mapping {
    /// The mapped pairs, sorted by left index.
    pub pairs: Vec<MappedPair>,
}

impl Mapping {
    /// Creates a mapping from raw pairs, sorting by left index and asserting
    /// (in debug builds) that the one-to-one property holds.
    pub fn new(mut pairs: Vec<MappedPair>) -> Self {
        pairs.sort_by_key(|p| p.left);
        debug_assert!(
            {
                let mut lefts: Vec<usize> = pairs.iter().map(|p| p.left).collect();
                let mut rights: Vec<usize> = pairs.iter().map(|p| p.right).collect();
                lefts.dedup();
                rights.sort_unstable();
                rights.dedup();
                lefts.len() == pairs.len() && rights.len() == pairs.len()
            },
            "mapping must be one-to-one"
        );
        Mapping { pairs }
    }

    /// The number of mapped pairs.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// True if nothing was mapped.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// The additive similarity score `Σ sim(m, m')` over all mapped pairs —
    /// the `nnsim` building block of the paper's measures.
    pub fn total_weight(&self) -> f64 {
        self.pairs.iter().map(|p| p.weight).sum()
    }

    /// The right partner mapped to a given left index, if any.
    pub fn right_of(&self, left: usize) -> Option<usize> {
        self.pairs.iter().find(|p| p.left == left).map(|p| p.right)
    }

    /// The left partner mapped to a given right index, if any.
    pub fn left_of(&self, right: usize) -> Option<usize> {
        self.pairs.iter().find(|p| p.right == right).map(|p| p.left)
    }
}

impl fmt::Display for Mapping {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, p) in self.pairs.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}↔{} ({:.3})", p.left, p.right, p.weight)?;
        }
        write!(f, "}}")
    }
}

/// The mapping strategies of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MappingStrategy {
    /// Greedy selection of the highest-weight remaining pair (ref. \[34\]).
    Greedy,
    /// Maximum-weight bipartite matching, `mw` (ref. \[4\]).
    MaximumWeight,
    /// Maximum-weight non-crossing matching, `mwnc` (ref. \[27\]); requires
    /// that the item order is meaningful (e.g. modules along a path).
    MaximumWeightNonCrossing,
}

impl fmt::Display for MappingStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MappingStrategy::Greedy => "greedy",
            MappingStrategy::MaximumWeight => "mw",
            MappingStrategy::MaximumWeightNonCrossing => "mwnc",
        };
        f.write_str(s)
    }
}

/// A dense rectangular matrix of pairwise similarities.
///
/// Rows index the left item list, columns the right item list.  Values are
/// expected to be finite and non-negative (similarities in `[0, 1]` in
/// practice); negative values are clamped to zero on construction so that
/// "no similarity" and "do not map" coincide.
#[derive(Debug, Clone, PartialEq)]
pub struct SimilarityMatrix {
    rows: usize,
    cols: usize,
    values: Vec<f64>,
}

impl SimilarityMatrix {
    /// Creates a matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        SimilarityMatrix {
            rows,
            cols,
            values: vec![0.0; rows * cols],
        }
    }

    /// Builds a matrix from row vectors.  All rows must have equal length.
    ///
    /// # Panics
    /// Panics if the rows are ragged.
    pub fn from_rows(rows: Vec<Vec<f64>>) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, Vec::len);
        assert!(
            rows.iter().all(|row| row.len() == c),
            "all rows must have the same length"
        );
        let mut m = SimilarityMatrix::zeros(r, c);
        for (i, row) in rows.into_iter().enumerate() {
            for (j, v) in row.into_iter().enumerate() {
                m.set(i, j, v);
            }
        }
        m
    }

    /// Fills a matrix by evaluating `f(i, j)` for every cell.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = SimilarityMatrix::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m.set(i, j, f(i, j));
            }
        }
        m
    }

    /// Number of rows (left items).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (right items).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Reads a cell.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> f64 {
        self.values[row * self.cols + col]
    }

    /// Writes a cell, clamping negative and NaN values to zero.
    #[inline]
    pub fn set(&mut self, row: usize, col: usize, value: f64) {
        let v = if value.is_finite() && value > 0.0 {
            value
        } else {
            0.0
        };
        self.values[row * self.cols + col] = v;
    }

    /// True if the matrix has no cells.
    pub fn is_empty(&self) -> bool {
        self.rows == 0 || self.cols == 0
    }

    /// The largest value in the matrix (0.0 for empty matrices).
    pub fn max_value(&self) -> f64 {
        self.values.iter().copied().fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mapping_accessors() {
        let m = Mapping::new(vec![
            MappedPair {
                left: 2,
                right: 0,
                weight: 0.5,
            },
            MappedPair {
                left: 0,
                right: 1,
                weight: 1.0,
            },
        ]);
        assert_eq!(m.len(), 2);
        assert!(!m.is_empty());
        assert_eq!(m.pairs[0].left, 0, "pairs are sorted by left index");
        assert_eq!(m.total_weight(), 1.5);
        assert_eq!(m.right_of(2), Some(0));
        assert_eq!(m.left_of(1), Some(0));
        assert_eq!(m.right_of(7), None);
        assert_eq!(m.left_of(7), None);
        assert_eq!(m.to_string(), "{0↔1 (1.000), 2↔0 (0.500)}");
    }

    #[test]
    #[should_panic(expected = "one-to-one")]
    #[cfg(debug_assertions)]
    fn duplicate_left_index_is_rejected_in_debug() {
        let _ = Mapping::new(vec![
            MappedPair {
                left: 0,
                right: 0,
                weight: 0.5,
            },
            MappedPair {
                left: 0,
                right: 1,
                weight: 0.5,
            },
        ]);
    }

    #[test]
    fn matrix_construction_and_access() {
        let m = SimilarityMatrix::from_rows(vec![vec![0.1, 0.2], vec![0.3, 0.4], vec![0.5, 0.6]]);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 2);
        assert_eq!(m.get(1, 1), 0.4);
        assert_eq!(m.max_value(), 0.6);
        assert!(!m.is_empty());
        assert!(SimilarityMatrix::zeros(0, 3).is_empty());
    }

    #[test]
    fn matrix_from_fn_and_clamping() {
        let mut m = SimilarityMatrix::from_fn(2, 2, |i, j| (i + j) as f64 / 2.0);
        assert_eq!(m.get(1, 1), 1.0);
        m.set(0, 0, -3.0);
        assert_eq!(m.get(0, 0), 0.0);
        m.set(0, 0, f64::NAN);
        assert_eq!(m.get(0, 0), 0.0);
    }

    #[test]
    #[should_panic(expected = "same length")]
    fn ragged_rows_panic() {
        let _ = SimilarityMatrix::from_rows(vec![vec![0.1], vec![0.2, 0.3]]);
    }

    #[test]
    fn strategy_display() {
        assert_eq!(MappingStrategy::Greedy.to_string(), "greedy");
        assert_eq!(MappingStrategy::MaximumWeight.to_string(), "mw");
        assert_eq!(
            MappingStrategy::MaximumWeightNonCrossing.to_string(),
            "mwnc"
        );
    }
}
