//! # wf-matching — module mapping algorithms
//!
//! After all pairwise module similarities between two workflows have been
//! computed, a *mapping* of the modules onto each other has to be
//! established (paper Section 2.1.2).  This crate implements the three
//! strategies the paper uses:
//!
//! * [`greedy`] — greedy selection of mapped module pairs in descending
//!   similarity order (Silva et al., reference \[34\]),
//! * [`hungarian`] — the mapping of maximum overall weight (`mw`, Bergmann &
//!   Gil, reference \[4\]), computed with the Kuhn–Munkres / Hungarian
//!   algorithm in `O(n³)`,
//! * [`noncrossing`] — the maximum-weight *non-crossing* matching (`mwnc`,
//!   Malucelli et al., reference \[27\]) used when the topological
//!   decomposition imposes an order on the modules (the Path Sets measure).
//!
//! All algorithms operate on a dense [`SimilarityMatrix`] and produce a
//! [`Mapping`] — a set of `(left, right, weight)` pairs in which each left
//! and each right index appears at most once.

#![deny(unsafe_code)]

pub mod greedy;
pub mod hungarian;
pub mod mapping;
pub mod noncrossing;

pub use greedy::greedy_mapping;
pub use hungarian::maximum_weight_mapping;
pub use mapping::{MappedPair, Mapping, MappingStrategy, SimilarityMatrix};
pub use noncrossing::maximum_weight_noncrossing_mapping;

/// Computes a mapping with the given strategy.
///
/// This is a convenience dispatcher used by the similarity framework, which
/// lets experiments switch between greedy and maximum-weight mapping through
/// configuration (the Fig. 7 ablation of the paper).
pub fn map_with(strategy: MappingStrategy, matrix: &SimilarityMatrix) -> Mapping {
    match strategy {
        MappingStrategy::Greedy => greedy_mapping(matrix),
        MappingStrategy::MaximumWeight => maximum_weight_mapping(matrix),
        MappingStrategy::MaximumWeightNonCrossing => maximum_weight_noncrossing_mapping(matrix),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dispatcher_selects_the_right_algorithm() {
        // Weights engineered so greedy and maximum-weight differ:
        // greedy picks (0,0)=0.9 then (1,1)=0.1 (total 1.0);
        // optimal picks (0,1)=0.8 and (1,0)=0.8 (total 1.6).
        let m = SimilarityMatrix::from_rows(vec![vec![0.9, 0.8], vec![0.8, 0.1]]);
        let g = map_with(MappingStrategy::Greedy, &m);
        let h = map_with(MappingStrategy::MaximumWeight, &m);
        assert!((g.total_weight() - 1.0).abs() < 1e-9);
        assert!((h.total_weight() - 1.6).abs() < 1e-9);
        let nc = map_with(MappingStrategy::MaximumWeightNonCrossing, &m);
        // Non-crossing forbids the {(0,1),(1,0)} pair, so it agrees with greedy here.
        assert!((nc.total_weight() - 1.0).abs() < 1e-9);
    }
}
