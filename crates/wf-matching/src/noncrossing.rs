//! Maximum-weight non-crossing matching (`mwnc`).
//!
//! When the topological decomposition imposes an order on the modules —
//! in the paper, the modules along a path — the mapping must respect that
//! order: given module orderings `(m1 … mk)` and `(m'1 … m'l)` the result
//! may not contain two mappings `(mi, m'j)` and `(mi+x, m'j−y)` with
//! `x, y ≥ 1` (Section 2.1.2, citing Malucelli et al. \[27\]).
//!
//! With non-negative weights this is the weighted variant of the longest
//! common subsequence problem and is solved by a standard `O(n·m)` dynamic
//! program.

use crate::mapping::{MappedPair, Mapping, SimilarityMatrix};

/// Computes the maximum-weight non-crossing matching between the row
/// sequence and the column sequence of `matrix`.
///
/// The traceback prefers *not* to include zero-weight pairs, so the result
/// contains only pairs that contribute to the score.
pub fn maximum_weight_noncrossing_mapping(matrix: &SimilarityMatrix) -> Mapping {
    let (n, m) = (matrix.rows(), matrix.cols());
    if n == 0 || m == 0 {
        return Mapping::default();
    }
    // dp[i][j] = best total weight using rows < i and cols < j.
    let mut dp = vec![vec![0.0f64; m + 1]; n + 1];
    for i in 1..=n {
        for j in 1..=m {
            let take = dp[i - 1][j - 1] + matrix.get(i - 1, j - 1);
            dp[i][j] = dp[i - 1][j].max(dp[i][j - 1]).max(take);
        }
    }
    // Traceback, preferring skips over zero-gain matches.
    let mut pairs = Vec::new();
    let (mut i, mut j) = (n, m);
    while i > 0 && j > 0 {
        let here = dp[i][j];
        if here == dp[i - 1][j] {
            i -= 1;
        } else if here == dp[i][j - 1] {
            j -= 1;
        } else {
            let w = matrix.get(i - 1, j - 1);
            debug_assert!((dp[i - 1][j - 1] + w - here).abs() < 1e-12);
            if w > 0.0 {
                pairs.push(MappedPair {
                    left: i - 1,
                    right: j - 1,
                    weight: w,
                });
            }
            i -= 1;
            j -= 1;
        }
    }
    pairs.reverse();
    Mapping::new(pairs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hungarian::maximum_weight_mapping;

    fn is_noncrossing(mapping: &Mapping) -> bool {
        // pairs are sorted by left; rights must be strictly increasing.
        mapping
            .pairs
            .windows(2)
            .all(|w| w[0].right < w[1].right && w[0].left < w[1].left)
    }

    #[test]
    fn empty_inputs() {
        assert!(maximum_weight_noncrossing_mapping(&SimilarityMatrix::zeros(0, 0)).is_empty());
        assert!(maximum_weight_noncrossing_mapping(&SimilarityMatrix::zeros(4, 0)).is_empty());
    }

    #[test]
    fn identity_sequences_map_fully() {
        let m = SimilarityMatrix::from_fn(4, 4, |i, j| if i == j { 1.0 } else { 0.0 });
        let mapping = maximum_weight_noncrossing_mapping(&m);
        assert_eq!(mapping.len(), 4);
        assert!((mapping.total_weight() - 4.0).abs() < 1e-9);
        assert!(is_noncrossing(&mapping));
    }

    #[test]
    fn crossing_pairs_are_forbidden() {
        // The optimal unrestricted matching would cross: (0,1) and (1,0).
        let m = SimilarityMatrix::from_rows(vec![vec![0.1, 0.9], vec![0.9, 0.1]]);
        let nc = maximum_weight_noncrossing_mapping(&m);
        let unrestricted = maximum_weight_mapping(&m);
        assert!(is_noncrossing(&nc));
        assert!((unrestricted.total_weight() - 1.8).abs() < 1e-9);
        assert!(
            (nc.total_weight() - 0.9).abs() < 1e-9,
            "must pick only one of the crossing pairs"
        );
        assert_eq!(nc.len(), 1);
    }

    #[test]
    fn respects_order_with_insertions() {
        // Path a-b-c against a-x-b-c: b and c shift right by one.
        let labels_left = ["a", "b", "c"];
        let labels_right = ["a", "x", "b", "c"];
        let m = SimilarityMatrix::from_fn(3, 4, |i, j| {
            if labels_left[i] == labels_right[j] {
                1.0
            } else {
                0.0
            }
        });
        let mapping = maximum_weight_noncrossing_mapping(&m);
        assert_eq!(mapping.len(), 3);
        assert_eq!(mapping.right_of(0), Some(0));
        assert_eq!(mapping.right_of(1), Some(2));
        assert_eq!(mapping.right_of(2), Some(3));
        assert!(is_noncrossing(&mapping));
    }

    #[test]
    fn zero_weight_pairs_are_not_reported() {
        let m = SimilarityMatrix::zeros(3, 3);
        assert!(maximum_weight_noncrossing_mapping(&m).is_empty());
    }

    #[test]
    fn never_exceeds_unrestricted_maximum() {
        let mut state = 0xdeadbeefu64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / (u32::MAX as f64)
        };
        for trial in 0..25 {
            let rows = 1 + (trial % 5);
            let cols = 1 + (trial % 7);
            let m = SimilarityMatrix::from_fn(rows, cols, |_, _| next());
            let nc = maximum_weight_noncrossing_mapping(&m);
            let mw = maximum_weight_mapping(&m);
            assert!(nc.total_weight() <= mw.total_weight() + 1e-9);
            assert!(is_noncrossing(&nc));
        }
    }

    #[test]
    fn matches_brute_force_on_small_instances() {
        // Brute force all non-crossing matchings of a 3x3 matrix.
        fn brute(m: &SimilarityMatrix, i: usize, j: usize) -> f64 {
            if i >= m.rows() || j >= m.cols() {
                return 0.0;
            }
            let skip_i = brute(m, i + 1, j);
            let skip_j = brute(m, i, j + 1);
            let take = m.get(i, j) + brute(m, i + 1, j + 1);
            skip_i.max(skip_j).max(take)
        }
        let m = SimilarityMatrix::from_rows(vec![
            vec![0.3, 0.8, 0.2],
            vec![0.9, 0.1, 0.4],
            vec![0.2, 0.7, 0.6],
        ]);
        let dp = maximum_weight_noncrossing_mapping(&m).total_weight();
        let bf = brute(&m, 0, 0);
        assert!((dp - bf).abs() < 1e-9);
    }
}
