//! Maximum-weight bipartite matching (`mw`) via the Hungarian algorithm.
//!
//! The paper's module mapping of "maximum overall weight" (Bergmann & Gil,
//! reference \[4\]) is the classic assignment problem.  We solve it with the
//! Kuhn–Munkres algorithm using dual potentials, `O(n³)` in the padded
//! square dimension.  Because all similarities are non-negative, padding a
//! rectangular matrix with zero-weight cells and afterwards dropping
//! zero-weight assignments yields a maximum-weight (not necessarily perfect)
//! matching.

use crate::mapping::{MappedPair, Mapping, SimilarityMatrix};

/// Computes a maximum-weight one-to-one mapping between rows and columns.
///
/// Pairs with zero similarity are omitted from the result: they carry no
/// information and would otherwise make the mapping size depend on matrix
/// shape rather than on actual similarity.
pub fn maximum_weight_mapping(matrix: &SimilarityMatrix) -> Mapping {
    if matrix.is_empty() {
        return Mapping::default();
    }
    let n = matrix.rows().max(matrix.cols());
    let max_w = matrix.max_value();
    if max_w <= 0.0 {
        return Mapping::default();
    }
    // Convert to a square cost matrix: cost = max_w - weight, padding with
    // cost = max_w (i.e. weight 0).
    let cost = |i: usize, j: usize| -> f64 {
        if i < matrix.rows() && j < matrix.cols() {
            max_w - matrix.get(i, j)
        } else {
            max_w
        }
    };

    // Kuhn–Munkres with potentials (1-indexed internals).
    let inf = f64::INFINITY;
    let mut u = vec![0.0f64; n + 1];
    let mut v = vec![0.0f64; n + 1];
    let mut p = vec![0usize; n + 1]; // p[j] = row matched to column j
    let mut way = vec![0usize; n + 1];
    for i in 1..=n {
        p[0] = i;
        let mut j0 = 0usize;
        let mut minv = vec![inf; n + 1];
        let mut used = vec![false; n + 1];
        loop {
            used[j0] = true;
            let i0 = p[j0];
            let mut delta = inf;
            let mut j1 = 0usize;
            for j in 1..=n {
                if !used[j] {
                    let cur = cost(i0 - 1, j - 1) - u[i0] - v[j];
                    if cur < minv[j] {
                        minv[j] = cur;
                        way[j] = j0;
                    }
                    if minv[j] < delta {
                        delta = minv[j];
                        j1 = j;
                    }
                }
            }
            for j in 0..=n {
                if used[j] {
                    u[p[j]] += delta;
                    v[j] -= delta;
                } else {
                    minv[j] -= delta;
                }
            }
            j0 = j1;
            if p[j0] == 0 {
                break;
            }
        }
        loop {
            let j1 = way[j0];
            p[j0] = p[j1];
            j0 = j1;
            if j0 == 0 {
                break;
            }
        }
    }

    let mut pairs = Vec::new();
    for (j, &i) in p.iter().enumerate().skip(1) {
        if i == 0 {
            continue;
        }
        let (row, col) = (i - 1, j - 1);
        if row < matrix.rows() && col < matrix.cols() {
            let w = matrix.get(row, col);
            if w > 0.0 {
                pairs.push(MappedPair {
                    left: row,
                    right: col,
                    weight: w,
                });
            }
        }
    }
    Mapping::new(pairs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greedy::greedy_mapping;

    #[test]
    fn empty_and_zero_matrices() {
        assert!(maximum_weight_mapping(&SimilarityMatrix::zeros(0, 5)).is_empty());
        assert!(maximum_weight_mapping(&SimilarityMatrix::zeros(3, 3)).is_empty());
    }

    #[test]
    fn beats_greedy_on_the_classic_counterexample() {
        let m = SimilarityMatrix::from_rows(vec![vec![0.9, 0.8], vec![0.8, 0.1]]);
        let optimal = maximum_weight_mapping(&m);
        let greedy = greedy_mapping(&m);
        assert!((optimal.total_weight() - 1.6).abs() < 1e-9);
        assert!(optimal.total_weight() > greedy.total_weight());
    }

    #[test]
    fn identity_matrix_maps_diagonally() {
        let m = SimilarityMatrix::from_fn(5, 5, |i, j| if i == j { 1.0 } else { 0.0 });
        let mapping = maximum_weight_mapping(&m);
        assert_eq!(mapping.len(), 5);
        assert!((mapping.total_weight() - 5.0).abs() < 1e-9);
        for p in &mapping.pairs {
            assert_eq!(p.left, p.right);
        }
    }

    #[test]
    fn rectangular_matrices_map_min_dimension_items() {
        let m =
            SimilarityMatrix::from_rows(vec![vec![0.2, 0.9, 0.3, 0.1], vec![0.8, 0.9, 0.1, 0.2]]);
        let mapping = maximum_weight_mapping(&m);
        assert_eq!(mapping.len(), 2);
        // Optimal: row0->col1 (0.9), row1->col0 (0.8) = 1.7.
        assert!((mapping.total_weight() - 1.7).abs() < 1e-9);

        // Transposed orientation gives the same total.
        let t = SimilarityMatrix::from_fn(4, 2, |i, j| m.get(j, i));
        let mapping_t = maximum_weight_mapping(&t);
        assert!((mapping_t.total_weight() - 1.7).abs() < 1e-9);
    }

    #[test]
    fn zero_weight_assignments_are_dropped() {
        let m = SimilarityMatrix::from_rows(vec![vec![1.0, 0.0], vec![0.0, 0.0]]);
        let mapping = maximum_weight_mapping(&m);
        assert_eq!(mapping.len(), 1);
        assert_eq!(mapping.pairs[0].left, 0);
        assert_eq!(mapping.pairs[0].right, 0);
    }

    #[test]
    fn never_worse_than_greedy_on_random_matrices() {
        // Deterministic pseudo-random values via a simple LCG so the test
        // does not need the rand crate at this level.
        let mut state = 0x12345678u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / (u32::MAX as f64)
        };
        for trial in 0..25 {
            let rows = 1 + (trial % 6);
            let cols = 1 + (trial % 5);
            let m = SimilarityMatrix::from_fn(rows, cols, |_, _| next());
            let optimal = maximum_weight_mapping(&m).total_weight();
            let greedy = greedy_mapping(&m).total_weight();
            assert!(
                optimal + 1e-9 >= greedy,
                "optimal {optimal} must be >= greedy {greedy} ({rows}x{cols})"
            );
        }
    }

    #[test]
    fn matches_exhaustive_optimum_on_small_matrices() {
        // Brute-force all permutations for 3x3 matrices and compare.
        let m = SimilarityMatrix::from_rows(vec![
            vec![0.1, 0.7, 0.3],
            vec![0.9, 0.2, 0.4],
            vec![0.5, 0.6, 0.8],
        ]);
        let perms = [
            [0, 1, 2],
            [0, 2, 1],
            [1, 0, 2],
            [1, 2, 0],
            [2, 0, 1],
            [2, 1, 0],
        ];
        let brute = perms
            .iter()
            .map(|p| (0..3).map(|i| m.get(i, p[i])).sum::<f64>())
            .fold(0.0, f64::max);
        let hungarian = maximum_weight_mapping(&m).total_weight();
        assert!((hungarian - brute).abs() < 1e-9);
    }
}
