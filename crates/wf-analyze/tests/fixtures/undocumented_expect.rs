//! Fixture: an `.expect()` whose reason is an empty string.

pub fn first_len(items: &[String]) -> usize {
    let first = items.first().expect("");
    first.len()
}
