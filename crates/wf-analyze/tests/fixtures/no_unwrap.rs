//! Fixture: a bare `.unwrap()` in library code.

pub fn first_len(items: &[String]) -> usize {
    let first = items.first().unwrap();
    first.len()
}
