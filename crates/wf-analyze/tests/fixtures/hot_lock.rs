//! Fixture: a hot-marked function acquiring a lock.

use std::sync::Mutex;

// lint:hot the innermost scoring loop of the fixture
pub fn scored(total: &Mutex<u64>) -> u64 {
    *total.lock().expect("fixture lock is never poisoned")
}
