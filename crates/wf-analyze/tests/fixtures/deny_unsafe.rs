//! Fixture: a crate root that forgot `#![deny(unsafe_code)]`.

pub fn answer() -> u32 {
    42
}
