//! Fixture: a pub error enum with a Display impl but no
//! `std::error::Error` impl in the file.

pub enum SnapshotReadError {
    Missing,
}

impl std::fmt::Display for SnapshotReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("snapshot missing")
    }
}
