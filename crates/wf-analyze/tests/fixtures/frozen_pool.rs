//! Fixture: interning on a read path.

pub fn resolve_or_add(pool: &mut StringPool, token: &str) -> u32 {
    pool.intern(token)
}
