//! Fixture: an allow comment with no reason.

pub fn first_len(items: &[String]) -> usize {
    // lint:allow(no-unwrap)
    let first = items.first().unwrap();
    first.len()
}
