//! Fixture: a hot-marked function allocating per call.

// lint:hot the innermost scoring loop of the fixture
pub fn squares(n: usize) -> Vec<usize> {
    let mut out = vec![0usize; n];
    for (i, slot) in out.iter_mut().enumerate() {
        *slot = i * i;
    }
    out
}
