//! Fixture: a violation correctly suppressed with a reasoned allow.

pub fn first_len(items: &[String]) -> usize {
    // lint:allow(no-unwrap) fixture demonstrating a documented exception
    let first = items.first().unwrap();
    first.len()
}
