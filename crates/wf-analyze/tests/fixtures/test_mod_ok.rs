//! Fixture: unwraps inside `#[cfg(test)]` are fine.

pub fn double(x: u32) -> u32 {
    x * 2
}

#[cfg(test)]
mod tests {
    use super::double;

    #[test]
    fn doubles() {
        let parsed: u32 = "21".parse().unwrap();
        assert_eq!(double(parsed), 42);
    }
}
