//! Fixture: an unsafe block.

pub fn transmuted(x: u32) -> i32 {
    unsafe { std::mem::transmute(x) }
}
