//! Fixture: a committed `dbg!`.

pub fn traced(x: u32) -> u32 {
    dbg!(x + 1)
}
