//! Deterministic concurrency model checks for the lock-free search core.
//!
//! These tests run the *real* production types — `SearchThreshold`,
//! `TopK`/`merge_top_k`, `CorpusService` — under the vendored
//! `shuttle-mini` scheduler, which serializes every instrumented atomic
//! and lock operation and explores thread interleavings either
//! exhaustively (small state spaces) or randomly-but-reproducibly from a
//! fixed seed.  A failure reports the exact schedule trace; re-running
//! with the same seed replays the identical interleaving.
//!
//! The suite closes with a mutation test: a copy of the threshold with
//! its `fetch_max` "un-fixed" into a racy load+store must be *caught* by
//! the checker, with the same failing schedule on every run — evidence
//! the harness can actually see the bug class it exists to prevent.

#![deny(unsafe_code)]

use std::sync::atomic::Ordering;
use std::sync::Arc;

use shuttle_mini::sync::atomic::AtomicU64;
use shuttle_mini::{check_exhaustive, check_random, thread};
use wf_model::{builder::WorkflowBuilder, ModuleType, Workflow, WorkflowId};
use wf_repo::{merge_top_k, SearchHit, SearchThreshold, TopK};
use wf_sim::{CorpusService, ShardedCorpus, SimilarityConfig};

// ---------------------------------------------------------------------
// SearchThreshold: the shared lock-free score floor.
// ---------------------------------------------------------------------

/// Racing `observe` calls from three threads must always leave the floor
/// at the maximum published score, under *every* interleaving, and each
/// thread must see the floor monotonically non-decreasing.
#[test]
fn threshold_floor_is_max_under_every_interleaving() {
    let report = check_exhaustive(50_000, || {
        let threshold = Arc::new(SearchThreshold::new());
        let monotone = {
            let t = Arc::clone(&threshold);
            thread::spawn(move || {
                t.observe(0.25);
                let after = t.floor();
                assert!(after >= 0.25, "own observation not visible: {after}");
            })
        };
        let publisher = {
            let t = Arc::clone(&threshold);
            thread::spawn(move || t.observe(0.75))
        };
        threshold.observe(0.5);
        monotone.join().expect("monotone observer panicked");
        publisher.join().expect("publisher panicked");
        assert_eq!(threshold.floor(), 0.75, "floor must be the global max");
    });
    report.assert_ok();
    assert!(
        report.complete,
        "the threshold schedule tree must be fully explored, \
         ran {} schedules",
        report.schedules
    );
}

/// Non-finite and negative scores must be ignored under races too.
#[test]
fn threshold_ignores_junk_scores_under_races() {
    let report = check_exhaustive(50_000, || {
        let threshold = Arc::new(SearchThreshold::new());
        let t = Arc::clone(&threshold);
        let junk = thread::spawn(move || {
            t.observe(f64::NAN);
            t.observe(-3.0);
            t.observe(f64::INFINITY);
        });
        threshold.observe(0.4);
        junk.join().expect("junk observer panicked");
        assert_eq!(threshold.floor(), 0.4);
    });
    report.assert_ok();
    assert!(report.complete);
}

// ---------------------------------------------------------------------
// merge_top_k: gather determinism under racing partial producers.
// ---------------------------------------------------------------------

fn hit(id: &str, score: f64) -> SearchHit {
    SearchHit {
        id: WorkflowId::new(id),
        score,
    }
}

/// Two workers scan disjoint candidate slices with a shared threshold,
/// pruning strictly below the floor, exactly like the per-shard scan.
/// Whatever the interleaving, the merged result must be the same top-k
/// the sequential scan produces: threshold pruning is admissible, so the
/// race can change *work done*, never *results*.
#[test]
fn merged_top_k_is_identical_under_every_interleaving() {
    const K: usize = 2;
    let slice_a = [("a1", 0.9_f64), ("a2", 0.5), ("a3", 0.1)];
    let slice_b = [("b1", 0.8_f64), ("b2", 0.7), ("b3", 0.3)];
    // The schedule-independent reference: top-k over both slices.
    let reference = merge_top_k(
        [
            slice_a.iter().map(|(i, s)| hit(i, *s)).collect::<Vec<_>>(),
            slice_b.iter().map(|(i, s)| hit(i, *s)).collect::<Vec<_>>(),
        ],
        K,
    );

    let scan = |slice: &[(&str, f64)], threshold: &SearchThreshold| -> Vec<SearchHit> {
        let mut top = TopK::new(K);
        for (id, score) in slice {
            // Strictly-below-floor pruning on an exact bound, as in the
            // production scan loop.
            if *score < threshold.floor() {
                continue;
            }
            top.insert(hit(id, *score));
            if let Some(worst) = top.worst_score() {
                threshold.observe(worst);
            }
        }
        top.into_hits()
    };

    let report = check_exhaustive(200_000, move || {
        let threshold = Arc::new(SearchThreshold::new());
        let t = Arc::clone(&threshold);
        let worker = thread::spawn(move || scan(&slice_b, &t));
        let part_a = scan(&slice_a, &threshold);
        let part_b = worker.join().expect("scan worker panicked");
        let merged = merge_top_k([part_a, part_b], K);
        assert_eq!(merged, reference, "merge must be schedule-independent");
    });
    report.assert_ok();
    assert!(
        report.complete,
        "two-worker scan tree must be fully explored, ran {} schedules",
        report.schedules
    );
}

// ---------------------------------------------------------------------
// CorpusService: scatter-gather search racing live churn.
// ---------------------------------------------------------------------

fn wf(id: &str, labels: &[&str]) -> Workflow {
    let mut b = WorkflowBuilder::new(id)
        .title(format!("workflow {id}"))
        .tag("model-check");
    for l in labels {
        b = b.module(*l, ModuleType::WsdlService, |m| m);
    }
    for pair in labels.windows(2) {
        b = b.link(pair[0], pair[1]);
    }
    b.build().expect("fixture workflow is well-formed")
}

fn base_workflows() -> Vec<Workflow> {
    vec![
        wf("a", &["fetch sequence", "run blast", "render report"]),
        wf("b", &["fetch sequence", "run blast", "plot hits"]),
        wf("c", &["parse tree", "cluster genes"]),
        wf("d", &["parse tree", "cluster genes", "plot hits"]),
        wf("e", &["run blast"]),
    ]
}

fn new_workflow() -> Workflow {
    wf(
        "g",
        &["fetch sequence", "run blast", "render report", "plot hits"],
    )
}

fn quiescent_reference(workflows: Vec<Workflow>, query: &str, k: usize) -> Vec<SearchHit> {
    ShardedCorpus::build(SimilarityConfig::best_module_sets(), 2, workflows)
        .search(&WorkflowId::new(query), k)
        .expect("query resident in reference corpus")
}

/// One churn thread runs `remove(b)` then `add(g)` while the root thread
/// searches.  Per-shard snapshots are taken at lock instants, so the
/// result must equal the quiescent answer of one of the four corpus
/// states the churn can expose: {with/without b} x {with/without g}.
/// Seeded random exploration: every iteration's schedule replays from
/// `(seed, iteration)` alone.
#[test]
fn service_search_racing_churn_matches_a_quiescent_state() {
    const K: usize = 3;
    const QUERY: &str = "a";
    let references: Arc<Vec<Vec<SearchHit>>> = Arc::new(
        [
            base_workflows(),
            // without b
            base_workflows()
                .into_iter()
                .filter(|w| w.id.0 != "b")
                .collect(),
            // with g
            base_workflows()
                .into_iter()
                .chain([new_workflow()])
                .collect(),
            // without b, with g
            base_workflows()
                .into_iter()
                .filter(|w| w.id.0 != "b")
                .chain([new_workflow()])
                .collect(),
        ]
        .into_iter()
        .map(|workflows| quiescent_reference(workflows, QUERY, K))
        .collect(),
    );
    // The references must discriminate: churn has to be able to change
    // the answer, or the oracle below proves nothing.
    assert_ne!(references[0], references[1], "removing b must matter");
    assert_ne!(references[0], references[2], "adding g must matter");

    let refs = Arc::clone(&references);
    let report = check_random(0xC0FFEE, 120, move || {
        let service = Arc::new(CorpusService::new(ShardedCorpus::build(
            SimilarityConfig::best_module_sets(),
            2,
            base_workflows(),
        )));
        let churn_service = Arc::clone(&service);
        let churner = thread::spawn(move || {
            let removed = churn_service.remove(&WorkflowId::new("b"));
            assert!(removed.is_some(), "b is resident until this remove");
            churn_service.add(new_workflow());
        });
        let hits = service
            .search(&WorkflowId::new(QUERY), K)
            .expect("query stays resident through churn");
        assert!(
            refs.contains(&hits),
            "search result matches no quiescent corpus state: {hits:?}"
        );
        churner.join().expect("churn thread panicked");
        // Quiescent again: now exactly the {without b, with g} answer.
        let settled = service
            .search(&WorkflowId::new(QUERY), K)
            .expect("query resident after churn");
        assert_eq!(settled, refs[3], "post-churn corpus must be quiescent");
    });
    report.assert_ok();
}

/// A workflow fully removed *before* the search starts must never appear
/// in its results, no matter how a concurrent add interleaves.
#[test]
fn pre_removed_workflow_never_surfaces_in_search() {
    let report = check_random(0xBEEF, 120, || {
        let service = Arc::new(CorpusService::new(ShardedCorpus::build(
            SimilarityConfig::best_module_sets(),
            2,
            base_workflows(),
        )));
        service
            .remove(&WorkflowId::new("b"))
            .expect("b is resident before the race");
        let adder_service = Arc::clone(&service);
        let adder = thread::spawn(move || {
            adder_service.add(new_workflow());
        });
        let hits = service
            .search(&WorkflowId::new("a"), 4)
            .expect("query resident");
        assert!(
            hits.iter().all(|h| h.id.0 != "b"),
            "pre-removed id resurfaced: {hits:?}"
        );
        adder.join().expect("adder thread panicked");
    });
    report.assert_ok();
}

// ---------------------------------------------------------------------
// Racing scatter-gather: per-shard drains against the shared floor.
// ---------------------------------------------------------------------

/// The racing scatter-gather's worker unit — [`wf_sim::drain_shard`], the
/// *real* per-shard frontier scan — run from two threads over the two
/// shards of a real corpus, publishing into one shared `SearchThreshold`.
/// Under every interleaving the merged gather must be bit-identical to
/// the sequential scatter-gather: pruning is strictly below a floor that
/// is always a true worst-of-k of exactly-scored candidates, so the race
/// can only change which worker does the pruning work, never the result.
///
/// (The production racing path spawns plain `std` scoped threads, which
/// shuttle-mini cannot instrument — so the model check races the drains
/// directly on shuttle threads instead.)
#[test]
fn racing_shard_drains_are_schedule_independent() {
    const K: usize = 3;
    const QUERY: &str = "a";
    let sharded = Arc::new(ShardedCorpus::build(
        SimilarityConfig::best_module_sets(),
        2,
        base_workflows(),
    ));
    assert_eq!(sharded.shard_count(), 2);
    assert!(
        sharded.shards().iter().all(|s| !s.is_empty()),
        "both shards must have candidates for the race to mean anything"
    );
    let reference = sharded
        .search(&WorkflowId::new(QUERY), K)
        .expect("query resident");
    assert!(!reference.is_empty());

    let corpus = Arc::clone(&sharded);
    let report = check_exhaustive(500_000, move || {
        let threshold = Arc::new(SearchThreshold::new());
        let worker = {
            let (corpus, threshold) = (Arc::clone(&corpus), Arc::clone(&threshold));
            thread::spawn(move || {
                let shard = &corpus.shards()[1];
                let features = shard
                    .measure()
                    .query_features(corpus.get(&WorkflowId::new(QUERY)).expect("query resident"));
                let mut stats = wf_repo::SearchStats::default();
                wf_sim::drain_shard(
                    shard,
                    &features,
                    &WorkflowId::new(QUERY),
                    K,
                    &threshold,
                    &wf_repo::CancelToken::never(),
                    &mut stats,
                )
            })
        };
        let shard = &corpus.shards()[0];
        let features = shard
            .measure()
            .query_features(corpus.get(&WorkflowId::new(QUERY)).expect("query resident"));
        let mut stats = wf_repo::SearchStats::default();
        let part_0 = wf_sim::drain_shard(
            shard,
            &features,
            &WorkflowId::new(QUERY),
            K,
            &threshold,
            &wf_repo::CancelToken::never(),
            &mut stats,
        );
        let part_1 = worker.join().expect("shard drain worker panicked");
        let merged = merge_top_k([part_0, part_1], K);
        assert_eq!(merged.len(), reference.len(), "hit count must not race");
        for (got, want) in merged.iter().zip(&reference) {
            assert_eq!(got.id, want.id, "ids and tie order must not race");
            assert_eq!(
                got.score.to_bits(),
                want.score.to_bits(),
                "scores must be bit-identical under every schedule"
            );
        }
    });
    report.assert_ok();
    assert!(
        report.complete,
        "racing drain schedule tree must be fully explored, ran {} schedules",
        report.schedules
    );
}

// ---------------------------------------------------------------------
// Mutation test: the checker must catch the un-fixed threshold.
// ---------------------------------------------------------------------

/// `SearchThreshold` with the bug the real one avoids: max via separate
/// load + store instead of `fetch_max`, a racy read-modify-write.
struct BrokenThreshold(AtomicU64);

impl BrokenThreshold {
    fn new() -> Self {
        BrokenThreshold(AtomicU64::new(0.0_f64.to_bits()))
    }

    fn observe(&self, score: f64) {
        if score.is_finite() && score >= 0.0 {
            let current = f64::from_bits(self.0.load(Ordering::Relaxed));
            if score > current {
                // The lost-update window: another observer's store can
                // land between the load above and this store.
                self.0.store(score.to_bits(), Ordering::Relaxed);
            }
        }
    }

    fn floor(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// The exhaustive explorer must find the lost update in the broken
/// threshold — and find the *same* first failing schedule on every run,
/// trace and all.  This is the harness's own regression test: if the
/// scheduler ever stops exploring the racy window, this test fails.
#[test]
fn exhaustive_check_catches_the_unfixed_threshold() {
    let run = || {
        check_exhaustive(50_000, || {
            let threshold = Arc::new(BrokenThreshold::new());
            let t = Arc::clone(&threshold);
            let observer = thread::spawn(move || t.observe(0.25));
            threshold.observe(0.75);
            observer.join().expect("observer panicked");
            assert_eq!(
                threshold.floor(),
                0.75,
                "lost update: the max observation was overwritten"
            );
        })
    };
    let first = run();
    let failure = first.failure.expect("the broken threshold must be caught");
    assert!(
        failure.message.contains("lost update"),
        "unexpected failure: {failure}"
    );
    assert!(!failure.trace.is_empty());
    let second = run();
    let again = second.failure.expect("the same DFS must catch it again");
    assert_eq!(failure.trace, again.trace, "failing schedule must replay");
    assert_eq!(failure.source, again.source);
    assert_eq!(first.schedules, second.schedules);
}
