//! Fixture tests for the `wfsim_lint` engine: each fixture under
//! `tests/fixtures/` violates exactly one rule, and the engine must
//! report exactly that rule at exactly that line.  Two counter-fixtures
//! (a reasoned allow, a `#[cfg(test)]` module) must come back clean.
//!
//! The final test lints the actual workspace tree, which keeps the
//! "repo lints clean" invariant inside plain `cargo test` as well as in
//! the dedicated CI job.

#![deny(unsafe_code)]

use wf_analyze::{config_for_path, lint_source, lint_workspace, LintConfig};

/// Library-core policy: the strictest per-file configuration.
fn library_config() -> LintConfig {
    LintConfig {
        no_unwrap: true,
        read_path: false,
        require_deny_unsafe: false,
        error_display: false,
    }
}

fn basic_config() -> LintConfig {
    LintConfig::default()
}

/// Asserts the fixture yields exactly one diagnostic: `rule` at `line`.
fn assert_single(fixture: &str, source: &str, config: &LintConfig, rule: &str, line: usize) {
    let diagnostics = lint_source(fixture, source, config);
    assert_eq!(
        diagnostics.len(),
        1,
        "{fixture}: expected exactly one diagnostic, got {diagnostics:#?}"
    );
    assert_eq!(diagnostics[0].rule, rule, "{fixture}: wrong rule");
    assert_eq!(diagnostics[0].line, line, "{fixture}: wrong line");
}

#[test]
fn bare_unwrap_is_flagged() {
    assert_single(
        "no_unwrap.rs",
        include_str!("fixtures/no_unwrap.rs"),
        &library_config(),
        "no-unwrap",
        4,
    );
}

#[test]
fn undocumented_expect_is_flagged() {
    assert_single(
        "undocumented_expect.rs",
        include_str!("fixtures/undocumented_expect.rs"),
        &library_config(),
        "no-unwrap",
        4,
    );
}

#[test]
fn unjustified_ordering_is_flagged() {
    assert_single(
        "ordering_comment.rs",
        include_str!("fixtures/ordering_comment.rs"),
        &basic_config(),
        "ordering-comment",
        6,
    );
}

#[test]
fn lock_in_hot_function_is_flagged() {
    assert_single(
        "hot_lock.rs",
        include_str!("fixtures/hot_lock.rs"),
        &basic_config(),
        "hot-no-lock",
        7,
    );
}

#[test]
fn allocation_in_hot_function_is_flagged() {
    assert_single(
        "hot_alloc.rs",
        include_str!("fixtures/hot_alloc.rs"),
        &basic_config(),
        "hot-no-alloc",
        5,
    );
}

#[test]
fn pool_mutation_on_read_path_is_flagged() {
    let config = LintConfig {
        read_path: true,
        ..basic_config()
    };
    assert_single(
        "frozen_pool.rs",
        include_str!("fixtures/frozen_pool.rs"),
        &config,
        "frozen-pool",
        4,
    );
}

#[test]
fn missing_deny_unsafe_is_flagged() {
    let config = LintConfig {
        require_deny_unsafe: true,
        ..basic_config()
    };
    assert_single(
        "deny_unsafe.rs",
        include_str!("fixtures/deny_unsafe.rs"),
        &config,
        "deny-unsafe",
        1,
    );
}

#[test]
fn unsafe_block_is_flagged() {
    assert_single(
        "no_unsafe.rs",
        include_str!("fixtures/no_unsafe.rs"),
        &basic_config(),
        "no-unsafe",
        4,
    );
}

#[test]
fn debug_macro_is_flagged() {
    assert_single(
        "debug_macro.rs",
        include_str!("fixtures/debug_macro.rs"),
        &basic_config(),
        "no-debug-macro",
        4,
    );
}

#[test]
fn reasonless_allow_is_flagged() {
    assert_single(
        "allow_syntax.rs",
        include_str!("fixtures/allow_syntax.rs"),
        &basic_config(),
        "allow-syntax",
        4,
    );
}

#[test]
fn reasoned_allow_suppresses_the_violation() {
    let diagnostics = lint_source(
        "allowed_ok.rs",
        include_str!("fixtures/allowed_ok.rs"),
        &library_config(),
    );
    assert!(diagnostics.is_empty(), "unexpected: {diagnostics:#?}");
}

#[test]
fn cfg_test_regions_are_exempt() {
    let diagnostics = lint_source(
        "test_mod_ok.rs",
        include_str!("fixtures/test_mod_ok.rs"),
        &library_config(),
    );
    assert!(diagnostics.is_empty(), "unexpected: {diagnostics:#?}");
}

#[test]
fn ordering_comment_is_accepted_inline_and_above() {
    let config = basic_config();
    let inline = "use std::sync::atomic::{AtomicU64, Ordering};\n\
                  pub fn f(c: &AtomicU64) -> u64 {\n\
                  \tc.load(Ordering::Relaxed) // ordering: monotone counter, staleness is fine\n\
                  }\n";
    assert!(lint_source("inline.rs", inline, &config).is_empty());
    let above = "use std::sync::atomic::{AtomicU64, Ordering};\n\
                 pub fn f(c: &AtomicU64) -> u64 {\n\
                 \t// ordering: monotone counter, a stale read only under-reports,\n\
                 \t// which every caller tolerates.\n\
                 \tc.load(Ordering::Relaxed)\n\
                 }\n";
    assert!(lint_source("above.rs", above, &config).is_empty());
}

#[test]
fn missing_error_impl_is_flagged() {
    let config = LintConfig {
        error_display: true,
        ..basic_config()
    };
    assert_single(
        "error_display.rs",
        include_str!("fixtures/error_display.rs"),
        &config,
        "error-display",
        4,
    );
}

#[test]
fn complete_error_enum_passes_and_name_matching_is_exact() {
    let config = LintConfig {
        error_display: true,
        ..basic_config()
    };
    // Both impls present → clean, even with a second enum whose name is a
    // prefix of the first (boundary matching must not cross-credit).
    let complete = "pub enum WireError { Bad }\n\
                    impl std::fmt::Display for WireError {\n\
                    \tfn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result { f.write_str(\"bad\") }\n\
                    }\n\
                    impl std::error::Error for WireError {}\n";
    assert!(lint_source("ok.rs", complete, &config).is_empty());

    // `impl ... for WireError` must not satisfy a distinct `Wire` enum.
    let prefixed = format!("pub enum Wire {{ X }}\n{complete}");
    assert!(lint_source("prefix.rs", &prefixed, &config).is_empty());
    let missing = format!("pub enum WireFrameError {{ X }}\n{complete}");
    let diagnostics = lint_source("missing.rs", &missing, &config);
    assert_eq!(diagnostics.len(), 2, "{diagnostics:#?}");
    assert!(diagnostics
        .iter()
        .all(|d| d.rule == "error-display" && d.line == 1));
}

#[test]
fn repo_policy_assigns_configs_by_path() {
    assert!(config_for_path("crates/wf-repo/src/search.rs").no_unwrap);
    assert!(config_for_path("crates/wf-repo/src/search.rs").read_path);
    assert!(!config_for_path("crates/wf-bench/src/lib.rs").no_unwrap);
    assert!(config_for_path("crates/wf-bench/src/lib.rs").require_deny_unsafe);
    assert!(config_for_path("src/lib.rs").require_deny_unsafe);
    assert!(!config_for_path("crates/wf-sim/src/measures.rs").read_path);
    assert!(config_for_path("crates/wf-serve/src/server.rs").no_unwrap);
    assert!(config_for_path("crates/wf-serve/src/protocol.rs").error_display);
    assert!(config_for_path("crates/wf-sim/src/shard.rs").error_display);
    assert!(config_for_path("crates/wf-repo/src/store.rs").error_display);
    assert!(!config_for_path("crates/wf-bench/src/lib.rs").error_display);
}

#[test]
fn the_workspace_tree_lints_clean() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..");
    let diagnostics = lint_workspace(&root).expect("workspace sources are readable");
    assert!(
        diagnostics.is_empty(),
        "the tree must lint clean; found:\n{}",
        diagnostics
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
