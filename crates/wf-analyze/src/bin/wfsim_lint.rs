//! The workspace lint pass, as a CI-runnable binary.
//!
//! ```text
//! cargo run -p wf-analyze --bin wfsim_lint [--rules] [root]
//! ```
//!
//! Walks `src/` and every `crates/*/src/` under `root` (default: the
//! current directory, so `cargo run` from the workspace root just works),
//! prints one `file:line: rule: message` diagnostic per violation, and
//! exits non-zero if there were any.  `--rules` prints the rule table
//! instead.

#![deny(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use wf_analyze::{lint_workspace, RULES};

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--rules" => {
                for rule in RULES {
                    println!("{:<18} {}", rule.id, rule.summary);
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!("usage: wfsim_lint [--rules] [workspace-root]");
                return ExitCode::SUCCESS;
            }
            other => root = Some(PathBuf::from(other)),
        }
    }
    let root = root.unwrap_or_else(|| PathBuf::from("."));
    if !root.is_dir() {
        // A stray file path would walk nothing and report a bogus
        // "clean" — refuse it instead.
        eprintln!(
            "wfsim_lint: {} is not a directory (pass a workspace root)",
            root.display()
        );
        return ExitCode::FAILURE;
    }
    match lint_workspace(&root) {
        Ok(diagnostics) if diagnostics.is_empty() => {
            println!("wfsim_lint: clean");
            ExitCode::SUCCESS
        }
        Ok(diagnostics) => {
            for diagnostic in &diagnostics {
                println!("{diagnostic}");
            }
            println!("wfsim_lint: {} violation(s)", diagnostics.len());
            ExitCode::FAILURE
        }
        Err(error) => {
            eprintln!("wfsim_lint: i/o error: {error}");
            ExitCode::FAILURE
        }
    }
}
