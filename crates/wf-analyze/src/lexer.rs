//! A line-oriented Rust source scanner: the foundation of `wfsim_lint`.
//!
//! The lint rules are token-level, not AST-level, so all they need from a
//! source file is an accurate split of every line into its *code* part and
//! its *comment* part, with string/char literal contents neutralized so a
//! pattern like `".unwrap()"` inside a string can never trip a rule.  The
//! scanner is a character state machine that understands:
//!
//! * line comments (`//`, including doc `///` and `//!`),
//! * nested block comments (`/* /* */ */`),
//! * string literals with escapes, including multi-line strings,
//! * raw (and byte/raw-byte) strings `r#"…"#` with any hash count,
//! * char literals versus lifetimes (`'x'` / `'\n'` versus `'a`).
//!
//! Literal contents are replaced by `_` per character (quotes kept), so
//! downstream rules can still distinguish `.expect("reason")` from
//! `.expect("")` by emptiness while being immune to the contents.

/// One source line, split into code and comment channels.
#[derive(Debug, Clone, Default)]
pub struct ScannedLine {
    /// The line's code with string/char contents blanked to `_`.
    pub code: String,
    /// The text of every comment on the line, concatenated, without the
    /// `//`, `/*`, `*/` markers.
    pub comment: String,
}

impl ScannedLine {
    /// True when the line holds comment text but no code tokens.
    pub fn is_comment_only(&self) -> bool {
        self.code.trim().is_empty() && !self.comment.trim().is_empty()
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Code,
    LineComment,
    BlockComment(u32),
    Str,
    RawStr(u32),
}

/// Scans `source` into per-line code/comment channels.
pub fn scan(source: &str) -> Vec<ScannedLine> {
    let bytes = source.as_bytes();
    let mut lines: Vec<ScannedLine> = vec![ScannedLine::default()];
    let mut state = State::Code;
    let mut i = 0usize;

    // The scanner works on bytes: every construct it recognizes is ASCII,
    // and non-ASCII bytes pass through to whichever channel is active.
    while i < bytes.len() {
        let b = bytes[i];
        if b == b'\n' {
            if state == State::LineComment {
                state = State::Code;
            }
            lines.push(ScannedLine::default());
            i += 1;
            continue;
        }
        let line = lines.last_mut().expect("scanner always has a current line");
        match state {
            State::Code => match b {
                b'/' if bytes.get(i + 1) == Some(&b'/') => {
                    state = State::LineComment;
                    i += 2;
                    // Skip doc-comment thirds (`///`, `//!`) so the
                    // comment channel starts at the text.
                    while matches!(bytes.get(i), Some(b'/') | Some(b'!')) {
                        i += 1;
                    }
                }
                b'/' if bytes.get(i + 1) == Some(&b'*') => {
                    state = State::BlockComment(1);
                    i += 2;
                }
                b'"' => {
                    line.code.push('"');
                    state = State::Str;
                    i += 1;
                }
                b'r' | b'b' => {
                    // Raw / byte / raw-byte string openers; a lone `r` or
                    // `b` that opens nothing is ordinary code.
                    if let Some((hashes, consumed)) = raw_string_opener(&bytes[i..]) {
                        for _ in 0..consumed {
                            line.code.push('_');
                        }
                        line.code.push('"');
                        state = State::RawStr(hashes);
                        i += consumed + 1;
                    } else if b == b'b' && bytes.get(i + 1) == Some(&b'"') {
                        line.code.push('_');
                        line.code.push('"');
                        state = State::Str;
                        i += 2;
                    } else {
                        line.code.push(b as char);
                        i += 1;
                    }
                }
                b'\'' => {
                    if let Some(consumed) = char_literal_len(&bytes[i..]) {
                        line.code.push('\'');
                        for _ in 0..consumed.saturating_sub(2) {
                            line.code.push('_');
                        }
                        line.code.push('\'');
                        i += consumed;
                    } else {
                        // A lifetime; keep the tick as code.
                        line.code.push('\'');
                        i += 1;
                    }
                }
                _ => {
                    line.code.push(b as char);
                    i += 1;
                }
            },
            State::LineComment => {
                line.comment.push(b as char);
                i += 1;
            }
            State::BlockComment(depth) => {
                if b == b'/' && bytes.get(i + 1) == Some(&b'*') {
                    state = State::BlockComment(depth + 1);
                    i += 2;
                } else if b == b'*' && bytes.get(i + 1) == Some(&b'/') {
                    state = if depth == 1 {
                        State::Code
                    } else {
                        State::BlockComment(depth - 1)
                    };
                    i += 2;
                } else {
                    line.comment.push(b as char);
                    i += 1;
                }
            }
            State::Str => match b {
                b'\\' => {
                    line.code.push('_');
                    if bytes.get(i + 1).is_some_and(|n| *n != b'\n') {
                        line.code.push('_');
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                b'"' => {
                    line.code.push('"');
                    state = State::Code;
                    i += 1;
                }
                _ => {
                    line.code.push('_');
                    i += 1;
                }
            },
            State::RawStr(hashes) => {
                if b == b'"' && closes_raw(&bytes[i + 1..], hashes) {
                    line.code.push('"');
                    for _ in 0..hashes {
                        line.code.push('_');
                    }
                    state = State::Code;
                    i += 1 + hashes as usize;
                } else {
                    line.code.push('_');
                    i += 1;
                }
            }
        }
    }
    lines
}

/// Recognizes `r"`, `r#"`, `br"`, `br##"` … at the start of `rest`;
/// returns `(hash_count, bytes before the opening quote)`.
fn raw_string_opener(rest: &[u8]) -> Option<(u32, usize)> {
    let mut j = 0usize;
    if rest.first() == Some(&b'b') {
        j += 1;
    }
    if rest.get(j) != Some(&b'r') {
        return None;
    }
    j += 1;
    let mut hashes = 0u32;
    while rest.get(j) == Some(&b'#') {
        hashes += 1;
        j += 1;
    }
    if rest.get(j) == Some(&b'"') {
        Some((hashes, j))
    } else {
        None
    }
}

/// True when `rest` (the bytes after a `"`) starts with `hashes` hashes.
fn closes_raw(rest: &[u8], hashes: u32) -> bool {
    (0..hashes as usize).all(|k| rest.get(k) == Some(&b'#'))
}

/// Length in bytes of a char literal starting at `rest[0] == b'\''`, or
/// `None` when the tick starts a lifetime instead.
fn char_literal_len(rest: &[u8]) -> Option<usize> {
    match rest.get(1)? {
        b'\\' => {
            // Escaped char literal: scan to the closing tick.
            let mut j = 2usize;
            while j < rest.len() {
                if rest[j] == b'\'' {
                    return Some(j + 1);
                }
                if rest[j] == b'\n' {
                    return None;
                }
                j += 1;
            }
            None
        }
        _ => {
            // `'x'` is a char literal; `'a` (no closing tick after one
            // character) is a lifetime.  Multi-byte UTF-8 scalars are
            // covered by scanning to the tick within a short window.
            let mut j = 2usize;
            while j < rest.len().min(6) {
                if rest[j] == b'\'' {
                    return Some(j + 1);
                }
                if !is_continuation(rest[j]) {
                    return None;
                }
                j += 1;
            }
            None
        }
    }
}

fn is_continuation(b: u8) -> bool {
    (b & 0xC0) == 0x80
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_code_and_line_comment() {
        let lines = scan("let x = 1; // ordering: Relaxed is fine\n");
        assert_eq!(lines[0].code.trim_end(), "let x = 1;");
        assert!(lines[0].comment.contains("ordering: Relaxed"));
    }

    #[test]
    fn blanks_string_contents() {
        let lines = scan("let s = \".unwrap()\";\n");
        assert!(!lines[0].code.contains(".unwrap()"));
        assert!(lines[0].code.contains('"'));
    }

    #[test]
    fn preserves_string_emptiness() {
        let nonempty = scan("x.expect(\"reason\");\n");
        assert!(nonempty[0].code.contains("x.expect(\"_"));
        let empty = scan("x.expect(\"\");\n");
        assert!(empty[0].code.contains("x.expect(\"\")"));
    }

    #[test]
    fn nested_block_comments_span_lines() {
        let lines = scan("a /* one /* two */ still */ b\nc\n");
        assert!(lines[0].code.contains('a'));
        assert!(lines[0].code.contains('b'));
        assert!(lines[0].comment.contains("two"));
        assert_eq!(lines[1].code.trim(), "c");
    }

    #[test]
    fn raw_strings_and_hashes() {
        let lines = scan("let r = r#\"has \".unwrap()\" inside\"#;\n");
        assert!(!lines[0].code.contains(".unwrap()"));
        assert!(lines[0].code.ends_with(';'));
    }

    #[test]
    fn char_literal_versus_lifetime() {
        let lines = scan("fn f<'a>(x: &'a str) { let c = '\\''; let d = 'y'; }\n");
        let code = &lines[0].code;
        assert!(code.contains("fn f<'a>(x: &'a str)"));
        assert!(!code.contains('y'));
    }

    #[test]
    fn doc_comments_go_to_the_comment_channel() {
        let lines = scan("/// calls .unwrap() in prose\nfn f() {}\n");
        assert!(lines[0].code.trim().is_empty());
        assert!(lines[0].comment.contains(".unwrap()"));
        assert!(lines[0].is_comment_only());
        assert_eq!(lines[1].code.trim(), "fn f() {}");
    }

    #[test]
    fn multiline_strings_stay_blanked() {
        let lines = scan("let s = \"line one\nline .unwrap() two\";\nlet y = 1;\n");
        assert!(!lines[1].code.contains(".unwrap()"));
        assert!(lines[2].code.contains("let y = 1;"));
    }
}
