//! Static and dynamic correctness tooling for the workspace.
//!
//! Two engines live here, both dependency-free and both wired into CI as
//! required gates:
//!
//! * [`lint`] — `wfsim_lint`, a token-level lint pass over the workspace
//!   sources enforcing repo-specific invariants that `rustc`/`clippy`
//!   cannot know about: the no-panic discipline of the library core, the
//!   justification comments on atomic memory orderings, the lock- and
//!   allocation-freedom of marked hot loops, the frozen-interner
//!   convention on search read paths, and the workspace-wide `unsafe`
//!   ban.  Run it with `cargo run -p wf-analyze --bin wfsim_lint`.
//! * the model-check suite (under `tests/`) — deterministic interleaving
//!   exploration of the lock-free search core using the vendored
//!   `shuttle-mini` scheduler: the monotone `SearchThreshold` floor
//!   under racing observers, merge determinism, and `CorpusService`
//!   search-versus-churn linearizability, plus a mutation test proving
//!   the checker actually catches the bug class it exists for.
//!
//! The rule table, the allow-comment syntax, and how to reproduce a
//! failing model-check schedule from its seed are documented in the
//! repository README under "Correctness tooling".

#![deny(unsafe_code)]

pub mod lexer;
pub mod lint;

pub use lint::{
    config_for_path, lint_source, lint_workspace, Diagnostic, LintConfig, RuleInfo, RULES,
};
