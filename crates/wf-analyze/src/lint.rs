//! `wfsim_lint` — the repo-invariant lint pass.
//!
//! Every rule here encodes a convention this workspace's correctness
//! story depends on but `rustc`/`clippy` cannot check, because the
//! conventions are *about this repo*: which crates form the library core,
//! which functions are hot loops, which files are read paths of the
//! interner.  Rules are deny-by-default; an intentional exception is
//! suppressed with an allow comment on (or directly above) the offending
//! line — the marker `lint:allow`, the rule id in parentheses, then a
//! mandatory free-text reason (exact syntax in the README's
//! "Correctness tooling" section).  The reason is required, so every
//! suppression documents itself.
//!
//! The engine is token-level on purpose.  A full AST would be sharper,
//! but the invariants below are all expressible over the code/comment
//! channels of [`crate::lexer`], and a dependency-free scanner keeps the
//! lint runnable in CI with nothing but `cargo run -p wf-analyze`.

use std::collections::HashMap;
use std::fmt;
use std::path::{Path, PathBuf};

use crate::lexer::{scan, ScannedLine};

/// Identifier and one-line summary of a lint rule, for `--rules` output
/// and the README table.
pub struct RuleInfo {
    /// Stable rule id, used in diagnostics and allow comments.
    pub id: &'static str,
    /// One-line description of the invariant the rule enforces.
    pub summary: &'static str,
}

/// Every rule the pass knows, in reporting order.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: "no-unwrap",
        summary: "library code must not call .unwrap() or undocumented .expect(); \
                  every expect needs a non-empty reason string",
    },
    RuleInfo {
        id: "ordering-comment",
        summary: "every explicit atomic memory ordering needs an adjacent \
                  `// ordering:` comment justifying it",
    },
    RuleInfo {
        id: "hot-no-lock",
        summary: "functions marked `// lint:hot` must not acquire Mutex/RwLock",
    },
    RuleInfo {
        id: "hot-no-alloc",
        summary: "functions marked `// lint:hot` must not heap-allocate \
                  (vec!/with_capacity/format!/collect/Box::new/...)",
    },
    RuleInfo {
        id: "frozen-pool",
        summary: "interner read paths must not mutate a StringPool \
                  (intern/intern_set); use the FrozenInterner snapshot",
    },
    RuleInfo {
        id: "deny-unsafe",
        summary: "every crate root must carry #![deny(unsafe_code)]",
    },
    RuleInfo {
        id: "no-unsafe",
        summary: "no unsafe blocks or functions anywhere in the workspace",
    },
    RuleInfo {
        id: "no-debug-macro",
        summary: "no dbg!/todo!/unimplemented! anywhere (including tests)",
    },
    RuleInfo {
        id: "allow-syntax",
        summary: "lint:allow must name a known rule and give a non-empty reason",
    },
    RuleInfo {
        id: "error-display",
        summary: "every pub error enum (name ending in `Error`) in an error-API \
                  crate must impl Display and std::error::Error in its file",
    },
];

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path of the offending file.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Id of the violated rule (one of [`RULES`]).
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {}: {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Which rule sets apply to one file; derived from its workspace-relative
/// path by [`config_for_path`].
#[derive(Debug, Clone, Default)]
pub struct LintConfig {
    /// `no-unwrap` applies (library-core crates).
    pub no_unwrap: bool,
    /// `frozen-pool` applies (files on the interner's read path).
    pub read_path: bool,
    /// `deny-unsafe` applies (crate roots).
    pub require_deny_unsafe: bool,
    /// `error-display` applies (crates whose typed errors cross an API or
    /// wire boundary).
    pub error_display: bool,
}

/// Crates whose non-test code forms the library core: panicking there
/// takes down a caller, so `no-unwrap` is enforced.
const LIBRARY_CORE: &[&str] = &[
    "crates/wf-repo/src/",
    "crates/wf-sim/src/",
    "crates/wf-text/src/",
    "crates/wf-analyze/src/",
    "crates/wf-serve/src/",
];

/// Crates whose typed errors are an API surface (the serving wire
/// protocol forwards them verbatim): every pub `*Error` enum there must
/// be a real `std::error::Error`, so callers can `?` and log them.
const ERROR_API_CRATES: &[&str] = &[
    "crates/wf-serve/src/",
    "crates/wf-sim/src/",
    "crates/wf-repo/src/",
];

/// Files on the interner read path: search-time code that must resolve
/// through a frozen snapshot, never grow the pool.
const READ_PATHS: &[&str] = &[
    "crates/wf-repo/src/search.rs",
    "crates/wf-repo/src/index.rs",
    "crates/wf-sim/src/shard.rs",
];

/// The repo's lint policy for a workspace-relative path.
pub fn config_for_path(rel: &str) -> LintConfig {
    let rel = rel.replace('\\', "/");
    LintConfig {
        no_unwrap: LIBRARY_CORE.iter().any(|p| rel.starts_with(p)),
        read_path: READ_PATHS.contains(&rel.as_str()),
        require_deny_unsafe: rel.ends_with("src/lib.rs"),
        error_display: ERROR_API_CRATES.iter().any(|p| rel.starts_with(p)),
    }
}

/// Lints one file's source text; `rel` is used only for diagnostics.
pub fn lint_source(rel: &str, source: &str, config: &LintConfig) -> Vec<Diagnostic> {
    let lines = scan(source);
    let in_test = test_regions(&lines);
    let in_hot = hot_regions(&lines);
    let (allows, mut diagnostics) = collect_allows(rel, &lines);

    let push = |diags: &mut Vec<Diagnostic>, line: usize, rule: &'static str, message: String| {
        let suppressed = allows.get(&line).is_some_and(|rules| rules.contains(&rule));
        if !suppressed {
            diags.push(Diagnostic {
                file: rel.to_string(),
                line: line + 1,
                rule,
                message,
            });
        }
    };

    for (idx, line) in lines.iter().enumerate() {
        let code = line.code.as_str();
        if code.trim().is_empty() {
            continue;
        }

        if config.no_unwrap && !in_test[idx] {
            if code.contains(".unwrap()") {
                push(
                    &mut diagnostics,
                    idx,
                    "no-unwrap",
                    "library code must not .unwrap(); return an error or use \
                     .expect(\"reason\") with a documented invariant"
                        .to_string(),
                );
            }
            for col in find_all(code, ".expect(") {
                if !expect_has_reason(&code[col + ".expect(".len()..]) {
                    push(
                        &mut diagnostics,
                        idx,
                        "no-unwrap",
                        ".expect() needs a non-empty string literal naming the \
                         invariant that makes it unreachable"
                            .to_string(),
                    );
                }
            }
        }

        if !in_test[idx] && mentions_atomic_ordering(code) && !has_ordering_comment(&lines, idx) {
            push(
                &mut diagnostics,
                idx,
                "ordering-comment",
                "explicit atomic ordering without an adjacent `// ordering:` \
                 comment justifying why it is sufficient"
                    .to_string(),
            );
        }

        if in_hot[idx] {
            for pattern in LOCK_PATTERNS {
                if code.contains(pattern) {
                    push(
                        &mut diagnostics,
                        idx,
                        "hot-no-lock",
                        format!(
                            "`{pattern}` inside a `lint:hot` function; hot loops \
                                 must stay lock-free"
                        ),
                    );
                }
            }
            for pattern in ALLOC_PATTERNS {
                if code.contains(pattern) {
                    push(
                        &mut diagnostics,
                        idx,
                        "hot-no-alloc",
                        format!(
                            "`{pattern}` inside a `lint:hot` function; hot loops \
                                 must not heap-allocate"
                        ),
                    );
                }
            }
        }

        if config.read_path {
            for pattern in POOL_MUTATION_PATTERNS {
                if code.contains(pattern) {
                    push(
                        &mut diagnostics,
                        idx,
                        "frozen-pool",
                        format!(
                            "`{pattern}` on an interner read path; search-time \
                                 code must resolve through FrozenInterner, not grow \
                                 the StringPool"
                        ),
                    );
                }
            }
        }

        for occurrence in word_occurrences(code, "unsafe") {
            let _ = occurrence;
            push(
                &mut diagnostics,
                idx,
                "no-unsafe",
                "unsafe code is banned workspace-wide (crate roots carry \
                 #![deny(unsafe_code)])"
                    .to_string(),
            );
        }

        for pattern in DEBUG_MACROS {
            if code.contains(pattern) {
                push(
                    &mut diagnostics,
                    idx,
                    "no-debug-macro",
                    format!("`{pattern}..)` must not be committed"),
                );
            }
        }
    }

    if config.error_display {
        for (idx, name) in pub_error_enums(&lines, &in_test) {
            for (trait_name, must_contain) in [
                ("Display", format!("Display for {name}")),
                ("std::error::Error", format!("Error for {name}")),
            ] {
                let implemented = lines
                    .iter()
                    .any(|l| contains_impl_target(&l.code, &must_contain));
                if !implemented {
                    push(
                        &mut diagnostics,
                        idx,
                        "error-display",
                        format!(
                            "pub error enum `{name}` has no `impl {trait_name}` in \
                             this file; typed errors must be loggable and `?`-able"
                        ),
                    );
                }
            }
        }
    }

    if config.require_deny_unsafe
        && !lines
            .iter()
            .any(|l| l.code.contains("#![deny(unsafe_code)]"))
    {
        push(
            &mut diagnostics,
            0,
            "deny-unsafe",
            "crate root is missing #![deny(unsafe_code)]".to_string(),
        );
    }

    diagnostics.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    diagnostics
}

/// Lints every `.rs` file of the workspace rooted at `root`: the facade's
/// `src/` plus each `crates/*/src/` tree.  `vendor/` is infrastructure
/// (API stand-ins for crates.io) and exempt by design.
pub fn lint_workspace(root: &Path) -> std::io::Result<Vec<Diagnostic>> {
    let mut files: Vec<PathBuf> = Vec::new();
    collect_rust_files(&root.join("src"), &mut files)?;
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        for entry in std::fs::read_dir(&crates_dir)? {
            collect_rust_files(&entry?.path().join("src"), &mut files)?;
        }
    }
    files.sort();
    let mut diagnostics = Vec::new();
    for file in files {
        let source = std::fs::read_to_string(&file)?;
        let rel = file
            .strip_prefix(root)
            .unwrap_or(&file)
            .to_string_lossy()
            .replace('\\', "/");
        let config = config_for_path(&rel);
        diagnostics.extend(lint_source(&rel, &source, &config));
    }
    Ok(diagnostics)
}

fn collect_rust_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rust_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

const LOCK_PATTERNS: &[&str] = &[
    ".lock()",
    ".read()",
    ".write()",
    "Mutex::new",
    "RwLock::new",
];

const ALLOC_PATTERNS: &[&str] = &[
    "vec!",
    "with_capacity(",
    "Box::new(",
    "format!",
    ".to_string()",
    ".to_owned()",
    ".to_vec()",
    "String::from(",
    ".collect()",
];

const POOL_MUTATION_PATTERNS: &[&str] = &[".intern(", ".intern_set(", "StringPool::new("];

const DEBUG_MACROS: &[&str] = &["dbg!(", "todo!(", "unimplemented!("];

const ORDERINGS: &[&str] = &[
    "Ordering::Relaxed",
    "Ordering::Acquire",
    "Ordering::Release",
    "Ordering::AcqRel",
    "Ordering::SeqCst",
];

fn mentions_atomic_ordering(code: &str) -> bool {
    ORDERINGS.iter().any(|o| code.contains(o))
}

/// True when line `idx` carries (or sits directly under comment lines
/// carrying) an `ordering:` justification.
fn has_ordering_comment(lines: &[ScannedLine], idx: usize) -> bool {
    if lines[idx].comment.contains("ordering:") {
        return true;
    }
    let mut above = idx;
    while above > 0 && lines[above - 1].is_comment_only() {
        above -= 1;
        if lines[above].comment.contains("ordering:") {
            return true;
        }
    }
    false
}

/// `.expect(` must be followed by a non-empty string literal.
fn expect_has_reason(after_paren: &str) -> bool {
    let rest = after_paren.trim_start();
    let Some(stripped) = rest.strip_prefix('"') else {
        return false;
    };
    !stripped.starts_with('"')
}

fn find_all(haystack: &str, needle: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut from = 0usize;
    while let Some(pos) = haystack[from..].find(needle) {
        out.push(from + pos);
        from += pos + needle.len();
    }
    out
}

fn is_ident_char(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

/// Byte offsets where `word` occurs as a whole identifier in `code`.
fn word_occurrences(code: &str, word: &str) -> Vec<usize> {
    let bytes = code.as_bytes();
    find_all(code, word)
        .into_iter()
        .filter(|&pos| {
            let before_ok = pos == 0 || !is_ident_char(bytes[pos - 1]);
            let end = pos + word.len();
            let after_ok = end >= bytes.len() || !is_ident_char(bytes[end]);
            before_ok && after_ok
        })
        .collect()
}

/// Every `pub enum *Error` declared outside test regions: (line index,
/// enum name).
fn pub_error_enums(lines: &[ScannedLine], in_test: &[bool]) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    for (idx, line) in lines.iter().enumerate() {
        if in_test[idx] {
            continue;
        }
        let code = line.code.as_str();
        let Some(pos) = code.find("pub enum ") else {
            continue;
        };
        let rest = &code[pos + "pub enum ".len()..];
        let name: String = rest
            .chars()
            .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
            .collect();
        if name.len() > "Error".len() && name.ends_with("Error") {
            out.push((idx, name));
        }
    }
    out
}

/// True when `code` contains `pattern` ending exactly at an identifier
/// boundary — so `Error for Wire` does not match `Error for WireError`.
fn contains_impl_target(code: &str, pattern: &str) -> bool {
    let bytes = code.as_bytes();
    find_all(code, pattern).into_iter().any(|pos| {
        let end = pos + pattern.len();
        end >= bytes.len() || !is_ident_char(bytes[end])
    })
}

/// Per-line flag: inside a `#[cfg(test)]`-guarded item (attribute line
/// through the item's closing brace).
fn test_regions(lines: &[ScannedLine]) -> Vec<bool> {
    let mut flags = vec![false; lines.len()];
    let mut idx = 0usize;
    while idx < lines.len() {
        if lines[idx].code.contains("cfg(test)") {
            let end = brace_region_end(lines, idx);
            for flag in flags.iter_mut().take(end + 1).skip(idx) {
                *flag = true;
            }
            idx = end + 1;
        } else {
            idx += 1;
        }
    }
    flags
}

/// Per-line flag: inside a function carrying the hot marker comment (the
/// marker applies to the next `fn` and its brace-matched body).
fn hot_regions(lines: &[ScannedLine]) -> Vec<bool> {
    let mut flags = vec![false; lines.len()];
    let mut idx = 0usize;
    while idx < lines.len() {
        if lines[idx].comment.contains("lint:hot") {
            let mut fn_line = idx;
            while fn_line < lines.len() && !lines[fn_line].code.contains("fn ") {
                fn_line += 1;
            }
            if fn_line < lines.len() {
                let end = brace_region_end(lines, fn_line);
                for flag in flags.iter_mut().take(end + 1).skip(fn_line) {
                    *flag = true;
                }
                idx = end + 1;
                continue;
            }
        }
        idx += 1;
    }
    flags
}

/// Line index of the `}` that closes the first `{` at or after
/// `start` (the last line when the region never closes).
fn brace_region_end(lines: &[ScannedLine], start: usize) -> usize {
    let mut depth = 0i64;
    let mut started = false;
    for (idx, line) in lines.iter().enumerate().skip(start) {
        for c in line.code.bytes() {
            match c {
                b'{' => {
                    depth += 1;
                    started = true;
                }
                b'}' => depth -= 1,
                _ => {}
            }
        }
        if started && depth <= 0 {
            return idx;
        }
    }
    lines.len().saturating_sub(1)
}

/// Parses every allow comment (`lint:allow` + parenthesized rule +
/// reason).  Returns the map of suppressed rules per line (the allow's
/// own line plus, for a comment-only allow, the next line that has code)
/// and the diagnostics for malformed allows.
#[allow(clippy::type_complexity)]
fn collect_allows(
    rel: &str,
    lines: &[ScannedLine],
) -> (HashMap<usize, Vec<&'static str>>, Vec<Diagnostic>) {
    let mut allows: HashMap<usize, Vec<&'static str>> = HashMap::new();
    let mut diagnostics = Vec::new();
    for (idx, line) in lines.iter().enumerate() {
        let comment = line.comment.as_str();
        let Some(open) = comment.find("lint:allow(") else {
            continue;
        };
        let after = &comment[open + "lint:allow(".len()..];
        let Some(close) = after.find(')') else {
            diagnostics.push(Diagnostic {
                file: rel.to_string(),
                line: idx + 1,
                rule: "allow-syntax",
                message: "unterminated lint:allow(...)".to_string(),
            });
            continue;
        };
        let name = after[..close].trim();
        let reason = after[close + 1..].trim();
        let Some(rule) = RULES.iter().find(|r| r.id == name) else {
            diagnostics.push(Diagnostic {
                file: rel.to_string(),
                line: idx + 1,
                rule: "allow-syntax",
                message: format!("lint:allow names unknown rule `{name}`"),
            });
            continue;
        };
        if reason.is_empty() {
            diagnostics.push(Diagnostic {
                file: rel.to_string(),
                line: idx + 1,
                rule: "allow-syntax",
                message: format!("lint:allow({name}) needs a reason after the closing paren"),
            });
            continue;
        }
        let mut target = idx;
        if line.is_comment_only() {
            // A standalone allow comment covers the next line with code.
            let mut next = idx + 1;
            while next < lines.len() && lines[next].code.trim().is_empty() {
                next += 1;
            }
            if next < lines.len() {
                target = next;
            }
        }
        allows.entry(target).or_default().push(rule.id);
        // Also cover the allow's own line: inline allows live with code.
        allows.entry(idx).or_default().push(rule.id);
    }
    (allows, diagnostics)
}
