//! Mutation operators deriving corpus workflows from family seeds.
//!
//! Real repositories contain many workflows that are variants of one
//! another: re-uploads with renamed modules, added "shim" plumbing, removed
//! steps, or reworded annotations (the paper's earlier corpus study \[35\]
//! quantifies this reuse).  The generators apply the operators below to a
//! family seed to produce such variants; the number of applied rounds is the
//! variant's *mutation depth*, which in turn drives the latent similarity.

use rand::seq::SliceRandom;
use rand::Rng;
use wf_model::{Datalink, Module, ModuleId, Workflow};

use crate::vocab::SHIM_MODULES;

/// Perturbs a module label the way different authors name the same step:
/// suffixes, prefixes, camel-casing or a small typo.
pub fn perturb_label(label: &str, rng: &mut impl Rng) -> String {
    match rng.gen_range(0..5) {
        0 => format!("{label}_2"),
        1 => format!("my_{label}"),
        2 => format!("{label}_new"),
        3 => {
            // camelCase instead of snake_case
            let mut out = String::with_capacity(label.len());
            let mut upper_next = false;
            for c in label.chars() {
                if c == '_' {
                    upper_next = true;
                } else if upper_next {
                    out.extend(c.to_uppercase());
                    upper_next = false;
                } else {
                    out.push(c);
                }
            }
            out
        }
        _ => {
            // drop one interior character (a typo)
            let chars: Vec<char> = label.chars().collect();
            if chars.len() > 3 {
                let drop = rng.gen_range(1..chars.len() - 1);
                chars
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| *i != drop)
                    .map(|(_, c)| c)
                    .collect()
            } else {
                format!("{label}_x")
            }
        }
    }
}

/// Renames each module label with the given probability.
pub fn rename_labels(wf: &mut Workflow, probability: f64, rng: &mut impl Rng) {
    let existing: Vec<String> = wf.modules.iter().map(|m| m.label.clone()).collect();
    for (idx, module) in wf.modules.iter_mut().enumerate() {
        if rng.gen_bool(probability) {
            let mut candidate = perturb_label(&module.label, rng);
            // Keep labels unique within the workflow.
            let mut attempt = 0;
            while existing
                .iter()
                .enumerate()
                .any(|(i, l)| i != idx && *l == candidate)
            {
                candidate = format!("{candidate}_{attempt}");
                attempt += 1;
            }
            module.label = candidate;
        }
    }
}

/// Inserts a trivial shim module on a random datalink (`a → b` becomes
/// `a → shim → b`).  No-op on workflows without links.
pub fn insert_shim(wf: &mut Workflow, rng: &mut impl Rng) {
    if wf.links.is_empty() {
        return;
    }
    let spec = SHIM_MODULES
        .choose(rng)
        .expect("shim catalogue is not empty");
    let new_id = ModuleId(wf.modules.len() as u32);
    let mut label = format!("{}_{}", spec.label, new_id.0);
    while wf.modules.iter().any(|m| m.label == label) {
        label.push('x');
    }
    let mut module = Module::new(new_id, label, spec.module_type.clone());
    if let Some(body) = spec.script {
        module.script = Some(body.to_string());
    }
    wf.modules.push(module);

    let idx = rng.gen_range(0..wf.links.len());
    let link = wf.links.remove(idx);
    wf.links.push(Datalink::new(link.from, new_id));
    wf.links.push(Datalink::new(new_id, link.to));
}

/// Deletes one randomly chosen module (never the last one), reconnecting its
/// predecessors to its successors so the workflow stays connected.
pub fn delete_module(wf: &mut Workflow, rng: &mut impl Rng) {
    if wf.module_count() <= 2 {
        return;
    }
    let victim = ModuleId(rng.gen_range(0..wf.module_count()) as u32);
    let graph = wf.graph();
    let preds = graph.predecessors(victim).to_vec();
    let succs = graph.successors(victim).to_vec();
    let keep: Vec<ModuleId> = wf.module_ids().filter(|id| *id != victim).collect();

    // Bridge predecessors to successors, expressed in the *new* id space
    // (ids above the victim shift down by one).
    let remap = |id: ModuleId| -> ModuleId {
        if id.0 > victim.0 {
            ModuleId(id.0 - 1)
        } else {
            id
        }
    };
    let bridges: Vec<(ModuleId, ModuleId)> = preds
        .iter()
        .flat_map(|p| succs.iter().map(move |s| (remap(*p), remap(*s))))
        .collect();
    *wf = wf.restrict_to(&keep, &bridges);
}

/// Adds a parallel branch: a randomly chosen domain-module clone that taps
/// off an existing module and rejoins at a sink (or dangles as a new sink).
pub fn add_branch(wf: &mut Workflow, rng: &mut impl Rng) {
    if wf.module_count() == 0 {
        return;
    }
    let source = ModuleId(rng.gen_range(0..wf.module_count()) as u32);
    let template = wf.modules[rng.gen_range(0..wf.module_count())].clone();
    let new_id = ModuleId(wf.modules.len() as u32);
    let mut clone = template;
    clone.id = new_id;
    clone.label = format!("{}_branch{}", clone.label, new_id.0);
    wf.modules.push(clone);
    wf.links.push(Datalink::new(source, new_id));
}

/// Rewords the title and description: shuffles word order, drops some words
/// and occasionally appends a qualifier — the kind of paraphrase different
/// uploaders produce for functionally equivalent workflows.
pub fn reword_annotations(wf: &mut Workflow, rng: &mut impl Rng) {
    let qualifiers = ["updated", "v2", "simplified", "extended", "demo"];
    if let Some(title) = &wf.annotations.title {
        let mut words: Vec<&str> = title.split_whitespace().collect();
        words.shuffle(rng);
        if words.len() > 3 && rng.gen_bool(0.5) {
            words.pop();
        }
        let mut new_title = words.join(" ");
        if rng.gen_bool(0.3) {
            new_title.push(' ');
            new_title.push_str(qualifiers.choose(rng).expect("non-empty"));
        }
        wf.annotations.title = Some(new_title);
    }
    if let Some(description) = &wf.annotations.description {
        let mut words: Vec<&str> = description.split_whitespace().collect();
        if words.len() > 4 {
            let keep = rng.gen_range(words.len() * 2 / 3..=words.len());
            words.truncate(keep);
        }
        wf.annotations.description = Some(words.join(" "));
    }
}

/// Drops all tags with the given probability, otherwise removes a random
/// subset — mirroring the ≈15% of untagged workflows in the paper's corpus.
pub fn degrade_tags(wf: &mut Workflow, drop_all_probability: f64, rng: &mut impl Rng) {
    if wf.annotations.tags.is_empty() {
        return;
    }
    if rng.gen_bool(drop_all_probability) {
        wf.annotations.tags.clear();
    } else if wf.annotations.tags.len() > 1 && rng.gen_bool(0.4) {
        let drop = rng.gen_range(0..wf.annotations.tags.len());
        wf.annotations.tags.remove(drop);
    }
}

/// Applies one full mutation round (a random subset of the operators) to a
/// workflow.
pub fn mutate_round(wf: &mut Workflow, rng: &mut impl Rng) {
    rename_labels(wf, 0.35, rng);
    if rng.gen_bool(0.7) {
        insert_shim(wf, rng);
    }
    if rng.gen_bool(0.35) {
        delete_module(wf, rng);
    }
    if rng.gen_bool(0.25) {
        add_branch(wf, rng);
    }
    if rng.gen_bool(0.8) {
        reword_annotations(wf, rng);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use wf_model::{builder::WorkflowBuilder, validate, ModuleType};

    fn seed_workflow() -> Workflow {
        WorkflowBuilder::new("seed")
            .title("KEGG pathway analysis workflow")
            .description("retrieves a pathway and maps genes onto it")
            .tag("kegg")
            .tag("pathway")
            .module("get_pathway", ModuleType::WsdlService, |m| {
                m.service("kegg.jp", "get_pathway", "http://kegg.jp/ws")
            })
            .module("extract_genes", ModuleType::BeanshellScript, |m| {
                m.script("x")
            })
            .module("colour_pathway", ModuleType::WsdlService, |m| {
                m.service("kegg.jp", "color_pathway", "http://kegg.jp/ws")
            })
            .link("get_pathway", "extract_genes")
            .link("extract_genes", "colour_pathway")
            .build()
            .unwrap()
    }

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn perturbed_labels_differ_but_stay_related() {
        let mut r = rng();
        for _ in 0..20 {
            let p = perturb_label("get_pathway", &mut r);
            assert_ne!(p, "");
            // The perturbation never produces something completely unrelated:
            // it keeps at least half of the original characters.
            let common = p.chars().filter(|c| "get_pathway".contains(*c)).count();
            assert!(common * 2 >= p.chars().count(), "{p}");
        }
    }

    #[test]
    fn rename_keeps_labels_unique_and_workflow_valid() {
        let mut wf = seed_workflow();
        rename_labels(&mut wf, 1.0, &mut rng());
        let mut labels: Vec<&str> = wf.modules.iter().map(|m| m.label.as_str()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), wf.module_count());
        validate(&wf).unwrap();
    }

    #[test]
    fn insert_shim_grows_the_workflow_and_stays_valid() {
        let mut wf = seed_workflow();
        let before_modules = wf.module_count();
        let before_links = wf.link_count();
        insert_shim(&mut wf, &mut rng());
        assert_eq!(wf.module_count(), before_modules + 1);
        assert_eq!(wf.link_count(), before_links + 1);
        validate(&wf).unwrap();
        assert!(wf.modules.last().unwrap().is_trivial());
    }

    #[test]
    fn delete_module_shrinks_but_keeps_validity() {
        let mut wf = seed_workflow();
        delete_module(&mut wf, &mut rng());
        assert_eq!(wf.module_count(), 2);
        validate(&wf).unwrap();
    }

    #[test]
    fn delete_module_preserves_connectivity_through_the_victim() {
        // Deleting the middle module of a chain must bridge its neighbours.
        let mut wf = seed_workflow();
        // Force deletion of "extract_genes" (id 1) by trying seeds until it
        // happens; determinism is fine, we just need one such case.
        let mut found = false;
        for seed in 0..50 {
            let mut candidate = wf.clone();
            let mut r = StdRng::seed_from_u64(seed);
            delete_module(&mut candidate, &mut r);
            if candidate.module_by_label("extract_genes").is_none() {
                let g = candidate.graph();
                assert_eq!(g.edges().len(), 1, "bridge edge present");
                assert!(candidate.module_by_label("get_pathway").is_some());
                assert!(candidate.module_by_label("colour_pathway").is_some());
                found = true;
                break;
            }
        }
        assert!(found, "middle module was never selected in 50 seeds");
        // Original untouched.
        assert_eq!(wf.module_count(), 3);
        wf.links.clear();
    }

    #[test]
    fn small_workflows_are_not_deleted_into_oblivion() {
        let mut wf = WorkflowBuilder::new("tiny")
            .module("a", ModuleType::WsdlService, |m| m)
            .module("b", ModuleType::WsdlService, |m| m)
            .link("a", "b")
            .build()
            .unwrap();
        delete_module(&mut wf, &mut rng());
        assert_eq!(wf.module_count(), 2);
    }

    #[test]
    fn add_branch_keeps_the_dag_valid() {
        let mut wf = seed_workflow();
        add_branch(&mut wf, &mut rng());
        assert_eq!(wf.module_count(), 4);
        validate(&wf).unwrap();
    }

    #[test]
    fn reword_annotations_changes_but_keeps_topic_words() {
        let mut wf = seed_workflow();
        let original = wf.annotations.title.clone().unwrap();
        reword_annotations(&mut wf, &mut rng());
        let new = wf.annotations.title.clone().unwrap();
        // Some overlap in vocabulary must remain (it is a paraphrase).
        let overlap = new
            .split_whitespace()
            .filter(|w| original.split_whitespace().any(|o| o == *w))
            .count();
        assert!(overlap >= 2, "{original} vs {new}");
    }

    #[test]
    fn degrade_tags_can_remove_everything_or_a_subset() {
        let mut all_dropped = 0;
        for seed in 0..100 {
            let mut wf = seed_workflow();
            let mut r = StdRng::seed_from_u64(seed);
            degrade_tags(&mut wf, 0.3, &mut r);
            if wf.annotations.tags.is_empty() {
                all_dropped += 1;
            } else {
                assert!(wf.annotations.tags.len() <= 2);
            }
        }
        assert!(all_dropped > 10 && all_dropped < 60, "got {all_dropped}");
    }

    #[test]
    fn mutate_round_produces_a_valid_distinct_variant() {
        let seed = seed_workflow();
        let mut variant = seed.clone();
        mutate_round(&mut variant, &mut rng());
        validate(&variant).unwrap();
        assert_ne!(variant, seed);
    }
}
