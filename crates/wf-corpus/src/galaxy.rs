//! The Galaxy-like corpus generator.
//!
//! The paper's secondary corpus contains 139 Galaxy workflows (Section 4.1)
//! and drives the transferability experiment of Section 5.3 / Fig. 12.  Its
//! relevant properties, which the generator reproduces: workflows invoke
//! locally installed *tools* (not web services) identified by tool ids,
//! labels are terse and tool-like, free-text annotations are sparse (so the
//! Bag of Words measure degrades), and tags are mostly absent.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use wf_model::{Annotations, Datalink, Module, ModuleId, Workflow, WorkflowId};

use crate::families::{CorpusMeta, WorkflowMeta};
use crate::mutate::{mutate_round, rename_labels};
use crate::vocab::{ModuleSpec, Topic, GALAXY_TOPICS};

/// Configuration of the Galaxy-like corpus generator.
#[derive(Debug, Clone, PartialEq)]
pub struct GalaxyCorpusConfig {
    /// Number of workflows (the paper's Galaxy set has 139).
    pub workflows: usize,
    /// RNG seed.
    pub seed: u64,
    /// Probability that a workflow carries a description (low for Galaxy).
    pub description_probability: f64,
    /// Probability that a workflow carries tags (low for Galaxy).
    pub tagged_probability: f64,
}

impl Default for GalaxyCorpusConfig {
    fn default() -> Self {
        GalaxyCorpusConfig {
            workflows: 139,
            seed: 2014,
            description_probability: 0.35,
            tagged_probability: 0.30,
        }
    }
}

impl GalaxyCorpusConfig {
    /// A small corpus for unit tests.
    pub fn small(workflows: usize, seed: u64) -> Self {
        GalaxyCorpusConfig {
            workflows,
            seed,
            ..GalaxyCorpusConfig::default()
        }
    }
}

/// Generates the Galaxy-like corpus and its latent metadata.
///
/// Family indices continue in their own space (they are only compared within
/// this corpus, never against the Taverna corpus).
pub fn generate_galaxy_corpus(config: &GalaxyCorpusConfig) -> (Vec<Workflow>, CorpusMeta) {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut corpus = Vec::with_capacity(config.workflows);
    let mut meta = CorpusMeta::new();
    let mut family = 0usize;

    while corpus.len() < config.workflows {
        let topic_idx = family % GALAXY_TOPICS.len();
        let topic = &GALAXY_TOPICS[topic_idx];
        let family_size = rng
            .gen_range(2..=5usize)
            .min(config.workflows - corpus.len());

        let seed_id = WorkflowId::new(format!("g{}", corpus.len() + 1));
        let seed_wf = build_galaxy_workflow(&seed_id, topic, config, &mut rng);
        meta.insert(WorkflowMeta {
            id: seed_id,
            topic: topic_idx,
            family,
            depth: 0,
        });
        corpus.push(seed_wf.clone());

        for _ in 1..family_size {
            let id = WorkflowId::new(format!("g{}", corpus.len() + 1));
            let depth = rng.gen_range(1..=2usize);
            let mut wf = seed_wf.clone();
            wf.id = id.clone();
            for _ in 0..depth {
                // Galaxy workflows have no shims to insert; label noise and
                // structural edits still apply.
                mutate_round(&mut wf, &mut rng);
            }
            rename_labels(&mut wf, 0.2, &mut rng);
            meta.insert(WorkflowMeta {
                id,
                topic: topic_idx,
                family,
                depth,
            });
            corpus.push(wf);
        }
        family += 1;
    }
    (corpus, meta)
}

fn build_galaxy_workflow(
    id: &WorkflowId,
    topic: &Topic,
    config: &GalaxyCorpusConfig,
    rng: &mut StdRng,
) -> Workflow {
    let count = rng.gen_range(4..=topic.modules.len());
    let mut specs: Vec<&ModuleSpec> = topic.modules.iter().collect();
    specs.shuffle(rng);
    specs.truncate(count);

    let mut modules = Vec::new();
    let mut links = Vec::new();
    for (i, spec) in specs.iter().enumerate() {
        let mut module = Module::new(ModuleId(i as u32), spec.label, spec.module_type.clone());
        if let Some((authority, name, uri)) = spec.service {
            module.service_authority = Some(authority.to_string());
            module.service_name = Some(name.to_string());
            module.service_uri = Some(uri.to_string());
        }
        modules.push(module);
        if i > 0 {
            let parent = if rng.gen_bool(0.8) {
                i - 1
            } else {
                rng.gen_range(0..i)
            };
            links.push(Datalink::new(ModuleId(parent as u32), ModuleId(i as u32)));
        }
    }

    let title = {
        let mut words: Vec<&str> = topic.title_words.to_vec();
        words.shuffle(rng);
        words.truncate(rng.gen_range(2..=3));
        words.join(" ")
    };
    let description = if rng.gen_bool(config.description_probability) {
        let mut words: Vec<&str> = topic.description_words.to_vec();
        words.shuffle(rng);
        words.truncate(rng.gen_range(3..=words.len()));
        Some(words.join(" "))
    } else {
        None
    };
    let tags = if rng.gen_bool(config.tagged_probability) {
        topic.tags.iter().map(|t| t.to_string()).collect()
    } else {
        Vec::new()
    };

    Workflow {
        id: id.clone(),
        annotations: Annotations {
            title: Some(title),
            description,
            tags,
            author: None,
        },
        modules,
        links,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wf_model::{validate, CorpusStats, ModuleType};

    #[test]
    fn corpus_size_and_validity() {
        let (corpus, meta) = generate_galaxy_corpus(&GalaxyCorpusConfig::small(50, 3));
        assert_eq!(corpus.len(), 50);
        assert_eq!(meta.len(), 50);
        for wf in &corpus {
            validate(wf).unwrap_or_else(|e| panic!("{}: {e}", wf.id));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate_galaxy_corpus(&GalaxyCorpusConfig::small(25, 8));
        let b = generate_galaxy_corpus(&GalaxyCorpusConfig::small(25, 8));
        assert_eq!(a.0, b.0);
    }

    #[test]
    fn annotations_are_sparse_compared_to_taverna() {
        let (corpus, _) = generate_galaxy_corpus(&GalaxyCorpusConfig::small(120, 4));
        let stats = CorpusStats::of(&corpus).unwrap();
        assert!(
            stats.untagged_fraction > 0.5,
            "most Galaxy workflows carry no tags (got {})",
            stats.untagged_fraction
        );
        assert!(
            stats.undescribed_fraction > 0.4,
            "many Galaxy workflows carry no description (got {})",
            stats.undescribed_fraction
        );
    }

    #[test]
    fn workflows_are_built_from_galaxy_tools() {
        let (corpus, _) = generate_galaxy_corpus(&GalaxyCorpusConfig::small(20, 5));
        // Seeds contain only Galaxy tools; mutated variants may add shims
        // through mutate_round, but tools must dominate.
        let total: usize = corpus.iter().map(|w| w.module_count()).sum();
        let tools: usize = corpus
            .iter()
            .flat_map(|w| &w.modules)
            .filter(|m| m.module_type == ModuleType::GalaxyTool)
            .count();
        assert!(
            tools * 2 > total,
            "tools {tools} should dominate {total} modules"
        );
    }

    #[test]
    fn corpus_is_smaller_scale_than_taverna() {
        let (corpus, _) = generate_galaxy_corpus(&GalaxyCorpusConfig::default());
        assert_eq!(corpus.len(), 139);
        let stats = CorpusStats::of(&corpus).unwrap();
        assert!(stats.mean_modules < 9.0);
    }
}
