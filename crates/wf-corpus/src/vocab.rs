//! The bioinformatics vocabulary behind the synthetic corpora.
//!
//! Real myExperiment workflows invoke a comparatively small set of popular
//! life-science services (EBI, KEGG, NCBI, BioMart, …) under author-chosen
//! labels, stitched together with trivial local "shim" operations.  The
//! vocabulary below provides, per functional *topic*, a pool of module
//! specifications plus title/description templates and tags from which the
//! generators assemble workflows.

use wf_model::ModuleType;

/// A reusable module specification.
#[derive(Debug, Clone, PartialEq)]
pub struct ModuleSpec {
    /// The canonical label (authors later perturb it).
    pub label: &'static str,
    /// The module type.
    pub module_type: ModuleType,
    /// Service authority, name and URI for service modules.
    pub service: Option<(&'static str, &'static str, &'static str)>,
    /// Script body for scripted modules.
    pub script: Option<&'static str>,
}

impl ModuleSpec {
    const fn service(
        label: &'static str,
        module_type: ModuleType,
        authority: &'static str,
        name: &'static str,
        uri: &'static str,
    ) -> Self {
        ModuleSpec {
            label,
            module_type,
            service: Some((authority, name, uri)),
            script: None,
        }
    }

    const fn script(label: &'static str, module_type: ModuleType, body: &'static str) -> Self {
        ModuleSpec {
            label,
            module_type,
            service: None,
            script: Some(body),
        }
    }
}

/// One functional topic: a theme such as pathway analysis or sequence
/// alignment, with everything needed to generate workflows about it.
#[derive(Debug, Clone, PartialEq)]
pub struct Topic {
    /// A short machine-readable key.
    pub key: &'static str,
    /// Words used in titles.
    pub title_words: &'static [&'static str],
    /// Words used in descriptions.
    pub description_words: &'static [&'static str],
    /// Tags typical for the topic.
    pub tags: &'static [&'static str],
    /// Domain modules belonging to the topic.
    pub modules: &'static [ModuleSpec],
}

/// Trivial "shim" modules found in almost every Taverna workflow; these are
/// exactly the modules the Importance Projection removes.
pub const SHIM_MODULES: &[ModuleSpec] = &[
    ModuleSpec {
        label: "split_string_into_list",
        module_type: ModuleType::LocalOperation,
        service: None,
        script: None,
    },
    ModuleSpec {
        label: "merge_string_list",
        module_type: ModuleType::LocalOperation,
        service: None,
        script: None,
    },
    ModuleSpec {
        label: "flatten_list",
        module_type: ModuleType::LocalOperation,
        service: None,
        script: None,
    },
    ModuleSpec {
        label: "concat_strings",
        module_type: ModuleType::LocalOperation,
        service: None,
        script: None,
    },
    ModuleSpec {
        label: "format_constant",
        module_type: ModuleType::StringConstant,
        service: None,
        script: None,
    },
    ModuleSpec {
        label: "remove_duplicates",
        module_type: ModuleType::LocalOperation,
        service: None,
        script: None,
    },
];

/// The topic catalogue of the Taverna-like corpus.
pub const TOPICS: &[Topic] = &[
    Topic {
        key: "pathway",
        title_words: &["kegg", "pathway", "analysis", "gene", "mapping"],
        description_words: &[
            "retrieves",
            "kegg",
            "pathway",
            "maps",
            "genes",
            "identifiers",
            "entrez",
            "colours",
            "diagram",
        ],
        tags: &["kegg", "pathway", "genes", "bioinformatics"],
        modules: &[
            ModuleSpec::service(
                "get_pathway_by_gene",
                ModuleType::WsdlService,
                "kegg.jp",
                "get_pathways_by_genes",
                "http://soap.genome.jp/KEGG.wsdl",
            ),
            ModuleSpec::service(
                "get_genes_by_pathway",
                ModuleType::WsdlService,
                "kegg.jp",
                "get_genes_by_pathway",
                "http://soap.genome.jp/KEGG.wsdl",
            ),
            ModuleSpec::service(
                "colour_pathway_by_objects",
                ModuleType::SoaplabService,
                "kegg.jp",
                "color_pathway_by_objects",
                "http://soap.genome.jp/KEGG.wsdl",
            ),
            ModuleSpec::service(
                "lookup_entrez_gene",
                ModuleType::WsdlService,
                "ncbi.nlm.nih.gov",
                "efetch_gene",
                "http://eutils.ncbi.nlm.nih.gov/soap/eutils.wsdl",
            ),
            ModuleSpec::script(
                "extract_gene_ids",
                ModuleType::BeanshellScript,
                "for (line : input) { ids.add(line.split(\"\\t\")[0]); }",
            ),
            ModuleSpec::script(
                "filter_significant_genes",
                ModuleType::BeanshellScript,
                "if (pvalue < 0.05) keep(gene);",
            ),
            ModuleSpec::service(
                "map_to_uniprot",
                ModuleType::BioMart,
                "ensembl.org",
                "uniprot_mapping",
                "http://www.biomart.org/biomart/martservice",
            ),
        ],
    },
    Topic {
        key: "alignment",
        title_words: &["blast", "protein", "sequence", "search", "alignment"],
        description_words: &[
            "runs",
            "blast",
            "against",
            "uniprot",
            "sequences",
            "alignment",
            "hits",
            "parses",
            "report",
        ],
        tags: &["blast", "sequence", "alignment", "protein"],
        modules: &[
            ModuleSpec::service(
                "fetch_fasta_sequence",
                ModuleType::WsdlService,
                "ebi.ac.uk",
                "fetchData",
                "http://www.ebi.ac.uk/ws/services/Dbfetch.wsdl",
            ),
            ModuleSpec::service(
                "run_ncbi_blast",
                ModuleType::SoaplabService,
                "ebi.ac.uk",
                "blastp",
                "http://www.ebi.ac.uk/ws/services/blast.wsdl",
            ),
            ModuleSpec::service(
                "run_wu_blast",
                ModuleType::ArbitraryWsdl,
                "ebi.ac.uk",
                "wublast",
                "http://www.ebi.ac.uk/ws/services/wublast.wsdl",
            ),
            ModuleSpec::script(
                "parse_blast_report",
                ModuleType::BeanshellScript,
                "hits = parse(report); return hits;",
            ),
            ModuleSpec::script(
                "filter_hits_by_evalue",
                ModuleType::BeanshellScript,
                "if (evalue < 1e-10) keep(hit);",
            ),
            ModuleSpec::service(
                "clustalw_alignment",
                ModuleType::SoaplabService,
                "ebi.ac.uk",
                "clustalw2",
                "http://www.ebi.ac.uk/ws/services/clustalw2.wsdl",
            ),
            ModuleSpec::service(
                "fetch_uniprot_entry",
                ModuleType::RestService,
                "uniprot.org",
                "entry_lookup",
                "http://www.uniprot.org/uniprot",
            ),
        ],
    },
    Topic {
        key: "expression",
        title_words: &[
            "microarray",
            "gene",
            "expression",
            "normalisation",
            "analysis",
        ],
        description_words: &[
            "normalises",
            "microarray",
            "expression",
            "values",
            "differential",
            "genes",
            "statistics",
            "probes",
        ],
        tags: &["microarray", "expression", "statistics"],
        modules: &[
            ModuleSpec::service(
                "fetch_arrayexpress_data",
                ModuleType::RestService,
                "ebi.ac.uk",
                "arrayexpress_query",
                "http://www.ebi.ac.uk/arrayexpress/xml/v2",
            ),
            ModuleSpec::script(
                "normalise_expression_matrix",
                ModuleType::RShell,
                "library(limma); normalizeBetweenArrays(x)",
            ),
            ModuleSpec::script(
                "compute_differential_expression",
                ModuleType::RShell,
                "fit <- lmFit(x, design); eBayes(fit)",
            ),
            ModuleSpec::script("plot_heatmap", ModuleType::RShell, "heatmap(as.matrix(x))"),
            ModuleSpec::service(
                "annotate_probes",
                ModuleType::BioMart,
                "ensembl.org",
                "probe_annotation",
                "http://www.biomart.org/biomart/martservice",
            ),
            ModuleSpec::script(
                "filter_low_variance_probes",
                ModuleType::BeanshellScript,
                "if (var(probe) > threshold) keep(probe);",
            ),
        ],
    },
    Topic {
        key: "proteomics",
        title_words: &["protein", "structure", "domain", "interpro", "annotation"],
        description_words: &[
            "annotates",
            "protein",
            "domains",
            "interpro",
            "structure",
            "features",
            "signal",
            "peptides",
        ],
        tags: &["protein", "interpro", "domains"],
        modules: &[
            ModuleSpec::service(
                "run_interproscan",
                ModuleType::SoaplabService,
                "ebi.ac.uk",
                "iprscan",
                "http://www.ebi.ac.uk/ws/services/iprscan.wsdl",
            ),
            ModuleSpec::service(
                "fetch_pdb_structure",
                ModuleType::RestService,
                "rcsb.org",
                "pdb_download",
                "http://www.rcsb.org/pdb/rest",
            ),
            ModuleSpec::script(
                "extract_domain_table",
                ModuleType::BeanshellScript,
                "domains = parseXml(result);",
            ),
            ModuleSpec::service(
                "predict_signal_peptide",
                ModuleType::WsdlService,
                "cbs.dtu.dk",
                "signalp",
                "http://www.cbs.dtu.dk/ws/SignalP.wsdl",
            ),
            ModuleSpec::script(
                "merge_annotation_tables",
                ModuleType::BeanshellScript,
                "merged = join(a, b, key);",
            ),
        ],
    },
    Topic {
        key: "phylogeny",
        title_words: &["phylogenetic", "tree", "multiple", "alignment", "species"],
        description_words: &[
            "builds",
            "phylogenetic",
            "tree",
            "aligned",
            "sequences",
            "bootstrap",
            "species",
            "newick",
        ],
        tags: &["phylogeny", "tree", "evolution"],
        modules: &[
            ModuleSpec::service(
                "run_muscle_alignment",
                ModuleType::SoaplabService,
                "ebi.ac.uk",
                "muscle",
                "http://www.ebi.ac.uk/ws/services/muscle.wsdl",
            ),
            ModuleSpec::script(
                "build_neighbour_joining_tree",
                ModuleType::RShell,
                "nj(dist.dna(alignment))",
            ),
            ModuleSpec::script(
                "bootstrap_tree",
                ModuleType::RShell,
                "boot.phylo(tree, alignment, FUN)",
            ),
            ModuleSpec::service(
                "fetch_taxonomy_lineage",
                ModuleType::WsdlService,
                "ncbi.nlm.nih.gov",
                "taxonomy_lookup",
                "http://eutils.ncbi.nlm.nih.gov/soap/eutils.wsdl",
            ),
            ModuleSpec::script(
                "render_tree_image",
                ModuleType::BeanshellScript,
                "draw(tree, format=\"png\");",
            ),
        ],
    },
    Topic {
        key: "literature",
        title_words: &["pubmed", "literature", "mining", "abstracts", "retrieval"],
        description_words: &[
            "queries",
            "pubmed",
            "abstracts",
            "extracts",
            "terms",
            "entities",
            "counts",
            "citations",
        ],
        tags: &["pubmed", "text-mining", "literature"],
        modules: &[
            ModuleSpec::service(
                "search_pubmed",
                ModuleType::WsdlService,
                "ncbi.nlm.nih.gov",
                "esearch_pubmed",
                "http://eutils.ncbi.nlm.nih.gov/soap/eutils.wsdl",
            ),
            ModuleSpec::service(
                "fetch_abstracts",
                ModuleType::WsdlService,
                "ncbi.nlm.nih.gov",
                "efetch_pubmed",
                "http://eutils.ncbi.nlm.nih.gov/soap/eutils.wsdl",
            ),
            ModuleSpec::script(
                "extract_gene_mentions",
                ModuleType::BeanshellScript,
                "mentions = ner(abstract, \"gene\");",
            ),
            ModuleSpec::script(
                "count_term_frequencies",
                ModuleType::BeanshellScript,
                "freq[term]++;",
            ),
            ModuleSpec::service(
                "map_mesh_terms",
                ModuleType::RestService,
                "nlm.nih.gov",
                "mesh_lookup",
                "http://id.nlm.nih.gov/mesh",
            ),
        ],
    },
];

/// The tool catalogue of the Galaxy-like corpus.  Galaxy workflows invoke
/// locally installed tools identified by tool ids rather than web services,
/// and usually carry little free-text annotation.
pub const GALAXY_TOPICS: &[Topic] = &[
    Topic {
        key: "ngs_mapping",
        title_words: &["read", "mapping", "bwa", "variant", "calling"],
        description_words: &["maps", "reads", "reference", "calls", "variants"],
        tags: &["ngs", "mapping"],
        modules: &[
            ModuleSpec::service(
                "fastqc_quality",
                ModuleType::GalaxyTool,
                "galaxy",
                "toolshed.fastqc/0.72",
                "fastqc",
            ),
            ModuleSpec::service(
                "trimmomatic_trim",
                ModuleType::GalaxyTool,
                "galaxy",
                "toolshed.trimmomatic/0.38",
                "trimmomatic",
            ),
            ModuleSpec::service(
                "bwa_mem_map",
                ModuleType::GalaxyTool,
                "galaxy",
                "toolshed.bwa_mem/0.7.17",
                "bwa_mem",
            ),
            ModuleSpec::service(
                "samtools_sort",
                ModuleType::GalaxyTool,
                "galaxy",
                "toolshed.samtools_sort/1.9",
                "samtools_sort",
            ),
            ModuleSpec::service(
                "freebayes_call",
                ModuleType::GalaxyTool,
                "galaxy",
                "toolshed.freebayes/1.3",
                "freebayes",
            ),
            ModuleSpec::service(
                "vcf_filter",
                ModuleType::GalaxyTool,
                "galaxy",
                "toolshed.vcffilter/1.0",
                "vcffilter",
            ),
        ],
    },
    Topic {
        key: "rna_seq",
        title_words: &["rna", "seq", "differential", "expression", "counts"],
        description_words: &[
            "aligns",
            "rna",
            "reads",
            "counts",
            "differential",
            "expression",
        ],
        tags: &["rna-seq", "expression"],
        modules: &[
            ModuleSpec::service(
                "hisat2_align",
                ModuleType::GalaxyTool,
                "galaxy",
                "toolshed.hisat2/2.1",
                "hisat2",
            ),
            ModuleSpec::service(
                "featurecounts_count",
                ModuleType::GalaxyTool,
                "galaxy",
                "toolshed.featurecounts/1.6",
                "featurecounts",
            ),
            ModuleSpec::service(
                "deseq2_differential",
                ModuleType::GalaxyTool,
                "galaxy",
                "toolshed.deseq2/2.11",
                "deseq2",
            ),
            ModuleSpec::service(
                "volcano_plot",
                ModuleType::GalaxyTool,
                "galaxy",
                "toolshed.volcanoplot/0.0.3",
                "volcanoplot",
            ),
            ModuleSpec::service(
                "multiqc_report",
                ModuleType::GalaxyTool,
                "galaxy",
                "toolshed.multiqc/1.7",
                "multiqc",
            ),
        ],
    },
    Topic {
        key: "metagenomics",
        title_words: &["16s", "metagenomics", "taxonomy", "community", "profiling"],
        description_words: &["classifies", "reads", "taxa", "abundance", "community"],
        tags: &["metagenomics"],
        modules: &[
            ModuleSpec::service(
                "qiime_demux",
                ModuleType::GalaxyTool,
                "galaxy",
                "toolshed.qiime_demux/2019.4",
                "qiime_demux",
            ),
            ModuleSpec::service(
                "dada2_denoise",
                ModuleType::GalaxyTool,
                "galaxy",
                "toolshed.dada2/1.10",
                "dada2",
            ),
            ModuleSpec::service(
                "kraken2_classify",
                ModuleType::GalaxyTool,
                "galaxy",
                "toolshed.kraken2/2.0",
                "kraken2",
            ),
            ModuleSpec::service(
                "krona_plot",
                ModuleType::GalaxyTool,
                "galaxy",
                "toolshed.krona/2.7",
                "krona",
            ),
        ],
    },
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topics_are_nonempty_and_distinct() {
        assert!(TOPICS.len() >= 5);
        let mut keys: Vec<&str> = TOPICS.iter().map(|t| t.key).collect();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), TOPICS.len());
        for t in TOPICS {
            assert!(t.modules.len() >= 4, "topic {} too small", t.key);
            assert!(!t.title_words.is_empty());
            assert!(!t.tags.is_empty());
        }
    }

    #[test]
    fn module_specs_are_internally_consistent() {
        for topic in TOPICS.iter().chain(GALAXY_TOPICS.iter()) {
            for spec in topic.modules {
                if spec.module_type.is_service() || spec.module_type == ModuleType::GalaxyTool {
                    assert!(spec.service.is_some(), "{} needs service attrs", spec.label);
                }
                if spec.module_type.is_script() {
                    assert!(spec.script.is_some(), "{} needs a script body", spec.label);
                }
                assert!(!spec.label.contains(' '), "labels are underscore separated");
            }
        }
    }

    #[test]
    fn shim_modules_are_trivial() {
        for shim in SHIM_MODULES {
            assert!(shim.module_type.is_trivial_local(), "{}", shim.label);
        }
        assert!(SHIM_MODULES.len() >= 4);
    }

    #[test]
    fn labels_are_unique_within_each_topic() {
        for topic in TOPICS.iter().chain(GALAXY_TOPICS.iter()) {
            let mut labels: Vec<&str> = topic.modules.iter().map(|m| m.label).collect();
            labels.sort_unstable();
            labels.dedup();
            assert_eq!(labels.len(), topic.modules.len(), "topic {}", topic.key);
        }
    }
}
