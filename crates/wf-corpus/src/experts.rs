//! The simulated expert panel.
//!
//! The paper collected 2424 Likert ratings from 15 experts (Section 4.2).
//! The simulated panel substitutes for that study: each synthetic expert
//! derives a rating for a workflow pair from the pair's *latent* similarity
//! (see [`crate::families`]) plus a per-expert bias, per-rating noise and an
//! occasional *unsure* abstention.  Figure 4 of the paper shows that real
//! experts mostly agree with the consensus with a few outliers; the panel's
//! bias/noise parameters produce the same profile, which the
//! `fig04_annotator_agreement` experiment verifies.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use wf_gold::{ExpertRating, LikertRating, RatingCorpus};
use wf_model::WorkflowId;

use crate::families::CorpusMeta;

/// Configuration of the simulated expert panel.
#[derive(Debug, Clone, PartialEq)]
pub struct ExpertPanelConfig {
    /// Number of experts (the paper has 15).
    pub experts: usize,
    /// RNG seed.
    pub seed: u64,
    /// Probability that an expert abstains ("unsure") on a pair.
    pub unsure_probability: f64,
    /// Half-width of the uniform per-rating noise added to the latent
    /// similarity before thresholding.
    pub noise: f64,
    /// Half-width of the per-expert systematic bias.
    pub bias: f64,
}

impl Default for ExpertPanelConfig {
    fn default() -> Self {
        ExpertPanelConfig {
            experts: 15,
            seed: 77,
            unsure_probability: 0.04,
            noise: 0.10,
            bias: 0.06,
        }
    }
}

/// A panel of simulated experts.
#[derive(Debug, Clone)]
pub struct ExpertPanel {
    config: ExpertPanelConfig,
    /// Per-expert systematic bias on the latent scale.
    biases: Vec<f64>,
    /// One RNG per expert so that adding experts does not reshuffle the
    /// ratings of existing ones.
    rng_seeds: Vec<u64>,
}

impl ExpertPanel {
    /// Creates a panel from a configuration.
    pub fn new(config: ExpertPanelConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let biases = (0..config.experts)
            .map(|_| rng.gen_range(-config.bias..=config.bias))
            .collect();
        let rng_seeds = (0..config.experts).map(|_| rng.gen()).collect();
        ExpertPanel {
            config,
            biases,
            rng_seeds,
        }
    }

    /// The expert identifiers (`expert-01` …).
    pub fn expert_names(&self) -> Vec<String> {
        (0..self.config.experts)
            .map(|i| format!("expert-{:02}", i + 1))
            .collect()
    }

    /// Maps a (noisy) latent similarity to a Likert level.
    fn threshold(latent: f64) -> LikertRating {
        if latent >= 0.78 {
            LikertRating::VerySimilar
        } else if latent >= 0.52 {
            LikertRating::Similar
        } else if latent >= 0.27 {
            LikertRating::Related
        } else {
            LikertRating::Dissimilar
        }
    }

    /// One expert's rating of a pair with the given latent similarity.
    pub fn rate(&self, expert: usize, latent: f64, rng: &mut impl Rng) -> LikertRating {
        if rng.gen_bool(self.config.unsure_probability) {
            return LikertRating::Unsure;
        }
        let noise = rng.gen_range(-self.config.noise..=self.config.noise);
        let perceived = (latent + self.biases[expert % self.biases.len()] + noise).clamp(0.0, 1.0);
        ExpertPanel::threshold(perceived)
    }

    /// Rates every (query, candidate) pair with every expert, producing the
    /// rating corpus the evaluation machinery consumes.  Pairs for which no
    /// latent similarity is known (unknown ids) are skipped.
    pub fn rate_pairs(
        &self,
        meta: &CorpusMeta,
        pairs: &[(WorkflowId, WorkflowId)],
    ) -> RatingCorpus {
        let mut corpus = RatingCorpus::new();
        for (expert_idx, name) in self.expert_names().into_iter().enumerate() {
            let mut rng = StdRng::seed_from_u64(self.rng_seeds[expert_idx]);
            for (query, candidate) in pairs {
                let Some(latent) = meta.latent(query, candidate) else {
                    continue;
                };
                let rating = self.rate(expert_idx, latent, &mut rng);
                corpus.add(ExpertRating::new(
                    name.clone(),
                    query.as_str(),
                    candidate.as_str(),
                    rating,
                ));
            }
        }
        corpus
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::families::WorkflowMeta;

    fn panel() -> ExpertPanel {
        ExpertPanel::new(ExpertPanelConfig::default())
    }

    fn meta_with_three() -> CorpusMeta {
        let mut meta = CorpusMeta::new();
        for (id, topic, family, depth) in [
            ("q", 0, 0, 0),
            ("sibling", 0, 0, 1),
            ("cousin", 0, 1, 0),
            ("stranger", 1, 2, 0),
        ] {
            meta.insert(WorkflowMeta {
                id: WorkflowId::new(id),
                topic,
                family,
                depth,
            });
        }
        meta
    }

    #[test]
    fn thresholds_cover_the_whole_scale() {
        assert_eq!(ExpertPanel::threshold(0.95), LikertRating::VerySimilar);
        assert_eq!(ExpertPanel::threshold(0.6), LikertRating::Similar);
        assert_eq!(ExpertPanel::threshold(0.35), LikertRating::Related);
        assert_eq!(ExpertPanel::threshold(0.05), LikertRating::Dissimilar);
    }

    #[test]
    fn panel_has_the_requested_number_of_experts() {
        let p = panel();
        assert_eq!(p.expert_names().len(), 15);
        assert_eq!(p.expert_names()[0], "expert-01");
        assert_eq!(p.expert_names()[14], "expert-15");
    }

    #[test]
    fn high_latent_similarity_mostly_yields_high_ratings() {
        let p = panel();
        let mut rng = StdRng::seed_from_u64(5);
        let mut high = 0;
        for expert in 0..15 {
            for _ in 0..20 {
                let rating = p.rate(expert, 0.9, &mut rng);
                if matches!(rating, LikertRating::VerySimilar | LikertRating::Similar) {
                    high += 1;
                }
            }
        }
        assert!(high > 270, "got {high}/300 high ratings for latent 0.9");
    }

    #[test]
    fn low_latent_similarity_mostly_yields_dissimilar() {
        let p = panel();
        let mut rng = StdRng::seed_from_u64(6);
        let mut low = 0;
        for expert in 0..15 {
            for _ in 0..20 {
                if p.rate(expert, 0.05, &mut rng) == LikertRating::Dissimilar {
                    low += 1;
                }
            }
        }
        assert!(
            low > 250,
            "got {low}/300 dissimilar ratings for latent 0.05"
        );
    }

    #[test]
    fn unsure_ratings_occur_at_roughly_the_configured_rate() {
        let p = ExpertPanel::new(ExpertPanelConfig {
            unsure_probability: 0.2,
            ..ExpertPanelConfig::default()
        });
        let mut rng = StdRng::seed_from_u64(7);
        let unsure = (0..1000)
            .filter(|_| p.rate(0, 0.5, &mut rng) == LikertRating::Unsure)
            .count();
        assert!(unsure > 130 && unsure < 280, "got {unsure}/1000");
    }

    #[test]
    fn rate_pairs_builds_a_complete_rating_corpus() {
        let p = panel();
        let meta = meta_with_three();
        let pairs = vec![
            (WorkflowId::new("q"), WorkflowId::new("sibling")),
            (WorkflowId::new("q"), WorkflowId::new("cousin")),
            (WorkflowId::new("q"), WorkflowId::new("stranger")),
            (WorkflowId::new("q"), WorkflowId::new("unknown-id")),
        ];
        let ratings = p.rate_pairs(&meta, &pairs);
        // 15 experts × 3 known pairs.
        assert_eq!(ratings.len(), 45);
        assert_eq!(ratings.pair_count(), 3);
        // The consensus ordering reflects the latent structure.
        let sibling = ratings.median("q", "sibling").unwrap().value().unwrap();
        let cousin = ratings.median("q", "cousin").unwrap().value().unwrap();
        let stranger = ratings.median("q", "stranger").unwrap().value().unwrap();
        assert!(sibling > cousin, "sibling {sibling} vs cousin {cousin}");
        assert!(cousin > stranger, "cousin {cousin} vs stranger {stranger}");
    }

    #[test]
    fn ratings_are_deterministic_per_panel() {
        let meta = meta_with_three();
        let pairs = vec![(WorkflowId::new("q"), WorkflowId::new("sibling"))];
        let a = panel().rate_pairs(&meta, &pairs);
        let b = panel().rate_pairs(&meta, &pairs);
        assert_eq!(a, b);
    }
}
