//! Latent ground truth: topics, families and latent similarity.
//!
//! The corpus generators organise workflows into *families*: a family is a
//! seed workflow plus variants derived from it by mutation.  Families belong
//! to *topics* (functional domains such as pathway analysis or sequence
//! alignment).  This latent structure plays the role of the "functional
//! similarity" that the paper's human experts judged: two variants of the
//! same seed are (very) similar, two workflows about the same topic are
//! related, workflows from different topics are dissimilar.  The simulated
//! expert panel derives its ratings from [`latent_similarity`].

use std::collections::BTreeMap;

use wf_model::WorkflowId;

/// The latent coordinates of one generated workflow.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkflowMeta {
    /// The workflow id.
    pub id: WorkflowId,
    /// Index of the topic the workflow belongs to.
    pub topic: usize,
    /// Index of the family within the corpus.
    pub family: usize,
    /// How many mutation rounds separate the workflow from its family seed
    /// (0 for the seed itself).
    pub depth: usize,
}

/// The latent metadata of a whole corpus.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CorpusMeta {
    entries: BTreeMap<WorkflowId, WorkflowMeta>,
}

impl CorpusMeta {
    /// Creates empty metadata.
    pub fn new() -> Self {
        CorpusMeta::default()
    }

    /// Records one workflow's coordinates.
    pub fn insert(&mut self, meta: WorkflowMeta) {
        self.entries.insert(meta.id.clone(), meta);
    }

    /// Looks up a workflow's coordinates.
    pub fn get(&self, id: &WorkflowId) -> Option<&WorkflowMeta> {
        self.entries.get(id)
    }

    /// Number of described workflows.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no workflow is described.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over all entries.
    pub fn iter(&self) -> impl Iterator<Item = &WorkflowMeta> {
        self.entries.values()
    }

    /// The latent similarity of two workflows, or `None` if either is
    /// unknown.
    pub fn latent(&self, a: &WorkflowId, b: &WorkflowId) -> Option<f64> {
        Some(latent_similarity(self.get(a)?, self.get(b)?))
    }

    /// All ids belonging to a family.
    pub fn family_members(&self, family: usize) -> Vec<&WorkflowId> {
        self.entries
            .values()
            .filter(|m| m.family == family)
            .map(|m| &m.id)
            .collect()
    }
}

/// The latent functional similarity of two workflows, in `[0, 1]`.
///
/// * identical workflow: 1.0;
/// * same family: high, decaying with the combined mutation depth (a deep
///   variant differs more from the seed and from its siblings);
/// * same topic, different family: moderate ("related" territory);
/// * different topics: low but non-zero (real experts occasionally see weak
///   connections between domains).
pub fn latent_similarity(a: &WorkflowMeta, b: &WorkflowMeta) -> f64 {
    if a.id == b.id {
        return 1.0;
    }
    if a.family == b.family {
        let decay = 0.05 * (a.depth + b.depth) as f64;
        (0.92 - decay).max(0.58)
    } else if a.topic == b.topic {
        0.40
    } else {
        0.08
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta(id: &str, topic: usize, family: usize, depth: usize) -> WorkflowMeta {
        WorkflowMeta {
            id: WorkflowId::new(id),
            topic,
            family,
            depth,
        }
    }

    #[test]
    fn identical_ids_have_similarity_one() {
        let a = meta("w1", 0, 0, 3);
        assert_eq!(latent_similarity(&a, &a.clone()), 1.0);
    }

    #[test]
    fn similarity_strata_are_ordered() {
        let seed = meta("seed", 0, 0, 0);
        let sibling = meta("sib", 0, 0, 1);
        let deep_sibling = meta("deep", 0, 0, 4);
        let same_topic = meta("topic", 0, 1, 0);
        let other_topic = meta("other", 1, 2, 0);
        let s_sib = latent_similarity(&seed, &sibling);
        let s_deep = latent_similarity(&seed, &deep_sibling);
        let s_topic = latent_similarity(&seed, &same_topic);
        let s_other = latent_similarity(&seed, &other_topic);
        assert!(s_sib > s_deep, "shallow variants are closer than deep ones");
        assert!(s_deep > s_topic, "family beats topic");
        assert!(s_topic > s_other, "topic beats nothing");
        assert!(s_other > 0.0);
        assert!(s_sib < 1.0);
    }

    #[test]
    fn family_similarity_never_drops_below_related_level() {
        let a = meta("a", 0, 0, 10);
        let b = meta("b", 0, 0, 10);
        assert!(latent_similarity(&a, &b) >= 0.58);
    }

    #[test]
    fn corpus_meta_lookup_and_latent() {
        let mut meta_store = CorpusMeta::new();
        meta_store.insert(meta("a", 0, 0, 0));
        meta_store.insert(meta("b", 0, 0, 2));
        meta_store.insert(meta("c", 1, 3, 0));
        assert_eq!(meta_store.len(), 3);
        assert!(!meta_store.is_empty());
        assert_eq!(meta_store.get(&WorkflowId::new("b")).unwrap().depth, 2);
        assert!(meta_store.get(&WorkflowId::new("zzz")).is_none());
        let ab = meta_store
            .latent(&WorkflowId::new("a"), &WorkflowId::new("b"))
            .unwrap();
        let ac = meta_store
            .latent(&WorkflowId::new("a"), &WorkflowId::new("c"))
            .unwrap();
        assert!(ab > ac);
        assert!(meta_store
            .latent(&WorkflowId::new("a"), &WorkflowId::new("zzz"))
            .is_none());
        assert_eq!(meta_store.family_members(0).len(), 2);
    }
}
