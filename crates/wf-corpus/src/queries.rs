//! Query and candidate selection for the ranking experiment.
//!
//! In the paper's first experiment, "24 life science workflows, randomly
//! selected from our dataset (called query workflows) were presented to the
//! users, each accompanied by a list of 10 other workflows to compare it
//! to.  To obtain these 10 workflows, we ranked all workflows in the
//! repository wrt a given query workflow using a naive annotation based
//! similarity measure and drew workflows at random from the top-10, the
//! middle, and the lower 30" (Section 4.2) — i.e. the candidate lists mix
//! clearly similar, middling and clearly dissimilar workflows.  With a
//! synthetic corpus the same stratification is obtained directly from the
//! latent structure: candidates are drawn from the query's family, from its
//! topic, and from other topics.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use wf_model::WorkflowId;

use crate::families::CorpusMeta;

/// Selects `count` query workflows.  Queries are chosen among workflows
/// whose family has at least `min_family_size` members so that genuinely
/// similar candidates exist (mirroring the paper's life-science selection).
pub fn select_queries(
    meta: &CorpusMeta,
    count: usize,
    min_family_size: usize,
    seed: u64,
) -> Vec<WorkflowId> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut eligible: Vec<WorkflowId> = meta
        .iter()
        .filter(|m| meta.family_members(m.family).len() >= min_family_size)
        .map(|m| m.id.clone())
        .collect();
    eligible.sort();
    eligible.shuffle(&mut rng);
    eligible.truncate(count);
    eligible
}

/// Selects a stratified candidate list for one query: roughly 40% family
/// members, 30% same-topic workflows and 30% workflows from other topics,
/// topped up from whatever stratum still has members if one runs dry.
pub fn select_candidates(
    meta: &CorpusMeta,
    query: &WorkflowId,
    count: usize,
    seed: u64,
) -> Vec<WorkflowId> {
    let Some(query_meta) = meta.get(query) else {
        return Vec::new();
    };
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9e3779b97f4a7c15);

    let mut family: Vec<WorkflowId> = Vec::new();
    let mut topic: Vec<WorkflowId> = Vec::new();
    let mut other: Vec<WorkflowId> = Vec::new();
    for m in meta.iter() {
        if m.id == *query {
            continue;
        }
        if m.family == query_meta.family {
            family.push(m.id.clone());
        } else if m.topic == query_meta.topic {
            topic.push(m.id.clone());
        } else {
            other.push(m.id.clone());
        }
    }
    for bucket in [&mut family, &mut topic, &mut other] {
        bucket.sort();
        bucket.shuffle(&mut rng);
    }

    let want_family = (count * 4).div_ceil(10);
    let want_topic = (count * 3).div_ceil(10);

    let mut selected: Vec<WorkflowId> = Vec::with_capacity(count);
    selected.extend(family.iter().take(want_family).cloned());
    selected.extend(topic.iter().take(want_topic).cloned());
    for pool in [&other, &topic, &family] {
        for id in pool {
            if selected.len() >= count {
                break;
            }
            if !selected.contains(id) {
                selected.push(id.clone());
            }
        }
    }
    selected.truncate(count);
    selected
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::taverna::{generate_taverna_corpus, TavernaCorpusConfig};

    fn meta() -> CorpusMeta {
        generate_taverna_corpus(&TavernaCorpusConfig::small(80, 13)).1
    }

    #[test]
    fn queries_are_distinct_and_from_populated_families() {
        let meta = meta();
        let queries = select_queries(&meta, 10, 3, 1);
        assert_eq!(queries.len(), 10);
        let mut unique = queries.clone();
        unique.sort();
        unique.dedup();
        assert_eq!(unique.len(), queries.len());
        for q in &queries {
            let m = meta.get(q).unwrap();
            assert!(meta.family_members(m.family).len() >= 3);
        }
    }

    #[test]
    fn query_selection_is_deterministic_per_seed() {
        let meta = meta();
        assert_eq!(
            select_queries(&meta, 5, 2, 9),
            select_queries(&meta, 5, 2, 9)
        );
        assert_ne!(
            select_queries(&meta, 5, 2, 9),
            select_queries(&meta, 5, 2, 10)
        );
    }

    #[test]
    fn candidates_are_stratified_and_exclude_the_query() {
        let meta = meta();
        let query = select_queries(&meta, 1, 3, 2)[0].clone();
        let candidates = select_candidates(&meta, &query, 10, 3);
        assert_eq!(candidates.len(), 10);
        assert!(!candidates.contains(&query));
        let qm = meta.get(&query).unwrap();
        let family_members = candidates
            .iter()
            .filter(|c| meta.get(c).unwrap().family == qm.family)
            .count();
        let other_topic = candidates
            .iter()
            .filter(|c| meta.get(c).unwrap().topic != qm.topic)
            .count();
        assert!(family_members >= 2, "need genuinely similar candidates");
        assert!(other_topic >= 2, "need clearly dissimilar candidates");
    }

    #[test]
    fn unknown_query_yields_no_candidates() {
        let meta = meta();
        assert!(select_candidates(&meta, &WorkflowId::new("nope"), 10, 1).is_empty());
    }

    #[test]
    fn candidates_are_unique() {
        let meta = meta();
        let query = select_queries(&meta, 1, 2, 4)[0].clone();
        let candidates = select_candidates(&meta, &query, 10, 5);
        let mut unique = candidates.clone();
        unique.sort();
        unique.dedup();
        assert_eq!(unique.len(), candidates.len());
    }
}
