//! # wf-corpus — synthetic workflow corpora and a simulated expert panel
//!
//! The paper evaluates on two corpora that are not redistributable in this
//! reproduction: a myExperiment dump of 1483 Taverna workflows and 139
//! Galaxy workflows, plus 2424 similarity ratings contributed by 15 human
//! experts.  This crate substitutes synthetic equivalents that preserve the
//! properties the algorithms are sensitive to:
//!
//! * [`vocab`] — a bioinformatics-flavoured vocabulary of topics, services,
//!   module specifications, title/description templates and tags.
//! * [`families`] — the latent ground truth: workflows are organised into
//!   functional *families* within *topics*; the latent similarity of two
//!   workflows depends on whether they share a family, a topic, or nothing.
//! * [`mutate`] — the mutation operators that derive corpus workflows from
//!   family seeds (label noise, shim insertion, module deletion, branch
//!   addition, annotation rewording, tag dropping).
//! * [`taverna`] — the myExperiment-like corpus generator (1483 Taverna
//!   workflows, ≈15% untagged, ≈11 modules per workflow).
//! * [`galaxy`] — the Galaxy-like corpus generator (139 workflows, sparse
//!   annotations, tool-id labels).
//! * [`experts`] — the simulated 15-expert panel producing Likert ratings
//!   from the latent similarity with per-expert bias, noise and "unsure"
//!   abstentions.
//! * [`queries`] — query and candidate selection for the ranking experiment
//!   (24 queries × 10 candidates drawn from top / middle / bottom strata,
//!   as in Section 4.2 of the paper).

#![deny(unsafe_code)]

pub mod experts;
pub mod families;
pub mod galaxy;
pub mod mutate;
pub mod queries;
pub mod taverna;
pub mod vocab;

pub use experts::{ExpertPanel, ExpertPanelConfig};
pub use families::{latent_similarity, CorpusMeta, WorkflowMeta};
pub use galaxy::{generate_galaxy_corpus, GalaxyCorpusConfig};
pub use queries::{select_candidates, select_queries};
pub use taverna::{generate_taverna_corpus, TavernaCorpusConfig};
