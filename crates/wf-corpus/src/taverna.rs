//! The myExperiment-like Taverna corpus generator.
//!
//! The paper's primary corpus contains 1483 Taverna workflows from
//! myExperiment, with an average of 11.3 modules per workflow, roughly 15%
//! of workflows without tags, and heavy reuse of popular life-science
//! services under author-specific labels.  [`generate_taverna_corpus`]
//! produces a synthetic corpus with those properties, organised into
//! functional families so that a latent ground truth exists for the
//! simulated expert panel (substituting for the paper's human panel).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use wf_model::{Annotations, Datalink, Module, ModuleId, Workflow, WorkflowId};

use crate::families::{CorpusMeta, WorkflowMeta};
use crate::mutate::{degrade_tags, mutate_round};
use crate::vocab::{ModuleSpec, Topic, SHIM_MODULES, TOPICS};

/// Configuration of the Taverna-like corpus generator.
#[derive(Debug, Clone, PartialEq)]
pub struct TavernaCorpusConfig {
    /// Total number of workflows to generate (the paper's corpus has 1483).
    pub workflows: usize,
    /// RNG seed; the same seed reproduces the same corpus.
    pub seed: u64,
    /// Probability that a workflow ends up without tags (paper: ≈ 0.15).
    pub untagged_probability: f64,
    /// Smallest family size (seed + variants).
    pub min_family_size: usize,
    /// Largest family size.
    pub max_family_size: usize,
}

impl Default for TavernaCorpusConfig {
    fn default() -> Self {
        TavernaCorpusConfig {
            workflows: 1483,
            seed: 20140901, // VLDB 2014, Hangzhou
            untagged_probability: 0.15,
            min_family_size: 2,
            max_family_size: 8,
        }
    }
}

impl TavernaCorpusConfig {
    /// A small corpus for unit tests and examples.
    pub fn small(workflows: usize, seed: u64) -> Self {
        TavernaCorpusConfig {
            workflows,
            seed,
            ..TavernaCorpusConfig::default()
        }
    }
}

/// Generates the corpus and its latent metadata.
pub fn generate_taverna_corpus(config: &TavernaCorpusConfig) -> (Vec<Workflow>, CorpusMeta) {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut corpus = Vec::with_capacity(config.workflows);
    let mut meta = CorpusMeta::new();
    let mut family = 0usize;

    while corpus.len() < config.workflows {
        let topic_idx = family % TOPICS.len();
        let topic = &TOPICS[topic_idx];
        let family_size = rng
            .gen_range(config.min_family_size..=config.max_family_size)
            .min(config.workflows - corpus.len());

        let seed_id = WorkflowId::new(format!("t{}", corpus.len() + 1));
        let seed_wf = build_seed_workflow(&seed_id, topic, &mut rng);
        meta.insert(WorkflowMeta {
            id: seed_id,
            topic: topic_idx,
            family,
            depth: 0,
        });
        corpus.push(seed_wf.clone());

        for _variant in 1..family_size {
            let id = WorkflowId::new(format!("t{}", corpus.len() + 1));
            let depth = rng.gen_range(1..=3usize);
            let mut wf = seed_wf.clone();
            wf.id = id.clone();
            for _ in 0..depth {
                mutate_round(&mut wf, &mut rng);
            }
            degrade_tags(&mut wf, config.untagged_probability, &mut rng);
            meta.insert(WorkflowMeta {
                id,
                topic: topic_idx,
                family,
                depth,
            });
            corpus.push(wf);
        }
        family += 1;
    }
    (corpus, meta)
}

/// Builds one family seed workflow for a topic.
fn build_seed_workflow(id: &WorkflowId, topic: &Topic, rng: &mut StdRng) -> Workflow {
    // Sample 4–6 distinct domain modules from the topic.
    let domain_count = rng.gen_range(4..=topic.modules.len().min(6));
    let mut specs: Vec<&ModuleSpec> = topic.modules.iter().collect();
    specs.shuffle(rng);
    specs.truncate(domain_count);

    let mut modules: Vec<Module> = Vec::new();
    let mut links: Vec<Datalink> = Vec::new();
    for (i, spec) in specs.iter().enumerate() {
        let mut module = Module::new(
            ModuleId(modules.len() as u32),
            spec.label,
            spec.module_type.clone(),
        );
        if let Some((authority, name, uri)) = spec.service {
            module.service_authority = Some(authority.to_string());
            module.service_name = Some(name.to_string());
            module.service_uri = Some(uri.to_string());
        }
        if let Some(body) = spec.script {
            module.script = Some(body.to_string());
        }
        let current = module.id;
        modules.push(module);
        if i > 0 {
            // Mostly a chain; sometimes branch off an earlier module.
            let parent_idx = if rng.gen_bool(0.75) {
                current.0 - 1
            } else {
                rng.gen_range(0..current.0)
            };
            links.push(Datalink::new(ModuleId(parent_idx), current));
        }
    }

    // Sprinkle shim modules onto random links to reach realistic sizes
    // (average around 11 modules per workflow, as in the paper's corpus).
    let shim_count = rng.gen_range(3..=7usize);
    for _ in 0..shim_count {
        if links.is_empty() {
            break;
        }
        let spec = SHIM_MODULES.choose(rng).expect("non-empty");
        let new_id = ModuleId(modules.len() as u32);
        let mut module = Module::new(
            new_id,
            format!("{}_{}", spec.label, new_id.0),
            spec.module_type.clone(),
        );
        if let Some(body) = spec.script {
            module.script = Some(body.to_string());
        }
        modules.push(module);
        let idx = rng.gen_range(0..links.len());
        let link = links.remove(idx);
        links.push(Datalink::new(link.from, new_id));
        links.push(Datalink::new(new_id, link.to));
    }

    let title = make_phrase(topic.title_words, 3..=5, rng, true);
    let description = make_phrase(topic.description_words, 6..=9, rng, false);
    let mut tags: Vec<String> = topic.tags.iter().map(|t| t.to_string()).collect();
    tags.shuffle(rng);
    tags.truncate(rng.gen_range(2..=tags.len().max(2)));

    Workflow {
        id: id.clone(),
        annotations: Annotations {
            title: Some(title),
            description: Some(description),
            tags,
            author: Some(format!("author_{}", rng.gen_range(1..=60))),
        },
        modules,
        links,
    }
}

/// Assembles a pseudo-natural phrase from a word pool.
fn make_phrase(
    words: &[&str],
    length: std::ops::RangeInclusive<usize>,
    rng: &mut StdRng,
    capitalize: bool,
) -> String {
    let mut pool: Vec<&str> = words.to_vec();
    pool.shuffle(rng);
    let n = rng.gen_range(length).min(pool.len());
    let mut phrase = pool[..n].join(" ");
    if capitalize {
        if let Some(first) = phrase.get_mut(0..1) {
            first.make_ascii_uppercase();
        }
    }
    phrase
}

#[cfg(test)]
mod tests {
    use super::*;
    use wf_model::{validate, CorpusStats};

    #[test]
    fn corpus_has_the_requested_size_and_valid_workflows() {
        let (corpus, meta) = generate_taverna_corpus(&TavernaCorpusConfig::small(60, 7));
        assert_eq!(corpus.len(), 60);
        assert_eq!(meta.len(), 60);
        for wf in &corpus {
            validate(wf).unwrap_or_else(|e| panic!("{}: {e}", wf.id));
            assert!(wf.module_count() >= 3);
        }
    }

    #[test]
    fn generation_is_deterministic_for_a_seed() {
        let a = generate_taverna_corpus(&TavernaCorpusConfig::small(30, 99));
        let b = generate_taverna_corpus(&TavernaCorpusConfig::small(30, 99));
        assert_eq!(a.0, b.0);
        assert_eq!(a.1, b.1);
        let c = generate_taverna_corpus(&TavernaCorpusConfig::small(30, 100));
        assert_ne!(a.0, c.0);
    }

    #[test]
    fn corpus_statistics_resemble_the_paper() {
        let (corpus, _) = generate_taverna_corpus(&TavernaCorpusConfig::small(300, 1));
        let stats = CorpusStats::of(&corpus).unwrap();
        assert!(
            stats.mean_modules > 8.0 && stats.mean_modules < 14.0,
            "mean modules {} should be near the paper's 11.3",
            stats.mean_modules
        );
        assert!(
            stats.untagged_fraction > 0.05 && stats.untagged_fraction < 0.35,
            "untagged fraction {} should be near the paper's 0.15",
            stats.untagged_fraction
        );
        assert!(
            stats.undescribed_fraction < 0.2,
            "most workflows carry descriptions"
        );
    }

    #[test]
    fn families_group_variants_with_their_seed() {
        let (corpus, meta) = generate_taverna_corpus(&TavernaCorpusConfig::small(40, 3));
        // Every workflow has metadata; family members share the topic.
        for wf in &corpus {
            let m = meta.get(&wf.id).expect("metadata for every workflow");
            for other_id in meta.family_members(m.family) {
                assert_eq!(meta.get(other_id).unwrap().topic, m.topic);
            }
        }
        // At least one family has more than one member.
        let any_family = meta.get(&corpus[0].id).unwrap().family;
        assert!(!meta.family_members(any_family).is_empty());
        let multi = (0..meta.len()).any(|f| meta.family_members(f).len() >= 2);
        assert!(multi, "some family must contain variants");
    }

    #[test]
    fn variants_share_vocabulary_with_their_seed() {
        let (corpus, meta) = generate_taverna_corpus(&TavernaCorpusConfig::small(20, 11));
        let seed = &corpus[0];
        let seed_meta = meta.get(&seed.id).unwrap();
        for wf in corpus.iter().skip(1) {
            let m = meta.get(&wf.id).unwrap();
            if m.family == seed_meta.family && m.depth > 0 {
                // Service URIs are stable under mutation, so family members
                // share at least one.
                let seed_uris: std::collections::BTreeSet<&str> = seed
                    .modules
                    .iter()
                    .filter_map(|mm| mm.service_uri.as_deref())
                    .collect();
                let shared = wf
                    .modules
                    .iter()
                    .filter_map(|mm| mm.service_uri.as_deref())
                    .any(|u| seed_uris.contains(u));
                assert!(shared, "variant {} shares no service with its seed", wf.id);
            }
        }
    }

    #[test]
    fn ids_are_unique() {
        let (corpus, _) = generate_taverna_corpus(&TavernaCorpusConfig::small(50, 5));
        let mut ids: Vec<&str> = corpus.iter().map(|w| w.id.as_str()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), corpus.len());
    }
}
