//! Normalization of topological similarity scores.
//!
//! Section 2.1.4 of the paper: the additive, non-normalized scores of the
//! set-based measures are normalized with a *similarity-weighted Jaccard
//! index*, and the graph edit cost with the maximum possible cost.  The
//! paper shows (Fig. 7 and Section 5.1.3) that omitting normalization
//! significantly hurts ranking quality, so normalization is the default
//! everywhere; the non-normalized variants remain available for that
//! ablation.

/// The similarity-weighted Jaccard normalization of the paper:
///
/// ```text
/// sim = nnsim / (|A| + |B| - nnsim)
/// ```
///
/// where `nnsim` is the additive similarity of the mapped elements and
/// `|A|`, `|B|` are the sizes of the two compared sets (modules or paths).
/// For identical sets (`nnsim = |A| = |B|`) the result is 1; for a mapping
/// without any similarity it is 0.  Two empty sets are defined to be
/// identical (similarity 1).
pub fn jaccard_normalize(nnsim: f64, size_a: usize, size_b: usize) -> f64 {
    if size_a == 0 && size_b == 0 {
        return 1.0;
    }
    let denominator = size_a as f64 + size_b as f64 - nnsim;
    if denominator <= 0.0 {
        // Only possible when nnsim >= |A| + |B|, i.e. rounding noise on
        // identical sets; clamp to perfect similarity.
        return 1.0;
    }
    (nnsim / denominator).clamp(0.0, 1.0)
}

/// The graph-edit-distance normalization of the paper:
///
/// ```text
/// sim_GED = 1 − cost / (max(|V1|, |V2|) + |E1| + |E2|)
/// ```
///
/// (for uniform edit costs of 1).  The caller supplies the maximum cost so
/// that non-uniform cost configurations normalize consistently.
pub fn ged_normalize(cost: f64, max_cost: f64) -> f64 {
    if max_cost <= 0.0 {
        // Two empty graphs: zero cost, identical.
        return if cost <= 0.0 { 1.0 } else { 0.0 };
    }
    (1.0 - cost / max_cost).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_sets_normalize_to_one() {
        assert_eq!(jaccard_normalize(3.0, 3, 3), 1.0);
        assert_eq!(jaccard_normalize(0.0, 0, 0), 1.0);
    }

    #[test]
    fn no_similarity_normalizes_to_zero() {
        assert_eq!(jaccard_normalize(0.0, 4, 5), 0.0);
    }

    #[test]
    fn partial_similarity_matches_hand_computation() {
        // nnsim = 2 over sets of sizes 3 and 4: 2 / (3 + 4 - 2) = 0.4.
        assert!((jaccard_normalize(2.0, 3, 4) - 0.4).abs() < 1e-12);
    }

    #[test]
    fn size_asymmetry_reduces_similarity() {
        // The same absolute overlap counts for less against a bigger workflow.
        let small = jaccard_normalize(2.0, 2, 3);
        let large = jaccard_normalize(2.0, 2, 98);
        assert!(small > large);
    }

    #[test]
    fn rounding_noise_is_clamped() {
        assert_eq!(jaccard_normalize(3.0000001, 3, 3), 1.0);
    }

    #[test]
    fn ged_normalization_bounds() {
        assert_eq!(ged_normalize(0.0, 10.0), 1.0);
        assert_eq!(ged_normalize(10.0, 10.0), 0.0);
        assert_eq!(ged_normalize(5.0, 10.0), 0.5);
        assert_eq!(ged_normalize(15.0, 10.0), 0.0, "over-cost clamps to 0");
        assert_eq!(
            ged_normalize(0.0, 0.0),
            1.0,
            "two empty graphs are identical"
        );
    }

    #[test]
    fn the_papers_size_example() {
        // The motivating example of Section 2.1.4: an edit distance of 2 on
        // workflows of 2/3 modules vs 98/99 modules.  After normalization
        // the big pair is (much) more similar.
        let small = ged_normalize(2.0, 3.0 + 1.0 + 2.0); // |V|=3, |E1|=1, |E2|=2
        let large = ged_normalize(2.0, 99.0 + 97.0 + 98.0);
        assert!(large > small);
        assert!(large > 0.98);
    }
}
