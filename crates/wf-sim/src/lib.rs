//! # wf-sim — the scientific workflow similarity framework
//!
//! This crate is the primary contribution of the reproduced paper
//! (*Starlinger et al., PVLDB 2014*): a framework that decomposes scientific
//! workflow comparison into explicit, interchangeable steps (Fig. 2 of the
//! paper) and implements every previously published approach as a
//! configuration of those steps.
//!
//! The pipeline for structure-based measures is:
//!
//! 1. **Preprocessing** — optionally project each workflow onto its
//!    important modules (`ip`, [`wf_repo::projection`]).
//! 2. **Topological decomposition** — optionally decompose the workflow into
//!    substructures (source-to-sink paths for the Path Sets measure,
//!    [`decompose`]).
//! 3. **Pairwise module comparison** — compute a similarity for every
//!    candidate module pair under a configurable attribute weighting scheme
//!    (`pw0`, `pw3`, `pll`, `plm`, `gw1`, `gll`; [`module_cmp`]), restricted
//!    by a module-pair preselection strategy (`ta` / `te`,
//!    [`wf_repo::preselect`]).
//! 4. **Module mapping** — establish a one-to-one mapping (greedy, maximum
//!    weight, or maximum weight non-crossing; [`wf_matching`]).
//! 5. **Topological comparison** — aggregate mapped-pair similarities into a
//!    workflow-level score: Module Sets ([`measures::module_sets`]), Path
//!    Sets ([`measures::path_sets`]) or Graph Edit Distance
//!    ([`measures::graph_edit`]).
//! 6. **Normalization** — normalise by workflow size ([`normalize`]).
//!
//! Annotation-based measures (Bag of Words, Bag of Tags; [`annotation`]) and
//! score-averaging [`ensemble`]s complete the framework.  The [`pipeline`]
//! module ties everything together behind the [`WorkflowSimilarity`] type.
//!
//! Beyond the paper's core measures, [`extended`] implements the remaining
//! approaches of Table 1 (module label vectors, maximum common subgraph,
//! graph kernels, frequent module / tag sets) behind the common [`Measure`]
//! trait, so they can be benchmarked against the framework measures and used
//! by the clustering crate.
//!
//! For repository-scale work, [`profile`] precomputes corpus-resident
//! per-workflow features once ([`ProfiledMeasure`], bit-identical to the
//! pipeline), and [`corpus`] wraps them into the shared [`Corpus`] layer:
//! build → mutate (incremental `add`/`remove`) → snapshot (versioned,
//! checksummed persistence) → score (pruned top-k search and profiled
//! clustering matrices from one instance).  The [`shard`] module scales the
//! corpus out: [`ShardedCorpus`] partitions workflows across independent
//! shards with bit-identical scatter-gather top-k (plus per-shard snapshots
//! behind one manifest), and [`CorpusService`] serves concurrent searches
//! and batch queries while churn write-locks only the owning shard.

#![deny(unsafe_code)]

pub mod annotation;
pub mod config;
pub mod corpus;
pub mod decompose;
pub mod ensemble;
pub mod extended;
pub mod mapping_step;
pub mod measures;
pub mod module_cmp;
pub mod normalize;
pub mod pipeline;
pub mod prior_work;
pub mod profile;
pub mod shard;
pub mod stacking;

pub use annotation::{bag_of_tags_similarity, bag_of_words_similarity};
pub use config::{MeasureKind, Normalization, Preprocessing, SimilarityConfig};
pub use corpus::{Corpus, CorpusOrigin, SnapshotError};
pub use ensemble::Ensemble;
pub use extended::{
    FrequentSetSimilarity, LabelVectorSimilarity, McsConfig, McsSimilarity, Measure,
    WlKernelConfig, WlKernelSimilarity,
};
pub use mapping_step::{module_similarity_matrix, ModuleMappingOutcome};
pub use module_cmp::{ComparisonMethod, ModuleComparisonScheme};
pub use pipeline::{SimilarityReport, WorkflowSimilarity};
pub use prior_work::{prior_approaches, PriorApproach};
pub use profile::{ClassPairTable, ModuleProfile, ProfiledMeasure, QueryFeatures, WorkflowProfile};
pub use shard::{
    drain_shard, CorpusService, DegradedSearch, SearchParallelism, ShardOrigin, ShardPartition,
    ShardSnapshotError, ShardedCorpus,
};
pub use stacking::{learn_weights, weight_grid, LearnedWeights, RankEnsemble};
