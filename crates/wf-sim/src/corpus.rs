//! The corpus layer: one shared, corpus-resident artifact for every
//! scoring consumer.
//!
//! PR 2 introduced corpus-resident *profiles* ([`ProfiledMeasure`]) and an
//! inverted-index search engine, but each consumer still assembled its own
//! pieces per run: top-k search built a profile set and an index, the
//! clustering matrix re-derived everything through the per-pair `Measure`
//! trait, and every experiment binary carried its own ad-hoc `&[Workflow]`
//! slice.  Related repository-search systems treat the *repository* as the
//! persistent, indexed artifact (keyword indexes over workflow repositories
//! à la Davidson et al.; indexed execution patterns à la García-Cuesta et
//! al.); [`Corpus`] is that artifact here:
//!
//! * **build once, share everywhere** — a [`Corpus`] owns the workflows,
//!   the corpus-wide string pool, the per-workflow profiles and the
//!   label-token inverted index; top-k search, the clustering matrix
//!   builders and the experiment binaries all score from the same instance;
//! * **incremental mutation** — [`Corpus::add`] / [`Corpus::remove`] keep
//!   profiles and inverted index in sync without a rebuild, and the mutated
//!   corpus answers every query exactly like a from-scratch rebuild over
//!   the surviving workflows;
//! * **snapshot persistence** — [`Corpus::save`] / [`Corpus::load`]
//!   serialize the *built* state (pool, profiles, index — not just the raw
//!   workflows), so a serving process starts by deserializing instead of
//!   re-profiling; a version + checksum + config-fingerprint header makes
//!   [`Corpus::load_or_build`] fall back to a clean rebuild whenever the
//!   snapshot does not match the binary or the requested measure.

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;
use std::io;
use std::path::Path;

use serde::{Deserialize, Serialize};
use wf_model::{CorpusStats, Workflow, WorkflowId};
use wf_repo::{CorpusScorer, IndexedSearchEngine, SearchHit, SearchStats, TokenIndex};
use wf_text::StringPool;

use crate::config::SimilarityConfig;
use crate::pipeline::WorkflowSimilarity;
use crate::profile::{ClassPairTable, ProfiledMeasure, WorkflowProfile};

/// First token of a snapshot header line; anything else is not a snapshot.
pub const SNAPSHOT_MAGIC: &str = "wfsim-corpus-snapshot";

/// Version of the snapshot layout.  Bumped whenever the serialized shape of
/// the pool, the profiles or the index changes; older snapshots then fail
/// [`Corpus::load`] with [`SnapshotError::VersionMismatch`] and
/// [`Corpus::load_or_build`] rebuilds cleanly.
pub const SNAPSHOT_VERSION: u32 = 1;

/// A similarity-search corpus: workflows plus every derived, shared,
/// corpus-resident structure of one configured measure.
///
/// ```
/// use wf_model::{builder::WorkflowBuilder, ModuleType};
/// use wf_sim::{Corpus, SimilarityConfig};
///
/// let wf = |id: &str, label: &str| {
///     WorkflowBuilder::new(id)
///         .module(label, ModuleType::WsdlService, |m| m)
///         .build()
///         .unwrap()
/// };
/// let mut corpus = Corpus::build(
///     SimilarityConfig::best_module_sets(),
///     vec![wf("a", "blast search"), wf("b", "blast align"), wf("c", "plot")],
/// );
/// let hits = corpus.top_k(&"a".into(), 2).unwrap();
/// assert_eq!(hits[0].id.as_str(), "b");
/// corpus.remove(&"b".into());
/// assert_eq!(corpus.len(), 2);
/// ```
pub struct Corpus {
    /// The original (unpreprocessed) workflows, in corpus order.
    originals: Vec<Workflow>,
    /// Profiles + pool + the configured measure.
    measure: ProfiledMeasure,
    /// The label-token inverted index, maintained incrementally.
    index: TokenIndex,
}

impl Corpus {
    /// Profiles and indexes `workflows` for the measure described by
    /// `config`.  Duplicate ids replace earlier occurrences in place (last
    /// upload wins, as in [`wf_repo::Repository`]).
    pub fn build(config: SimilarityConfig, workflows: impl IntoIterator<Item = Workflow>) -> Self {
        let mut originals: Vec<Workflow> = Vec::new();
        let mut seen: BTreeMap<WorkflowId, usize> = BTreeMap::new();
        for wf in workflows {
            match seen.get(&wf.id) {
                Some(&pos) => originals[pos] = wf,
                None => {
                    seen.insert(wf.id.clone(), originals.len());
                    originals.push(wf);
                }
            }
        }
        let measure = ProfiledMeasure::new(config, &originals);
        let index = TokenIndex::build(&measure);
        Corpus {
            originals,
            measure,
            index,
        }
    }

    /// The configured similarity algorithm.
    pub fn config(&self) -> &SimilarityConfig {
        self.measure.inner().config()
    }

    /// The algorithm name in the paper's notation (e.g. `MS_ip_te_pll`).
    pub fn measure_name(&self) -> String {
        self.measure.name()
    }

    /// The profiled measure — a [`wf_repo::CorpusScorer`] and a drop-in
    /// [`crate::Measure`] for any consumer scoring this corpus.
    pub fn measure(&self) -> &ProfiledMeasure {
        &self.measure
    }

    /// The corpus-resident label-token inverted index.
    pub fn token_index(&self) -> &TokenIndex {
        &self.index
    }

    /// The original workflows, in corpus order.
    pub fn workflows(&self) -> &[Workflow] {
        &self.originals
    }

    /// All workflow ids, in corpus order.
    pub fn ids(&self) -> &[WorkflowId] {
        self.measure.ids()
    }

    /// Number of corpus workflows.
    pub fn len(&self) -> usize {
        self.originals.len()
    }

    /// True when the corpus holds no workflows.
    pub fn is_empty(&self) -> bool {
        self.originals.is_empty()
    }

    /// The corpus index of a workflow id.
    pub fn index_of(&self, id: &WorkflowId) -> Option<usize> {
        self.measure.index_of(id)
    }

    /// The original workflow with a given id.
    pub fn get(&self, id: &WorkflowId) -> Option<&Workflow> {
        Some(&self.originals[self.index_of(id)?])
    }

    /// Aggregate statistics over the stored corpus.
    pub fn stats(&self) -> Option<CorpusStats> {
        CorpusStats::of(&self.originals)
    }

    /// The similarity of the corpus workflows at two indices (inapplicable
    /// annotation pairs score 0, like the unprofiled pipeline).
    pub fn score(&self, a: usize, b: usize) -> f64 {
        self.measure.score_indexed(a, b)
    }

    /// Inserts a workflow, profiling it against the shared pool and
    /// registering it in the inverted index — no rebuild.  An existing
    /// workflow with the same id is removed first (the replacement joins at
    /// the end of the corpus).  Returns the new corpus index.
    pub fn add(&mut self, wf: Workflow) -> usize {
        self.remove(&wf.id);
        let index = self.measure.add_workflow(&wf);
        let indexed = self.index.add_workflow(self.measure.label_token_ids(index));
        debug_assert_eq!(index, indexed, "profiles and index must stay aligned");
        self.originals.push(wf);
        index
    }

    /// Removes a workflow by id, unregistering its profile and its index
    /// postings; later workflows shift down one position.  Returns the
    /// removed workflow, or `None` when the id is not in the corpus.
    pub fn remove(&mut self, id: &WorkflowId) -> Option<Workflow> {
        let index = self.index_of(id)?;
        self.measure.remove_workflow(index);
        self.index.remove_workflow(index);
        Some(self.originals.remove(index))
    }

    /// A scorer specialised for dense all-pairs work (clustering
    /// matrices): structural measures get a precomputed module-class pair
    /// table, turning the per-cell text comparisons of the O(n²) matrix
    /// into lookups.  Scores are bit-identical to [`Corpus::score`].
    pub fn matrix_scorer(&self) -> CorpusMatrixScorer<'_> {
        let table = self
            .config()
            .measure
            .is_structural()
            .then(|| self.measure.class_pair_table());
        CorpusMatrixScorer {
            measure: &self.measure,
            table,
        }
    }

    /// An index-accelerated search engine over this corpus.  Construction
    /// is free: the engine borrows the corpus-resident index instead of
    /// rebuilding one.
    pub fn search_engine(&self) -> IndexedSearchEngine<'_, ProfiledMeasure> {
        IndexedSearchEngine::with_index(&self.measure, &self.index)
    }

    /// The `k` workflows most similar to the workflow with id `query`
    /// (itself excluded), best first; `None` for an unknown query id.
    pub fn top_k(&self, query: &WorkflowId, k: usize) -> Option<Vec<SearchHit>> {
        Some(self.top_k_index(self.index_of(query)?, k))
    }

    /// [`Corpus::top_k`] addressed by corpus index.
    pub fn top_k_index(&self, query: usize, k: usize) -> Vec<SearchHit> {
        self.search_engine().top_k(query, k)
    }

    /// [`Corpus::top_k_index`] plus pruning instrumentation.
    pub fn top_k_with_stats(&self, query: usize, k: usize) -> (Vec<SearchHit>, SearchStats) {
        self.search_engine().top_k_with_stats(query, k)
    }

    /// Multi-threaded [`Corpus::top_k_index`] (bit-identical results).
    pub fn top_k_parallel(&self, query: usize, k: usize, threads: usize) -> Vec<SearchHit> {
        self.search_engine()
            .with_threads(threads)
            .top_k_parallel(query, k)
    }

    /// Serializes the built corpus — workflows, pool, profiles, index —
    /// with a `magic version checksum config` header line in front of a
    /// single-line JSON body.
    pub fn to_snapshot_string(&self) -> String {
        let snapshot = CorpusSnapshot {
            workflows: self.originals.clone(),
            pool: self.measure.pool().strings().to_vec(),
            profiles: self.measure.profiles().to_vec(),
            index: self.index.clone(),
        };
        let body = serde_json::to_string(&snapshot).expect("snapshot serialization cannot fail");
        format!(
            "{SNAPSHOT_MAGIC} v{SNAPSHOT_VERSION} fnv64={:016x} config={}\n{body}",
            fnv1a64(body.as_bytes()),
            config_fingerprint(self.config()),
        )
    }

    /// Writes [`Corpus::to_snapshot_string`] to a file.
    pub fn save(&self, path: impl AsRef<Path>) -> io::Result<()> {
        std::fs::write(path, self.to_snapshot_string())
    }

    /// Restores a corpus from a snapshot file.  The snapshot must carry the
    /// current [`SNAPSHOT_VERSION`], an intact checksum and the fingerprint
    /// of exactly the passed `config`; any mismatch is a typed
    /// [`SnapshotError`] (callers wanting automatic recovery use
    /// [`Corpus::load_or_build`]).
    pub fn load(path: impl AsRef<Path>, config: SimilarityConfig) -> Result<Self, SnapshotError> {
        let text = std::fs::read_to_string(path).map_err(SnapshotError::Io)?;
        Corpus::from_snapshot_str(&text, config)
    }

    /// [`Corpus::load`] over an in-memory snapshot string.
    pub fn from_snapshot_str(text: &str, config: SimilarityConfig) -> Result<Self, SnapshotError> {
        let (header, body) = text
            .split_once('\n')
            .ok_or_else(|| SnapshotError::Format("missing header line".to_string()))?;
        let mut parts = header.splitn(4, ' ');
        let magic = parts.next().unwrap_or_default();
        if magic != SNAPSHOT_MAGIC {
            return Err(SnapshotError::Format(format!(
                "not a corpus snapshot (leads with {magic:?})"
            )));
        }
        let version = parts.next().unwrap_or_default();
        if version != format!("v{SNAPSHOT_VERSION}") {
            return Err(SnapshotError::VersionMismatch {
                found: version.to_string(),
            });
        }
        let checksum = parts
            .next()
            .and_then(|f| f.strip_prefix("fnv64="))
            .and_then(|hex| u64::from_str_radix(hex, 16).ok())
            .ok_or_else(|| SnapshotError::Format("malformed checksum field".to_string()))?;
        if checksum != fnv1a64(body.as_bytes()) {
            return Err(SnapshotError::ChecksumMismatch);
        }
        let fingerprint = parts
            .next()
            .and_then(|f| f.strip_prefix("config="))
            .ok_or_else(|| SnapshotError::Format("malformed config field".to_string()))?;
        let expected = config_fingerprint(&config);
        if fingerprint != expected {
            return Err(SnapshotError::ConfigMismatch {
                expected,
                found: fingerprint.to_string(),
            });
        }
        let snapshot: CorpusSnapshot =
            serde_json::from_str(body).map_err(|e| SnapshotError::Parse(e.to_string()))?;
        if snapshot.workflows.len() != snapshot.profiles.len()
            || snapshot.index.workflow_count() != snapshot.workflows.len()
        {
            return Err(SnapshotError::Format(format!(
                "inconsistent snapshot: {} workflows, {} profiles, {} indexed",
                snapshot.workflows.len(),
                snapshot.profiles.len(),
                snapshot.index.workflow_count()
            )));
        }
        let ids = snapshot.workflows.iter().map(|wf| wf.id.clone()).collect();
        let measure = ProfiledMeasure::from_parts(
            WorkflowSimilarity::new(config),
            StringPool::from_strings(snapshot.pool),
            ids,
            snapshot.profiles,
        );
        Ok(Corpus {
            originals: snapshot.workflows,
            measure,
            index: snapshot.index,
        })
    }

    /// Loads the snapshot at `path` if it is present, intact and was built
    /// for `config`; otherwise builds a fresh corpus from `workflows`.
    /// Returns the corpus together with how it was obtained, so servers can
    /// log (and re-save) rebuilds.
    pub fn load_or_build(
        path: impl AsRef<Path>,
        config: SimilarityConfig,
        workflows: impl IntoIterator<Item = Workflow>,
    ) -> (Self, CorpusOrigin) {
        match Corpus::load(path, config.clone()) {
            Ok(corpus) => (corpus, CorpusOrigin::Snapshot),
            Err(reason) => (
                Corpus::build(config, workflows),
                CorpusOrigin::Rebuilt(reason),
            ),
        }
    }
}

/// A corpus scorer for dense all-pairs computation, carrying the
/// module-class pair table of structural measures (annotation measures
/// score straight from their cached bags).  Immutable and `Sync`: parallel
/// matrix workers share one instance.
pub struct CorpusMatrixScorer<'c> {
    measure: &'c ProfiledMeasure,
    table: Option<ClassPairTable>,
}

impl CorpusMatrixScorer<'_> {
    /// The similarity of the corpus workflows at two indices —
    /// bit-identical to [`Corpus::score`].
    pub fn score(&self, a: usize, b: usize) -> f64 {
        match &self.table {
            Some(table) => self.measure.score_indexed_cached(table, a, b),
            None => self.measure.score_indexed(a, b),
        }
    }

    /// Number of distinct module classes behind the table (0 when the
    /// measure needs no table).
    pub fn class_count(&self) -> usize {
        self.table.as_ref().map_or(0, ClassPairTable::class_count)
    }
}

/// How [`Corpus::load_or_build`] obtained its corpus.
#[derive(Debug)]
pub enum CorpusOrigin {
    /// Deserialized from an intact, matching snapshot.
    Snapshot,
    /// Rebuilt from the workflows because the snapshot was unusable.
    Rebuilt(SnapshotError),
}

impl CorpusOrigin {
    /// True when the corpus came out of a snapshot.
    pub fn is_snapshot(&self) -> bool {
        matches!(self, CorpusOrigin::Snapshot)
    }
}

/// Why a snapshot could not be loaded.
#[derive(Debug)]
pub enum SnapshotError {
    /// The snapshot file could not be read.
    Io(io::Error),
    /// The file is not a corpus snapshot / the header is malformed.
    Format(String),
    /// The snapshot was written by a different snapshot-layout version.
    VersionMismatch {
        /// The version token found in the header.
        found: String,
    },
    /// The body does not hash to the checksum in the header.
    ChecksumMismatch,
    /// The snapshot was built for a different similarity configuration.
    ConfigMismatch {
        /// Fingerprint of the requested configuration.
        expected: String,
        /// Fingerprint recorded in the snapshot.
        found: String,
    },
    /// The body is not valid snapshot JSON.
    Parse(String),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "cannot read snapshot: {e}"),
            SnapshotError::Format(why) => write!(f, "malformed snapshot: {why}"),
            SnapshotError::VersionMismatch { found } => write!(
                f,
                "snapshot version {found} != supported v{SNAPSHOT_VERSION}"
            ),
            SnapshotError::ChecksumMismatch => f.write_str("snapshot checksum mismatch"),
            SnapshotError::ConfigMismatch { expected, found } => {
                write!(f, "snapshot built for {found}, requested {expected}")
            }
            SnapshotError::Parse(why) => write!(f, "cannot parse snapshot body: {why}"),
        }
    }
}

impl Error for SnapshotError {}

/// The serialized body of a snapshot.
#[derive(Serialize, Deserialize)]
struct CorpusSnapshot {
    workflows: Vec<Workflow>,
    pool: Vec<String>,
    profiles: Vec<WorkflowProfile>,
    index: TokenIndex,
}

/// A space-free, human-readable identity of every configuration knob that
/// influences profiles or scores.  [`SimilarityConfig::name`] alone misses
/// mapping, normalization, importance and budget settings, so the
/// fingerprint spells those out too: loading a snapshot under a config with
/// any different knob must fall back to a rebuild.
pub(crate) fn config_fingerprint(config: &SimilarityConfig) -> String {
    let ged = &config.ged_budget;
    format!(
        "{name}|map={mapping}|norm={norm:?}|paths={paths}|imp={thr:?}+{freq}|ged={nodes}/{exp}/{beam}/{time:?}",
        name = config.name(),
        mapping = config.mapping,
        norm = config.normalization,
        paths = config.max_paths,
        thr = config.importance.threshold,
        freq = config.importance.frequency_adjusted,
        nodes = ged.exact_node_limit,
        exp = ged.max_expansions,
        beam = ged.beam_width,
        time = ged.time_limit,
    )
    .replace(' ', "_")
}

/// 64-bit FNV-1a — a small, dependency-free integrity hash for snapshot
/// bodies (corruption detection, not cryptographic authentication).
pub(crate) fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use wf_model::{builder::WorkflowBuilder, ModuleType};

    fn wf(id: &str, labels: &[&str]) -> Workflow {
        let mut b = WorkflowBuilder::new(id)
            .title(format!("workflow {id}"))
            .tag("test");
        for l in labels {
            b = b.module(*l, ModuleType::WsdlService, |m| m);
        }
        for pair in labels.windows(2) {
            b = b.link(pair[0], pair[1]);
        }
        b.build().unwrap()
    }

    fn sample() -> Vec<Workflow> {
        vec![
            wf("a", &["fetch sequence", "run blast", "render report"]),
            wf("b", &["fetch sequence", "run blast", "plot hits"]),
            wf("c", &["parse tree", "cluster genes"]),
            wf("d", &["parse tree", "cluster genes", "plot hits"]),
            wf("e", &[]),
        ]
    }

    fn config() -> SimilarityConfig {
        SimilarityConfig::best_module_sets()
    }

    #[test]
    fn build_shares_profiles_index_and_ids() {
        let corpus = Corpus::build(config(), sample());
        assert_eq!(corpus.len(), 5);
        assert!(!corpus.is_empty());
        assert_eq!(corpus.ids().len(), 5);
        assert_eq!(corpus.token_index().workflow_count(), 5);
        assert_eq!(corpus.index_of(&"c".into()), Some(2));
        assert_eq!(corpus.get(&"c".into()).unwrap().module_count(), 2);
        assert!(corpus.stats().is_some());
        assert_eq!(corpus.measure_name(), "MS_ip_te_pll");
        assert!(corpus.score(0, 1) > corpus.score(0, 2));
    }

    #[test]
    fn duplicate_ids_replace_in_place_like_a_repository() {
        let mut workflows = sample();
        workflows.push(wf("b", &["totally different"]));
        let corpus = Corpus::build(config(), workflows);
        assert_eq!(corpus.len(), 5);
        assert_eq!(corpus.get(&"b".into()).unwrap().module_count(), 1);
        assert_eq!(corpus.index_of(&"b".into()), Some(1));
    }

    #[test]
    fn top_k_matches_a_fresh_indexed_engine() {
        let corpus = Corpus::build(config(), sample());
        let fresh = IndexedSearchEngine::new(corpus.measure());
        for query in 0..corpus.len() {
            assert_eq!(corpus.top_k_index(query, 3), fresh.top_k(query, 3));
            assert_eq!(
                corpus.top_k_parallel(query, 3, 3),
                fresh.top_k(query, 3),
                "parallel, query {query}"
            );
        }
        assert_eq!(
            corpus.top_k(&"a".into(), 2).unwrap(),
            corpus.top_k_index(0, 2)
        );
        assert!(corpus.top_k(&"zzz".into(), 2).is_none());
        let (_, stats) = corpus.top_k_with_stats(0, 2);
        assert_eq!(stats.candidates, 4);
    }

    /// The churn invariant: any interleaving of `add` / `remove` leaves the
    /// corpus answering exactly like a from-scratch build over the same
    /// surviving workflows.
    #[test]
    fn add_and_remove_match_a_from_scratch_rebuild() {
        let mut corpus = Corpus::build(config(), sample());
        assert!(corpus.remove(&"b".into()).is_some());
        assert!(corpus.remove(&"zzz".into()).is_none());
        corpus.add(wf("f", &["run blast", "plot hits"]));
        corpus.add(wf("a", &["fetch sequence", "run blast"])); // replace
        let rebuilt = Corpus::build(config(), corpus.workflows().to_vec());
        assert_eq!(corpus.ids(), rebuilt.ids());
        // The churned pool assigns different token *ids* than a fresh
        // rebuild (stale tokens keep their slots), so the indexes are only
        // equivalent up to id relabeling: same vocabulary size, same
        // answers.
        assert_eq!(
            corpus.token_index().token_count(),
            rebuilt.token_index().token_count()
        );
        for query in 0..corpus.len() {
            assert_eq!(
                corpus.top_k_index(query, corpus.len()),
                rebuilt.top_k_index(query, rebuilt.len()),
                "query {query}"
            );
        }
    }

    #[test]
    fn snapshot_roundtrip_restores_identical_state() {
        let corpus = Corpus::build(config(), sample());
        let text = corpus.to_snapshot_string();
        let restored = Corpus::from_snapshot_str(&text, config()).unwrap();
        assert_eq!(restored.ids(), corpus.ids());
        assert_eq!(restored.token_index(), corpus.token_index());
        assert_eq!(
            restored.measure().pool().strings(),
            corpus.measure().pool().strings()
        );
        for query in 0..corpus.len() {
            assert_eq!(
                restored.top_k_index(query, 4),
                corpus.top_k_index(query, 4),
                "query {query}"
            );
        }
    }

    #[test]
    fn snapshot_rejects_corruption_version_skew_and_config_skew() {
        let corpus = Corpus::build(config(), sample());
        let text = corpus.to_snapshot_string();

        let flipped = text.replace("\"a\"", "\"A\"");
        assert!(matches!(
            Corpus::from_snapshot_str(&flipped, config()),
            Err(SnapshotError::ChecksumMismatch)
        ));

        let old = text.replacen("v1 ", "v0 ", 1);
        assert!(matches!(
            Corpus::from_snapshot_str(&old, config()),
            Err(SnapshotError::VersionMismatch { .. })
        ));

        assert!(matches!(
            Corpus::from_snapshot_str(&text, SimilarityConfig::bag_of_words()),
            Err(SnapshotError::ConfigMismatch { .. })
        ));

        assert!(matches!(
            Corpus::from_snapshot_str("junk", config()),
            Err(SnapshotError::Format(_))
        ));
    }

    #[test]
    fn load_or_build_falls_back_to_a_clean_rebuild() {
        let dir = std::env::temp_dir().join("wfsim-corpus-snapshot-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("corpus.snap");

        let _ = std::fs::remove_file(&path);
        let (built, origin) = Corpus::load_or_build(&path, config(), sample());
        assert!(!origin.is_snapshot(), "no snapshot yet: {origin:?}");
        built.save(&path).unwrap();

        let (loaded, origin) = Corpus::load_or_build(&path, config(), sample());
        assert!(origin.is_snapshot());
        assert_eq!(loaded.ids(), built.ids());

        // A snapshot for another measure is rejected, not misused.
        let (rebuilt, origin) =
            Corpus::load_or_build(&path, SimilarityConfig::bag_of_words(), sample());
        assert!(matches!(
            origin,
            CorpusOrigin::Rebuilt(SnapshotError::ConfigMismatch { .. })
        ));
        assert_eq!(rebuilt.len(), 5);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn fingerprint_separates_non_name_knobs() {
        let base = config();
        let mut deeper = config();
        deeper.max_paths = base.max_paths + 1;
        assert_ne!(config_fingerprint(&base), config_fingerprint(&deeper));
        assert!(!config_fingerprint(&base).contains(' '));
    }
}
