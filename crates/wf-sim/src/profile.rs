//! Corpus-resident similarity profiles.
//!
//! The seed pipeline re-derives everything on every comparison: each call
//! to [`WorkflowSimilarity::similarity`] re-runs the Importance Projection,
//! re-lowercases labels, re-tokenizes descriptions and scripts, and
//! re-counts characters — even though none of those depend on the *pair*,
//! only on the individual workflow.  At repository scale (top-k retrieval
//! over the full corpus, O(n²) clustering matrices) that repeated work
//! dominates the runtime.
//!
//! This module precomputes all of it once per corpus:
//!
//! * [`ModuleProfile`] — per-module derived features: the lowercased label,
//!   character counts for every text attribute, interned token-id sets
//!   (over a corpus-wide [`StringPool`]) for label / description / script,
//!   the technical [`TypeClass`] and an attribute-presence bitmask.
//! * [`WorkflowProfile`] — the preprocessed (projected) workflow, its
//!   module profiles, the Path Sets decomposition and the annotation bags.
//! * [`ProfiledMeasure`] — an adapter that scores corpus pairs from the
//!   profiles while reproducing the configured [`WorkflowSimilarity`]
//!   *bit-identically*: every module comparison scheme (`pw0`, `pw3`,
//!   `pll`, `plm`, `gw1`, `gll`) and every measure (MS / PS / GE / BW / BT)
//!   yields exactly the scores of the unprofiled pipeline.
//!
//! For the Module Sets measure the adapter additionally provides a cheap
//! *admissible* upper bound on the pair score (length quotients for edit
//! distances, size quotients for token sets, exact matches for symbols,
//! relaxed to a one-to-one assignment cap and pushed through the monotone
//! Jaccard normalization), which lets the inverted-index search engine in
//! [`wf_repo::index`] prune most candidates without scoring them.

use std::collections::BTreeMap;
use std::sync::Arc;

use serde::{Deserialize, Serialize};
use wf_matching::{map_with, SimilarityMatrix};
use wf_model::{AttributeKey, Module, ModuleId, Workflow, WorkflowId};
use wf_repo::{CorpusScorer, PreselectionStrategy, TypeClass};
use wf_text::levenshtein::{
    levenshtein_similarity, levenshtein_similarity_ci, levenshtein_similarity_with_lens,
};
use wf_text::{
    jaccard_index, jaccard_sorted, tokenize, CharSignature, FrozenInterner, StringPool, TokenBag,
    TokenIdSet,
};

use crate::config::{MeasureKind, Normalization, SimilarityConfig};
use crate::decompose::path_set;
use crate::measures::graph_edit::graph_edit_similarity;
use crate::measures::module_sets::module_sets_similarity;
use crate::measures::path_sets::path_sets_similarity;
use crate::module_cmp::{AttributeRule, ComparisonMethod};
use crate::normalize::jaccard_normalize;
use crate::pipeline::WorkflowSimilarity;

/// Derived, comparison-ready features of one module.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ModuleProfile {
    /// The label lowercased once (Unicode `to_lowercase`, exactly as the
    /// case-insensitive comparison methods do per call).
    label_lower: String,
    /// Scalar-value counts, cached so no comparison ever re-walks a string.
    label_chars: u32,
    label_lower_chars: u32,
    desc_chars: u32,
    script_chars: u32,
    /// Interned distinct token ids of `tokenize(label/description/script)`.
    label_tokens: TokenIdSet,
    desc_tokens: TokenIdSet,
    script_tokens: TokenIdSet,
    /// Character-frequency signatures for the edit-distance upper bounds.
    label_sig: CharSignature,
    label_lower_sig: CharSignature,
    desc_sig: CharSignature,
    script_sig: CharSignature,
    /// The technical type equivalence class (for `te` preselection).
    type_class: TypeClass,
    /// Bit `i` set iff the module carries `AttributeKey::ALL[i]`.
    presence: u8,
}

impl ModuleProfile {
    #[inline]
    fn has(&self, key: AttributeKey) -> bool {
        presence_has(self.presence, key)
    }
}

/// The one presence-bitmask predicate shared by the profile (AoS) and the
/// bound-column (SoA) candidate paths — bit `i` set iff the module carries
/// `AttributeKey::ALL[i]`.
#[inline]
fn presence_has(presence: u8, key: AttributeKey) -> bool {
    presence & (1 << key as u8) != 0
}

/// The pool-independent derived features of one module: everything a
/// [`ModuleProfile`] holds, with raw token strings in place of the interned
/// token-id sets.  Extracted once per workflow, then *bound* to a pool —
/// mutably for corpus residents, frozen for external queries.
#[derive(Debug, Clone)]
struct ModuleFeatures {
    label_lower: String,
    label_chars: u32,
    label_lower_chars: u32,
    desc_chars: u32,
    script_chars: u32,
    label_tokens: Vec<String>,
    desc_tokens: Vec<String>,
    script_tokens: Vec<String>,
    label_sig: CharSignature,
    label_lower_sig: CharSignature,
    desc_sig: CharSignature,
    script_sig: CharSignature,
    type_class: TypeClass,
    presence: u8,
}

impl ModuleFeatures {
    fn extract(module: &Module) -> Self {
        let label_lower = module.label.to_lowercase();
        let mut presence = 0u8;
        for key in AttributeKey::ALL {
            if module.attribute(key).is_some() {
                presence |= 1 << key as u8;
            }
        }
        ModuleFeatures {
            label_chars: module.label.chars().count() as u32,
            label_lower_chars: label_lower.chars().count() as u32,
            desc_chars: text_chars(module.description.as_deref()),
            script_chars: text_chars(module.script.as_deref()),
            label_tokens: tokenize(&module.label),
            desc_tokens: tokenize(module.description.as_deref().unwrap_or("")),
            script_tokens: tokenize(module.script.as_deref().unwrap_or("")),
            label_sig: CharSignature::of(&module.label),
            label_lower_sig: CharSignature::of(&label_lower),
            desc_sig: CharSignature::of(module.description.as_deref().unwrap_or("")),
            script_sig: CharSignature::of(module.script.as_deref().unwrap_or("")),
            type_class: TypeClass::of(&module.module_type),
            label_lower,
            presence,
        }
    }

    /// Assembles the profile, interning the label, description and script
    /// token lists through `intern` *in that order* — the pool-id
    /// assignment order every profile build has always used, so mutable
    /// binding reproduces the exact pool a pre-refactor build produced.
    /// Borrows the features: the same extraction binds against any number
    /// of shard pools without re-cloning the token strings.
    fn bind_with<F: FnMut(&[String]) -> TokenIdSet>(&self, mut intern: F) -> ModuleProfile {
        ModuleProfile {
            label_tokens: intern(&self.label_tokens),
            desc_tokens: intern(&self.desc_tokens),
            script_tokens: intern(&self.script_tokens),
            label_lower: self.label_lower.clone(),
            label_chars: self.label_chars,
            label_lower_chars: self.label_lower_chars,
            desc_chars: self.desc_chars,
            script_chars: self.script_chars,
            label_sig: self.label_sig.clone(),
            label_lower_sig: self.label_lower_sig.clone(),
            desc_sig: self.desc_sig.clone(),
            script_sig: self.script_sig.clone(),
            type_class: self.type_class,
            presence: self.presence,
        }
    }
}

/// The pool-independent half of one query workflow's profile:
/// preprocessing, tokenization, signatures, paths and annotation bags —
/// everything that does *not* depend on which corpus (shard) the query is
/// scored against.
///
/// A scatter-gather search extracts the features once per query
/// ([`ProfiledMeasure::query_features`]) and then *binds* them per shard
/// ([`ProfiledMeasure::bind_query`]): binding only resolves the token
/// strings against the shard's frozen [`StringPool`], so the expensive
/// per-query work is amortized across shards, and no shard's pool is ever
/// mutated by a read path.
#[derive(Debug, Clone)]
pub struct QueryFeatures {
    processed: Arc<Workflow>,
    modules: Vec<ModuleFeatures>,
    paths: Vec<Vec<ModuleId>>,
    word_bag: TokenBag,
    tag_bag: TokenBag,
    has_tags: bool,
}

impl QueryFeatures {
    /// Extracts every pool-independent feature of `wf` under the measure's
    /// configuration — the first half of [`profile_workflow`].
    fn extract(inner: &WorkflowSimilarity, wf: &Workflow) -> Self {
        let config = inner.config();
        let processed = if config.measure.is_structural() {
            inner.preprocess(wf).into_owned()
        } else {
            wf.clone()
        };
        let modules = processed
            .modules
            .iter()
            .map(ModuleFeatures::extract)
            .collect();
        let paths = if config.measure == MeasureKind::PathSets {
            path_set(&processed, config.max_paths)
        } else {
            Vec::new()
        };
        QueryFeatures {
            word_bag: TokenBag::from_text(&wf.annotations.title_and_description()),
            tag_bag: TokenBag::from_tags(&wf.annotations.tags),
            has_tags: wf.annotations.has_tags(),
            processed: Arc::new(processed),
            modules,
            paths,
        }
    }

    /// The id of the (preprocessed) query workflow.
    pub fn id(&self) -> &WorkflowId {
        &self.processed.id
    }

    /// Binds the features against a *frozen* pool: known tokens resolve to
    /// their pool ids, unknown tokens get non-colliding ephemeral ids, so
    /// every set comparison against residents of that pool is bit-identical
    /// to what mutable interning would have produced.
    fn bind(&self, pool: &StringPool) -> WorkflowProfile {
        let mut interner = FrozenInterner::new(pool);
        let modules: Vec<ModuleProfile> = self
            .modules
            .iter()
            .map(|m| m.bind_with(|tokens| interner.resolve_set(tokens)))
            .collect();
        assemble_profile(
            self.processed.clone(),
            modules,
            self.paths.clone(),
            self.word_bag.clone(),
            self.tag_bag.clone(),
            self.has_tags,
        )
    }

    /// Binds the features by interning into a mutable pool — the
    /// resident-profiling path of [`ProfiledMeasure`].
    fn bind_into(self, pool: &mut StringPool) -> WorkflowProfile {
        let modules: Vec<ModuleProfile> = self
            .modules
            .iter()
            .map(|m| m.bind_with(|tokens| pool.intern_set(tokens)))
            .collect();
        assemble_profile(
            self.processed,
            modules,
            self.paths,
            self.word_bag,
            self.tag_bag,
            self.has_tags,
        )
    }
}

/// Joins bound module profiles with the remaining query features into the
/// final [`WorkflowProfile`].
fn assemble_profile(
    workflow: Arc<Workflow>,
    modules: Vec<ModuleProfile>,
    paths: Vec<Vec<ModuleId>>,
    word_bag: TokenBag,
    tag_bag: TokenBag,
    has_tags: bool,
) -> WorkflowProfile {
    let label_tokens = TokenIdSet::from_ids(
        modules
            .iter()
            .flat_map(|m| m.label_tokens.ids().iter().copied())
            .collect(),
    );
    WorkflowProfile {
        workflow,
        modules,
        paths,
        label_tokens,
        word_bag,
        tag_bag,
        has_tags,
    }
}

fn text_chars(text: Option<&str>) -> u32 {
    text.map_or(0, |t| t.chars().count() as u32)
}

/// All precomputed state of one corpus workflow.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorkflowProfile {
    /// The workflow *after* the configured preprocessing (Importance
    /// Projection applied once, not once per comparison).  Shared, not
    /// owned: binding one query against every shard of a sharded corpus
    /// produces one profile per shard, and the `Arc` keeps those binds
    /// from deep-cloning the workflow (modules, labels, annotations) once
    /// per shard — only the pool-dependent token ids are rebuilt.
    workflow: Arc<Workflow>,
    modules: Vec<ModuleProfile>,
    /// Source-to-sink path decomposition (only populated for Path Sets).
    paths: Vec<Vec<ModuleId>>,
    /// Distinct interned label tokens over all modules (the indexing key).
    label_tokens: TokenIdSet,
    /// Bag of Words bag over title + description of the *original* workflow.
    word_bag: TokenBag,
    /// Bag of Tags bag of the original workflow.
    tag_bag: TokenBag,
    has_tags: bool,
}

impl WorkflowProfile {
    /// The preprocessed workflow the profile scores from.
    pub fn workflow(&self) -> &Workflow {
        &self.workflow
    }

    /// The per-module feature profiles (aligned with the preprocessed
    /// workflow's module list).
    pub fn modules(&self) -> &[ModuleProfile] {
        &self.modules
    }

    /// The distinct interned label tokens of this workflow.
    pub fn label_tokens(&self) -> &TokenIdSet {
        &self.label_tokens
    }
}

/// Structure-of-arrays candidate-side bound features.
///
/// The best-bound-first scan evaluates [`pair_upper_bound`] against every
/// module of every candidate; with the per-module features boxed inside
/// each [`WorkflowProfile`] those reads hop through a `Workflow` and a
/// `Vec<ModuleProfile>` per candidate.  `BoundColumns` flattens exactly
/// the fields the bound computation touches into corpus-order columns
/// (CSR-style: workflow `w`'s modules occupy slots
/// `starts[w]..starts[w + 1]`), so a candidate scan walks contiguous
/// memory.  Derived state: rebuilt from the profiles on snapshot load,
/// never serialized, and byte-for-byte copies of the profile fields — so
/// every column read is bit-identical to the AoS read it replaces.
///
/// Symbol-equality rules (`Exact*`) and strict-type preselection still
/// read the candidate [`Module`] itself; everything on the hot bound path
/// (presence masks, type classes, char signatures, token-id sets) comes
/// from the columns.
#[derive(Debug, Clone, Default)]
struct BoundColumns {
    /// Module-slot ranges: workflow `w` owns slots `starts[w]..starts[w+1]`.
    starts: Vec<u32>,
    presence: Vec<u8>,
    type_class: Vec<TypeClass>,
    label_sig: Vec<CharSignature>,
    label_lower_sig: Vec<CharSignature>,
    desc_sig: Vec<CharSignature>,
    script_sig: Vec<CharSignature>,
    /// All token ids of all modules, flattened; the `*_tokens` ranges
    /// below are `(start, len)` windows into this buffer.
    token_ids: Vec<u32>,
    label_tokens: Vec<(u32, u32)>,
    desc_tokens: Vec<(u32, u32)>,
    script_tokens: Vec<(u32, u32)>,
}

impl BoundColumns {
    fn new() -> Self {
        BoundColumns {
            starts: vec![0],
            ..BoundColumns::default()
        }
    }

    /// Appends one workflow's modules (column values copied verbatim from
    /// the already-built profile, so no re-derivation can diverge).
    fn push_workflow(&mut self, profile: &WorkflowProfile) {
        for m in &profile.modules {
            self.presence.push(m.presence);
            self.type_class.push(m.type_class);
            self.label_sig.push(m.label_sig.clone());
            self.label_lower_sig.push(m.label_lower_sig.clone());
            self.desc_sig.push(m.desc_sig.clone());
            self.script_sig.push(m.script_sig.clone());
            for (range, set) in [
                (&mut self.label_tokens, &m.label_tokens),
                (&mut self.desc_tokens, &m.desc_tokens),
                (&mut self.script_tokens, &m.script_tokens),
            ] {
                range.push((self.token_ids.len() as u32, set.len() as u32));
                self.token_ids.extend_from_slice(set.ids());
            }
        }
        self.starts.push(self.presence.len() as u32);
    }

    /// Rebuilds the columns from scratch — the snapshot-load and
    /// workflow-removal path (removal shifts every later slot, so a
    /// rebuild is as cheap as compaction and has only one code path).
    fn rebuild(profiles: &[WorkflowProfile]) -> Self {
        let mut columns = BoundColumns::new();
        for profile in profiles {
            columns.push_workflow(profile);
        }
        columns
    }

    /// The module-slot range of a workflow.
    #[inline]
    fn slots(&self, workflow: usize) -> std::ops::Range<usize> {
        self.starts[workflow] as usize..self.starts[workflow + 1] as usize
    }

    /// The sorted token ids behind a `(start, len)` window.
    #[inline]
    fn ids(&self, range: (u32, u32)) -> &[u32] {
        &self.token_ids[range.0 as usize..(range.0 + range.1) as usize]
    }
}

/// A [`WorkflowSimilarity`] measure bound to a profiled corpus.
///
/// Scores pairs of corpus workflows (addressed by index or, through the
/// [`Measure`](crate::Measure) impl, by workflow id) from precomputed
/// profiles, producing bit-identical results to the wrapped pipeline.
pub struct ProfiledMeasure {
    inner: WorkflowSimilarity,
    pool: StringPool,
    ids: Vec<WorkflowId>,
    id_index: BTreeMap<WorkflowId, usize>,
    profiles: Vec<WorkflowProfile>,
    /// Module comparison classes: two modules share a class iff every
    /// compared attribute is identical, so their pair similarity against
    /// any third module is identical under every scheme.  `module_classes`
    /// is aligned with each profile's (preprocessed) module list; the
    /// interner maps the exact attribute key to its dense class id.
    class_interner: BTreeMap<String, u32>,
    module_classes: Vec<Vec<u32>>,
    /// Candidate-side bound features in structure-of-arrays layout
    /// (derived from `profiles`, kept in sync by every mutation).
    bounds: BoundColumns,
}

impl ProfiledMeasure {
    /// Profiles `workflows` for the measure described by `config`.
    pub fn new(config: SimilarityConfig, workflows: &[Workflow]) -> Self {
        ProfiledMeasure::from_measure(WorkflowSimilarity::new(config), workflows)
    }

    /// Profiles `workflows` for an already constructed measure (e.g. one
    /// built with [`WorkflowSimilarity::with_usage`]).
    pub fn from_measure(inner: WorkflowSimilarity, workflows: &[Workflow]) -> Self {
        let mut pool = StringPool::new();
        let mut profiles = Vec::with_capacity(workflows.len());
        let mut ids = Vec::with_capacity(workflows.len());
        let mut id_index = BTreeMap::new();
        let mut class_interner = BTreeMap::new();
        let mut module_classes = Vec::with_capacity(workflows.len());
        let mut bounds = BoundColumns::new();
        for (i, wf) in workflows.iter().enumerate() {
            let profile = profile_workflow(&inner, &mut pool, wf);
            module_classes.push(intern_module_classes(
                &mut class_interner,
                &profile.workflow,
            ));
            bounds.push_workflow(&profile);
            profiles.push(profile);
            ids.push(wf.id.clone());
            id_index.insert(wf.id.clone(), i);
        }
        ProfiledMeasure {
            inner,
            pool,
            ids,
            id_index,
            profiles,
            class_interner,
            module_classes,
            bounds,
        }
    }

    /// Reassembles a measure from precomputed parts — the snapshot-loading
    /// path: `pool` must be the pool every token id in `profiles` was
    /// interned into, and `profiles[i]` must be the profile of the workflow
    /// with id `ids[i]`.
    ///
    /// # Panics
    /// Panics when `ids` and `profiles` disagree in length.
    pub fn from_parts(
        inner: WorkflowSimilarity,
        pool: StringPool,
        ids: Vec<WorkflowId>,
        profiles: Vec<WorkflowProfile>,
    ) -> Self {
        assert_eq!(
            ids.len(),
            profiles.len(),
            "every profiled workflow needs exactly one id"
        );
        let id_index = ids
            .iter()
            .enumerate()
            .map(|(i, id)| (id.clone(), i))
            .collect();
        // The class assignment is derived state: rebuild it from the
        // (preprocessed) profile workflows instead of serializing it.
        let mut class_interner = BTreeMap::new();
        let module_classes = profiles
            .iter()
            .map(|p| intern_module_classes(&mut class_interner, &p.workflow))
            .collect();
        let bounds = BoundColumns::rebuild(&profiles);
        ProfiledMeasure {
            inner,
            pool,
            ids,
            id_index,
            profiles,
            class_interner,
            module_classes,
            bounds,
        }
    }

    /// Profiles one more workflow (appended at the end of the corpus),
    /// returning its corpus index.  New tokens extend the shared pool;
    /// existing profiles are untouched, so the result scores exactly like a
    /// from-scratch rebuild over the extended corpus.
    ///
    /// The caller must ensure the id is not already profiled (the corpus
    /// layer removes an existing workflow with the same id first); a
    /// duplicate would leave `index_of` pointing at the newest copy only.
    pub fn add_workflow(&mut self, wf: &Workflow) -> usize {
        let index = self.profiles.len();
        let profile = profile_workflow(&self.inner, &mut self.pool, wf);
        self.module_classes.push(intern_module_classes(
            &mut self.class_interner,
            &profile.workflow,
        ));
        self.bounds.push_workflow(&profile);
        self.profiles.push(profile);
        self.ids.push(wf.id.clone());
        self.id_index.insert(wf.id.clone(), index);
        index
    }

    /// Forgets the workflow at a corpus index; later workflows shift down
    /// one position (mirroring `Vec::remove`).  Pool entries interned for
    /// the removed workflow are retained — stale ids score nothing because
    /// no surviving profile references them.
    ///
    /// # Panics
    /// Panics when `index >= self.len()`.
    pub fn remove_workflow(&mut self, index: usize) {
        let id = self.ids.remove(index);
        self.profiles.remove(index);
        self.module_classes.remove(index);
        self.id_index.remove(&id);
        for pos in self.id_index.values_mut() {
            if *pos > index {
                *pos -= 1;
            }
        }
        // Every later slot shifts, so compacting in place costs the same
        // as rebuilding — keep the one construction code path.
        self.bounds = BoundColumns::rebuild(&self.profiles);
    }

    /// The wrapped pipeline measure.
    pub fn inner(&self) -> &WorkflowSimilarity {
        &self.inner
    }

    /// The algorithm name in the paper's notation.
    pub fn name(&self) -> String {
        self.inner.name()
    }

    /// The corpus-wide token pool.
    pub fn pool(&self) -> &StringPool {
        &self.pool
    }

    /// Number of profiled workflows.
    pub fn len(&self) -> usize {
        self.profiles.len()
    }

    /// True when no workflow was profiled.
    pub fn is_empty(&self) -> bool {
        self.profiles.is_empty()
    }

    /// The corpus index of a workflow id.
    pub fn index_of(&self, id: &WorkflowId) -> Option<usize> {
        self.id_index.get(id).copied()
    }

    /// The profile at a corpus index.
    pub fn profile(&self, index: usize) -> &WorkflowProfile {
        &self.profiles[index]
    }

    /// All profiles, in corpus order.
    pub fn profiles(&self) -> &[WorkflowProfile] {
        &self.profiles
    }

    /// All workflow ids, in corpus order.
    pub fn ids(&self) -> &[WorkflowId] {
        &self.ids
    }

    /// The similarity of two corpus workflows; inapplicable annotation
    /// pairs score 0 (mirroring [`WorkflowSimilarity::similarity`]).
    pub fn score_indexed(&self, query: usize, candidate: usize) -> f64 {
        self.score_opt_indexed(query, candidate).unwrap_or(0.0)
    }

    /// The similarity of two corpus workflows, `None` when the measure is
    /// inapplicable (mirroring [`WorkflowSimilarity::similarity_opt`]).
    pub fn score_opt_indexed(&self, query: usize, candidate: usize) -> Option<f64> {
        self.score_opt_profiles(&self.profiles[query], &self.profiles[candidate])
    }

    /// Extracts the pool-independent features of an external query — done
    /// once per query, then bound per corpus with
    /// [`ProfiledMeasure::bind_query`].
    pub fn query_features(&self, wf: &Workflow) -> QueryFeatures {
        QueryFeatures::extract(&self.inner, wf)
    }

    /// Binds query features against this corpus's pool *without mutating
    /// it*, producing a profile that scores against every resident exactly
    /// as a resident profile of the same workflow would.
    pub fn bind_query(&self, features: &QueryFeatures) -> WorkflowProfile {
        features.bind(&self.pool)
    }

    /// The similarity of an externally profiled query (a
    /// [`ProfiledMeasure::bind_query`] result) and a corpus workflow;
    /// inapplicable annotation pairs score 0.
    pub fn score_profile(&self, query: &WorkflowProfile, candidate: usize) -> f64 {
        self.score_opt_profile(query, candidate).unwrap_or(0.0)
    }

    /// [`ProfiledMeasure::score_profile`] with the inapplicable case kept
    /// as `None`.
    pub fn score_opt_profile(&self, query: &WorkflowProfile, candidate: usize) -> Option<f64> {
        self.score_opt_profiles(query, &self.profiles[candidate])
    }

    /// The one scoring path behind every by-index and by-profile entry
    /// point: both sides are just profiles.
    fn score_opt_profiles(&self, pa: &WorkflowProfile, pb: &WorkflowProfile) -> Option<f64> {
        match self.inner.config().measure {
            MeasureKind::BagOfWords => {
                if pa.word_bag.is_empty() && pb.word_bag.is_empty() {
                    None
                } else {
                    Some(pa.word_bag.set_similarity(&pb.word_bag))
                }
            }
            MeasureKind::BagOfTags => {
                if !pa.has_tags || !pb.has_tags {
                    None
                } else {
                    Some(pa.tag_bag.set_similarity(&pb.tag_bag))
                }
            }
            MeasureKind::ModuleSets | MeasureKind::PathSets | MeasureKind::GraphEdit => {
                let (pa, pb) = self.canonical_order(pa, pb);
                Some(self.structural_score_pair(pa, pb, |i, j| self.pair_similarity(pa, i, pb, j)))
            }
        }
    }

    /// An admissible upper bound on [`ProfiledMeasure::score_indexed`] for
    /// the Module Sets measure; `None` for measures without a cheap bound
    /// (Path Sets, Graph Edit, annotations), which then fall back to an
    /// exhaustive profiled scan in the indexed engine.
    pub fn upper_bound_indexed(&self, query: usize, candidate: usize) -> Option<f64> {
        let config = self.inner.config();
        if config.measure != MeasureKind::ModuleSets {
            return None;
        }
        Some(self.module_sets_upper_bound(&self.profiles[query], candidate, config.normalization))
    }

    /// [`ProfiledMeasure::upper_bound_indexed`] for an externally profiled
    /// query — the same bound computation, so it dominates
    /// [`ProfiledMeasure::score_profile`] whenever it dominates the
    /// by-index score.
    pub fn upper_bound_profile(&self, query: &WorkflowProfile, candidate: usize) -> Option<f64> {
        let config = self.inner.config();
        if config.measure != MeasureKind::ModuleSets {
            return None;
        }
        Some(self.module_sets_upper_bound(query, candidate, config.normalization))
    }

    /// The one canonical-pair-order rule of the pipeline: Graph Edit puts
    /// the smaller preprocessed workflow first, every other measure keeps
    /// the given order.  Both the profile path ([`canonical_order`]) and
    /// the class-table index path share this predicate — the bit-exactness
    /// of the two paths depends on them never diverging.
    ///
    /// [`canonical_order`]: ProfiledMeasure::canonical_order
    fn swaps_canonically(&self, pa: &WorkflowProfile, pb: &WorkflowProfile) -> bool {
        self.inner.config().measure == MeasureKind::GraphEdit && ged_key(pa) > ged_key(pb)
    }

    /// [`ProfiledMeasure::swaps_canonically`] applied to profile
    /// references.
    fn canonical_order<'a>(
        &self,
        pa: &'a WorkflowProfile,
        pb: &'a WorkflowProfile,
    ) -> (&'a WorkflowProfile, &'a WorkflowProfile) {
        if self.swaps_canonically(pa, pb) {
            (pb, pa)
        } else {
            (pa, pb)
        }
    }

    /// The structural pipeline over two (canonically ordered) profiles with
    /// a pluggable module-pair scorer `pair(i, j)` (module `i` of `pa` vs
    /// module `j` of `pb`): the exact per-pair path and the class-table
    /// lookup path share everything else.
    fn structural_score_pair<F>(&self, pa: &WorkflowProfile, pb: &WorkflowProfile, pair: F) -> f64
    where
        F: Fn(usize, usize) -> f64,
    {
        let config = self.inner.config();
        let matrix = SimilarityMatrix::from_fn(
            pa.workflow.module_count(),
            pb.workflow.module_count(),
            |i, j| {
                if self.allows(pa, i, pb, j) {
                    pair(i, j)
                } else {
                    0.0
                }
            },
        );
        let mapping = map_with(config.mapping, &matrix);
        match config.measure {
            MeasureKind::ModuleSets => {
                module_sets_similarity(&pa.workflow, &pb.workflow, &mapping, config.normalization)
            }
            MeasureKind::PathSets => path_sets_similarity(
                &pa.workflow,
                &pb.workflow,
                &matrix,
                &pa.paths,
                &pb.paths,
                config.normalization,
            ),
            MeasureKind::GraphEdit => {
                graph_edit_similarity(
                    &pa.workflow,
                    &pb.workflow,
                    &mapping,
                    &config.ged_budget,
                    config.normalization,
                )
                .similarity
            }
            _ => unreachable!("annotation measures handled by score_opt_profiles"),
        }
    }

    /// `PreselectionStrategy::allows`, answered from cached features.
    #[inline]
    fn allows(&self, pa: &WorkflowProfile, i: usize, pb: &WorkflowProfile, j: usize) -> bool {
        match self.inner.config().preselection {
            PreselectionStrategy::AllPairs => true,
            PreselectionStrategy::StrictType => {
                pa.workflow.modules[i].module_type == pb.workflow.modules[j].module_type
            }
            PreselectionStrategy::TypeEquivalence => {
                pa.modules[i].type_class == pb.modules[j].type_class
            }
        }
    }

    /// `ModuleComparisonScheme::module_similarity`, scored from profiles:
    /// identical rule walk, identical accumulation order, identical
    /// floating-point results — just without re-deriving any text.
    fn pair_similarity(
        &self,
        pa: &WorkflowProfile,
        i: usize,
        pb: &WorkflowProfile,
        j: usize,
    ) -> f64 {
        let scheme = &self.inner.config().module_scheme;
        let (ma, fa) = (&pa.workflow.modules[i], &pa.modules[i]);
        let (mb, fb) = (&pb.workflow.modules[j], &pb.modules[j]);
        let mut weight_sum = 0.0;
        let mut score_sum = 0.0;
        for rule in scheme.rules() {
            match (fa.has(rule.key), fb.has(rule.key)) {
                (false, false) => continue,
                (true, false) | (false, true) => weight_sum += rule.weight,
                (true, true) => {
                    weight_sum += rule.weight;
                    score_sum += rule.weight * compare_rule(rule, ma, fa, mb, fb);
                }
            }
        }
        if weight_sum == 0.0 {
            0.0
        } else {
            (score_sum / weight_sum).clamp(0.0, 1.0)
        }
    }

    /// [`ProfiledMeasure::score_indexed`] with module-pair similarities
    /// answered from a precomputed [`ClassPairTable`] — bit-identical (the
    /// table holds exactly the values `pair_similarity` would produce) but
    /// free of per-cell text comparisons, which makes the O(n²) clustering
    /// matrix mostly table lookups.
    pub fn score_indexed_cached(
        &self,
        table: &ClassPairTable,
        query: usize,
        candidate: usize,
    ) -> f64 {
        if !self.inner.config().measure.is_structural() {
            return self.score_indexed(query, candidate);
        }
        let (mut ia, mut ib) = (query, candidate);
        if self.swaps_canonically(&self.profiles[ia], &self.profiles[ib]) {
            std::mem::swap(&mut ia, &mut ib);
        }
        self.structural_score_pair(&self.profiles[ia], &self.profiles[ib], |i, j| {
            table.score(self.module_classes[ia][i], self.module_classes[ib][j])
        })
    }

    /// Precomputes the similarity of every pair of module comparison
    /// classes, from one representative module per class.
    ///
    /// The corpus-resident observation behind it: real repositories are
    /// full of re-uploaded variants, so the same (label, script, service)
    /// module recurs across many workflows — on the 250-workflow demo
    /// corpus, 1172 modules collapse to ~400 classes.  An O(classes²)
    /// table therefore replaces the O(Σ |A|·|B|) per-cell text comparisons
    /// of a full clustering matrix.  Both orientations are computed
    /// explicitly, so no symmetry assumption enters the bit-exactness
    /// argument.
    ///
    /// The interner assigns ids monotonically (stale ids of removed
    /// workflows are never reused), so the table first compacts the *live*
    /// classes into dense slots: under long add/remove churn the O(live²)
    /// score matrix stays bounded by the current corpus, not by everything
    /// the corpus has ever seen.
    pub fn class_pair_table(&self) -> ClassPairTable {
        let mut remap = vec![u32::MAX; self.class_interner.len()];
        let mut representatives: Vec<(usize, usize)> = Vec::new();
        for (wf, classes) in self.module_classes.iter().enumerate() {
            for (module, &class) in classes.iter().enumerate() {
                let slot = &mut remap[class as usize];
                if *slot == u32::MAX {
                    *slot = representatives.len() as u32;
                    representatives.push((wf, module));
                }
            }
        }
        let live = representatives.len();
        let mut scores = vec![0.0; live * live];
        for (a, &(wa, ma)) in representatives.iter().enumerate() {
            for (b, &(wb, mb)) in representatives.iter().enumerate() {
                scores[a * live + b] =
                    self.pair_similarity(&self.profiles[wa], ma, &self.profiles[wb], mb);
            }
        }
        ClassPairTable {
            remap,
            count: live,
            scores,
        }
    }

    /// The Module Sets upper bound: per query module, the best cheap pair
    /// bound over the candidate's (preselection-allowed) modules, summed,
    /// capped at the one-to-one assignment limit `min(|A|, |B|)`, and
    /// pushed through the (monotone) normalization.
    ///
    /// The candidate side reads the structure-of-arrays [`BoundColumns`]
    /// (contiguous per-module features in corpus order); the per-side
    /// maxima live in stack buffers up to [`STACK_MODULES`] modules, so
    /// the common case is allocation-free.  The returned bound carries an
    /// m²·ε admissibility slack so it dominates the exact score *in
    /// floating point*, not just mathematically — the best-bound-first
    /// scans prune on the raw bound, and a 1-ulp shortfall (different
    /// summation order than the mapping's) would silently drop an exact
    /// top-k member.
    // lint:hot evaluated once per (query, candidate) pair in every
    // best-bound-first scan; stack buffers keep the common case
    // allocation-free (the >STACK_MODULES fallback may allocate).
    fn module_sets_upper_bound(
        &self,
        pa: &WorkflowProfile,
        candidate: usize,
        normalization: Normalization,
    ) -> f64 {
        let slots = self.bounds.slots(candidate);
        let candidate_modules = &self.profiles[candidate].workflow.modules;
        let (na, nb) = (pa.workflow.module_count(), slots.len());
        if na == 0 || nb == 0 {
            // Exact: an empty side forces an empty mapping.
            return match normalization {
                Normalization::None => 0.0,
                Normalization::SizeNormalized => jaccard_normalize(0.0, na, nb),
            };
        }
        // Relax the one-to-one mapping two ways: each mapped pair's weight
        // is at most its row's best pair bound *and* its column's best pair
        // bound, and at most min(na, nb) pairs are mapped — so nnsim is at
        // most the smaller of the two "sum of the top min(na, nb) per-side
        // maxima" estimates.
        let rules = self.inner.config().module_scheme.rules();
        let preselection = self.inner.config().preselection;
        let mut row_stack = [0.0f64; STACK_MODULES];
        let mut col_stack = [0.0f64; STACK_MODULES];
        let mut row_heap = Vec::new();
        let mut col_heap = Vec::new();
        let row_best: &mut [f64] = if na <= STACK_MODULES {
            &mut row_stack[..na]
        } else {
            row_heap.resize(na, 0.0);
            &mut row_heap
        };
        let col_best: &mut [f64] = if nb <= STACK_MODULES {
            &mut col_stack[..nb]
        } else {
            col_heap.resize(nb, 0.0);
            &mut col_heap
        };
        for (i, row) in row_best.iter_mut().enumerate() {
            let (ma, fa) = (&pa.workflow.modules[i], &pa.modules[i]);
            for (j, col) in col_best.iter_mut().enumerate() {
                let slot = slots.start + j;
                let mb = &candidate_modules[j];
                let allowed = match preselection {
                    PreselectionStrategy::AllPairs => true,
                    PreselectionStrategy::StrictType => ma.module_type == mb.module_type,
                    PreselectionStrategy::TypeEquivalence => {
                        fa.type_class == self.bounds.type_class[slot]
                    }
                };
                if !allowed {
                    continue;
                }
                let ub = pair_upper_bound(rules, ma, fa, mb, &self.bounds, slot);
                if ub > *row {
                    *row = ub;
                }
                if ub > *col {
                    *col = ub;
                }
            }
        }
        let mapped = na.min(nb);
        // Admissibility slack: the bound and the exact score sum the same
        // per-pair values in different orders (top-m of per-side maxima vs
        // the mapping's pair order), so when they are mathematically equal
        // the bound can round up to m·m ulps below the score and an exact
        // top-k member would be pruned.  m²·ε of absolute slack on a sum of
        // m unit-bounded terms dominates both the reordering error and
        // per-pair rounding noise; `jaccard_normalize` is monotone in
        // `nnsim` under IEEE rounding, so pre-normalization slack suffices.
        let slack = (mapped * mapped) as f64 * f64::EPSILON;
        let nnsim_bound = (top_m_sum(row_best, mapped).min(top_m_sum(col_best, mapped)) + slack)
            .min(mapped as f64 + slack);
        match normalization {
            Normalization::None => nnsim_bound,
            Normalization::SizeNormalized => jaccard_normalize(nnsim_bound, na, nb),
        }
    }
}

/// Per-side maxima of [`ProfiledMeasure::module_sets_upper_bound`] stay
/// on the stack up to this many modules (the demo corpora top out well
/// below it; larger workflows fall back to a heap buffer).
const STACK_MODULES: usize = 64;

/// The dense class-pair similarity table of [`ProfiledMeasure::
/// class_pair_table`]: `score(a, b)` is exactly the module-pair scheme
/// similarity of any module of class `a` against any module of class `b`.
pub struct ClassPairTable {
    /// Interner class id → dense live slot (`u32::MAX` for stale classes
    /// no surviving module carries — never looked up).
    remap: Vec<u32>,
    /// Number of live classes (the side length of `scores`).
    count: usize,
    scores: Vec<f64>,
}

impl ClassPairTable {
    /// The cached similarity of two module classes (interner ids).
    #[inline]
    pub fn score(&self, a: u32, b: u32) -> f64 {
        let (a, b) = (self.remap[a as usize], self.remap[b as usize]);
        self.scores[a as usize * self.count + b as usize]
    }

    /// Number of distinct live module classes covered.
    pub fn class_count(&self) -> usize {
        self.count
    }
}

/// The exact comparison identity of a module: its type plus every
/// attribute's presence and value — the complete input set of
/// `pair_similarity` (and of the preselection predicates) for any scheme.
/// Every variable-length field is length-prefixed, so the key is a
/// prefix-free encoding and distinct attribute splits cannot collide no
/// matter what bytes the (unvalidated, JSON-loadable) values contain.
fn module_class_key(module: &Module) -> String {
    let module_type = format!("{:?}", module.module_type);
    let mut key = format!("{}:{module_type}", module_type.len());
    for attr in AttributeKey::ALL {
        match module.attribute(attr) {
            Some(value) => {
                let value = value.as_str();
                key.push_str(&format!("+{}:", value.len()));
                key.push_str(value);
            }
            None => key.push('-'),
        }
    }
    key
}

/// Interns the class of every module of a (preprocessed) workflow.
fn intern_module_classes(interner: &mut BTreeMap<String, u32>, workflow: &Workflow) -> Vec<u32> {
    workflow
        .modules
        .iter()
        .map(|module| {
            let key = module_class_key(module);
            if let Some(&id) = interner.get(&key) {
                id
            } else {
                let id = interner.len() as u32;
                interner.insert(key, id);
                id
            }
        })
        .collect()
}

/// Builds the full profile of one workflow against a measure and a shared
/// pool — the single profiling code path behind batch construction
/// ([`ProfiledMeasure::from_measure`]), incremental insertion
/// ([`ProfiledMeasure::add_workflow`]) and (via the frozen
/// [`QueryFeatures::bind`] half) external query profiling.
fn profile_workflow(
    inner: &WorkflowSimilarity,
    pool: &mut StringPool,
    wf: &Workflow,
) -> WorkflowProfile {
    QueryFeatures::extract(inner, wf).bind_into(pool)
}

/// The canonical Graph Edit ordering key of the pipeline, computed on the
/// preprocessed profile workflow.
fn ged_key(p: &WorkflowProfile) -> (usize, usize, &WorkflowId) {
    (
        p.workflow.module_count(),
        p.workflow.link_count(),
        &p.workflow.id,
    )
}

/// Sum of the `m` largest values (sorts in place; `m <= values.len()`).
fn top_m_sum(values: &mut [f64], m: usize) -> f64 {
    values.sort_unstable_by(|a, b| b.partial_cmp(a).unwrap_or(std::cmp::Ordering::Equal));
    values[..m.min(values.len())].iter().sum()
}

/// One rule's exact comparison, reading every derived feature from the
/// profiles instead of re-deriving it.
fn compare_rule(
    rule: &AttributeRule,
    ma: &Module,
    fa: &ModuleProfile,
    mb: &Module,
    fb: &ModuleProfile,
) -> f64 {
    fn value(m: &Module, key: AttributeKey) -> wf_model::AttributeValue<'_> {
        m.attribute(key)
            .expect("presence was checked against the same accessor")
    }
    match rule.method {
        ComparisonMethod::Exact | ComparisonMethod::ExactIgnoreCase => exact_rule(rule, ma, mb),
        ComparisonMethod::Levenshtein => match rule.key {
            AttributeKey::Label => levenshtein_similarity_with_lens(
                &ma.label,
                fa.label_chars as usize,
                &mb.label,
                fb.label_chars as usize,
            ),
            AttributeKey::Description => levenshtein_similarity_with_lens(
                ma.description.as_deref().unwrap_or(""),
                fa.desc_chars as usize,
                mb.description.as_deref().unwrap_or(""),
                fb.desc_chars as usize,
            ),
            AttributeKey::Script => levenshtein_similarity_with_lens(
                ma.script.as_deref().unwrap_or(""),
                fa.script_chars as usize,
                mb.script.as_deref().unwrap_or(""),
                fb.script_chars as usize,
            ),
            _ => levenshtein_similarity(value(ma, rule.key).as_str(), value(mb, rule.key).as_str()),
        },
        ComparisonMethod::LevenshteinIgnoreCase => match rule.key {
            AttributeKey::Label => levenshtein_similarity_with_lens(
                &fa.label_lower,
                fa.label_lower_chars as usize,
                &fb.label_lower,
                fb.label_lower_chars as usize,
            ),
            _ => levenshtein_similarity_ci(
                value(ma, rule.key).as_str(),
                value(mb, rule.key).as_str(),
            ),
        },
        ComparisonMethod::TokenJaccard => match rule.key {
            AttributeKey::Label => fa.label_tokens.jaccard(&fb.label_tokens),
            AttributeKey::Description => fa.desc_tokens.jaccard(&fb.desc_tokens),
            AttributeKey::Script => fa.script_tokens.jaccard(&fb.script_tokens),
            _ => jaccard_index(
                &tokenize(value(ma, rule.key).as_str()),
                &tokenize(value(mb, rule.key).as_str()),
            ),
        },
    }
}

/// The `Exact` / `ExactIgnoreCase` comparison of one rule — shared by the
/// exact scorer ([`compare_rule`]) and the bound ([`rule_upper_bound`]),
/// which uses the exact value as its (tight) bound.
fn exact_rule(rule: &AttributeRule, ma: &Module, mb: &Module) -> f64 {
    fn value(m: &Module, key: AttributeKey) -> wf_model::AttributeValue<'_> {
        m.attribute(key)
            .expect("presence was checked against the same accessor")
    }
    let (a, b) = (value(ma, rule.key), value(mb, rule.key));
    let equal = match rule.method {
        ComparisonMethod::Exact => a.as_str() == b.as_str(),
        ComparisonMethod::ExactIgnoreCase => a.as_str().eq_ignore_ascii_case(b.as_str()),
        _ => unreachable!("exact_rule only handles the Exact methods"),
    };
    if equal {
        1.0
    } else {
        0.0
    }
}

/// A cheap admissible upper bound on one module pair's scheme similarity:
/// the same presence-weighted average, with each rule's comparison replaced
/// by a dominating constant-time estimate.  The candidate side reads the
/// structure-of-arrays [`BoundColumns`] at `slot` (its corpus-order module
/// slot); the raw [`Module`] is only touched for `Exact*` rules.
// lint:hot inner loop of module_sets_upper_bound; wfsim_lint forbids lock
// acquisition and heap allocation here.
fn pair_upper_bound(
    rules: &[AttributeRule],
    ma: &Module,
    fa: &ModuleProfile,
    mb: &Module,
    cols: &BoundColumns,
    slot: usize,
) -> f64 {
    let presence_b = cols.presence[slot];
    let mut weight_sum = 0.0;
    let mut score_sum = 0.0;
    for rule in rules {
        match (fa.has(rule.key), presence_has(presence_b, rule.key)) {
            (false, false) => continue,
            (true, false) | (false, true) => weight_sum += rule.weight,
            (true, true) => {
                weight_sum += rule.weight;
                score_sum += rule.weight * rule_upper_bound(rule, ma, fa, mb, cols, slot);
            }
        }
    }
    if weight_sum == 0.0 {
        0.0
    } else {
        (score_sum / weight_sum).clamp(0.0, 1.0)
    }
}

/// One rule's dominating estimate, candidate side answered from the bound
/// columns.  Each arm reads exactly the values the profile (AoS) variant
/// read — the columns are verbatim copies — so the bound is bit-identical.
// lint:hot per-rule body of pair_upper_bound; alloc/lock-free.
fn rule_upper_bound(
    rule: &AttributeRule,
    ma: &Module,
    fa: &ModuleProfile,
    mb: &Module,
    cols: &BoundColumns,
    slot: usize,
) -> f64 {
    match rule.method {
        // Exact comparisons *are* cheap: the bound is the exact value.
        ComparisonMethod::Exact | ComparisonMethod::ExactIgnoreCase => exact_rule(rule, ma, mb),
        // Normalized edit distance is bounded through the character
        // signatures: `d >= max(|la - lb|, L1(histograms) / 2)`.
        ComparisonMethod::Levenshtein => match rule.key {
            AttributeKey::Label => fa.label_sig.similarity_upper_bound(&cols.label_sig[slot]),
            AttributeKey::Description => fa.desc_sig.similarity_upper_bound(&cols.desc_sig[slot]),
            AttributeKey::Script => fa.script_sig.similarity_upper_bound(&cols.script_sig[slot]),
            _ => 1.0,
        },
        ComparisonMethod::LevenshteinIgnoreCase => match rule.key {
            AttributeKey::Label => fa
                .label_lower_sig
                .similarity_upper_bound(&cols.label_lower_sig[slot]),
            _ => 1.0,
        },
        // The merge over interned id sets is already cheap: the "bound" is
        // the exact token Jaccard (same kernel TokenIdSet::jaccard uses).
        ComparisonMethod::TokenJaccard => match rule.key {
            AttributeKey::Label => {
                jaccard_sorted(fa.label_tokens.ids(), cols.ids(cols.label_tokens[slot]))
            }
            AttributeKey::Description => {
                jaccard_sorted(fa.desc_tokens.ids(), cols.ids(cols.desc_tokens[slot]))
            }
            AttributeKey::Script => {
                jaccard_sorted(fa.script_tokens.ids(), cols.ids(cols.script_tokens[slot]))
            }
            _ => 1.0,
        },
    }
}

impl crate::extended::Measure for ProfiledMeasure {
    fn measure_name(&self) -> String {
        self.inner.name()
    }

    /// Scores by corpus index when both ids are profiled; out-of-corpus
    /// workflows fall back to the unprofiled pipeline, so the adapter is a
    /// drop-in [`Measure`](crate::Measure) anywhere.
    fn measure_opt(&self, a: &Workflow, b: &Workflow) -> Option<f64> {
        match (self.index_of(&a.id), self.index_of(&b.id)) {
            (Some(i), Some(j)) => self.score_opt_indexed(i, j),
            _ => self.inner.similarity_opt(a, b),
        }
    }
}

impl CorpusScorer for ProfiledMeasure {
    fn corpus_len(&self) -> usize {
        self.profiles.len()
    }

    fn workflow_id(&self, index: usize) -> &WorkflowId {
        &self.ids[index]
    }

    fn score(&self, query: usize, candidate: usize) -> f64 {
        self.score_indexed(query, candidate)
    }

    fn upper_bound(&self, query: usize, candidate: usize) -> Option<f64> {
        self.upper_bound_indexed(query, candidate)
    }

    fn label_token_ids(&self, index: usize) -> &[u32] {
        self.profiles[index].label_tokens.ids()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Preprocessing;
    use crate::extended::Measure;
    use crate::module_cmp::ModuleComparisonScheme;
    use wf_model::{builder::WorkflowBuilder, ModuleType};

    fn corpus() -> Vec<Workflow> {
        let mut wfs = Vec::new();
        let blast = |id: &str, render: &str| {
            WorkflowBuilder::new(id)
                .title(format!("BLAST search {id}"))
                .description("protein sequence search")
                .tag("blast")
                .tag("protein")
                .module("fetch_sequence", ModuleType::WsdlService, |m| {
                    m.service("ebi.ac.uk", "fetch", "http://ebi.ac.uk/fetch")
                })
                .module("run_blast", ModuleType::WsdlService, |m| {
                    m.service("ebi.ac.uk", "blastp", "http://ebi.ac.uk/blast")
                })
                .module("split_ids", ModuleType::LocalOperation, |m| m)
                .module(render, ModuleType::BeanshellScript, |m| {
                    m.script("plot(hits); export(hits)")
                })
                .link("fetch_sequence", "run_blast")
                .link("run_blast", "split_ids")
                .link("split_ids", render)
                .build()
                .unwrap()
        };
        wfs.push(blast("b1", "render_report"));
        wfs.push(blast("b2", "render_hits"));
        wfs.push(
            WorkflowBuilder::new("kegg")
                .title("KEGG pathway analysis")
                .tag("kegg")
                .module("get_pathway", ModuleType::WsdlService, |m| {
                    m.service("kegg.jp", "get_pathway_by_id", "http://kegg.jp/ws")
                })
                .module("extract_genes", ModuleType::BeanshellScript, |m| {
                    m.script("return pathway.genes;")
                })
                .link("get_pathway", "extract_genes")
                .build()
                .unwrap(),
        );
        wfs.push(WorkflowBuilder::new("empty").build().unwrap());
        wfs
    }

    fn all_scheme_configs() -> Vec<SimilarityConfig> {
        let schemes = [
            ModuleComparisonScheme::pw0(),
            ModuleComparisonScheme::pw3(),
            ModuleComparisonScheme::pll(),
            ModuleComparisonScheme::plm(),
            ModuleComparisonScheme::gw1(),
            ModuleComparisonScheme::gll(),
        ];
        let mut configs = Vec::new();
        for scheme in schemes {
            configs.push(SimilarityConfig::new(
                MeasureKind::ModuleSets,
                scheme.clone(),
                PreselectionStrategy::AllPairs,
                Preprocessing::None,
            ));
            configs.push(SimilarityConfig::new(
                MeasureKind::ModuleSets,
                scheme,
                PreselectionStrategy::TypeEquivalence,
                Preprocessing::ImportanceProjection,
            ));
        }
        configs
    }

    #[test]
    fn profiled_scores_are_bit_identical_for_every_scheme() {
        let wfs = corpus();
        for config in all_scheme_configs() {
            let name = config.name();
            let plain = WorkflowSimilarity::new(config.clone());
            let profiled = ProfiledMeasure::new(config, &wfs);
            for a in &wfs {
                for b in &wfs {
                    let expected = plain.similarity(a, b);
                    let got = profiled.measure(a, b);
                    assert_eq!(got, expected, "{name}: {} vs {}", a.id, b.id);
                }
            }
        }
    }

    #[test]
    fn profiled_scores_match_for_every_measure_kind() {
        let wfs = corpus();
        for config in [
            SimilarityConfig::module_sets_default(),
            SimilarityConfig::path_sets_default(),
            SimilarityConfig::graph_edit_default(),
            SimilarityConfig::best_path_sets(),
            SimilarityConfig::bag_of_words(),
            SimilarityConfig::bag_of_tags(),
        ] {
            let name = config.name();
            let plain = WorkflowSimilarity::new(config.clone());
            let profiled = ProfiledMeasure::new(config, &wfs);
            for (i, a) in wfs.iter().enumerate() {
                for (j, b) in wfs.iter().enumerate() {
                    assert_eq!(
                        profiled.score_opt_indexed(i, j),
                        plain.similarity_opt(a, b),
                        "{name}: {} vs {}",
                        a.id,
                        b.id
                    );
                }
            }
        }
    }

    #[test]
    fn upper_bound_dominates_the_exact_score() {
        let wfs = corpus();
        for config in all_scheme_configs() {
            let name = config.name();
            let profiled = ProfiledMeasure::new(config, &wfs);
            for i in 0..wfs.len() {
                for j in 0..wfs.len() {
                    let bound = profiled
                        .upper_bound_indexed(i, j)
                        .expect("module sets is bounded");
                    let score = profiled.score_indexed(i, j);
                    // Strict float domination: the best-bound-first scans
                    // prune with the raw bound, so even a 1-ulp shortfall
                    // makes the search drop an exact top-k member.
                    assert!(
                        bound >= score,
                        "{name}: bound {bound} < score {score} for pair ({i},{j})"
                    );
                }
            }
        }
    }

    #[test]
    fn non_module_set_measures_are_unbounded() {
        let wfs = corpus();
        let ps = ProfiledMeasure::new(SimilarityConfig::best_path_sets(), &wfs);
        assert_eq!(ps.upper_bound_indexed(0, 1), None);
        let bw = ProfiledMeasure::new(SimilarityConfig::bag_of_words(), &wfs);
        assert_eq!(bw.upper_bound_indexed(0, 1), None);
    }

    /// The sharded-search contract: an external query profile, bound
    /// against the corpus pool *without interning*, scores and bounds
    /// bit-identically to the same workflow profiled as a resident.
    #[test]
    fn externally_bound_queries_score_bit_identically() {
        let wfs = corpus();
        for config in [
            SimilarityConfig::best_module_sets(),
            SimilarityConfig::best_path_sets(),
            SimilarityConfig::graph_edit_default(),
            SimilarityConfig::bag_of_words(),
            SimilarityConfig::bag_of_tags(),
        ] {
            let name = config.name();
            let profiled = ProfiledMeasure::new(config, &wfs);
            let pool_before = profiled.pool().len();
            for (qi, query_wf) in wfs.iter().enumerate() {
                let features = profiled.query_features(query_wf);
                let bound_query = profiled.bind_query(&features);
                for candidate in 0..wfs.len() {
                    assert_eq!(
                        profiled.score_opt_profile(&bound_query, candidate),
                        profiled.score_opt_indexed(qi, candidate),
                        "{name}: score, query {qi} vs {candidate}"
                    );
                    assert_eq!(
                        profiled.upper_bound_profile(&bound_query, candidate),
                        profiled.upper_bound_indexed(qi, candidate),
                        "{name}: bound, query {qi} vs {candidate}"
                    );
                }
            }
            assert_eq!(
                profiled.pool().len(),
                pool_before,
                "{name}: binding a query must never intern into the pool"
            );
        }
    }

    /// A query with tokens the corpus has never seen must still bind (fresh
    /// ids collide with nothing) and score like the unprofiled pipeline.
    #[test]
    fn externally_bound_unseen_tokens_match_the_pipeline() {
        let wfs = corpus();
        let config = SimilarityConfig::best_module_sets();
        let plain = WorkflowSimilarity::new(config.clone());
        let profiled = ProfiledMeasure::new(config, &wfs[..2]);
        let stranger = WorkflowBuilder::new("stranger")
            .module("totally unseen tokens", ModuleType::WsdlService, |m| m)
            .module("run_blast", ModuleType::WsdlService, |m| {
                m.service("ebi.ac.uk", "blastp", "http://ebi.ac.uk/blast")
            })
            .link("totally unseen tokens", "run_blast")
            .build()
            .unwrap();
        let bound = profiled.bind_query(&profiled.query_features(&stranger));
        for (i, resident) in wfs[..2].iter().enumerate() {
            assert_eq!(
                profiled.score_profile(&bound, i),
                plain.similarity(&stranger, resident),
                "stranger vs {}",
                resident.id
            );
        }
    }

    #[test]
    fn out_of_corpus_workflows_fall_back_to_the_pipeline() {
        let wfs = corpus();
        let config = SimilarityConfig::best_module_sets();
        let plain = WorkflowSimilarity::new(config.clone());
        let profiled = ProfiledMeasure::new(config, &wfs[..2]);
        let stranger = &wfs[2];
        assert_eq!(profiled.index_of(&stranger.id), None);
        assert_eq!(
            profiled.measure(&wfs[0], stranger),
            plain.similarity(&wfs[0], stranger)
        );
    }

    #[test]
    fn corpus_scorer_surface_is_consistent() {
        let wfs = corpus();
        let profiled = ProfiledMeasure::new(SimilarityConfig::best_module_sets(), &wfs);
        assert_eq!(profiled.corpus_len(), wfs.len());
        assert_eq!(profiled.workflow_id(2).as_str(), "kegg");
        assert!(!profiled.label_token_ids(0).is_empty());
        assert!(profiled.label_token_ids(3).is_empty(), "empty workflow");
        assert!(!profiled.pool().is_empty());
        assert_eq!(profiled.name(), "MS_ip_te_pll");
        // Token ids are sorted and distinct.
        let tokens = profiled.label_token_ids(0);
        assert!(tokens.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn profiles_expose_the_preprocessed_workflow() {
        let wfs = corpus();
        let profiled = ProfiledMeasure::new(SimilarityConfig::best_module_sets(), &wfs);
        // Importance projection removes the trivial split_ids module once,
        // at profile-build time.
        assert_eq!(profiled.profile(0).workflow().module_count(), 3);
        assert_eq!(profiled.profile(0).modules().len(), 3);
    }
}
