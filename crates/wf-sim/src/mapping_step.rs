//! Building the pairwise module similarity matrix and the module mapping.
//!
//! This is steps 3 and 4 of the comparison pipeline: compute the similarity
//! of every *candidate* module pair (restricted by the preselection
//! strategy), then establish a one-to-one module mapping from the resulting
//! matrix.  The number of pairs actually compared is recorded so experiments
//! can report the reduction achieved by `te` (the paper's 172k → 74k).

use wf_matching::{map_with, Mapping, MappingStrategy, SimilarityMatrix};
use wf_model::{Module, Workflow};
use wf_repo::PreselectionStrategy;

use crate::module_cmp::ModuleComparisonScheme;

/// The outcome of the module comparison and mapping steps.
#[derive(Debug, Clone)]
pub struct ModuleMappingOutcome {
    /// The pairwise similarity matrix (rows: modules of the first workflow,
    /// columns: modules of the second).
    pub matrix: SimilarityMatrix,
    /// The established module mapping.
    pub mapping: Mapping,
    /// Number of module pairs actually compared (allowed by preselection).
    pub compared_pairs: usize,
    /// Number of module pairs in the full Cartesian product.
    pub total_pairs: usize,
}

/// Computes the pairwise module similarity matrix between two workflows.
///
/// Pairs excluded by the preselection strategy receive similarity 0 and are
/// not compared at all; the returned count of compared pairs reflects this.
pub fn module_similarity_matrix(
    a: &Workflow,
    b: &Workflow,
    scheme: &ModuleComparisonScheme,
    preselection: PreselectionStrategy,
) -> (SimilarityMatrix, usize) {
    let mut compared = 0usize;
    let matrix = SimilarityMatrix::from_fn(a.module_count(), b.module_count(), |i, j| {
        let ma: &Module = &a.modules[i];
        let mb: &Module = &b.modules[j];
        if preselection.allows(ma, mb) {
            compared += 1;
            scheme.module_similarity(ma, mb)
        } else {
            0.0
        }
    });
    (matrix, compared)
}

/// Runs module comparison and mapping end to end.
pub fn map_modules(
    a: &Workflow,
    b: &Workflow,
    scheme: &ModuleComparisonScheme,
    preselection: PreselectionStrategy,
    strategy: MappingStrategy,
) -> ModuleMappingOutcome {
    let (matrix, compared_pairs) = module_similarity_matrix(a, b, scheme, preselection);
    let mapping = map_with(strategy, &matrix);
    ModuleMappingOutcome {
        mapping,
        compared_pairs,
        total_pairs: a.module_count() * b.module_count(),
        matrix,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wf_model::{builder::WorkflowBuilder, ModuleType};

    fn blast_workflow(id: &str, render_label: &str) -> Workflow {
        WorkflowBuilder::new(id)
            .module("fetch_sequence", ModuleType::WsdlService, |m| {
                m.service("ebi.ac.uk", "fetch", "http://ebi.ac.uk/fetch")
            })
            .module("run_blast", ModuleType::WsdlService, |m| {
                m.service("ebi.ac.uk", "blastp", "http://ebi.ac.uk/blast")
            })
            .module(render_label, ModuleType::BeanshellScript, |m| {
                m.script("plot(hits)")
            })
            .link("fetch_sequence", "run_blast")
            .link("run_blast", render_label)
            .build()
            .unwrap()
    }

    #[test]
    fn identical_workflows_map_perfectly() {
        let a = blast_workflow("a", "render_report");
        let b = blast_workflow("b", "render_report");
        let outcome = map_modules(
            &a,
            &b,
            &ModuleComparisonScheme::pw0(),
            PreselectionStrategy::AllPairs,
            MappingStrategy::MaximumWeight,
        );
        assert_eq!(outcome.mapping.len(), 3);
        assert!((outcome.mapping.total_weight() - 3.0).abs() < 1e-9);
        assert_eq!(outcome.compared_pairs, 9);
        assert_eq!(outcome.total_pairs, 9);
    }

    #[test]
    fn preselection_reduces_compared_pairs_without_losing_the_mapping() {
        let a = blast_workflow("a", "render_report");
        let b = blast_workflow("b", "render_hits");
        let all = map_modules(
            &a,
            &b,
            &ModuleComparisonScheme::pll(),
            PreselectionStrategy::AllPairs,
            MappingStrategy::MaximumWeight,
        );
        let te = map_modules(
            &a,
            &b,
            &ModuleComparisonScheme::pll(),
            PreselectionStrategy::TypeEquivalence,
            MappingStrategy::MaximumWeight,
        );
        assert!(te.compared_pairs < all.compared_pairs);
        assert_eq!(te.compared_pairs, 5, "2x2 services + 1x1 script");
        // The services map to services and the script to the script either
        // way, so the mapping quality is unchanged.
        assert_eq!(te.mapping.len(), all.mapping.len());
        assert!((te.mapping.total_weight() - all.mapping.total_weight()).abs() < 1e-9);
    }

    #[test]
    fn matrix_cells_for_disallowed_pairs_are_zero() {
        let a = blast_workflow("a", "render");
        let b = blast_workflow("b", "render");
        let (matrix, compared) = module_similarity_matrix(
            &a,
            &b,
            &ModuleComparisonScheme::pw0(),
            PreselectionStrategy::TypeEquivalence,
        );
        // Script (index 2) vs service (index 0) is disallowed.
        assert_eq!(matrix.get(2, 0), 0.0);
        assert!(matrix.get(2, 2) > 0.9);
        assert_eq!(compared, 5);
    }

    #[test]
    fn empty_workflows_produce_empty_outcomes() {
        let empty = WorkflowBuilder::new("e").build().unwrap();
        let other = blast_workflow("o", "render");
        let outcome = map_modules(
            &empty,
            &other,
            &ModuleComparisonScheme::pw0(),
            PreselectionStrategy::AllPairs,
            MappingStrategy::MaximumWeight,
        );
        assert!(outcome.mapping.is_empty());
        assert_eq!(outcome.compared_pairs, 0);
        assert_eq!(outcome.total_pairs, 0);
    }

    #[test]
    fn greedy_and_maximum_weight_agree_on_unambiguous_workflows() {
        // The paper's observation (Fig. 7): module mappings in practice are
        // mostly unambiguous, so greedy equals optimal.
        let a = blast_workflow("a", "render_report");
        let b = blast_workflow("b", "render_report");
        let greedy = map_modules(
            &a,
            &b,
            &ModuleComparisonScheme::pw0(),
            PreselectionStrategy::AllPairs,
            MappingStrategy::Greedy,
        );
        let optimal = map_modules(
            &a,
            &b,
            &ModuleComparisonScheme::pw0(),
            PreselectionStrategy::AllPairs,
            MappingStrategy::MaximumWeight,
        );
        assert!((greedy.mapping.total_weight() - optimal.mapping.total_weight()).abs() < 1e-9);
    }
}
