//! Topological decomposition of workflows.
//!
//! "We refine the task of topological comparison by preceding it by a step
//! of topological decomposition of the workflows suitable for the intended
//! comparison" (Section 2).  For the Module Sets measure the decomposition
//! is trivial (the set of all modules); for the Path Sets measure each
//! workflow is decomposed into its set of source-to-sink paths.

use wf_model::{ModuleId, Workflow};

/// The set of source-to-sink paths of a workflow, each path a sequence of
/// module ids, capped at `max_paths` paths.
pub fn path_set(wf: &Workflow, max_paths: usize) -> Vec<Vec<ModuleId>> {
    wf.graph().all_paths_capped(max_paths)
}

/// The set of modules of a workflow (the trivial decomposition used by the
/// Module Sets measure), provided for symmetry and used by tests.
pub fn module_set(wf: &Workflow) -> Vec<ModuleId> {
    wf.module_ids().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use wf_model::{builder::WorkflowBuilder, ModuleType};

    fn diamond() -> Workflow {
        WorkflowBuilder::new("d")
            .module("a", ModuleType::WsdlService, |m| m)
            .module("b", ModuleType::WsdlService, |m| m)
            .module("c", ModuleType::WsdlService, |m| m)
            .module("d", ModuleType::WsdlService, |m| m)
            .link("a", "b")
            .link("a", "c")
            .link("b", "d")
            .link("c", "d")
            .build()
            .unwrap()
    }

    #[test]
    fn module_set_is_all_modules() {
        let wf = diamond();
        assert_eq!(module_set(&wf).len(), 4);
    }

    #[test]
    fn path_set_enumerates_source_sink_paths() {
        let wf = diamond();
        let paths = path_set(&wf, 100);
        assert_eq!(paths.len(), 2);
        for p in &paths {
            assert_eq!(p.first(), Some(&ModuleId(0)));
            assert_eq!(p.last(), Some(&ModuleId(3)));
            assert_eq!(p.len(), 3);
        }
    }

    #[test]
    fn path_cap_is_respected() {
        let wf = diamond();
        assert_eq!(path_set(&wf, 1).len(), 1);
    }
}
