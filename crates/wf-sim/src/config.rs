//! Configuration of the similarity pipeline.
//!
//! A [`SimilarityConfig`] selects one concrete algorithm out of the design
//! space the paper explores: the measure kind (MS / PS / GE / BW / BT), the
//! module comparison scheme (`pX`), the module-pair preselection (`tX`), the
//! Importance Projection preprocessing (`Xp`), the module mapping strategy
//! and whether scores are normalized.  Table 2 of the paper defines the
//! shorthand notation; [`SimilarityConfig::name`] reproduces it
//! (e.g. `MS_ip_te_pll`).

use std::fmt;

use wf_ged::GedBudget;
use wf_matching::MappingStrategy;
use wf_repo::{ImportanceConfig, PreselectionStrategy};

use crate::module_cmp::ModuleComparisonScheme;

/// Which workflow-level measure is computed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MeasureKind {
    /// `MS` — Module Sets topological comparison.
    ModuleSets,
    /// `PS` — Path Sets topological comparison.
    PathSets,
    /// `GE` — Graph Edit Distance topological comparison.
    GraphEdit,
    /// `BW` — Bag of Words annotation comparison.
    BagOfWords,
    /// `BT` — Bag of Tags annotation comparison.
    BagOfTags,
}

impl MeasureKind {
    /// The two-letter shorthand of Table 2.
    pub fn shorthand(self) -> &'static str {
        match self {
            MeasureKind::ModuleSets => "MS",
            MeasureKind::PathSets => "PS",
            MeasureKind::GraphEdit => "GE",
            MeasureKind::BagOfWords => "BW",
            MeasureKind::BagOfTags => "BT",
        }
    }

    /// True for the structure-based measures (MS, PS, GE).
    pub fn is_structural(self) -> bool {
        matches!(
            self,
            MeasureKind::ModuleSets | MeasureKind::PathSets | MeasureKind::GraphEdit
        )
    }
}

impl fmt::Display for MeasureKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.shorthand())
    }
}

/// Whether workflows are preprocessed by Importance Projection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Preprocessing {
    /// `np` — no structural preprocessing.
    None,
    /// `ip` — Importance Projection.
    ImportanceProjection,
}

impl Preprocessing {
    /// The shorthand of Table 2 (`np` / `ip`).
    pub fn shorthand(self) -> &'static str {
        match self {
            Preprocessing::None => "np",
            Preprocessing::ImportanceProjection => "ip",
        }
    }
}

/// Whether and how the topological score is normalized.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Normalization {
    /// No normalization: the raw additive score / negated edit cost.
    None,
    /// Normalization with respect to workflow size (the Jaccard variant for
    /// the set-based measures, the maximum-cost quotient for GED).
    SizeNormalized,
}

/// Full configuration of one similarity algorithm.
#[derive(Debug, Clone)]
pub struct SimilarityConfig {
    /// The workflow-level measure.
    pub measure: MeasureKind,
    /// The module comparison scheme (ignored by annotation measures).
    pub module_scheme: ModuleComparisonScheme,
    /// The module-pair preselection strategy (ignored by annotation
    /// measures).
    pub preselection: PreselectionStrategy,
    /// The structural preprocessing step.
    pub preprocessing: Preprocessing,
    /// Importance scoring used when `preprocessing` is `ip`.
    pub importance: ImportanceConfig,
    /// The module mapping strategy for set-based measures.
    pub mapping: MappingStrategy,
    /// Whether scores are normalized by workflow size.
    pub normalization: Normalization,
    /// Resource budget for the Graph Edit Distance measure.
    pub ged_budget: GedBudget,
    /// Cap on the number of enumerated paths per workflow (Path Sets).
    pub max_paths: usize,
}

impl SimilarityConfig {
    /// A fully spelled-out constructor with the paper's defaults for the
    /// remaining knobs (maximum-weight mapping, size normalization).
    pub fn new(
        measure: MeasureKind,
        module_scheme: ModuleComparisonScheme,
        preselection: PreselectionStrategy,
        preprocessing: Preprocessing,
    ) -> Self {
        SimilarityConfig {
            measure,
            module_scheme,
            preselection,
            preprocessing,
            importance: ImportanceConfig::type_based(),
            mapping: MappingStrategy::MaximumWeight,
            normalization: Normalization::SizeNormalized,
            ged_budget: GedBudget::default(),
            max_paths: wf_model::graph::DEFAULT_MAX_PATHS,
        }
    }

    /// The baseline `MS_np_ta_pw0` configuration of Fig. 5.
    pub fn module_sets_default() -> Self {
        SimilarityConfig::new(
            MeasureKind::ModuleSets,
            ModuleComparisonScheme::pw0(),
            PreselectionStrategy::AllPairs,
            Preprocessing::None,
        )
    }

    /// The baseline `PS_np_ta_pw0` configuration.
    pub fn path_sets_default() -> Self {
        SimilarityConfig::new(
            MeasureKind::PathSets,
            ModuleComparisonScheme::pw0(),
            PreselectionStrategy::AllPairs,
            Preprocessing::None,
        )
    }

    /// The baseline `GE_np_ta_pw0` configuration.
    pub fn graph_edit_default() -> Self {
        SimilarityConfig::new(
            MeasureKind::GraphEdit,
            ModuleComparisonScheme::pw0(),
            PreselectionStrategy::AllPairs,
            Preprocessing::None,
        )
    }

    /// The Bag of Words configuration (`BW`).
    pub fn bag_of_words() -> Self {
        SimilarityConfig::new(
            MeasureKind::BagOfWords,
            ModuleComparisonScheme::pw0(),
            PreselectionStrategy::AllPairs,
            Preprocessing::None,
        )
    }

    /// The Bag of Tags configuration (`BT`).
    pub fn bag_of_tags() -> Self {
        SimilarityConfig::new(
            MeasureKind::BagOfTags,
            ModuleComparisonScheme::pw0(),
            PreselectionStrategy::AllPairs,
            Preprocessing::None,
        )
    }

    /// The best standalone structural configuration found by the paper:
    /// `MS_ip_te_pll` (Fig. 9a).
    pub fn best_module_sets() -> Self {
        SimilarityConfig::new(
            MeasureKind::ModuleSets,
            ModuleComparisonScheme::pll(),
            PreselectionStrategy::TypeEquivalence,
            Preprocessing::ImportanceProjection,
        )
    }

    /// `PS_ip_te_pll`, the best Path Sets configuration (Fig. 9a).
    pub fn best_path_sets() -> Self {
        SimilarityConfig::new(
            MeasureKind::PathSets,
            ModuleComparisonScheme::pll(),
            PreselectionStrategy::TypeEquivalence,
            Preprocessing::ImportanceProjection,
        )
    }

    /// Replaces the module comparison scheme.
    pub fn with_scheme(mut self, scheme: ModuleComparisonScheme) -> Self {
        self.module_scheme = scheme;
        self
    }

    /// Replaces the preselection strategy.
    pub fn with_preselection(mut self, strategy: PreselectionStrategy) -> Self {
        self.preselection = strategy;
        self
    }

    /// Replaces the preprocessing step.
    pub fn with_preprocessing(mut self, preprocessing: Preprocessing) -> Self {
        self.preprocessing = preprocessing;
        self
    }

    /// Replaces the mapping strategy.
    pub fn with_mapping(mut self, mapping: MappingStrategy) -> Self {
        self.mapping = mapping;
        self
    }

    /// Replaces the normalization mode.
    pub fn with_normalization(mut self, normalization: Normalization) -> Self {
        self.normalization = normalization;
        self
    }

    /// Replaces the GED budget.
    pub fn with_ged_budget(mut self, budget: GedBudget) -> Self {
        self.ged_budget = budget;
        self
    }

    /// The algorithm name in the paper's notation, e.g. `MS_ip_te_pll`.
    /// Annotation measures are just `BW` / `BT`.
    pub fn name(&self) -> String {
        if !self.measure.is_structural() {
            return self.measure.shorthand().to_string();
        }
        format!(
            "{}_{}_{}_{}",
            self.measure.shorthand(),
            self.preprocessing.shorthand(),
            self.preselection.shorthand(),
            self.module_scheme.name()
        )
    }

    /// Enumerates the full structural configuration sweep of Section 5.1.5:
    /// every combination of measure (MS, PS, GE), module scheme (pw0, pw3,
    /// pll, plm), preselection (ta, te) and preprocessing (np, ip).
    pub fn structural_sweep() -> Vec<SimilarityConfig> {
        let mut configs = Vec::new();
        for measure in [
            MeasureKind::ModuleSets,
            MeasureKind::PathSets,
            MeasureKind::GraphEdit,
        ] {
            for scheme in [
                ModuleComparisonScheme::pw0(),
                ModuleComparisonScheme::pw3(),
                ModuleComparisonScheme::pll(),
                ModuleComparisonScheme::plm(),
            ] {
                for preselection in [
                    PreselectionStrategy::AllPairs,
                    PreselectionStrategy::TypeEquivalence,
                ] {
                    for preprocessing in [Preprocessing::None, Preprocessing::ImportanceProjection]
                    {
                        configs.push(SimilarityConfig::new(
                            measure,
                            scheme.clone(),
                            preselection,
                            preprocessing,
                        ));
                    }
                }
            }
        }
        configs
    }
}

impl fmt::Display for SimilarityConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_follow_the_papers_notation() {
        assert_eq!(
            SimilarityConfig::module_sets_default().name(),
            "MS_np_ta_pw0"
        );
        assert_eq!(SimilarityConfig::best_module_sets().name(), "MS_ip_te_pll");
        assert_eq!(SimilarityConfig::best_path_sets().name(), "PS_ip_te_pll");
        assert_eq!(SimilarityConfig::bag_of_words().name(), "BW");
        assert_eq!(SimilarityConfig::bag_of_tags().name(), "BT");
        assert_eq!(
            SimilarityConfig::graph_edit_default()
                .with_preprocessing(Preprocessing::ImportanceProjection)
                .name(),
            "GE_ip_ta_pw0"
        );
    }

    #[test]
    fn measure_kind_properties() {
        assert!(MeasureKind::ModuleSets.is_structural());
        assert!(MeasureKind::PathSets.is_structural());
        assert!(MeasureKind::GraphEdit.is_structural());
        assert!(!MeasureKind::BagOfWords.is_structural());
        assert!(!MeasureKind::BagOfTags.is_structural());
        assert_eq!(MeasureKind::PathSets.to_string(), "PS");
    }

    #[test]
    fn builders_replace_single_knobs() {
        let config = SimilarityConfig::module_sets_default()
            .with_scheme(ModuleComparisonScheme::pll())
            .with_preselection(PreselectionStrategy::TypeEquivalence)
            .with_preprocessing(Preprocessing::ImportanceProjection)
            .with_mapping(MappingStrategy::Greedy)
            .with_normalization(Normalization::None);
        assert_eq!(config.name(), "MS_ip_te_pll");
        assert_eq!(config.mapping, MappingStrategy::Greedy);
        assert_eq!(config.normalization, Normalization::None);
    }

    #[test]
    fn structural_sweep_covers_all_combinations() {
        let sweep = SimilarityConfig::structural_sweep();
        assert_eq!(sweep.len(), 3 * 4 * 2 * 2);
        let names: std::collections::BTreeSet<String> =
            sweep.iter().map(SimilarityConfig::name).collect();
        assert_eq!(names.len(), sweep.len(), "all configurations are distinct");
        assert!(names.contains("MS_ip_te_pll"));
        assert!(names.contains("GE_np_ta_plm"));
    }
}
