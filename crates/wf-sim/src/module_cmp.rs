//! Pairwise module comparison schemes.
//!
//! Section 2.1.1 of the paper: "for maximum flexibility, both the set of
//! attributes to compare and the methods to compare them by are
//! configurable in our framework, together with the weight each attribute
//! has".  A [`ModuleComparisonScheme`] is exactly that configuration; the
//! named constructors reproduce the schemes evaluated in the paper:
//!
//! | scheme | description |
//! |--------|-------------|
//! | `pw0`  | uniform weights on all attributes; exact matching for type and service attributes, edit distance for label, description and script |
//! | `pw3`  | tuned weights: label, script and service URI weighted highest, then service name and authority (following Silva et al. \[34\]) |
//! | `pll`  | labels only, compared by Levenshtein edit distance (Bergmann & Gil \[4\]) |
//! | `plm`  | labels only, compared by strict string matching (Santos et al. \[33\], Goderis et al. \[18\], Xiang & Madey \[38\]) |
//! | `gw1`  | Galaxy variant of `pw0`: uniform weights over the attributes Galaxy tools carry |
//! | `gll`  | Galaxy variant of `pll` |

use std::fmt;

use wf_model::{AttributeKey, AttributeValue, Module};
use wf_text::levenshtein::{levenshtein_similarity, levenshtein_similarity_ci};
use wf_text::{jaccard_index, tokenize};

/// How a single attribute is compared.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ComparisonMethod {
    /// Exact (case-sensitive) string equality: similarity 1 or 0.
    Exact,
    /// Exact case-insensitive string equality.
    ExactIgnoreCase,
    /// Normalized Levenshtein similarity.
    Levenshtein,
    /// Normalized Levenshtein similarity on lowercased strings.
    LevenshteinIgnoreCase,
    /// Jaccard similarity of the token sets (used for long texts such as
    /// descriptions and scripts, where character edit distance is noisy).
    TokenJaccard,
}

impl ComparisonMethod {
    /// Compares two attribute values with this method.
    pub fn compare(self, a: &str, b: &str) -> f64 {
        match self {
            ComparisonMethod::Exact => {
                if a == b {
                    1.0
                } else {
                    0.0
                }
            }
            ComparisonMethod::ExactIgnoreCase => {
                if a.eq_ignore_ascii_case(b) {
                    1.0
                } else {
                    0.0
                }
            }
            ComparisonMethod::Levenshtein => levenshtein_similarity(a, b),
            ComparisonMethod::LevenshteinIgnoreCase => levenshtein_similarity_ci(a, b),
            ComparisonMethod::TokenJaccard => jaccard_index(&tokenize(a), &tokenize(b)),
        }
    }
}

/// One attribute's role in a comparison scheme.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AttributeRule {
    /// The attribute being compared.
    pub key: AttributeKey,
    /// Its weight in the weighted average.
    pub weight: f64,
    /// The comparison method applied to it.
    pub method: ComparisonMethod,
}

/// A full module comparison scheme: a weighted set of attribute rules.
#[derive(Debug, Clone, PartialEq)]
pub struct ModuleComparisonScheme {
    name: &'static str,
    rules: Vec<AttributeRule>,
}

impl ModuleComparisonScheme {
    /// Builds a custom scheme.  Rules with non-positive weight are dropped.
    pub fn custom(name: &'static str, rules: Vec<AttributeRule>) -> Self {
        let rules = rules.into_iter().filter(|r| r.weight > 0.0).collect();
        ModuleComparisonScheme { name, rules }
    }

    /// `pw0`: uniform weights on all attributes (the baseline configuration
    /// of Fig. 5).
    pub fn pw0() -> Self {
        use AttributeKey::*;
        use ComparisonMethod::*;
        ModuleComparisonScheme::custom(
            "pw0",
            vec![
                AttributeRule {
                    key: Label,
                    weight: 1.0,
                    method: Levenshtein,
                },
                AttributeRule {
                    key: Type,
                    weight: 1.0,
                    method: Exact,
                },
                AttributeRule {
                    key: Description,
                    weight: 1.0,
                    method: Levenshtein,
                },
                AttributeRule {
                    key: Script,
                    weight: 1.0,
                    method: Levenshtein,
                },
                AttributeRule {
                    key: ServiceAuthority,
                    weight: 1.0,
                    method: Exact,
                },
                AttributeRule {
                    key: ServiceName,
                    weight: 1.0,
                    method: Exact,
                },
                AttributeRule {
                    key: ServiceUri,
                    weight: 1.0,
                    method: Exact,
                },
            ],
        )
    }

    /// `pw3`: tuned, non-uniform weights (label, script and service URI
    /// highest, then service name and authority), following \[34\].
    pub fn pw3() -> Self {
        use AttributeKey::*;
        use ComparisonMethod::*;
        ModuleComparisonScheme::custom(
            "pw3",
            vec![
                AttributeRule {
                    key: Label,
                    weight: 3.0,
                    method: Levenshtein,
                },
                AttributeRule {
                    key: Script,
                    weight: 3.0,
                    method: TokenJaccard,
                },
                AttributeRule {
                    key: ServiceUri,
                    weight: 3.0,
                    method: Exact,
                },
                AttributeRule {
                    key: ServiceName,
                    weight: 2.0,
                    method: Exact,
                },
                AttributeRule {
                    key: ServiceAuthority,
                    weight: 1.5,
                    method: Exact,
                },
                AttributeRule {
                    key: Type,
                    weight: 1.0,
                    method: Exact,
                },
                AttributeRule {
                    key: Description,
                    weight: 1.0,
                    method: TokenJaccard,
                },
            ],
        )
    }

    /// `pll`: labels only, Levenshtein edit distance.
    pub fn pll() -> Self {
        ModuleComparisonScheme::custom(
            "pll",
            vec![AttributeRule {
                key: AttributeKey::Label,
                weight: 1.0,
                method: ComparisonMethod::Levenshtein,
            }],
        )
    }

    /// `plm`: labels only, strict string matching.
    pub fn plm() -> Self {
        ModuleComparisonScheme::custom(
            "plm",
            vec![AttributeRule {
                key: AttributeKey::Label,
                weight: 1.0,
                method: ComparisonMethod::Exact,
            }],
        )
    }

    /// `gw1`: the Galaxy-corpus scheme comparing "a selection of attributes
    /// with uniform weights" (Section 5.3).  Galaxy tools carry a label, a
    /// tool id (mapped to the service name attribute on import), a type and
    /// a description.
    pub fn gw1() -> Self {
        use AttributeKey::*;
        use ComparisonMethod::*;
        ModuleComparisonScheme::custom(
            "gw1",
            vec![
                AttributeRule {
                    key: Label,
                    weight: 1.0,
                    method: LevenshteinIgnoreCase,
                },
                AttributeRule {
                    key: ServiceName,
                    weight: 1.0,
                    method: ExactIgnoreCase,
                },
                AttributeRule {
                    key: Type,
                    weight: 1.0,
                    method: Exact,
                },
                AttributeRule {
                    key: Description,
                    weight: 1.0,
                    method: TokenJaccard,
                },
            ],
        )
    }

    /// `gll`: the Galaxy-corpus label-only edit-distance scheme.
    pub fn gll() -> Self {
        ModuleComparisonScheme::custom(
            "gll",
            vec![AttributeRule {
                key: AttributeKey::Label,
                weight: 1.0,
                method: ComparisonMethod::LevenshteinIgnoreCase,
            }],
        )
    }

    /// The scheme's short name as used in algorithm identifiers
    /// (`MS_ip_te_pll` etc.).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The attribute rules of the scheme.
    pub fn rules(&self) -> &[AttributeRule] {
        &self.rules
    }

    /// Computes the similarity of two modules under this scheme.
    ///
    /// For every rule, the attribute values of both modules are compared if
    /// both carry the attribute; if only one carries it the attribute
    /// contributes similarity 0 (the modules demonstrably differ there); if
    /// neither carries it the rule is skipped entirely.  The result is the
    /// weighted average over the contributing rules, in `[0, 1]`.
    pub fn module_similarity(&self, a: &Module, b: &Module) -> f64 {
        let mut weight_sum = 0.0;
        let mut score_sum = 0.0;
        for rule in &self.rules {
            let va = a.attribute(rule.key);
            let vb = b.attribute(rule.key);
            match (va, vb) {
                (None, None) => continue,
                (Some(_), None) | (None, Some(_)) => {
                    weight_sum += rule.weight;
                }
                (Some(x), Some(y)) => {
                    weight_sum += rule.weight;
                    score_sum += rule.weight * compare_values(rule.method, x, y);
                }
            }
        }
        if weight_sum == 0.0 {
            0.0
        } else {
            (score_sum / weight_sum).clamp(0.0, 1.0)
        }
    }
}

fn compare_values(method: ComparisonMethod, a: AttributeValue<'_>, b: AttributeValue<'_>) -> f64 {
    method.compare(a.as_str(), b.as_str())
}

impl fmt::Display for ModuleComparisonScheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wf_model::{builder::WorkflowBuilder, ModuleType, Workflow};

    fn service_workflow(id: &str, label: &str, service: &str, uri: &str) -> Workflow {
        WorkflowBuilder::new(id)
            .module(label, ModuleType::WsdlService, |m| {
                m.service("ebi.ac.uk", service, uri)
            })
            .build()
            .unwrap()
    }

    #[test]
    fn comparison_methods() {
        assert_eq!(ComparisonMethod::Exact.compare("abc", "abc"), 1.0);
        assert_eq!(ComparisonMethod::Exact.compare("abc", "Abc"), 0.0);
        assert_eq!(ComparisonMethod::ExactIgnoreCase.compare("abc", "Abc"), 1.0);
        assert!(ComparisonMethod::Levenshtein.compare("blast", "blastp") > 0.8);
        assert_eq!(
            ComparisonMethod::LevenshteinIgnoreCase.compare("BLAST", "blast"),
            1.0
        );
        assert_eq!(
            ComparisonMethod::TokenJaccard.compare("run blast search", "blast search"),
            2.0 / 3.0
        );
    }

    #[test]
    fn identical_modules_have_similarity_one() {
        let wf = service_workflow("a", "run_blast", "blastp", "http://ebi.ac.uk/blast");
        let m = &wf.modules[0];
        for scheme in [
            ModuleComparisonScheme::pw0(),
            ModuleComparisonScheme::pw3(),
            ModuleComparisonScheme::pll(),
            ModuleComparisonScheme::plm(),
            ModuleComparisonScheme::gw1(),
            ModuleComparisonScheme::gll(),
        ] {
            assert!(
                (scheme.module_similarity(m, m) - 1.0).abs() < 1e-9,
                "{scheme} on identical module"
            );
        }
    }

    #[test]
    fn pll_sees_label_variants_plm_does_not() {
        let wa = service_workflow("a", "run_blast", "blastp", "u1");
        let wb = service_workflow("b", "run_blastp", "blastp", "u1");
        let (ma, mb) = (&wa.modules[0], &wb.modules[0]);
        let pll = ModuleComparisonScheme::pll().module_similarity(ma, mb);
        let plm = ModuleComparisonScheme::plm().module_similarity(ma, mb);
        assert!(
            pll > 0.85,
            "edit distance captures the near-identical label"
        );
        assert_eq!(plm, 0.0, "strict matching sees nothing");
    }

    #[test]
    fn pw3_weights_service_uri_strongly() {
        // Same service URI but different labels: pw3 should still consider
        // the modules fairly similar, more so than pll.
        let wa = service_workflow("a", "fetch_sequence", "blastp", "http://ebi.ac.uk/blast");
        let wb = service_workflow("b", "protein_search", "blastp", "http://ebi.ac.uk/blast");
        let (ma, mb) = (&wa.modules[0], &wb.modules[0]);
        let pw3 = ModuleComparisonScheme::pw3().module_similarity(ma, mb);
        let pll = ModuleComparisonScheme::pll().module_similarity(ma, mb);
        assert!(pw3 > pll);
        assert!(pw3 > 0.5);
    }

    #[test]
    fn attributes_missing_on_one_side_count_as_dissimilar() {
        // A web service vs a script: under pw0 the service attributes exist
        // only on one side and drag the similarity down.
        let wa = service_workflow("a", "analyse", "blastp", "u1");
        let wb = WorkflowBuilder::new("b")
            .module("analyse", ModuleType::BeanshellScript, |m| {
                m.script("run()")
            })
            .build()
            .unwrap();
        let sim = ModuleComparisonScheme::pw0().module_similarity(&wa.modules[0], &wb.modules[0]);
        assert!(sim < 0.5, "only the label matches, everything else differs");
        assert!(sim > 0.0, "but the matching label still counts");
    }

    #[test]
    fn attributes_missing_on_both_sides_are_skipped() {
        // Two bare local operations: only label and type contribute.
        let wa = WorkflowBuilder::new("a")
            .module("split_string", ModuleType::LocalOperation, |m| m)
            .build()
            .unwrap();
        let wb = WorkflowBuilder::new("b")
            .module("split_string", ModuleType::LocalOperation, |m| m)
            .build()
            .unwrap();
        let sim = ModuleComparisonScheme::pw0().module_similarity(&wa.modules[0], &wb.modules[0]);
        assert_eq!(sim, 1.0);
    }

    #[test]
    fn custom_scheme_drops_nonpositive_weights() {
        let scheme = ModuleComparisonScheme::custom(
            "x",
            vec![
                AttributeRule {
                    key: AttributeKey::Label,
                    weight: 0.0,
                    method: ComparisonMethod::Exact,
                },
                AttributeRule {
                    key: AttributeKey::Type,
                    weight: 1.0,
                    method: ComparisonMethod::Exact,
                },
            ],
        );
        assert_eq!(scheme.rules().len(), 1);
        assert_eq!(scheme.name(), "x");
    }

    #[test]
    fn empty_scheme_yields_zero_similarity() {
        let scheme = ModuleComparisonScheme::custom("empty", vec![]);
        let wf = service_workflow("a", "x", "y", "z");
        assert_eq!(
            scheme.module_similarity(&wf.modules[0], &wf.modules[0]),
            0.0
        );
    }

    #[test]
    fn similarity_is_symmetric() {
        let wa = service_workflow("a", "run_blast", "blastp", "u1");
        let wb = WorkflowBuilder::new("b")
            .module("blast_run", ModuleType::SoaplabService, |m| {
                m.service("ebi.ac.uk", "blastp2", "u2")
            })
            .build()
            .unwrap();
        for scheme in [ModuleComparisonScheme::pw0(), ModuleComparisonScheme::pw3()] {
            let ab = scheme.module_similarity(&wa.modules[0], &wb.modules[0]);
            let ba = scheme.module_similarity(&wb.modules[0], &wa.modules[0]);
            assert!((ab - ba).abs() < 1e-12, "{scheme}");
        }
    }
}
