//! Additional workflow comparison approaches from the paper's Table 1.
//!
//! The core framework ([`crate::pipeline`]) covers the measures the paper
//! evaluates in depth (MS, PS, GE, BW, BT).  Table 1, however, catalogues a
//! few further topological approaches taken by earlier studies which the
//! paper discusses but folds into the above classes.  This module implements
//! them explicitly so they can be compared against the framework measures:
//!
//! * [`label_vectors`] — workflows as vectors of module labels compared by
//!   cosine similarity, the approach of Santos et al. \[33\].
//! * [`mcs`] — maximum common subgraph similarity, the substructure approach
//!   of \[33\], Goderis et al. \[18\] and Friesen & Rüping \[17\].
//! * [`graph_kernel`] — a Weisfeiler–Lehman subtree graph kernel standing in
//!   for the frequent-subgraph graph kernels of \[17\].
//! * [`frequent_sets`] — frequent module / tag set similarity following
//!   Stoyanovich et al. \[36\], built on the repository-level mining in
//!   [`wf_repo::mining`].
//!
//! The [`Measure`] trait gives all similarity measures of this crate — the
//! pipeline measures, ensembles and the extended measures above — a common
//! object-safe interface, so experiment harnesses and the clustering crate
//! can treat them uniformly.

pub mod frequent_sets;
pub mod graph_kernel;
pub mod label_vectors;
pub mod mcs;

pub use frequent_sets::FrequentSetSimilarity;
pub use graph_kernel::{WlKernelConfig, WlKernelSimilarity};
pub use label_vectors::LabelVectorSimilarity;
pub use mcs::{McsConfig, McsSimilarity};

use wf_model::Workflow;

use crate::ensemble::Ensemble;
use crate::pipeline::WorkflowSimilarity;

/// A workflow similarity measure: anything that can score a pair of
/// workflows in \[0, 1\] (or abstain when the pair carries no usable
/// information for the measure).
pub trait Measure {
    /// The measure's name as used in experiment output.
    fn measure_name(&self) -> String;

    /// The similarity of two workflows, or `None` when the measure is not
    /// applicable to the pair.
    fn measure_opt(&self, a: &Workflow, b: &Workflow) -> Option<f64>;

    /// The similarity of two workflows; inapplicable pairs score 0.
    fn measure(&self, a: &Workflow, b: &Workflow) -> f64 {
        self.measure_opt(a, b).unwrap_or(0.0)
    }
}

impl Measure for WorkflowSimilarity {
    fn measure_name(&self) -> String {
        self.name()
    }

    fn measure_opt(&self, a: &Workflow, b: &Workflow) -> Option<f64> {
        self.similarity_opt(a, b)
    }
}

impl Measure for Ensemble {
    fn measure_name(&self) -> String {
        self.name()
    }

    fn measure_opt(&self, a: &Workflow, b: &Workflow) -> Option<f64> {
        self.similarity_opt(a, b)
    }
}

impl Measure for LabelVectorSimilarity {
    fn measure_name(&self) -> String {
        self.name().to_string()
    }

    fn measure_opt(&self, a: &Workflow, b: &Workflow) -> Option<f64> {
        self.similarity_opt(a, b)
    }
}

impl Measure for McsSimilarity {
    fn measure_name(&self) -> String {
        self.name()
    }

    fn measure_opt(&self, a: &Workflow, b: &Workflow) -> Option<f64> {
        Some(self.similarity(a, b))
    }
}

impl Measure for WlKernelSimilarity {
    fn measure_name(&self) -> String {
        self.name().to_string()
    }

    fn measure_opt(&self, a: &Workflow, b: &Workflow) -> Option<f64> {
        self.similarity_opt(a, b)
    }
}

impl Measure for FrequentSetSimilarity {
    fn measure_name(&self) -> String {
        self.name()
    }

    fn measure_opt(&self, a: &Workflow, b: &Workflow) -> Option<f64> {
        self.similarity_opt(a, b)
    }
}

impl<M: Measure + ?Sized> Measure for Box<M> {
    fn measure_name(&self) -> String {
        (**self).measure_name()
    }

    fn measure_opt(&self, a: &Workflow, b: &Workflow) -> Option<f64> {
        (**self).measure_opt(a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimilarityConfig;
    use wf_model::{builder::WorkflowBuilder, ModuleType};

    fn chain(id: &str, labels: &[&str]) -> Workflow {
        let mut b = WorkflowBuilder::new(id);
        for l in labels {
            b = b.module(*l, ModuleType::WsdlService, |m| m);
        }
        for w in labels.windows(2) {
            b = b.link(w[0], w[1]);
        }
        b.build().unwrap()
    }

    #[test]
    fn pipeline_measures_implement_the_measure_trait() {
        let ms = WorkflowSimilarity::new(SimilarityConfig::module_sets_default());
        let a = chain("a", &["fetch", "blast"]);
        let b = chain("b", &["fetch", "blast"]);
        assert_eq!(ms.measure_name(), ms.name());
        assert!((ms.measure(&a, &b) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn boxed_measures_are_usable_as_trait_objects() {
        let measures: Vec<Box<dyn Measure>> = vec![
            Box::new(WorkflowSimilarity::new(
                SimilarityConfig::module_sets_default(),
            )),
            Box::new(LabelVectorSimilarity::new()),
            Box::new(McsSimilarity::default()),
            Box::new(WlKernelSimilarity::default()),
        ];
        let a = chain("a", &["fetch", "blast", "render"]);
        let b = chain("b", &["fetch", "blast", "render"]);
        for m in &measures {
            let s = m.measure(&a, &b);
            assert!(
                (s - 1.0).abs() < 1e-9,
                "{} should score identical workflows 1.0, got {s}",
                m.measure_name()
            );
        }
    }

    #[test]
    fn ensemble_implements_the_measure_trait() {
        let e = Ensemble::bw_plus_module_sets();
        let a = chain("a", &["fetch", "blast"]);
        let b = chain("b", &["fetch", "blast"]);
        assert!(!e.measure_name().is_empty());
        let s = e.measure(&a, &b);
        assert!((0.0..=1.0).contains(&s));
    }
}
