//! A Weisfeiler–Lehman subtree graph kernel for workflows.
//!
//! Friesen & Rüping \[17\] compare workflows with graph kernels derived from
//! frequent subgraphs and find them to slightly outperform both bags of
//! modules and MCS.  Mining frequent subgraphs requires their proprietary
//! toolchain; as a substitution this module
//! implements the Weisfeiler–Lehman subtree kernel, the standard efficient
//! graph kernel that likewise measures the overlap of local substructures:
//! after `h` rounds of neighbourhood label refinement, the kernel value is
//! the dot product of the workflows' label-count feature vectors, normalized
//! to \[0, 1\] like a cosine.
//!
//! Node labels are derived from the modules: either the technical type
//! (robust against label noise) or the lowercased label.  The refinement
//! step distinguishes predecessor and successor neighbourhoods so that the
//! dataflow direction — functionally important for scientific workflows —
//! is reflected in the substructures.

use std::collections::BTreeMap;

use wf_model::{Workflow, WorkflowGraph};

/// How initial node labels are derived from modules.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum NodeLabeling {
    /// The module's technical type (`wsdl`, `beanshell`, `localoperation`, …).
    #[default]
    ModuleType,
    /// The module's lowercased label.
    Label,
}

/// Configuration of the Weisfeiler–Lehman kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WlKernelConfig {
    /// Number of refinement iterations (the subtree depth); 2–3 is standard.
    pub iterations: usize,
    /// How initial node labels are derived.
    pub labeling: NodeLabeling,
}

impl Default for WlKernelConfig {
    fn default() -> Self {
        WlKernelConfig {
            iterations: 3,
            labeling: NodeLabeling::ModuleType,
        }
    }
}

/// The Weisfeiler–Lehman subtree kernel similarity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WlKernelSimilarity {
    config: WlKernelConfig,
}

impl WlKernelSimilarity {
    /// Creates the kernel with the given configuration.
    pub fn new(config: WlKernelConfig) -> Self {
        WlKernelSimilarity { config }
    }

    /// A kernel over lowercased module labels instead of types.
    pub fn label_based() -> Self {
        WlKernelSimilarity::new(WlKernelConfig {
            labeling: NodeLabeling::Label,
            ..WlKernelConfig::default()
        })
    }

    /// The configuration of this kernel.
    pub fn config(&self) -> &WlKernelConfig {
        &self.config
    }

    /// The measure name used in experiment output.
    pub fn name(&self) -> &'static str {
        match self.config.labeling {
            NodeLabeling::ModuleType => "WL_type",
            NodeLabeling::Label => "WL_label",
        }
    }

    /// The Weisfeiler–Lehman feature vector of one workflow: counts of every
    /// (refined) node label over all iterations.
    pub fn features(&self, wf: &Workflow) -> BTreeMap<String, f64> {
        let graph = WorkflowGraph::from_workflow(wf);
        let n = wf.module_count();
        let mut labels: Vec<String> = wf
            .modules
            .iter()
            .map(|m| match self.config.labeling {
                NodeLabeling::ModuleType => m.module_type.as_str().to_string(),
                NodeLabeling::Label => m.label.to_lowercase(),
            })
            .collect();
        let mut features: BTreeMap<String, f64> = BTreeMap::new();
        for label in &labels {
            *features.entry(format!("0|{label}")).or_insert(0.0) += 1.0;
        }
        for round in 1..=self.config.iterations {
            let mut next = Vec::with_capacity(n);
            for module in &wf.modules {
                let id = module.id;
                let mut preds: Vec<&str> = graph
                    .predecessors(id)
                    .iter()
                    .map(|p| labels[p.index()].as_str())
                    .collect();
                preds.sort_unstable();
                let mut succs: Vec<&str> = graph
                    .successors(id)
                    .iter()
                    .map(|s| labels[s.index()].as_str())
                    .collect();
                succs.sort_unstable();
                let refined = format!(
                    "{}<({})>({})",
                    labels[id.index()],
                    preds.join(","),
                    succs.join(",")
                );
                next.push(refined);
            }
            labels = next;
            for label in &labels {
                *features.entry(format!("{round}|{label}")).or_insert(0.0) += 1.0;
            }
        }
        features
    }

    /// The raw (un-normalized) kernel value: the dot product of the two
    /// feature vectors.
    pub fn kernel(&self, a: &Workflow, b: &Workflow) -> f64 {
        let fa = self.features(a);
        let fb = self.features(b);
        dot(&fa, &fb)
    }

    /// The normalized kernel similarity k(a,b) / sqrt(k(a,a) k(b,b)), or
    /// `None` when either workflow has no modules.
    pub fn similarity_opt(&self, a: &Workflow, b: &Workflow) -> Option<f64> {
        if a.module_count() == 0 || b.module_count() == 0 {
            return None;
        }
        let fa = self.features(a);
        let fb = self.features(b);
        let kaa = dot(&fa, &fa);
        let kbb = dot(&fb, &fb);
        if kaa == 0.0 || kbb == 0.0 {
            return None;
        }
        Some((dot(&fa, &fb) / (kaa * kbb).sqrt()).clamp(0.0, 1.0))
    }

    /// The normalized kernel similarity; two empty workflows score 1, an
    /// empty against a non-empty workflow scores 0.
    pub fn similarity(&self, a: &Workflow, b: &Workflow) -> f64 {
        if a.module_count() == 0 && b.module_count() == 0 {
            return 1.0;
        }
        self.similarity_opt(a, b).unwrap_or(0.0)
    }
}

fn dot(a: &BTreeMap<String, f64>, b: &BTreeMap<String, f64>) -> f64 {
    a.iter()
        .filter_map(|(k, va)| b.get(k).map(|vb| va * vb))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use wf_model::{builder::WorkflowBuilder, ModuleType};

    fn chain(id: &str, labels: &[&str]) -> Workflow {
        let mut b = WorkflowBuilder::new(id);
        for l in labels {
            b = b.module(*l, ModuleType::WsdlService, |m| m);
        }
        for w in labels.windows(2) {
            b = b.link(w[0], w[1]);
        }
        b.build().unwrap()
    }

    #[test]
    fn identical_workflows_score_one() {
        let a = chain("a", &["fetch", "blast", "render"]);
        let b = chain("b", &["fetch", "blast", "render"]);
        for kernel in [
            WlKernelSimilarity::default(),
            WlKernelSimilarity::label_based(),
        ] {
            assert!(
                (kernel.similarity(&a, &b) - 1.0).abs() < 1e-9,
                "{}",
                kernel.name()
            );
        }
    }

    #[test]
    fn label_kernel_separates_different_labels() {
        let a = chain("a", &["fetch", "blast", "render"]);
        let b = chain("b", &["parse", "cluster", "plot"]);
        assert_eq!(WlKernelSimilarity::label_based().similarity(&a, &b), 0.0);
        // The type kernel sees identical type structure and scores 1.
        assert!((WlKernelSimilarity::default().similarity(&a, &b) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn structural_differences_lower_the_kernel() {
        // Same label multiset, different wiring: chain vs fan-out.
        let chain_wf = chain("a", &["fetch", "blast", "render"]);
        let fan = WorkflowBuilder::new("b")
            .module("fetch", ModuleType::WsdlService, |m| m)
            .module("blast", ModuleType::WsdlService, |m| m)
            .module("render", ModuleType::WsdlService, |m| m)
            .link("fetch", "blast")
            .link("fetch", "render")
            .build()
            .unwrap();
        let kernel = WlKernelSimilarity::label_based();
        let s = kernel.similarity(&chain_wf, &fan);
        assert!(s < 1.0, "different wiring must not look identical, got {s}");
        assert!(s > 0.0, "shared labels still overlap at iteration 0");
    }

    #[test]
    fn deeper_iterations_are_more_discriminative() {
        let chain_wf = chain("a", &["fetch", "blast", "render"]);
        let fan = WorkflowBuilder::new("b")
            .module("fetch", ModuleType::WsdlService, |m| m)
            .module("blast", ModuleType::WsdlService, |m| m)
            .module("render", ModuleType::WsdlService, |m| m)
            .link("fetch", "blast")
            .link("fetch", "render")
            .build()
            .unwrap();
        let shallow = WlKernelSimilarity::new(WlKernelConfig {
            iterations: 0,
            labeling: NodeLabeling::Label,
        });
        let deep = WlKernelSimilarity::new(WlKernelConfig {
            iterations: 3,
            labeling: NodeLabeling::Label,
        });
        let s_shallow = shallow.similarity(&chain_wf, &fan);
        let s_deep = deep.similarity(&chain_wf, &fan);
        assert!(
            (s_shallow - 1.0).abs() < 1e-9,
            "iteration 0 sees only label counts"
        );
        assert!(s_deep < s_shallow);
    }

    #[test]
    fn direction_matters() {
        let forward = chain("a", &["fetch", "blast", "render"]);
        let backward = chain("b", &["render", "blast", "fetch"]);
        let kernel = WlKernelSimilarity::label_based();
        let s = kernel.similarity(&forward, &backward);
        assert!(s < 1.0, "reversed dataflow must be distinguished, got {s}");
    }

    #[test]
    fn kernel_value_counts_matching_subtrees() {
        // Two identical 2-chains: iteration 0 contributes 2 matches, each
        // further iteration 2 more.
        let a = chain("a", &["fetch", "blast"]);
        let b = chain("b", &["fetch", "blast"]);
        let kernel = WlKernelSimilarity::new(WlKernelConfig {
            iterations: 1,
            labeling: NodeLabeling::Label,
        });
        assert!((kernel.kernel(&a, &b) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn empty_workflows_are_handled() {
        let empty = WorkflowBuilder::new("e").build().unwrap();
        let other = chain("o", &["fetch"]);
        let kernel = WlKernelSimilarity::default();
        assert_eq!(kernel.similarity_opt(&empty, &other), None);
        assert_eq!(kernel.similarity(&empty, &other), 0.0);
        assert_eq!(kernel.similarity(&empty, &empty), 1.0);
    }

    #[test]
    fn similarity_is_symmetric_and_bounded() {
        let a = chain("a", &["fetch", "blast", "render", "export"]);
        let b = chain("b", &["fetch", "filter", "render"]);
        let kernel = WlKernelSimilarity::label_based();
        let ab = kernel.similarity(&a, &b);
        let ba = kernel.similarity(&b, &a);
        assert!((ab - ba).abs() < 1e-12);
        assert!((0.0..=1.0).contains(&ab));
    }

    #[test]
    fn names_reflect_the_labeling() {
        assert_eq!(WlKernelSimilarity::default().name(), "WL_type");
        assert_eq!(WlKernelSimilarity::label_based().name(), "WL_label");
    }
}
