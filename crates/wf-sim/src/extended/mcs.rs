//! Maximum common subgraph (MCS) similarity.
//!
//! Several of the studies the paper catalogues in Table 1 compare workflows
//! by the size of their maximum common (isomorphic) subgraph: Santos et
//! al. \[33\] normalize it by `|V| + |E|` of the *larger* workflow, Goderis
//! et al. \[18\] report both un-normalized and size-normalized variants, and
//! Friesen & Rüping \[17\] use MCS on type-matched modules.  Exact MCS is
//! NP-hard; like those studies we approximate it through the module mapping:
//! mapped module pairs whose similarity reaches a configurable threshold are
//! treated as common nodes, and an edge is common when both of its endpoints
//! are common and the mapped endpoints are connected in the other workflow
//! as well.  For workflows whose modules map unambiguously (the situation
//! the paper observes in Section 5.1.3) this *is* the maximum common
//! subgraph under the induced node correspondence.

use std::collections::BTreeSet;

use wf_matching::MappingStrategy;
use wf_model::Workflow;
use wf_repo::PreselectionStrategy;

use crate::mapping_step::map_modules;
use crate::module_cmp::ModuleComparisonScheme;

/// How the common-subgraph size is turned into a similarity value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum McsNormalization {
    /// Divide by `|V| + |E|` of the larger workflow, as in \[33\].
    #[default]
    LargerWorkflow,
    /// Divide by `|V| + |E|` of the smaller workflow (emphasises containment,
    /// useful when searching for sub-workflows).
    SmallerWorkflow,
    /// No normalization: the raw size `|Vc| + |Ec|` of the common subgraph.
    None,
}

/// Configuration of the MCS measure.
#[derive(Debug, Clone, PartialEq)]
pub struct McsConfig {
    /// The module comparison scheme used to establish the node
    /// correspondence.
    pub scheme: ModuleComparisonScheme,
    /// The module-pair preselection strategy.
    pub preselection: PreselectionStrategy,
    /// The module mapping strategy.
    pub mapping: MappingStrategy,
    /// Minimum mapped-pair similarity for the pair to count as a common
    /// node.  Label-matching studies \[33, 18\] correspond to a threshold of
    /// 1.0 with the `plm` scheme; the default of 0.5 admits near-identical
    /// labels as well.
    pub node_threshold: f64,
    /// The normalization variant.
    pub normalization: McsNormalization,
}

impl Default for McsConfig {
    fn default() -> Self {
        McsConfig {
            scheme: ModuleComparisonScheme::pll(),
            preselection: PreselectionStrategy::AllPairs,
            mapping: MappingStrategy::MaximumWeight,
            node_threshold: 0.5,
            normalization: McsNormalization::LargerWorkflow,
        }
    }
}

/// The size of a common subgraph found between two workflows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CommonSubgraph {
    /// Number of common nodes.
    pub nodes: usize,
    /// Number of common edges.
    pub edges: usize,
}

impl CommonSubgraph {
    /// The combined size `|Vc| + |Ec|`.
    pub fn size(&self) -> usize {
        self.nodes + self.edges
    }
}

/// The maximum common subgraph similarity measure.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct McsSimilarity {
    config: McsConfig,
}

impl McsSimilarity {
    /// Creates the measure with the given configuration.
    pub fn new(config: McsConfig) -> Self {
        McsSimilarity { config }
    }

    /// The measure with strict label matching, reproducing the original
    /// MCS-on-matched-labels approach of \[33\] and \[18\].
    pub fn label_matching() -> Self {
        McsSimilarity::new(McsConfig {
            scheme: ModuleComparisonScheme::plm(),
            node_threshold: 1.0,
            ..McsConfig::default()
        })
    }

    /// The configuration of this measure.
    pub fn config(&self) -> &McsConfig {
        &self.config
    }

    /// The measure name used in experiment output.
    pub fn name(&self) -> String {
        format!("MCS_{}", self.config.scheme.name())
    }

    /// Computes the common subgraph between the two workflows under the
    /// configured node correspondence.
    ///
    /// The pair is put into a canonical order first: when module similarities
    /// are tied (identical labels occurring several times, as the trivial
    /// "shim" modules of real corpora do), the maximum-weight mapping is not
    /// unique and could otherwise pick different correspondences for (a, b)
    /// and (b, a), making the measure asymmetric.
    pub fn common_subgraph(&self, a: &Workflow, b: &Workflow) -> CommonSubgraph {
        let key = |wf: &Workflow| (wf.module_count(), wf.link_count(), wf.id.clone());
        let (a, b) = if key(a) <= key(b) { (a, b) } else { (b, a) };
        let outcome = map_modules(
            a,
            b,
            &self.config.scheme,
            self.config.preselection,
            self.config.mapping,
        );
        // Common nodes: mapped pairs above the threshold.
        let common: Vec<(usize, usize)> = outcome
            .mapping
            .pairs
            .iter()
            .filter(|p| p.weight >= self.config.node_threshold)
            .map(|p| (p.left, p.right))
            .collect();
        if common.is_empty() {
            return CommonSubgraph::default();
        }
        let left_to_right: std::collections::BTreeMap<usize, usize> =
            common.iter().copied().collect();
        // Edge sets by module index.
        let edges_a: BTreeSet<(usize, usize)> = a
            .links
            .iter()
            .map(|l| (l.from.index(), l.to.index()))
            .collect();
        let edges_b: BTreeSet<(usize, usize)> = b
            .links
            .iter()
            .map(|l| (l.from.index(), l.to.index()))
            .collect();
        let edges = edges_a
            .iter()
            .filter(
                |(u, v)| match (left_to_right.get(u), left_to_right.get(v)) {
                    (Some(mu), Some(mv)) => edges_b.contains(&(*mu, *mv)),
                    _ => false,
                },
            )
            .count();
        CommonSubgraph {
            nodes: common.len(),
            edges,
        }
    }

    /// The MCS similarity of two workflows.
    pub fn similarity(&self, a: &Workflow, b: &Workflow) -> f64 {
        let common = self.common_subgraph(a, b);
        let size_a = a.module_count() + a.link_count();
        let size_b = b.module_count() + b.link_count();
        match self.config.normalization {
            McsNormalization::None => common.size() as f64,
            McsNormalization::LargerWorkflow => {
                let denom = size_a.max(size_b);
                if denom == 0 {
                    1.0
                } else {
                    common.size() as f64 / denom as f64
                }
            }
            McsNormalization::SmallerWorkflow => {
                let denom = size_a.min(size_b);
                if denom == 0 {
                    if size_a.max(size_b) == 0 {
                        1.0
                    } else {
                        0.0
                    }
                } else {
                    common.size() as f64 / denom as f64
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wf_model::{builder::WorkflowBuilder, ModuleType};

    fn chain(id: &str, labels: &[&str]) -> Workflow {
        let mut b = WorkflowBuilder::new(id);
        for l in labels {
            b = b.module(*l, ModuleType::WsdlService, |m| m);
        }
        for w in labels.windows(2) {
            b = b.link(w[0], w[1]);
        }
        b.build().unwrap()
    }

    #[test]
    fn identical_workflows_score_one() {
        let a = chain("a", &["fetch", "blast", "render"]);
        let b = chain("b", &["fetch", "blast", "render"]);
        let mcs = McsSimilarity::default();
        let common = mcs.common_subgraph(&a, &b);
        assert_eq!(common.nodes, 3);
        assert_eq!(common.edges, 2);
        assert!((mcs.similarity(&a, &b) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn disjoint_workflows_score_zero() {
        let a = chain("a", &["aaaa", "bbbb"]);
        let b = chain("b", &["xxxx", "yyyy"]);
        assert_eq!(McsSimilarity::default().similarity(&a, &b), 0.0);
    }

    #[test]
    fn shared_prefix_is_the_common_subgraph() {
        // a: fetch -> blast -> render, b: fetch -> blast -> cluster
        // Common: {fetch, blast} + the fetch->blast edge = 3.
        // Larger workflow size: 3 + 2 = 5.
        let a = chain("a", &["fetch", "blast", "render"]);
        let b = chain("b", &["fetch", "blast", "cluster"]);
        let mcs = McsSimilarity::label_matching();
        let common = mcs.common_subgraph(&a, &b);
        assert_eq!(common.nodes, 2);
        assert_eq!(common.edges, 1);
        assert!((mcs.similarity(&a, &b) - 3.0 / 5.0).abs() < 1e-9);
    }

    #[test]
    fn rewired_edges_reduce_the_common_edge_count_but_not_nodes() {
        // Same modules but reversed order of the chain: shared nodes, no
        // shared edges (directions differ).
        let a = chain("a", &["fetch", "blast", "render"]);
        let b = chain("b", &["render", "blast", "fetch"]);
        let mcs = McsSimilarity::label_matching();
        let common = mcs.common_subgraph(&a, &b);
        assert_eq!(common.nodes, 3);
        assert_eq!(common.edges, 0);
        assert!((mcs.similarity(&a, &b) - 3.0 / 5.0).abs() < 1e-9);
    }

    #[test]
    fn threshold_excludes_weakly_similar_modules() {
        let a = chain("a", &["fetch_sequence"]);
        let b = chain("b", &["fetch_structure"]);
        let lenient = McsSimilarity::new(McsConfig {
            node_threshold: 0.3,
            ..McsConfig::default()
        });
        let strict = McsSimilarity::new(McsConfig {
            node_threshold: 0.95,
            ..McsConfig::default()
        });
        assert!(lenient.similarity(&a, &b) > 0.0);
        assert_eq!(strict.similarity(&a, &b), 0.0);
    }

    #[test]
    fn smaller_workflow_normalization_detects_containment() {
        let small = chain("s", &["fetch", "blast"]);
        let large = chain("l", &["fetch", "blast", "filter", "render"]);
        let containment = McsSimilarity::new(McsConfig {
            normalization: McsNormalization::SmallerWorkflow,
            ..McsConfig::default()
        });
        let larger = McsSimilarity::default();
        // The small workflow is entirely contained in the large one.
        assert!((containment.similarity(&small, &large) - 1.0).abs() < 1e-9);
        // But relative to the larger workflow the overlap is partial.
        assert!(larger.similarity(&small, &large) < 0.5);
    }

    #[test]
    fn unnormalized_variant_returns_raw_size() {
        let a = chain("a", &["fetch", "blast", "render"]);
        let b = chain("b", &["fetch", "blast", "render"]);
        let raw = McsSimilarity::new(McsConfig {
            normalization: McsNormalization::None,
            ..McsConfig::default()
        });
        assert!((raw.similarity(&a, &b) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn empty_workflows_are_identical() {
        let a = WorkflowBuilder::new("a").build().unwrap();
        let b = WorkflowBuilder::new("b").build().unwrap();
        assert_eq!(McsSimilarity::default().similarity(&a, &b), 1.0);
    }

    #[test]
    fn similarity_is_symmetric() {
        let a = chain("a", &["fetch", "blast", "render", "export"]);
        let b = chain("b", &["fetch", "blastp", "plot"]);
        let mcs = McsSimilarity::default();
        let ab = mcs.similarity(&a, &b);
        let ba = mcs.similarity(&b, &a);
        assert!((ab - ba).abs() < 1e-9);
    }

    #[test]
    fn name_reflects_the_module_scheme() {
        assert_eq!(McsSimilarity::default().name(), "MCS_pll");
        assert_eq!(McsSimilarity::label_matching().name(), "MCS_plm");
    }
}
