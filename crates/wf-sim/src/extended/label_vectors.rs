//! Module label vectors compared by cosine similarity.
//!
//! Santos et al. \[33\] compare workflows by representing each as a vector
//! of module labels ("vectors of modules" in Table 1) and found the results
//! to be close to maximum-common-subgraph comparison.  The representation is
//! a term-frequency vector over lowercased module labels; two workflows are
//! compared by the cosine of their vectors.  Like the Module Sets measure it
//! is structure agnostic, but it matches labels *exactly* instead of mapping
//! modules by attribute similarity, so it sits between `plm`-style matching
//! and the bag-of-words annotation measure.

use std::collections::BTreeMap;

use wf_model::Workflow;

/// The label-vector cosine similarity of \[33\].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LabelVectorSimilarity {
    /// When true, labels are additionally split into whitespace/underscore
    /// tokens so that e.g. `run_blast` and `blast_run` overlap.
    pub tokenize_labels: bool,
}

impl LabelVectorSimilarity {
    /// The plain variant: one vector dimension per distinct lowercased
    /// label.
    pub fn new() -> Self {
        LabelVectorSimilarity {
            tokenize_labels: false,
        }
    }

    /// The tokenizing variant: one dimension per label token.
    pub fn tokenized() -> Self {
        LabelVectorSimilarity {
            tokenize_labels: true,
        }
    }

    /// The measure name used in experiment output.
    pub fn name(&self) -> &'static str {
        if self.tokenize_labels {
            "LV_tokens"
        } else {
            "LV"
        }
    }

    /// The term-frequency vector of one workflow.
    pub fn vector(&self, wf: &Workflow) -> BTreeMap<String, f64> {
        let mut vector: BTreeMap<String, f64> = BTreeMap::new();
        for module in &wf.modules {
            let label = module.label.to_lowercase();
            if self.tokenize_labels {
                for token in wf_text::tokenize(&label) {
                    *vector.entry(token).or_insert(0.0) += 1.0;
                }
            } else {
                *vector.entry(label).or_insert(0.0) += 1.0;
            }
        }
        vector
    }

    /// The cosine similarity of two workflows' label vectors, or `None` when
    /// either workflow has no modules (and therefore an all-zero vector).
    pub fn similarity_opt(&self, a: &Workflow, b: &Workflow) -> Option<f64> {
        let va = self.vector(a);
        let vb = self.vector(b);
        cosine(&va, &vb)
    }

    /// The cosine similarity; workflows without modules score 0 against
    /// everything and 1 against each other (both empty).
    pub fn similarity(&self, a: &Workflow, b: &Workflow) -> f64 {
        if a.module_count() == 0 && b.module_count() == 0 {
            return 1.0;
        }
        self.similarity_opt(a, b).unwrap_or(0.0)
    }
}

/// Cosine similarity of two sparse vectors; `None` when either is zero.
fn cosine(a: &BTreeMap<String, f64>, b: &BTreeMap<String, f64>) -> Option<f64> {
    let norm_a: f64 = a.values().map(|v| v * v).sum::<f64>().sqrt();
    let norm_b: f64 = b.values().map(|v| v * v).sum::<f64>().sqrt();
    if norm_a == 0.0 || norm_b == 0.0 {
        return None;
    }
    let dot: f64 = a
        .iter()
        .filter_map(|(k, va)| b.get(k).map(|vb| va * vb))
        .sum();
    Some((dot / (norm_a * norm_b)).clamp(0.0, 1.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use wf_model::{builder::WorkflowBuilder, ModuleType};

    fn chain(id: &str, labels: &[&str]) -> Workflow {
        let mut b = WorkflowBuilder::new(id);
        for l in labels {
            b = b.module(*l, ModuleType::WsdlService, |m| m);
        }
        for w in labels.windows(2) {
            b = b.link(w[0], w[1]);
        }
        b.build().unwrap()
    }

    #[test]
    fn identical_label_sets_score_one() {
        let a = chain("a", &["Fetch", "Blast", "Render"]);
        let b = chain("b", &["fetch", "blast", "render"]);
        let lv = LabelVectorSimilarity::new();
        assert!(
            (lv.similarity(&a, &b) - 1.0).abs() < 1e-9,
            "case-insensitive"
        );
    }

    #[test]
    fn disjoint_label_sets_score_zero() {
        let a = chain("a", &["fetch", "blast"]);
        let b = chain("b", &["parse", "cluster"]);
        assert_eq!(LabelVectorSimilarity::new().similarity(&a, &b), 0.0);
    }

    #[test]
    fn partial_overlap_matches_hand_computed_cosine() {
        // a = {fetch, blast, render}, b = {fetch, blast, plot}
        // dot = 2, |a| = |b| = sqrt(3) -> cosine = 2/3.
        let a = chain("a", &["fetch", "blast", "render"]);
        let b = chain("b", &["fetch", "blast", "plot"]);
        let s = LabelVectorSimilarity::new().similarity(&a, &b);
        assert!((s - 2.0 / 3.0).abs() < 1e-9, "got {s}");
    }

    #[test]
    fn repeated_labels_increase_the_term_frequency() {
        let mut builder = WorkflowBuilder::new("a");
        for i in 0..3 {
            builder = builder.module(format!("split_{i}"), ModuleType::LocalOperation, |m| m);
        }
        let a = builder.build().unwrap();
        let lv = LabelVectorSimilarity::tokenized();
        let v = lv.vector(&a);
        assert_eq!(v.get("split"), Some(&3.0));
    }

    #[test]
    fn tokenized_variant_overlaps_reordered_label_words() {
        let a = chain("a", &["run_blast"]);
        let b = chain("b", &["blast_run"]);
        assert_eq!(LabelVectorSimilarity::new().similarity(&a, &b), 0.0);
        assert!((LabelVectorSimilarity::tokenized().similarity(&a, &b) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn structure_is_ignored() {
        let a = chain("a", &["fetch", "blast", "render"]);
        let mut b = chain("b", &["fetch", "blast", "render"]);
        b.links.clear();
        assert!((LabelVectorSimilarity::new().similarity(&a, &b) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_workflows_are_handled() {
        let empty = WorkflowBuilder::new("e").build().unwrap();
        let other = chain("o", &["fetch"]);
        let lv = LabelVectorSimilarity::new();
        assert_eq!(lv.similarity_opt(&empty, &other), None);
        assert_eq!(lv.similarity(&empty, &other), 0.0);
        assert_eq!(lv.similarity(&empty, &empty), 1.0);
    }

    #[test]
    fn similarity_is_symmetric_and_bounded() {
        let a = chain("a", &["fetch", "blast", "render"]);
        let b = chain("b", &["fetch", "plot"]);
        let lv = LabelVectorSimilarity::new();
        let ab = lv.similarity(&a, &b);
        let ba = lv.similarity(&b, &a);
        assert!((ab - ba).abs() < 1e-12);
        assert!((0.0..=1.0).contains(&ab));
    }

    #[test]
    fn names_distinguish_variants() {
        assert_eq!(LabelVectorSimilarity::new().name(), "LV");
        assert_eq!(LabelVectorSimilarity::tokenized().name(), "LV_tokens");
    }
}
