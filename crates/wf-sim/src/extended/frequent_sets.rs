//! Frequent module / tag set similarity (Stoyanovich et al. \[36\]).
//!
//! Table 1 lists \[36\] as comparing workflows by *frequent tag sets* and
//! *frequent module sets*: itemsets mined from the repository as a whole
//! (see [`wf_repo::mining`]).  A workflow is represented by the set of
//! frequent itemsets it contains; two workflows are compared by the Jaccard
//! index of those representations.  Workflows containing no frequent itemset
//! carry no signal for this measure and make the pair inapplicable, exactly
//! like untagged workflows do for the Bag of Tags measure.

use std::collections::BTreeSet;

use wf_model::Workflow;
use wf_repo::{mine_repository, FrequentItemsets, ItemSource, MiningConfig, Repository};

/// The frequent-itemset similarity measure.
///
/// Unlike the other measures this one carries repository-level state: the
/// frequent itemsets mined from the corpus the compared workflows live in.
#[derive(Debug, Clone, PartialEq)]
pub struct FrequentSetSimilarity {
    itemsets: FrequentItemsets,
}

impl FrequentSetSimilarity {
    /// Creates the measure from already mined itemsets.
    pub fn new(itemsets: FrequentItemsets) -> Self {
        FrequentSetSimilarity { itemsets }
    }

    /// Mines the repository and builds the measure in one step.
    pub fn from_repository(repo: &Repository, source: ItemSource, config: &MiningConfig) -> Self {
        FrequentSetSimilarity::new(mine_repository(repo, source, config))
    }

    /// The frequent module set variant of \[36\] with default mining
    /// parameters.
    pub fn frequent_module_sets(repo: &Repository) -> Self {
        FrequentSetSimilarity::from_repository(
            repo,
            ItemSource::ModuleLabels,
            &MiningConfig::default(),
        )
    }

    /// The frequent tag set variant of \[36\] with default mining
    /// parameters.
    pub fn frequent_tag_sets(repo: &Repository) -> Self {
        FrequentSetSimilarity::from_repository(repo, ItemSource::Tags, &MiningConfig::default())
    }

    /// The mined itemsets backing this measure.
    pub fn itemsets(&self) -> &FrequentItemsets {
        &self.itemsets
    }

    /// The measure name used in experiment output.
    pub fn name(&self) -> String {
        match self.itemsets.source() {
            ItemSource::Tags => "FTS".to_string(),
            ItemSource::ModuleLabels | ItemSource::ModuleSignatures => "FMS".to_string(),
        }
    }

    /// The feature representation of one workflow: the indices of the
    /// frequent itemsets it contains.
    pub fn features(&self, wf: &Workflow) -> BTreeSet<usize> {
        self.itemsets.contained_in_workflow(wf)
    }

    /// The Jaccard similarity of the two workflows' frequent-itemset
    /// features, or `None` when neither workflow contains any frequent
    /// itemset.
    pub fn similarity_opt(&self, a: &Workflow, b: &Workflow) -> Option<f64> {
        let fa = self.features(a);
        let fb = self.features(b);
        if fa.is_empty() && fb.is_empty() {
            return None;
        }
        let intersection = fa.intersection(&fb).count();
        let union = fa.union(&fb).count();
        Some(intersection as f64 / union as f64)
    }

    /// The Jaccard similarity; inapplicable pairs score 0.
    pub fn similarity(&self, a: &Workflow, b: &Workflow) -> f64 {
        self.similarity_opt(a, b).unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wf_model::{builder::WorkflowBuilder, ModuleType};

    fn wf(id: &str, labels: &[&str], tags: &[&str]) -> Workflow {
        let mut b = WorkflowBuilder::new(id);
        for l in labels {
            b = b.module(*l, ModuleType::WsdlService, |m| m);
        }
        for w in labels.windows(2) {
            b = b.link(w[0], w[1]);
        }
        for t in tags {
            b = b.tag(*t);
        }
        b.build().unwrap()
    }

    fn toy_repo() -> Repository {
        Repository::from_workflows(vec![
            wf("w1", &["fetch", "blast", "render"], &["alignment", "blast"]),
            wf("w2", &["fetch", "blast", "plot"], &["alignment", "blast"]),
            wf("w3", &["fetch", "blast"], &["alignment"]),
            wf("w4", &["parse", "cluster"], &["clustering"]),
            wf("w5", &["parse", "cluster", "plot"], &["clustering"]),
        ])
    }

    #[test]
    fn workflows_from_the_same_group_are_more_similar() {
        let repo = toy_repo();
        let fms = FrequentSetSimilarity::frequent_module_sets(&repo);
        let w1 = repo.get_str("w1").unwrap();
        let w2 = repo.get_str("w2").unwrap();
        let w4 = repo.get_str("w4").unwrap();
        let same_group = fms.similarity(w1, w2);
        let cross_group = fms.similarity(w1, w4);
        assert!(same_group > cross_group);
        assert_eq!(
            cross_group, 0.0,
            "no shared frequent itemsets across groups"
        );
    }

    #[test]
    fn identical_workflows_score_one() {
        let repo = toy_repo();
        let fms = FrequentSetSimilarity::frequent_module_sets(&repo);
        let w1 = repo.get_str("w1").unwrap();
        assert!((fms.similarity(w1, w1) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn tag_variant_uses_tags() {
        let repo = toy_repo();
        let fts = FrequentSetSimilarity::frequent_tag_sets(&repo);
        assert_eq!(fts.name(), "FTS");
        let w1 = repo.get_str("w1").unwrap();
        let w3 = repo.get_str("w3").unwrap();
        let w4 = repo.get_str("w4").unwrap();
        assert!(fts.similarity(w1, w3) > 0.0, "both carry the alignment tag");
        assert_eq!(fts.similarity(w1, w4), 0.0);
    }

    #[test]
    fn workflows_without_frequent_itemsets_make_the_pair_inapplicable() {
        let repo = toy_repo();
        let fms = FrequentSetSimilarity::frequent_module_sets(&repo);
        let stranger_a = wf("x1", &["exotic_step"], &[]);
        let stranger_b = wf("x2", &["another_exotic_step"], &[]);
        assert_eq!(fms.similarity_opt(&stranger_a, &stranger_b), None);
        assert_eq!(fms.similarity(&stranger_a, &stranger_b), 0.0);
        // One-sided: the known workflow contains frequent itemsets, the
        // stranger none -> similarity 0, but the pair is applicable.
        let w1 = repo.get_str("w1").unwrap();
        assert_eq!(fms.similarity_opt(w1, &stranger_a), Some(0.0));
    }

    #[test]
    fn features_are_monotone_under_containment() {
        // A workflow containing a superset of modules contains a superset of
        // frequent itemsets.
        let repo = toy_repo();
        let fms = FrequentSetSimilarity::frequent_module_sets(&repo);
        let small = wf("s", &["fetch"], &[]);
        let large = wf("l", &["fetch", "blast", "plot"], &[]);
        let fs = fms.features(&small);
        let fl = fms.features(&large);
        assert!(fs.is_subset(&fl));
        assert!(fl.len() > fs.len());
    }

    #[test]
    fn similarity_is_symmetric_and_bounded() {
        let repo = toy_repo();
        let fms = FrequentSetSimilarity::frequent_module_sets(&repo);
        let w1 = repo.get_str("w1").unwrap();
        let w5 = repo.get_str("w5").unwrap();
        let ab = fms.similarity(w1, w5);
        let ba = fms.similarity(w5, w1);
        assert!((ab - ba).abs() < 1e-12);
        assert!((0.0..=1.0).contains(&ab));
    }

    #[test]
    fn measure_name_for_module_sources_is_fms() {
        let repo = toy_repo();
        let fms = FrequentSetSimilarity::frequent_module_sets(&repo);
        assert_eq!(fms.name(), "FMS");
    }
}
