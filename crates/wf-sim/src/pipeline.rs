//! The end-to-end similarity pipeline.
//!
//! [`WorkflowSimilarity`] wires the configured steps together exactly in the
//! order of Fig. 2 of the paper: preprocessing → decomposition → module
//! comparison → module mapping → topological comparison → normalization.
//! Annotation measures bypass the structural steps.

use std::borrow::Cow;

use wf_model::Workflow;
use wf_repo::{importance_projection, ImportanceScorer, UsageStatistics};

use crate::annotation::{bag_of_tags_similarity, bag_of_words_similarity};
use crate::config::{MeasureKind, Preprocessing, SimilarityConfig};
use crate::decompose::path_set;
use crate::mapping_step::map_modules;
use crate::measures::graph_edit::{graph_edit_similarity, GraphEditDetails};
use crate::measures::module_sets::module_sets_similarity;
use crate::measures::path_sets::path_sets_similarity;

/// A detailed account of one workflow comparison, used by the experiment
/// harness to report pair counts, timeouts and projected sizes alongside the
/// similarity score.
#[derive(Debug, Clone)]
pub struct SimilarityReport {
    /// The algorithm name (paper notation).
    pub algorithm: String,
    /// The similarity score, if the measure was applicable to the pair
    /// (Bag of Tags returns `None` on untagged workflows).
    pub score: Option<f64>,
    /// Number of module pairs actually compared (0 for annotation measures).
    pub compared_pairs: usize,
    /// Number of module pairs in the full Cartesian product after
    /// preprocessing (0 for annotation measures).
    pub total_pairs: usize,
    /// Module counts of the two workflows after preprocessing.
    pub effective_sizes: (usize, usize),
    /// GED details when the Graph Edit Distance measure was used.
    pub graph_edit: Option<GraphEditDetails>,
}

/// One fully configured workflow similarity measure.
#[derive(Debug, Clone)]
pub struct WorkflowSimilarity {
    config: SimilarityConfig,
    scorer: ImportanceScorer,
}

impl WorkflowSimilarity {
    /// Creates a measure from a configuration.  The importance scorer for
    /// `ip` preprocessing is built from the configuration's
    /// [`wf_repo::ImportanceConfig`] without repository usage statistics.
    pub fn new(config: SimilarityConfig) -> Self {
        let scorer = ImportanceScorer::new(config.importance.clone());
        WorkflowSimilarity { config, scorer }
    }

    /// Creates a measure whose importance scorer can use repository usage
    /// statistics (the frequency-based scoring extension).
    pub fn with_usage(config: SimilarityConfig, usage: UsageStatistics) -> Self {
        let scorer = ImportanceScorer::with_usage(config.importance.clone(), usage);
        WorkflowSimilarity { config, scorer }
    }

    /// The configuration of this measure.
    pub fn config(&self) -> &SimilarityConfig {
        &self.config
    }

    /// The algorithm name in the paper's notation (e.g. `PS_ip_te_pll`).
    pub fn name(&self) -> String {
        self.config.name()
    }

    /// Applies the configured preprocessing to one workflow.
    pub fn preprocess<'w>(&self, wf: &'w Workflow) -> Cow<'w, Workflow> {
        match self.config.preprocessing {
            Preprocessing::None => Cow::Borrowed(wf),
            Preprocessing::ImportanceProjection => {
                Cow::Owned(importance_projection(wf, &self.scorer))
            }
        }
    }

    /// The similarity of two workflows, or `None` when the measure is not
    /// applicable to the pair (Bag of Tags on untagged workflows, Bag of
    /// Words on completely unannotated ones).
    pub fn similarity_opt(&self, a: &Workflow, b: &Workflow) -> Option<f64> {
        self.report(a, b).score
    }

    /// The similarity of two workflows; inapplicable pairs score 0.
    pub fn similarity(&self, a: &Workflow, b: &Workflow) -> f64 {
        self.similarity_opt(a, b).unwrap_or(0.0)
    }

    /// Runs the full pipeline and returns the detailed report.
    pub fn report(&self, a: &Workflow, b: &Workflow) -> SimilarityReport {
        match self.config.measure {
            MeasureKind::BagOfWords => SimilarityReport {
                algorithm: self.name(),
                score: bag_of_words_similarity(a, b),
                compared_pairs: 0,
                total_pairs: 0,
                effective_sizes: (a.module_count(), b.module_count()),
                graph_edit: None,
            },
            MeasureKind::BagOfTags => SimilarityReport {
                algorithm: self.name(),
                score: bag_of_tags_similarity(a, b),
                compared_pairs: 0,
                total_pairs: 0,
                effective_sizes: (a.module_count(), b.module_count()),
                graph_edit: None,
            },
            MeasureKind::ModuleSets | MeasureKind::PathSets | MeasureKind::GraphEdit => {
                self.structural_report(a, b)
            }
        }
    }

    fn structural_report(&self, a: &Workflow, b: &Workflow) -> SimilarityReport {
        let mut pa = self.preprocess(a);
        let mut pb = self.preprocess(b);
        // The Graph Edit Distance search processes the first graph's nodes in
        // a fixed order and derives node labels from the (possibly tied)
        // maximum-weight mapping, both of which are direction dependent.  To
        // make simGE a symmetric measure the pair is put into a canonical
        // order first; MS and PS are value-symmetric by construction and are
        // left untouched.
        let mut swapped = false;
        if self.config.measure == MeasureKind::GraphEdit {
            let key = |wf: &Workflow| (wf.module_count(), wf.link_count(), wf.id.clone());
            if key(&pa) > key(&pb) {
                std::mem::swap(&mut pa, &mut pb);
                swapped = true;
            }
        }
        let outcome = map_modules(
            &pa,
            &pb,
            &self.config.module_scheme,
            self.config.preselection,
            self.config.mapping,
        );
        let mut graph_edit = None;
        let score = match self.config.measure {
            MeasureKind::ModuleSets => Some(module_sets_similarity(
                &pa,
                &pb,
                &outcome.mapping,
                self.config.normalization,
            )),
            MeasureKind::PathSets => {
                let paths_a = path_set(&pa, self.config.max_paths);
                let paths_b = path_set(&pb, self.config.max_paths);
                Some(path_sets_similarity(
                    &pa,
                    &pb,
                    &outcome.matrix,
                    &paths_a,
                    &paths_b,
                    self.config.normalization,
                ))
            }
            MeasureKind::GraphEdit => {
                let details = graph_edit_similarity(
                    &pa,
                    &pb,
                    &outcome.mapping,
                    &self.config.ged_budget,
                    self.config.normalization,
                );
                let s = details.similarity;
                graph_edit = Some(details);
                Some(s)
            }
            _ => unreachable!("annotation measures handled by report()"),
        };
        let effective_sizes = if swapped {
            (pb.module_count(), pa.module_count())
        } else {
            (pa.module_count(), pb.module_count())
        };
        SimilarityReport {
            algorithm: self.name(),
            score,
            compared_pairs: outcome.compared_pairs,
            total_pairs: outcome.total_pairs,
            effective_sizes,
            graph_edit,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimilarityConfig;
    use wf_model::{builder::WorkflowBuilder, ModuleType};

    fn kegg_like(id: &str, extra_shim: bool) -> Workflow {
        let mut b = WorkflowBuilder::new(id)
            .title("KEGG pathway analysis")
            .description("Retrieves a KEGG pathway and extracts its genes")
            .tag("kegg")
            .tag("pathway")
            .module("get_pathway", ModuleType::WsdlService, |m| {
                m.service("kegg.jp", "get_pathway_by_id", "http://kegg.jp/ws")
            })
            .module("extract_genes", ModuleType::BeanshellScript, |m| {
                m.script("return pathway.genes;")
            })
            .link("get_pathway", "extract_genes");
        if extra_shim {
            b = b
                .module("split_string", ModuleType::LocalOperation, |m| m)
                .module("render_output", ModuleType::WsdlService, |m| {
                    m.service("kegg.jp", "colour_pathway", "http://kegg.jp/ws2")
                })
                .link("extract_genes", "split_string")
                .link("split_string", "render_output");
        }
        b.build().unwrap()
    }

    fn weather(id: &str) -> Workflow {
        WorkflowBuilder::new(id)
            .title("Weather station aggregation")
            .tag("climate")
            .module("fetch_observations", ModuleType::RestService, |m| {
                m.service("noaa.gov", "observations", "http://noaa.gov/api")
            })
            .module("aggregate_daily", ModuleType::RShell, |m| {
                m.script("aggregate(x)")
            })
            .module("plot_anomalies", ModuleType::RShell, |m| {
                m.script("plot(x)")
            })
            .link("fetch_observations", "aggregate_daily")
            .link("fetch_observations", "plot_anomalies")
            .build()
            .unwrap()
    }

    #[test]
    fn every_measure_scores_identical_workflows_as_maximally_similar() {
        let a = kegg_like("a", true);
        let b = kegg_like("b", true);
        for config in [
            SimilarityConfig::module_sets_default(),
            SimilarityConfig::path_sets_default(),
            SimilarityConfig::graph_edit_default(),
            SimilarityConfig::bag_of_words(),
            SimilarityConfig::bag_of_tags(),
            SimilarityConfig::best_module_sets(),
            SimilarityConfig::best_path_sets(),
        ] {
            let name = config.name();
            let measure = WorkflowSimilarity::new(config);
            let s = measure.similarity_opt(&a, &b);
            assert_eq!(s, Some(1.0), "{name} on identical workflows");
        }
    }

    #[test]
    fn related_workflows_score_higher_than_unrelated_ones() {
        let query = kegg_like("q", false);
        let related = kegg_like("r", true);
        let unrelated = weather("w");
        for config in [
            SimilarityConfig::module_sets_default(),
            SimilarityConfig::path_sets_default(),
            SimilarityConfig::graph_edit_default(),
            SimilarityConfig::bag_of_words(),
            SimilarityConfig::best_module_sets(),
        ] {
            let name = config.name();
            let measure = WorkflowSimilarity::new(config);
            let close = measure.similarity(&query, &related);
            let far = measure.similarity(&query, &unrelated);
            assert!(
                close > far,
                "{name}: related {close} must beat unrelated {far}"
            );
        }
    }

    #[test]
    fn importance_projection_shrinks_the_effective_sizes() {
        let a = kegg_like("a", true);
        let b = kegg_like("b", true);
        let np = WorkflowSimilarity::new(SimilarityConfig::module_sets_default());
        let ip = WorkflowSimilarity::new(
            SimilarityConfig::module_sets_default()
                .with_preprocessing(Preprocessing::ImportanceProjection),
        );
        let report_np = np.report(&a, &b);
        let report_ip = ip.report(&a, &b);
        assert_eq!(report_np.effective_sizes, (4, 4));
        assert_eq!(
            report_ip.effective_sizes,
            (3, 3),
            "the shim module is projected away"
        );
        assert!(report_ip.compared_pairs < report_np.compared_pairs);
    }

    #[test]
    fn preselection_reduces_compared_pairs() {
        let a = kegg_like("a", true);
        let b = kegg_like("b", true);
        let ta = WorkflowSimilarity::new(SimilarityConfig::module_sets_default());
        let te = WorkflowSimilarity::new(
            SimilarityConfig::module_sets_default()
                .with_preselection(wf_repo::PreselectionStrategy::TypeEquivalence),
        );
        assert!(te.report(&a, &b).compared_pairs < ta.report(&a, &b).compared_pairs);
    }

    #[test]
    fn bag_of_tags_is_inapplicable_without_tags() {
        let mut a = kegg_like("a", false);
        let b = kegg_like("b", false);
        a.annotations.tags.clear();
        let bt = WorkflowSimilarity::new(SimilarityConfig::bag_of_tags());
        assert_eq!(bt.similarity_opt(&a, &b), None);
        assert_eq!(bt.similarity(&a, &b), 0.0);
    }

    #[test]
    fn graph_edit_report_carries_details() {
        let a = kegg_like("a", true);
        let b = kegg_like("b", false);
        let ge = WorkflowSimilarity::new(SimilarityConfig::graph_edit_default());
        let report = ge.report(&a, &b);
        let details = report.graph_edit.expect("GE reports carry details");
        assert!(details.cost > 0.0);
        assert!(report.score.unwrap() < 1.0);
        assert_eq!(report.algorithm, "GE_np_ta_pw0");
    }

    #[test]
    fn names_are_propagated() {
        let measure = WorkflowSimilarity::new(SimilarityConfig::best_path_sets());
        assert_eq!(measure.name(), "PS_ip_te_pll");
        assert_eq!(measure.config().measure, MeasureKind::PathSets);
    }
}
