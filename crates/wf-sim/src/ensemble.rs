//! Ensembles of similarity measures.
//!
//! Section 5.1.6 of the paper: "the rankings produced by the similarity
//! algorithms can be combined into a single ranking.  We tested such
//! ensembles by simply taking the average of the scores of selected
//! individual ranking algorithms", finding the combination of `BW` with
//! `MS_ip_te_pll` or `PS_ip_te_pll` to improve significantly over any single
//! algorithm.

use wf_model::Workflow;

use crate::config::SimilarityConfig;
use crate::pipeline::WorkflowSimilarity;

/// An ensemble that combines the scores of its member measures.
///
/// The paper uses the plain average of the member scores; weighted averages
/// are provided as the obvious first step towards the "advanced methods such
/// as boosting or stacking" the paper names as future work.  Members that
/// are inapplicable to a given pair (e.g. Bag of Tags on untagged workflows)
/// are skipped for that pair; if no member is applicable the ensemble itself
/// is inapplicable.
#[derive(Debug, Clone)]
pub struct Ensemble {
    members: Vec<WorkflowSimilarity>,
    weights: Vec<f64>,
}

impl Ensemble {
    /// Creates an equal-weight ensemble from pre-built measures.
    pub fn new(members: Vec<WorkflowSimilarity>) -> Self {
        let weights = vec![1.0; members.len()];
        Ensemble { members, weights }
    }

    /// Creates an equal-weight ensemble directly from configurations.
    pub fn from_configs(configs: Vec<SimilarityConfig>) -> Self {
        Ensemble::new(configs.into_iter().map(WorkflowSimilarity::new).collect())
    }

    /// Creates a weighted ensemble.  Non-positive weights are clamped to a
    /// tiny positive value so that every member keeps a (negligible) vote
    /// and the weight vector length always matches the member count.
    ///
    /// # Panics
    /// Panics if `weights.len() != members.len()`.
    pub fn weighted(members: Vec<WorkflowSimilarity>, weights: Vec<f64>) -> Self {
        assert_eq!(
            members.len(),
            weights.len(),
            "one weight per ensemble member"
        );
        let weights = weights.into_iter().map(|w| w.max(1e-9)).collect();
        Ensemble { members, weights }
    }

    /// The best-performing ensemble of the paper: `BW + MS_ip_te_pll`.
    pub fn bw_plus_module_sets() -> Self {
        Ensemble::from_configs(vec![
            SimilarityConfig::bag_of_words(),
            SimilarityConfig::best_module_sets(),
        ])
    }

    /// The other top ensemble of the paper: `BW + PS_ip_te_pll`.
    pub fn bw_plus_path_sets() -> Self {
        Ensemble::from_configs(vec![
            SimilarityConfig::bag_of_words(),
            SimilarityConfig::best_path_sets(),
        ])
    }

    /// The member measures.
    pub fn members(&self) -> &[WorkflowSimilarity] {
        &self.members
    }

    /// The ensemble name, e.g. `BW+MS_ip_te_pll`.
    pub fn name(&self) -> String {
        self.members
            .iter()
            .map(|m| m.name())
            .collect::<Vec<_>>()
            .join("+")
    }

    /// The weighted mean of the applicable members' scores, or `None` if no
    /// member is applicable to the pair.
    pub fn similarity_opt(&self, a: &Workflow, b: &Workflow) -> Option<f64> {
        let mut weight_sum = 0.0;
        let mut score_sum = 0.0;
        for (member, weight) in self.members.iter().zip(&self.weights) {
            if let Some(score) = member.similarity_opt(a, b) {
                weight_sum += weight;
                score_sum += weight * score;
            }
        }
        if weight_sum == 0.0 {
            None
        } else {
            Some(score_sum / weight_sum)
        }
    }

    /// Like [`Ensemble::similarity_opt`], with inapplicable pairs scoring 0.
    pub fn similarity(&self, a: &Workflow, b: &Workflow) -> f64 {
        self.similarity_opt(a, b).unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wf_model::{builder::WorkflowBuilder, ModuleType, Workflow};

    fn annotated(id: &str, title: &str, module: &str) -> Workflow {
        WorkflowBuilder::new(id)
            .title(title)
            .tag("bio")
            .module(module, ModuleType::WsdlService, |m| m)
            .build()
            .unwrap()
    }

    #[test]
    fn ensemble_name_joins_member_names() {
        assert_eq!(Ensemble::bw_plus_module_sets().name(), "BW+MS_ip_te_pll");
        assert_eq!(Ensemble::bw_plus_path_sets().name(), "BW+PS_ip_te_pll");
        assert_eq!(Ensemble::bw_plus_module_sets().members().len(), 2);
    }

    #[test]
    fn ensemble_averages_member_scores() {
        let a = annotated("a", "blast protein search", "run_blast");
        let b = annotated("b", "blast protein search", "totally_different_module");
        let ensemble = Ensemble::from_configs(vec![
            SimilarityConfig::bag_of_words(),
            SimilarityConfig::module_sets_default(),
        ]);
        let bw = WorkflowSimilarity::new(SimilarityConfig::bag_of_words()).similarity(&a, &b);
        let ms =
            WorkflowSimilarity::new(SimilarityConfig::module_sets_default()).similarity(&a, &b);
        let combined = ensemble.similarity(&a, &b);
        assert!((combined - (bw + ms) / 2.0).abs() < 1e-9);
        assert!(
            combined < bw,
            "the structural member pulls the average down"
        );
    }

    #[test]
    fn inapplicable_members_are_skipped() {
        // Workflows without tags: a BT member contributes nothing but the
        // ensemble still works through its BW member.
        let mut a = annotated("a", "blast search", "m1");
        let mut b = annotated("b", "blast search", "m2");
        a.annotations.tags.clear();
        b.annotations.tags.clear();
        let ensemble = Ensemble::from_configs(vec![
            SimilarityConfig::bag_of_tags(),
            SimilarityConfig::bag_of_words(),
        ]);
        assert_eq!(ensemble.similarity_opt(&a, &b), Some(1.0));
    }

    #[test]
    fn ensemble_with_no_applicable_member_is_inapplicable() {
        let a = WorkflowBuilder::new("a").build().unwrap();
        let b = WorkflowBuilder::new("b").build().unwrap();
        let ensemble = Ensemble::from_configs(vec![
            SimilarityConfig::bag_of_tags(),
            SimilarityConfig::bag_of_words(),
        ]);
        assert_eq!(ensemble.similarity_opt(&a, &b), None);
        assert_eq!(ensemble.similarity(&a, &b), 0.0);
    }

    #[test]
    fn weighted_ensemble_interpolates_between_its_members() {
        let a = annotated("a", "blast protein search", "run_blast");
        let b = annotated("b", "blast protein search", "totally_different_module");
        let bw = WorkflowSimilarity::new(SimilarityConfig::bag_of_words());
        let ms = WorkflowSimilarity::new(SimilarityConfig::module_sets_default());
        let bw_score = bw.similarity(&a, &b);
        let ms_score = ms.similarity(&a, &b);
        // Heavily weight BW: the ensemble score must move towards BW's.
        let heavy_bw = Ensemble::weighted(vec![bw.clone(), ms.clone()], vec![9.0, 1.0]);
        let balanced = Ensemble::new(vec![bw, ms]);
        let heavy = heavy_bw.similarity(&a, &b);
        let even = balanced.similarity(&a, &b);
        assert!((heavy - (0.9 * bw_score + 0.1 * ms_score)).abs() < 1e-9);
        assert!((even - (bw_score + ms_score) / 2.0).abs() < 1e-9);
        assert!((heavy - bw_score).abs() < (even - bw_score).abs());
    }

    #[test]
    #[should_panic(expected = "one weight per ensemble member")]
    fn weighted_ensemble_rejects_mismatched_weight_vector() {
        let bw = WorkflowSimilarity::new(SimilarityConfig::bag_of_words());
        let _ = Ensemble::weighted(vec![bw], vec![1.0, 2.0]);
    }

    #[test]
    fn identical_workflows_score_one_in_the_papers_best_ensembles() {
        let a = annotated("a", "kegg pathway analysis", "get_pathway");
        let b = annotated("b", "kegg pathway analysis", "get_pathway");
        for ensemble in [
            Ensemble::bw_plus_module_sets(),
            Ensemble::bw_plus_path_sets(),
        ] {
            assert_eq!(
                ensemble.similarity_opt(&a, &b),
                Some(1.0),
                "{}",
                ensemble.name()
            );
        }
    }
}
