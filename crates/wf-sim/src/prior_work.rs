//! Table 1 of the paper, as code: prior approaches expressed as
//! configurations of this framework.
//!
//! The paper's central methodological point is that every previously
//! published scientific-workflow similarity measure can be reconstructed by
//! choosing a module comparison method, a mapping strategy, a topological
//! comparison and a normalization.  This module pins each row of Table 1 to
//! a concrete [`SimilarityConfig`] (or notes why it is only approximated),
//! so the historical comparisons of Section 3 can be rerun directly.

use wf_matching::MappingStrategy;
use wf_repo::PreselectionStrategy;

use crate::config::{MeasureKind, Normalization, Preprocessing, SimilarityConfig};
use crate::module_cmp::ModuleComparisonScheme;

/// One row of Table 1: a prior approach and its reconstruction.
#[derive(Debug, Clone)]
pub struct PriorApproach {
    /// The paper's citation key, e.g. "[34] Silva et al.".
    pub reference: &'static str,
    /// Short description of the original approach.
    pub description: &'static str,
    /// The reconstruction inside this framework.
    pub config: SimilarityConfig,
    /// Caveats where the reconstruction is approximate.
    pub notes: &'static str,
}

/// All reconstructable rows of Table 1.
pub fn prior_approaches() -> Vec<PriorApproach> {
    vec![
        PriorApproach {
            reference: "[11] Costa et al.",
            description: "Athena: bag-of-words comparison of titles and descriptions",
            config: SimilarityConfig::bag_of_words(),
            notes: "exact reconstruction (BW)",
        },
        PriorApproach {
            reference: "[36] Stoyanovich et al.",
            description: "tag-based workflow comparison",
            config: SimilarityConfig::bag_of_tags(),
            notes: "the frequent-tag-set / frequent-module-set mining of the original is \
                    approximated by the plain bag-of-tags measure, as in the paper",
        },
        PriorApproach {
            reference: "[34] Silva et al.",
            description: "multiple module attributes, greedy mapping, sets of modules, \
                          normalized by the smaller workflow",
            config: SimilarityConfig::new(
                MeasureKind::ModuleSets,
                ModuleComparisonScheme::pw3(),
                PreselectionStrategy::AllPairs,
                Preprocessing::None,
            )
            .with_mapping(MappingStrategy::Greedy),
            notes: "normalization uses the framework's Jaccard variant instead of |V| of the \
                    smaller workflow",
        },
        PriorApproach {
            reference: "[4] Bergmann & Gil",
            description: "label edit distance, maximum-weight mapping, sets of modules and edges",
            config: SimilarityConfig::new(
                MeasureKind::ModuleSets,
                ModuleComparisonScheme::pll(),
                PreselectionStrategy::AllPairs,
                Preprocessing::None,
            ),
            notes: "the semantic-annotation variant of the original needs ontology annotations \
                    that public repositories do not carry (see paper Section 2)",
        },
        PriorApproach {
            reference: "[33] Santos et al.",
            description: "label matching, module label vectors / maximum common subgraph",
            config: SimilarityConfig::new(
                MeasureKind::PathSets,
                ModuleComparisonScheme::plm(),
                PreselectionStrategy::AllPairs,
                Preprocessing::None,
            ),
            notes: "the MCS comparison is approximated by Path Sets, the relaxation the paper \
                    itself adopts (Section 2.1.3)",
        },
        PriorApproach {
            reference: "[18] Goderis et al.",
            description: "label matching, maximum common subgraph, size normalization",
            config: SimilarityConfig::new(
                MeasureKind::PathSets,
                ModuleComparisonScheme::plm(),
                PreselectionStrategy::AllPairs,
                Preprocessing::None,
            ),
            notes: "same approximation as [33]; lowercased label matching is available through \
                    a custom scheme",
        },
        PriorApproach {
            reference: "[17] Friesen & Rüping",
            description: "type matching, sets of modules / MCS / graph kernels",
            config: SimilarityConfig::new(
                MeasureKind::ModuleSets,
                ModuleComparisonScheme::custom(
                    "ptype",
                    vec![crate::module_cmp::AttributeRule {
                        key: wf_model::AttributeKey::Type,
                        weight: 1.0,
                        method: crate::module_cmp::ComparisonMethod::Exact,
                    }],
                ),
                PreselectionStrategy::StrictType,
                Preprocessing::None,
            ),
            notes: "the graph-kernel variant is not reconstructed (the paper also evaluates it \
                    only through its MCS/bag-of-modules surrogates)",
        },
        PriorApproach {
            reference: "[38] Xiang & Madey",
            description: "label matching, graph edit distance, no normalization",
            config: SimilarityConfig::new(
                MeasureKind::GraphEdit,
                ModuleComparisonScheme::plm(),
                PreselectionStrategy::AllPairs,
                Preprocessing::None,
            )
            .with_normalization(Normalization::None),
            notes: "SUBDUE is replaced by the wf-ged engine with the same uniform cost model",
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::WorkflowSimilarity;
    use wf_model::{builder::WorkflowBuilder, ModuleType, Workflow};

    fn sample(id: &str, second_label: &str) -> Workflow {
        WorkflowBuilder::new(id)
            .title("kegg pathway analysis")
            .tag("kegg")
            .module("get_pathway", ModuleType::WsdlService, |m| {
                m.service("kegg.jp", "get_pathway", "http://kegg.jp/ws")
            })
            .module(second_label, ModuleType::BeanshellScript, |m| m.script("x"))
            .link("get_pathway", second_label)
            .build()
            .unwrap()
    }

    #[test]
    fn every_row_of_table_1_is_reconstructed() {
        let rows = prior_approaches();
        assert_eq!(rows.len(), 8, "all eight prior approaches of Table 1");
        let references: Vec<&str> = rows.iter().map(|r| r.reference).collect();
        for needed in [
            "[11]", "[36]", "[34]", "[4]", "[33]", "[18]", "[17]", "[38]",
        ] {
            assert!(
                references.iter().any(|r| r.starts_with(needed)),
                "missing reconstruction for {needed}"
            );
        }
    }

    #[test]
    fn reconstructions_are_runnable_and_sane() {
        let a = sample("a", "extract_genes");
        let b = sample("b", "extract_gene_ids");
        for row in prior_approaches() {
            let measure = WorkflowSimilarity::new(row.config.clone());
            let self_sim = measure.similarity_opt(&a, &a.clone());
            if let Some(s) = self_sim {
                // GE without normalization reports -cost (0 for identity);
                // all other reconstructions are normalized similarities.
                if row.config.normalization == Normalization::None
                    && row.config.measure == MeasureKind::GraphEdit
                {
                    assert_eq!(s, 0.0, "{}: identity edit cost", row.reference);
                } else {
                    assert!(
                        (s - 1.0).abs() < 1e-9,
                        "{}: self similarity should be 1, got {s}",
                        row.reference
                    );
                }
            }
            let cross = measure.similarity(&a, &b);
            assert!(cross.is_finite(), "{}", row.reference);
            assert!(!row.description.is_empty() && !row.notes.is_empty());
        }
    }

    #[test]
    fn silva_reconstruction_uses_greedy_mapping() {
        let silva = prior_approaches()
            .into_iter()
            .find(|r| r.reference.starts_with("[34]"))
            .unwrap();
        assert_eq!(silva.config.mapping, MappingStrategy::Greedy);
        assert_eq!(silva.config.measure, MeasureKind::ModuleSets);
    }

    #[test]
    fn xiang_reconstruction_is_unnormalized_ged() {
        let xiang = prior_approaches()
            .into_iter()
            .find(|r| r.reference.starts_with("[38]"))
            .unwrap();
        assert_eq!(xiang.config.measure, MeasureKind::GraphEdit);
        assert_eq!(xiang.config.normalization, Normalization::None);
    }
}
