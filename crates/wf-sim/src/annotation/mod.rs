//! Annotation-based measures (Section 2.2 of the paper).
//!
//! * [`bag_of_words`] — `simBW`: titles and descriptions as bags of words,
//! * [`bag_of_tags`] — `simBT`: keyword tags as bags of tags.

pub mod bag_of_tags;
pub mod bag_of_words;

pub use bag_of_tags::bag_of_tags_similarity;
pub use bag_of_words::{bag_of_words_similarity, bag_of_words_similarity_multiset};
