//! The Bag of Words measure (`simBW`).
//!
//! "Workflows are compared by their titles and descriptions using a
//! bag-of-words approach.  Both title and description are tokenized using
//! whitespace and underscores as separators.  The resulting tokens are
//! converted to lowercase and cleansed from any non alphanumeric
//! characters.  Tokens are filtered for stopwords.  The workflows'
//! similarity is then computed as `#matches / (#matches + #mismatches)`"
//! (Section 2.2, following Costa et al. \[11\]).

use wf_model::Workflow;
use wf_text::TokenBag;

/// `simBW`: set-semantics similarity of the title + description token bags.
///
/// Returns `None` when *neither* workflow carries any title/description
/// tokens after preprocessing — in that case the measure simply has no
/// information (two completely unannotated workflows are not evidence of
/// similarity).  When exactly one side is empty the similarity is 0.
pub fn bag_of_words_similarity(a: &Workflow, b: &Workflow) -> Option<f64> {
    let bag_a = TokenBag::from_text(&a.annotations.title_and_description());
    let bag_b = TokenBag::from_text(&b.annotations.title_and_description());
    if bag_a.is_empty() && bag_b.is_empty() {
        return None;
    }
    Some(bag_a.set_similarity(&bag_b))
}

/// The multiset ablation the paper mentions ("we did try variants that
/// account for multiple occurrences … these variants performed slightly
/// worse").
pub fn bag_of_words_similarity_multiset(a: &Workflow, b: &Workflow) -> Option<f64> {
    let bag_a = TokenBag::from_text(&a.annotations.title_and_description());
    let bag_b = TokenBag::from_text(&b.annotations.title_and_description());
    if bag_a.is_empty() && bag_b.is_empty() {
        return None;
    }
    Some(bag_a.multiset_similarity(&bag_b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use wf_model::builder::WorkflowBuilder;
    use wf_model::Workflow;

    fn annotated(id: &str, title: &str, description: &str) -> Workflow {
        WorkflowBuilder::new(id)
            .title(title)
            .description(description)
            .build()
            .unwrap()
    }

    #[test]
    fn identical_annotations_score_one() {
        let a = annotated("a", "KEGG pathway analysis", "maps genes onto pathways");
        let b = annotated("b", "KEGG pathway analysis", "maps genes onto pathways");
        assert_eq!(bag_of_words_similarity(&a, &b), Some(1.0));
    }

    #[test]
    fn unrelated_annotations_score_zero() {
        let a = annotated("a", "KEGG pathway analysis", "");
        let b = annotated("b", "weather simulation", "");
        assert_eq!(bag_of_words_similarity(&a, &b), Some(0.0));
    }

    #[test]
    fn partial_overlap_matches_the_match_mismatch_formula() {
        // tokens a: {kegg, pathway, analysis}; b: {pathway, analysis, genes}
        // matches = 2, mismatches = 2 -> 0.5
        let a = annotated("a", "KEGG pathway analysis", "");
        let b = annotated("b", "pathway analysis of genes", "");
        assert_eq!(bag_of_words_similarity(&a, &b), Some(0.5));
    }

    #[test]
    fn stopwords_and_case_do_not_matter() {
        let a = annotated("a", "The Analysis of a Pathway", "");
        let b = annotated("b", "pathway ANALYSIS", "");
        assert_eq!(bag_of_words_similarity(&a, &b), Some(1.0));
    }

    #[test]
    fn title_and_description_are_pooled() {
        let a = annotated("a", "BLAST search", "protein sequences");
        let b = annotated("b", "protein sequences", "BLAST search");
        assert_eq!(bag_of_words_similarity(&a, &b), Some(1.0));
    }

    #[test]
    fn unannotated_pairs_have_no_score() {
        let a = annotated("a", "", "");
        let b = annotated("b", "", "");
        assert_eq!(bag_of_words_similarity(&a, &b), None);
        let c = annotated("c", "BLAST", "");
        assert_eq!(bag_of_words_similarity(&a, &c), Some(0.0));
    }

    #[test]
    fn multiset_variant_is_stricter_under_repetition() {
        let a = annotated("a", "gene gene expression", "");
        let b = annotated("b", "gene expression expression", "");
        let set = bag_of_words_similarity(&a, &b).unwrap();
        let multi = bag_of_words_similarity_multiset(&a, &b).unwrap();
        assert_eq!(set, 1.0);
        assert!(multi < set);
    }

    #[test]
    fn similarity_is_symmetric() {
        let a = annotated("a", "KEGG pathway analysis", "entrez gene ids");
        let b = annotated("b", "pathway enrichment", "gene lists from entrez");
        assert_eq!(
            bag_of_words_similarity(&a, &b),
            bag_of_words_similarity(&b, &a)
        );
    }
}
