//! The Bag of Tags measure (`simBT`).
//!
//! "The tags assigned to a workflow are treated as a bag of tags and
//! calculate workflow similarity in the same way as in the Bag of Words
//! approach … no stopword removal or other preprocessing of the tags is
//! performed" (Section 2.2, following Stoyanovich et al. \[36\]).
//!
//! The paper notes that `simBT` "is not able to provide rankings for four of
//! the given query workflows due to lack of tags" and that about 15% of the
//! corpus carries no tags at all; the measure therefore returns `None` when
//! either workflow is untagged, and the evaluation treats such queries
//! exactly as the paper does (they are excluded from the BT averages).

use wf_model::Workflow;
use wf_text::TokenBag;

/// `simBT`: set-semantics similarity of the tag bags, or `None` if either
/// workflow carries no tags.
pub fn bag_of_tags_similarity(a: &Workflow, b: &Workflow) -> Option<f64> {
    if !a.annotations.has_tags() || !b.annotations.has_tags() {
        return None;
    }
    let bag_a = TokenBag::from_tags(&a.annotations.tags);
    let bag_b = TokenBag::from_tags(&b.annotations.tags);
    Some(bag_a.set_similarity(&bag_b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use wf_model::builder::WorkflowBuilder;

    fn tagged(id: &str, tags: &[&str]) -> Workflow {
        let mut b = WorkflowBuilder::new(id);
        for t in tags {
            b = b.tag(*t);
        }
        b.build().unwrap()
    }

    #[test]
    fn identical_tag_sets_score_one() {
        let a = tagged("a", &["kegg", "pathway"]);
        let b = tagged("b", &["pathway", "kegg"]);
        assert_eq!(bag_of_tags_similarity(&a, &b), Some(1.0));
    }

    #[test]
    fn disjoint_tag_sets_score_zero() {
        let a = tagged("a", &["kegg"]);
        let b = tagged("b", &["astronomy"]);
        assert_eq!(bag_of_tags_similarity(&a, &b), Some(0.0));
    }

    #[test]
    fn partial_overlap() {
        let a = tagged("a", &["kegg", "pathway", "genes"]);
        let b = tagged("b", &["pathway", "genes", "entrez"]);
        assert_eq!(bag_of_tags_similarity(&a, &b), Some(0.5));
    }

    #[test]
    fn untagged_workflows_cannot_be_compared() {
        let a = tagged("a", &["kegg"]);
        let b = tagged("b", &[]);
        assert_eq!(bag_of_tags_similarity(&a, &b), None);
        assert_eq!(bag_of_tags_similarity(&b, &b.clone()), None);
    }

    #[test]
    fn tags_are_not_stopword_filtered() {
        // "the" would be removed by Bag of Words but is kept as a tag.
        let a = tagged("a", &["the"]);
        let b = tagged("b", &["the"]);
        assert_eq!(bag_of_tags_similarity(&a, &b), Some(1.0));
    }

    #[test]
    fn multi_word_tags_stay_whole() {
        let a = tagged("a", &["pathway analysis"]);
        let b = tagged("b", &["pathway", "analysis"]);
        // The multi-word tag does not match the two single-word tags.
        assert_eq!(bag_of_tags_similarity(&a, &b), Some(0.0));
    }

    #[test]
    fn tag_case_is_ignored() {
        let a = tagged("a", &["KEGG"]);
        let b = tagged("b", &["kegg"]);
        assert_eq!(bag_of_tags_similarity(&a, &b), Some(1.0));
    }
}
