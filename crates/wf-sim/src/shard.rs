//! The sharded corpus service layer: scatter-gather top-k over
//! independently owned corpus shards, safe to query while the corpus
//! churns.
//!
//! The paper scores a static repository offline; the ROADMAP north-star is
//! a serving system answering heavy query traffic *while* workflows are
//! uploaded and deleted — the repository-scale setting Davidson et al.
//! describe for myExperiment-style search.  One [`Corpus`](crate::Corpus)
//! cannot get there alone: a single `&mut` mutation path stalls every
//! reader, one `StringPool` and one inverted index serialize all profiling,
//! and a single snapshot file is rewritten wholesale on every save.  This
//! module partitions the corpus instead:
//!
//! * [`ShardedCorpus`] — N shards, each a complete [`Corpus`] owning its
//!   own pool, profiles and token index; workflows are routed to shards by
//!   id ([`ShardPartition`]).  A top-k query **scatters** by building one
//!   ranked candidate *cursor* per shard (the shard's candidates in the
//!   engine's canonical best-bound-first order, nothing scored yet), then
//!   runs **one global best-bound-first scan** over the cursors merged by
//!   a [`RankedFrontier`](wf_repo::RankedFrontier): the scan always scores
//!   the globally best-bound candidate and tightens a single shared
//!   [`SearchThreshold`], so the pruning power of the admissible-bound
//!   search is independent of how many shards the corpus is split into.
//!   The **gather** is the shared [`merge_top_k`](wf_repo::merge_top_k)
//!   canonicalization of the one scan's hits.
//! * [`CorpusService`] — the concurrent wrapper: one `RwLock` per shard,
//!   so searches proceed on all shards concurrently with churn that only
//!   write-locks the single owning shard, plus a parallel batch-query API.
//!
//! ## Why sharded search stays bit-identical
//!
//! Every shard scores the query with exactly the shared
//! [`ProfiledMeasure`] code path: the query's pool-independent features are
//! extracted once ([`QueryFeatures`]) and bound per shard against a
//! *frozen* pool ([`wf_text::FrozenInterner`]), which reproduces every
//! token-set comparison bit-for-bit without mutating the shard.  Pruning
//! only ever skips a candidate whose admissible upper bound falls
//! *strictly* below the shared threshold floor — and the floor is always a
//! true k-th best score of `k` distinct candidates, so no pruned candidate
//! can enter the merged top-k, under any cursor merge order or thread
//! interleaving.  The gather step sorts by the canonical `(score desc, id
//! asc)` hit ordering, so ids, scores *and* tie order equal the
//! single-corpus [`IndexedSearchEngine`](wf_repo::IndexedSearchEngine).

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

// Model-checkable lock shims: plain `std::sync` locks outside a model run,
// deterministic scheduling points inside one (see `vendor/shuttle-mini`
// and the `wf-analyze` model-check suite, which races `CorpusService`
// searches against live churn under a controlled scheduler).
use shuttle_mini::sync::{Mutex, RwLock, RwLockReadGuard};

use wf_model::{Workflow, WorkflowId};
use wf_repo::{
    merge_top_k, scan_ranked_candidates, sort_best_bound_first, CancelToken, RankedCandidate,
    RankedFrontier, SearchHit, SearchStats, SearchThreshold,
};

use crate::config::SimilarityConfig;
use crate::corpus::{config_fingerprint, fnv1a64, Corpus, SnapshotError};
use crate::profile::{ProfiledMeasure, QueryFeatures, WorkflowProfile};

/// First token of a shard-manifest header line.
pub const SHARD_MANIFEST_MAGIC: &str = "wfsim-shard-manifest";

/// Version of the shard-manifest layout.
pub const SHARD_MANIFEST_VERSION: u32 = 1;

/// The file a [`ShardedCorpus::save`] directory's manifest is written to.
pub const SHARD_MANIFEST_FILE: &str = "manifest";

/// How workflows are assigned to shards.
///
/// Both partitions are *stable*: a workflow id always routes to the shard
/// that currently holds it, so `add` with an existing id replaces in place
/// and never duplicates an id across shards — the invariant scatter-gather
/// relies on to never return the same workflow twice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardPartition {
    /// Stateless FNV-1a hash of the workflow id, modulo the shard count.
    /// Routing needs no lookup table and survives snapshot round-trips by
    /// construction.
    HashId,
    /// New ids are dealt to shards in rotation, keeping shard sizes within
    /// one of each other; the id → shard assignment is remembered so
    /// replacements and removals route to the owning shard.
    RoundRobin,
}

impl fmt::Display for ShardPartition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ShardPartition::HashId => "hash",
            ShardPartition::RoundRobin => "round-robin",
        })
    }
}

impl ShardPartition {
    fn parse(token: &str) -> Option<Self> {
        match token {
            "hash" => Some(ShardPartition::HashId),
            "round-robin" => Some(ShardPartition::RoundRobin),
            _ => None,
        }
    }
}

/// How a single query's candidate scan is executed across the shards.
///
/// Both modes are **bit-identical** — ids, scores, tie order — to the
/// single-corpus [`IndexedSearchEngine`](wf_repo::IndexedSearchEngine);
/// the knob only trades scheduling strategy:
///
/// * [`Sequential`](SearchParallelism::Sequential) merges every shard's
///   ranked cursor into one global best-bound-first frontier scanned on
///   the calling thread.  Scoring order is globally optimal, so this mode
///   does the *least* total work; per-query latency is flat in shard
///   count.
/// * [`Racing`](SearchParallelism::Racing) spawns one worker per shard
///   (bounded by `max_workers`) that drains its shard's cursor against
///   the one shared lock-free [`SearchThreshold`], so every worker prunes
///   against the globally tightening k-th-best floor.  Workers may score
///   candidates a sequential frontier would have pruned (the floor
///   tightens a little later), but pruning is *strictly below* a floor
///   that is always a true worst-of-k of exactly-scored candidates, so no
///   interleaving can change the merged result — only the work split.
///   With idle cores this turns shards into a per-query latency win.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SearchParallelism {
    /// One global frontier, scanned sequentially (the default).
    #[default]
    Sequential,
    /// Per-shard workers racing the shared threshold floor, at most
    /// `max_workers` threads (clamped to at least 1; values above the
    /// shard count are clamped down to one worker per shard).
    Racing {
        /// Upper bound on worker threads for one query's scan.
        max_workers: usize,
    },
}

impl SearchParallelism {
    /// One worker per shard — the natural racing configuration.
    pub fn racing_per_shard() -> Self {
        SearchParallelism::Racing {
            max_workers: usize::MAX,
        }
    }

    /// The number of workers a scan over `shard_count` shards actually
    /// uses in this mode.
    pub fn workers_for(self, shard_count: usize) -> usize {
        match self {
            SearchParallelism::Sequential => 1,
            SearchParallelism::Racing { max_workers } => max_workers.max(1).min(shard_count.max(1)),
        }
    }
}

impl fmt::Display for SearchParallelism {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SearchParallelism::Sequential => f.write_str("sequential"),
            SearchParallelism::Racing { max_workers } => {
                if *max_workers == usize::MAX {
                    f.write_str("racing")
                } else {
                    write!(f, "racing({max_workers})")
                }
            }
        }
    }
}

fn hash_route(id: &WorkflowId, shards: usize) -> usize {
    (fnv1a64(id.as_str().as_bytes()) % shards as u64) as usize
}

fn shard_file_name(shard: usize) -> String {
    format!("shard-{shard:03}.snap")
}

/// The one manifest header both save paths write and
/// [`ShardedCorpus::load`] parses — any new field must be added here and
/// in the parser, never in a per-caller copy.
fn manifest_line(
    shards: usize,
    partition: ShardPartition,
    next_rr: usize,
    config: &SimilarityConfig,
) -> String {
    format!(
        "{SHARD_MANIFEST_MAGIC} v{SHARD_MANIFEST_VERSION} shards={shards} partition={partition} next={next_rr} config={}\n",
        config_fingerprint(config),
    )
}

/// A corpus partitioned across N independent shards with scatter-gather
/// top-k search.
///
/// # Invariants
///
/// * every shard is a complete [`Corpus`] for the same
///   [`SimilarityConfig`]; shards share nothing (pool, profiles, index are
///   per shard);
/// * a workflow id lives in at most one shard, and always in the shard its
///   partition routes it to ([`ShardedCorpus::add`] replaces through the
///   owning shard, never across shards);
/// * [`ShardedCorpus::search`] results — ids, scores, tie order — are
///   bit-identical to a single-corpus
///   [`IndexedSearchEngine`](wf_repo::IndexedSearchEngine) over the union
///   of all shards, for every shard count and partition.
///
/// ```
/// use wf_model::{builder::WorkflowBuilder, ModuleType};
/// use wf_sim::{ShardedCorpus, SimilarityConfig};
///
/// let wf = |id: &str, label: &str| {
///     WorkflowBuilder::new(id)
///         .module(label, ModuleType::WsdlService, |m| m)
///         .build()
///         .unwrap()
/// };
/// let mut sharded = ShardedCorpus::build(
///     SimilarityConfig::best_module_sets(),
///     4,
///     vec![wf("a", "blast search"), wf("b", "blast align"), wf("c", "plot")],
/// );
/// let hits = sharded.search(&"a".into(), 2).unwrap();
/// assert_eq!(hits[0].id.as_str(), "b");
/// sharded.remove(&"b".into());
/// assert_eq!(sharded.len(), 2);
/// ```
pub struct ShardedCorpus {
    config: SimilarityConfig,
    partition: ShardPartition,
    shards: Vec<Corpus>,
    /// Id → owning shard; maintained only for [`ShardPartition::RoundRobin`]
    /// (hash routing is stateless).
    routes: BTreeMap<WorkflowId, u32>,
    /// Next rotation slot for new round-robin ids.
    next_rr: usize,
    /// How a single query's scan is scheduled across the shards (a
    /// runtime knob, not persisted by [`ShardedCorpus::save`]).
    parallelism: SearchParallelism,
}

impl ShardedCorpus {
    /// Builds a hash-partitioned corpus of `shard_count` shards (clamped to
    /// at least 1).  Duplicate ids replace earlier occurrences, exactly
    /// like [`Corpus::build`].
    pub fn build(
        config: SimilarityConfig,
        shard_count: usize,
        workflows: impl IntoIterator<Item = Workflow>,
    ) -> Self {
        ShardedCorpus::build_with(config, shard_count, ShardPartition::HashId, workflows)
    }

    /// [`ShardedCorpus::build`] with an explicit partition strategy.
    pub fn build_with(
        config: SimilarityConfig,
        shard_count: usize,
        partition: ShardPartition,
        workflows: impl IntoIterator<Item = Workflow>,
    ) -> Self {
        let shard_count = shard_count.max(1);
        // Last-upload-wins dedup in arrival order, as in `Corpus::build`.
        let mut deduped: Vec<Workflow> = Vec::new();
        let mut seen: BTreeMap<WorkflowId, usize> = BTreeMap::new();
        for wf in workflows {
            match seen.get(&wf.id) {
                Some(&pos) => deduped[pos] = wf,
                None => {
                    seen.insert(wf.id.clone(), deduped.len());
                    deduped.push(wf);
                }
            }
        }
        let mut buckets: Vec<Vec<Workflow>> = (0..shard_count).map(|_| Vec::new()).collect();
        let mut routes = BTreeMap::new();
        let mut next_rr = 0usize;
        for wf in deduped {
            let shard = match partition {
                ShardPartition::HashId => hash_route(&wf.id, shard_count),
                ShardPartition::RoundRobin => {
                    let shard = next_rr % shard_count;
                    next_rr += 1;
                    routes.insert(wf.id.clone(), shard as u32);
                    shard
                }
            };
            buckets[shard].push(wf);
        }
        let shards = buckets
            .into_iter()
            .map(|bucket| Corpus::build(config.clone(), bucket))
            .collect();
        ShardedCorpus {
            config,
            partition,
            shards,
            routes,
            next_rr,
            parallelism: SearchParallelism::default(),
        }
    }

    /// Sets the intra-query scan strategy (builder form).  Both modes are
    /// bit-identical; see [`SearchParallelism`].
    pub fn with_parallelism(mut self, parallelism: SearchParallelism) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// Sets the intra-query scan strategy in place.
    pub fn set_parallelism(&mut self, parallelism: SearchParallelism) {
        self.parallelism = parallelism;
    }

    /// The intra-query scan strategy.
    pub fn parallelism(&self) -> SearchParallelism {
        self.parallelism
    }

    /// The configured similarity algorithm (shared by every shard).
    pub fn config(&self) -> &SimilarityConfig {
        &self.config
    }

    /// The algorithm name in the paper's notation.
    pub fn measure_name(&self) -> String {
        self.shards[0].measure_name()
    }

    /// The partition strategy routing ids to shards.
    pub fn partition(&self) -> ShardPartition {
        self.partition
    }

    /// Number of shards (at least 1).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shards, in shard order.
    pub fn shards(&self) -> &[Corpus] {
        &self.shards
    }

    /// Total number of workflows across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(Corpus::len).sum()
    }

    /// True when no shard holds a workflow.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(Corpus::is_empty)
    }

    /// All workflow ids, shard-major (shard 0's corpus order, then shard
    /// 1's, …).
    pub fn ids(&self) -> Vec<WorkflowId> {
        self.shards
            .iter()
            .flat_map(|s| s.ids().iter().cloned())
            .collect()
    }

    /// The shard currently holding a workflow id, if resident.
    pub fn shard_of(&self, id: &WorkflowId) -> Option<usize> {
        match self.partition {
            ShardPartition::HashId => {
                let shard = hash_route(id, self.shards.len());
                self.shards[shard].index_of(id).map(|_| shard)
            }
            ShardPartition::RoundRobin => self.routes.get(id).map(|&s| s as usize),
        }
    }

    /// True when the id is resident in some shard.
    pub fn contains(&self, id: &WorkflowId) -> bool {
        self.shard_of(id).is_some()
    }

    /// The original workflow with a given id.
    pub fn get(&self, id: &WorkflowId) -> Option<&Workflow> {
        self.shards[self.shard_of(id)?].get(id)
    }

    /// Inserts a workflow into its owning shard (replacing any resident
    /// with the same id in place), returning the shard index.  Only that
    /// shard's pool, profiles and index are touched.
    pub fn add(&mut self, wf: Workflow) -> usize {
        let shard = match self.partition {
            ShardPartition::HashId => hash_route(&wf.id, self.shards.len()),
            ShardPartition::RoundRobin => match self.routes.get(&wf.id) {
                Some(&s) => s as usize,
                None => {
                    let s = self.next_rr % self.shards.len();
                    self.next_rr += 1;
                    self.routes.insert(wf.id.clone(), s as u32);
                    s
                }
            },
        };
        self.shards[shard].add(wf);
        shard
    }

    /// Removes a workflow from its owning shard, returning it (or `None`
    /// for an unknown id).
    pub fn remove(&mut self, id: &WorkflowId) -> Option<Workflow> {
        let shard = self.shard_of(id)?;
        let removed = self.shards[shard].remove(id);
        if removed.is_some() && self.partition == ShardPartition::RoundRobin {
            self.routes.remove(id);
        }
        removed
    }

    /// The `k` workflows most similar to the resident workflow with id
    /// `query` (itself excluded), best first; `None` for an unknown id.
    /// Bit-identical to the single-corpus indexed engine.
    pub fn search(&self, query: &WorkflowId, k: usize) -> Option<Vec<SearchHit>> {
        Some(self.search_with_stats(query, k)?.0)
    }

    /// [`ShardedCorpus::search`] plus pruning instrumentation aggregated
    /// over all shards.
    pub fn search_with_stats(
        &self,
        query: &WorkflowId,
        k: usize,
    ) -> Option<(Vec<SearchHit>, SearchStats)> {
        let wf = self.get(query)?;
        let features = self.query_features(wf);
        Some(self.scatter(&features, query, k))
    }

    /// Query by example: the `k` workflows most similar to an arbitrary
    /// (not necessarily resident) workflow.  Residents sharing the query's
    /// id are excluded, mirroring the single-corpus engines.
    pub fn search_workflow(&self, wf: &Workflow, k: usize) -> Vec<SearchHit> {
        let features = self.query_features(wf);
        self.scatter(&features, &wf.id, k).0
    }

    /// Answers a batch of queries on `threads` worker threads, one global
    /// best-bound-first frontier per query (queries are the work-stealing
    /// unit, so every query keeps the full pruning power of
    /// [`ShardedCorpus::search`]).  Query profiling is amortized: each
    /// query's pool-independent features are extracted once and only
    /// *bound* per shard.  Unknown ids yield `None`; results align with
    /// `queries` and are individually bit-identical to
    /// [`ShardedCorpus::search`].
    pub fn search_batch(
        &self,
        queries: &[WorkflowId],
        k: usize,
        threads: usize,
    ) -> Vec<Option<Vec<SearchHit>>> {
        self.search_batch_with_stats(queries, k, threads).0
    }

    /// [`ShardedCorpus::search_batch`] plus the pruning instrumentation
    /// aggregated over every answered query — what the serving benchmark
    /// reads to compare scored/pruned work across shard counts without a
    /// second (untimed) pass.
    pub fn search_batch_with_stats(
        &self,
        queries: &[WorkflowId],
        k: usize,
        threads: usize,
    ) -> (Vec<Option<Vec<SearchHit>>>, SearchStats) {
        if queries.is_empty() {
            return (Vec::new(), SearchStats::default());
        }
        let prepared: Vec<Option<QueryFeatures>> = queries
            .iter()
            .map(|id| self.get(id).map(|wf| self.query_features(wf)))
            .collect();
        let workers = threads.max(1).min(queries.len());
        let cursor = AtomicUsize::new(0);
        let mut results: Vec<Option<Vec<SearchHit>>> = vec![None; queries.len()];
        let mut stats = SearchStats::default();
        let gathered = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let (cursor, prepared) = (&cursor, &prepared);
                    scope.spawn(move || {
                        let mut out: Vec<(usize, Vec<SearchHit>)> = Vec::new();
                        let mut worker_stats = SearchStats::default();
                        loop {
                            // ordering: Relaxed — a pure work-stealing
                            // ticket: fetch_add's atomicity hands each
                            // query index to exactly one worker, and the
                            // scope join below is the synchronization edge
                            // for the results.
                            let qi = cursor.fetch_add(1, Ordering::Relaxed);
                            if qi >= queries.len() {
                                return (out, worker_stats);
                            }
                            let Some(features) = &prepared[qi] else {
                                continue;
                            };
                            let (hits, query_stats) = self.scatter(features, &queries[qi], k);
                            worker_stats.merge(&query_stats);
                            out.push((qi, hits));
                        }
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("batch search worker panicked"))
                .collect::<Vec<_>>()
        });
        for (worker_hits, worker_stats) in gathered {
            stats.merge(&worker_stats);
            for (qi, hits) in worker_hits {
                results[qi] = Some(hits);
            }
        }
        (results, stats)
    }

    /// Extracts the pool-independent query features once (any shard's
    /// measure works: all shards share one configuration).
    fn query_features(&self, wf: &Workflow) -> QueryFeatures {
        self.shards[0].measure().query_features(wf)
    }

    /// Scatter-gather in the configured [`SearchParallelism`] mode:
    /// either one global sequential frontier or per-shard workers racing
    /// the shared threshold — bit-identical results either way.
    fn scatter(
        &self,
        features: &QueryFeatures,
        exclude: &WorkflowId,
        k: usize,
    ) -> (Vec<SearchHit>, SearchStats) {
        match self.parallelism {
            SearchParallelism::Sequential => {
                scatter_gather(self.shards.len(), |i| &self.shards[i], features, exclude, k)
            }
            SearchParallelism::Racing { max_workers } => scatter_gather_racing(
                self.shards.len(),
                |i| &self.shards[i],
                features,
                exclude,
                k,
                max_workers,
            ),
        }
    }

    /// Deadline-bound scatter-gather: like [`ShardedCorpus::search`], but
    /// the scan polls `cancel` between candidates and between shards, so a
    /// fired deadline returns the exact partial top-k proven so far
    /// (flagged [`degraded`](DegradedSearch::degraded), with the shards
    /// that answered completely recorded) instead of blocking past the
    /// SLO.  With a never-firing token the result equals
    /// [`ShardedCorpus::search`] and is not degraded.
    pub fn search_deadline(
        &self,
        query: &WorkflowId,
        k: usize,
        cancel: &CancelToken,
    ) -> Option<DegradedSearch> {
        let wf = self.get(query)?;
        let features = self.query_features(wf);
        Some(match self.parallelism {
            SearchParallelism::Sequential => scatter_gather_deadline(
                self.shards.len(),
                |i| &self.shards[i],
                &features,
                query,
                k,
                cancel,
                |_| true,
            ),
            SearchParallelism::Racing { max_workers } => scatter_gather_deadline_racing(
                self.shards.len(),
                |i| &self.shards[i],
                &features,
                query,
                k,
                cancel,
                &|_| true,
                max_workers,
            ),
        })
    }

    /// Writes one snapshot file per shard plus a manifest into `dir`
    /// (created if absent).  Shard snapshots are the versioned, checksummed
    /// [`Corpus::save`] format; the manifest records shard count, partition
    /// and config fingerprint.
    pub fn save(&self, dir: impl AsRef<Path>) -> io::Result<()> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        let manifest = manifest_line(
            self.shards.len(),
            self.partition,
            self.next_rr,
            &self.config,
        );
        std::fs::write(dir.join(SHARD_MANIFEST_FILE), manifest)?;
        for (i, shard) in self.shards.iter().enumerate() {
            shard.save(dir.join(shard_file_name(i)))?;
        }
        Ok(())
    }

    /// Restores a sharded corpus saved by [`ShardedCorpus::save`].  The
    /// manifest must carry the current layout version and the fingerprint
    /// of exactly `config`; every shard snapshot must load intact (each is
    /// version- and checksum-validated individually), and every restored
    /// workflow must route to the shard it was found in.  Any violation is
    /// a typed [`ShardSnapshotError`].
    pub fn load(
        dir: impl AsRef<Path>,
        config: SimilarityConfig,
    ) -> Result<Self, ShardSnapshotError> {
        let dir = dir.as_ref();
        let text = std::fs::read_to_string(dir.join(SHARD_MANIFEST_FILE))
            .map_err(ShardSnapshotError::Io)?;
        let header = text.lines().next().unwrap_or_default();
        let mut parts = header.split(' ');
        if parts.next() != Some(SHARD_MANIFEST_MAGIC) {
            return Err(ShardSnapshotError::Manifest(format!(
                "not a shard manifest: {header:?}"
            )));
        }
        let version = parts.next().unwrap_or_default();
        if version != format!("v{SHARD_MANIFEST_VERSION}") {
            return Err(ShardSnapshotError::Manifest(format!(
                "manifest version {version} != supported v{SHARD_MANIFEST_VERSION}"
            )));
        }
        let mut field = |name: &str| {
            parts
                .next()
                .and_then(|f| f.strip_prefix(name).map(str::to_string))
                .ok_or_else(|| ShardSnapshotError::Manifest(format!("missing {name}<value>")))
        };
        let shard_count: usize = field("shards=")?
            .parse()
            .map_err(|_| ShardSnapshotError::Manifest("malformed shard count".to_string()))?;
        if shard_count == 0 {
            return Err(ShardSnapshotError::Manifest(
                "manifest declares zero shards".to_string(),
            ));
        }
        let partition = ShardPartition::parse(&field("partition=")?).ok_or_else(|| {
            ShardSnapshotError::Manifest("unknown partition strategy".to_string())
        })?;
        let next_rr: usize = field("next=")?
            .parse()
            .map_err(|_| ShardSnapshotError::Manifest("malformed rotation cursor".to_string()))?;
        let fingerprint = field("config=")?;
        let expected = config_fingerprint(&config);
        if fingerprint != expected {
            return Err(ShardSnapshotError::ConfigMismatch {
                expected,
                found: fingerprint,
            });
        }
        let mut shards = Vec::with_capacity(shard_count);
        for i in 0..shard_count {
            shards.push(
                Corpus::load(dir.join(shard_file_name(i)), config.clone())
                    .map_err(|error| ShardSnapshotError::Shard { shard: i, error })?,
            );
        }
        let mut routes = BTreeMap::new();
        for (i, shard) in shards.iter().enumerate() {
            for id in shard.ids() {
                match partition {
                    ShardPartition::HashId => {
                        let expected = hash_route(id, shard_count);
                        if expected != i {
                            return Err(ShardSnapshotError::Manifest(format!(
                                "workflow {id} found in shard {i} but hashes to shard {expected}"
                            )));
                        }
                    }
                    ShardPartition::RoundRobin => {
                        if let Some(previous) = routes.insert(id.clone(), i as u32) {
                            return Err(ShardSnapshotError::Manifest(format!(
                                "workflow {id} found in both shard {previous} and shard {i}"
                            )));
                        }
                    }
                }
            }
        }
        Ok(ShardedCorpus {
            config,
            partition,
            shards,
            routes,
            next_rr,
            parallelism: SearchParallelism::default(),
        })
    }

    /// Loads the sharded snapshot in `dir` if it is present, intact and
    /// matches `config`; otherwise builds a fresh sharded corpus from
    /// `workflows`.  The origin says which happened (and why a rebuild was
    /// needed), so servers can log and re-save.
    ///
    /// A fallback is never silent: the rejected snapshot — including
    /// *which* shard file failed, when one did — is reported on stderr, so
    /// an operator can tell a routine cold start from a corrupted shard
    /// that quietly cost a full rebuild.
    pub fn load_or_build(
        dir: impl AsRef<Path>,
        config: SimilarityConfig,
        shard_count: usize,
        partition: ShardPartition,
        workflows: impl IntoIterator<Item = Workflow>,
    ) -> (Self, ShardOrigin) {
        let dir = dir.as_ref();
        match ShardedCorpus::load(dir, config.clone()) {
            Ok(sharded) => (sharded, ShardOrigin::Snapshot),
            Err(reason) => {
                match reason.failed_shard() {
                    Some(shard) => eprintln!(
                        "wfsim: sharded snapshot {}: shard {shard} ({}) rejected — {reason}; \
                         rebuilding every shard from source workflows",
                        dir.display(),
                        shard_file_name(shard),
                    ),
                    None => eprintln!(
                        "wfsim: sharded snapshot {}: {reason}; rebuilding from source workflows",
                        dir.display(),
                    ),
                }
                (
                    ShardedCorpus::build_with(config, shard_count, partition, workflows),
                    ShardOrigin::Rebuilt(reason),
                )
            }
        }
    }
}

/// How [`ShardedCorpus::load_or_build`] obtained its corpus.
#[derive(Debug)]
pub enum ShardOrigin {
    /// Every shard was deserialized from an intact, matching snapshot.
    Snapshot,
    /// Rebuilt from the workflows because the sharded snapshot was
    /// unusable.
    Rebuilt(ShardSnapshotError),
}

impl ShardOrigin {
    /// True when the corpus came out of a snapshot.
    pub fn is_snapshot(&self) -> bool {
        matches!(self, ShardOrigin::Snapshot)
    }

    /// The index of the shard whose snapshot forced a rebuild, when the
    /// failure was shard-local (`None` for snapshot-wide failures and for
    /// [`ShardOrigin::Snapshot`]).
    pub fn failed_shard(&self) -> Option<usize> {
        match self {
            ShardOrigin::Snapshot => None,
            ShardOrigin::Rebuilt(reason) => reason.failed_shard(),
        }
    }
}

/// Why a sharded snapshot could not be loaded.
#[derive(Debug)]
pub enum ShardSnapshotError {
    /// The manifest file could not be read.
    Io(io::Error),
    /// The manifest is malformed, has the wrong version, or contradicts
    /// the shard files (e.g. a workflow filed in a shard it does not route
    /// to).
    Manifest(String),
    /// The manifest was written for a different similarity configuration.
    ConfigMismatch {
        /// Fingerprint of the requested configuration.
        expected: String,
        /// Fingerprint recorded in the manifest.
        found: String,
    },
    /// One shard snapshot failed to load.
    Shard {
        /// Index of the failing shard.
        shard: usize,
        /// Why its snapshot was rejected.
        error: SnapshotError,
    },
}

impl ShardSnapshotError {
    /// The shard whose snapshot failed, for shard-local failures.
    pub fn failed_shard(&self) -> Option<usize> {
        match self {
            ShardSnapshotError::Shard { shard, .. } => Some(*shard),
            _ => None,
        }
    }
}

impl fmt::Display for ShardSnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardSnapshotError::Io(e) => write!(f, "cannot read shard manifest: {e}"),
            ShardSnapshotError::Manifest(why) => write!(f, "malformed shard manifest: {why}"),
            ShardSnapshotError::ConfigMismatch { expected, found } => {
                write!(
                    f,
                    "sharded snapshot built for {found}, requested {expected}"
                )
            }
            ShardSnapshotError::Shard { shard, error } => {
                write!(f, "shard {shard}: {error}")
            }
        }
    }
}

impl Error for ShardSnapshotError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ShardSnapshotError::Shard { error, .. } => Some(error),
            ShardSnapshotError::Io(e) => Some(e),
            _ => None,
        }
    }
}

/// One shard's *cursor* of a global best-bound-first search: the query
/// bound to this shard's pool plus the shard's candidates ranked exactly
/// as [`wf_repo::IndexedSearchEngine`] would rank them — but *not* yet
/// scored.  The scatter loop merges these cursors through a
/// [`RankedFrontier`] and runs one global scan over the merged stream.
///
/// Candidate indices are pre-encoded for the frontier: a local corpus
/// index `local` of cursor `front` (of `num_fronts` total) is stored as
/// `local * num_fronts + front`, which keeps the encoding monotone in
/// `local` — so the per-cursor [`sort_best_bound_first`] tie order is the
/// same order the un-encoded local indices would produce.
struct ShardCursor {
    /// The query profile bound against this shard's pool.
    query: WorkflowProfile,
    /// The shard's candidates in best-bound-first order, frontier-encoded.
    candidates: Vec<RankedCandidate>,
}

/// Builds one shard's ranked cursor: bind the query, count label-token
/// overlaps through the inverted index, bound every candidate (admissible,
/// `INFINITY` when unboundable) and sort best-bound-first.  Enumeration
/// and bounds are exactly those of the single-corpus engine's
/// `ranked_candidates`.
fn shard_cursor(
    corpus: &Corpus,
    features: &QueryFeatures,
    exclude: &WorkflowId,
    front: usize,
    num_fronts: usize,
    stats: &mut SearchStats,
) -> ShardCursor {
    let measure: &ProfiledMeasure = corpus.measure();
    let query: WorkflowProfile = measure.bind_query(features);
    let overlaps = corpus
        .token_index()
        .overlap_counts(query.label_tokens().ids());
    let mut candidates: Vec<RankedCandidate> = Vec::with_capacity(measure.len());
    for (index, &overlap) in overlaps.iter().enumerate() {
        if measure.ids()[index] == *exclude {
            continue;
        }
        if overlap > 0 {
            stats.shared_token_candidates += 1;
        }
        let bound = measure
            .upper_bound_profile(&query, index)
            .unwrap_or(f64::INFINITY);
        candidates.push(RankedCandidate {
            index: index * num_fronts + front,
            bound,
            overlap,
        });
    }
    stats.candidates += candidates.len();
    sort_best_bound_first(&mut candidates);
    ShardCursor { query, candidates }
}

/// The outcome of a deadline-bound scatter-gather search.
///
/// The hits are always *true* scores in the canonical order; what a fired
/// deadline (or an injected shard fault) costs is **coverage**, never
/// correctness: shards that did not finish simply contribute fewer (or no)
/// candidates, and the result says so instead of passing a partial answer
/// off as complete.
#[derive(Debug, Clone, PartialEq)]
pub struct DegradedSearch {
    /// The merged top-k over every candidate that was actually scored.
    pub hits: Vec<SearchHit>,
    /// Per shard: true when that shard's scan ran to completion.  A shard
    /// cut short mid-scan still contributes the exact hits it had proven,
    /// but is reported unanswered.
    pub answered: Vec<bool>,
    /// True when any shard did not answer completely — the signal a
    /// serving layer forwards so clients can tell a full top-k from a
    /// best-effort one.
    pub degraded: bool,
    /// Pruning / cancellation instrumentation aggregated over the shards
    /// that were visited.
    pub stats: SearchStats,
}

impl DegradedSearch {
    /// Number of shards that answered completely.
    pub fn answered_count(&self) -> usize {
        self.answered.iter().filter(|&&a| a).count()
    }
}

/// The frontier core: build one ranked cursor per listed corpus and run
/// **one** [`scan_ranked_candidates`] over the cursors merged by a
/// [`RankedFrontier`].  The scan always scores the globally best-bound
/// candidate across every cursor, tightens the caller's shared threshold,
/// and stops when the best remaining bound *anywhere* falls below the
/// floor — so pruning power is that of the single-corpus engine,
/// independent of how many fronts the corpus is split into.
///
/// Returns the scan's heap-order hits (callers canonicalize through
/// [`merge_top_k`]).  A fired `cancel` abandons the merged stream
/// mid-scan; the hits proven up to that point are exact (the frontier
/// only reorders *scoring*, and top-k content is insertion-order
/// independent).
fn frontier_scan(
    fronts: &[&Corpus],
    features: &QueryFeatures,
    exclude: &WorkflowId,
    k: usize,
    threshold: &SearchThreshold,
    cancel: &CancelToken,
    stats: &mut SearchStats,
) -> Vec<SearchHit> {
    let num_fronts = fronts.len();
    let mut cursors: Vec<ShardCursor> = Vec::with_capacity(num_fronts);
    let mut measures: Vec<&ProfiledMeasure> = Vec::with_capacity(num_fronts);
    for (front, corpus) in fronts.iter().enumerate() {
        cursors.push(shard_cursor(
            corpus, features, exclude, front, num_fronts, stats,
        ));
        measures.push(corpus.measure());
    }
    // Every candidate index was encoded as `local * num_fronts + front`
    // by `shard_cursor`, monotone in `local` for a fixed front, so each
    // cursor's canonical tie order survives the merge.
    let frontier = RankedFrontier::new(cursors.iter().map(|c| c.candidates.as_slice()).collect());
    let total = frontier.total();
    scan_ranked_candidates(
        &frontier,
        total,
        k,
        threshold,
        cancel,
        stats,
        |encoded| {
            let (front, local) = (encoded % num_fronts, encoded / num_fronts);
            measures[front].score_profile(&cursors[front].query, local)
        },
        |encoded| {
            let (front, local) = (encoded % num_fronts, encoded / num_fronts);
            measures[front].ids()[local].clone()
        },
    )
}

/// Drains one shard's ranked cursor against a caller-shared threshold:
/// builds the shard's cursor ([`shard_cursor`]) and runs the canonical
/// prune-and-score loop over it, publishing every new worst-of-k into
/// `threshold` and pruning strictly below its floor.
///
/// This is the per-worker unit of the racing scatter-gather
/// ([`SearchParallelism::Racing`]): each worker owns one shard's drain,
/// all workers share one [`SearchThreshold`] and one [`CancelToken`]
/// (polled between candidates, so a fired deadline abandons the drain
/// mid-stream with exact partial hits).  It is public so the `wf-analyze`
/// model-check suite can race real shard drains under the deterministic
/// scheduler; hits come back in heap order — gather them with
/// [`merge_top_k`].
pub fn drain_shard(
    corpus: &Corpus,
    features: &QueryFeatures,
    exclude: &WorkflowId,
    k: usize,
    threshold: &SearchThreshold,
    cancel: &CancelToken,
    stats: &mut SearchStats,
) -> Vec<SearchHit> {
    frontier_scan(&[corpus], features, exclude, k, threshold, cancel, stats)
}

/// The deadline-aware scatter-gather loop behind the serving layer's
/// cancellable search entry points.
///
/// Shards are *admitted* one at a time in ascending order — gate, read
/// guard, then an immediate [`frontier_scan`] drain of that shard's
/// cursor against the shared threshold — rather than waiting to merge
/// every cursor first.  The eager drain is deliberate: the `shard_gate`
/// (the serving layer's fault-injection hook) may stall for the rest of
/// the deadline, and work completed *before* a stall must survive it.  A
/// shard that stalls or vetoes therefore costs only its own coverage;
/// every previously admitted shard still reports answered with its exact
/// hits.  The throughput path ([`scatter_gather`]), which has no gates
/// and no deadline, merges all cursors into one global frontier instead.
///
/// Guards accumulate (ascending — the lock-order contract of
/// [`CorpusService`]: readers ascend, writers hold routes then a single
/// shard) and are held until the gather, so the search sees each shard
/// as of its admission instant and the set stays consistent to the end.
fn scatter_gather_deadline<R: std::ops::Deref<Target = Corpus>>(
    shard_count: usize,
    mut shard_at: impl FnMut(usize) -> R,
    features: &QueryFeatures,
    exclude: &WorkflowId,
    k: usize,
    cancel: &CancelToken,
    mut shard_gate: impl FnMut(usize) -> bool,
) -> DegradedSearch {
    let threshold = SearchThreshold::new();
    let mut stats = SearchStats::default();
    let mut answered = vec![false; shard_count];
    let mut guards: Vec<R> = Vec::with_capacity(shard_count);
    let mut parts = Vec::with_capacity(shard_count);
    for (shard, answered_slot) in answered.iter_mut().enumerate() {
        // A fired deadline skips every remaining shard outright; they are
        // reported unanswered.
        if cancel.is_cancelled() {
            stats.cancelled = true;
            break;
        }
        // A vetoed shard (injected fault) is skipped but the scatter
        // continues: one bad shard degrades coverage, not availability.
        if !shard_gate(shard) {
            continue;
        }
        guards.push(shard_at(shard));
        let corpus: &Corpus = guards.last().expect("guard just pushed");
        let mut drain_stats = SearchStats::default();
        let hits = frontier_scan(
            &[corpus],
            features,
            exclude,
            k,
            &threshold,
            cancel,
            &mut drain_stats,
        );
        *answered_slot = !drain_stats.cancelled;
        stats.merge(&drain_stats);
        parts.push(hits);
    }
    let degraded = answered.iter().any(|&a| !a);
    DegradedSearch {
        hits: merge_top_k(parts, k),
        answered,
        degraded,
        stats,
    }
}

/// The scatter-gather loop behind every non-deadline search entry point:
/// acquire **all** shards (however the caller materializes them — owned
/// slice or per-shard read lock, always in ascending order), merge their
/// ranked cursors into one global best-bound-first frontier, and run a
/// single shared-threshold scan over it ([`frontier_scan`]).  Scoring
/// order — hence pruning power — is exactly the single-corpus engine's,
/// independent of shard count, and holding every guard for the whole scan
/// gives the search one consistent cut of a live corpus.
fn scatter_gather<R: std::ops::Deref<Target = Corpus>>(
    shard_count: usize,
    mut shard_at: impl FnMut(usize) -> R,
    features: &QueryFeatures,
    exclude: &WorkflowId,
    k: usize,
) -> (Vec<SearchHit>, SearchStats) {
    let mut stats = SearchStats::default();
    let guards: Vec<R> = (0..shard_count).map(&mut shard_at).collect();
    let fronts: Vec<&Corpus> = guards.iter().map(|guard| &**guard).collect();
    let hits = frontier_scan(
        &fronts,
        features,
        exclude,
        k,
        &SearchThreshold::new(),
        &CancelToken::never(),
        &mut stats,
    );
    debug_assert!(!stats.cancelled, "never-token scatter cannot cancel");
    (merge_top_k(vec![hits], k), stats)
}

/// The racing scatter-gather behind [`SearchParallelism::Racing`]: all
/// shard guards are acquired up front (ascending, the same consistent cut
/// and lock order as [`scatter_gather`]), then `max_workers` threads race
/// — each claims shards off a work-stealing ticket and drains them
/// ([`drain_shard`]) against the one shared lock-free [`SearchThreshold`],
/// so every worker prunes against the globally tightening k-th-best floor.
///
/// Bit-identical to the sequential frontier — ids, scores, tie order —
/// under every interleaving: pruning is *strictly below* a floor that is
/// always a true worst-of-k of `k` distinct exactly-scored candidates, so
/// the final k-th best is at least any floor a worker raced against and
/// no pruned candidate could have entered the merged top-k; the gather
/// ([`merge_top_k`]) canonicalizes order.  What the race *does* change is
/// the work split (`stats.scored` may exceed the sequential frontier's,
/// because a worker can score a candidate the global frontier would have
/// pruned a moment later) and the wall clock: with idle cores the scan
/// time drops toward the largest single shard's drain.
///
/// Worker threads are plain `std` scoped threads, **not** shuttle-mini
/// instrumented: racing searches must not run inside a model-check
/// schedule (the wf-analyze suite races [`drain_shard`] directly with
/// scheduler-controlled threads instead).
fn scatter_gather_racing<R: std::ops::Deref<Target = Corpus>>(
    shard_count: usize,
    mut shard_at: impl FnMut(usize) -> R,
    features: &QueryFeatures,
    exclude: &WorkflowId,
    k: usize,
    max_workers: usize,
) -> (Vec<SearchHit>, SearchStats) {
    let guards: Vec<R> = (0..shard_count).map(&mut shard_at).collect();
    let fronts: Vec<&Corpus> = guards.iter().map(|guard| &**guard).collect();
    let workers = max_workers.max(1).min(shard_count);
    let mut stats = SearchStats::default();
    if workers <= 1 {
        // One worker degenerates to the sequential global frontier, which
        // scores strictly less: same result, best pruning power.
        let hits = frontier_scan(
            &fronts,
            features,
            exclude,
            k,
            &SearchThreshold::new(),
            &CancelToken::never(),
            &mut stats,
        );
        return (merge_top_k(vec![hits], k), stats);
    }
    let threshold = SearchThreshold::new();
    let cancel = CancelToken::never();
    let ticket = AtomicUsize::new(0);
    let (parts, worker_stats) = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let (fronts, threshold, cancel, ticket) = (&fronts, &threshold, &cancel, &ticket);
                scope.spawn(move || {
                    let mut parts: Vec<Vec<SearchHit>> = Vec::new();
                    let mut worker_stats = SearchStats::default();
                    loop {
                        // ordering: Relaxed — a pure work-stealing shard
                        // ticket: fetch_add's atomicity hands each shard
                        // to exactly one worker, and the scope join below
                        // is the synchronization edge for the results.
                        let shard = ticket.fetch_add(1, Ordering::Relaxed);
                        if shard >= fronts.len() {
                            return (parts, worker_stats);
                        }
                        parts.push(drain_shard(
                            fronts[shard],
                            features,
                            exclude,
                            k,
                            threshold,
                            cancel,
                            &mut worker_stats,
                        ));
                    }
                })
            })
            .collect();
        let mut parts = Vec::with_capacity(shard_count);
        let mut merged = SearchStats::default();
        for handle in handles {
            let (worker_parts, s) = handle.join().expect("racing scatter worker panicked");
            parts.extend(worker_parts);
            merged.merge(&s);
        }
        (parts, merged)
    });
    stats.merge(&worker_stats);
    debug_assert!(!stats.cancelled, "never-token scatter cannot cancel");
    (merge_top_k(parts, k), stats)
}

/// [`scatter_gather_racing`] with a deadline and a per-shard gate — the
/// racing counterpart of [`scatter_gather_deadline`].
///
/// All shard guards are acquired up front (ascending — one consistent
/// cut, like the non-deadline path), then workers claim shards off the
/// ticket: each claim polls `cancel` (a fired deadline stops the worker;
/// unclaimed shards stay unanswered), runs the gate (a veto skips the
/// shard but the worker continues — one bad shard degrades coverage, not
/// availability), and drains the shard against the shared threshold.  A
/// gate that *stalls* (an injected delay fault) stalls only its own
/// worker; the other workers keep draining their shards — under the
/// sequential path the same stall would block every shard behind it, so
/// racing is exactly what turns "a delayed shard costs the whole tail of
/// the scatter" into "a delayed shard costs only its own coverage".
///
/// A shard is `answered` iff its gate passed and its drain ran to
/// completion; hits proven before a deadline fires are exact, so the
/// merged result is an honest partial, never a wrong one.
#[allow(clippy::too_many_arguments)] // deadline + gate + worker bound: the full racing contract
fn scatter_gather_deadline_racing<R: std::ops::Deref<Target = Corpus>>(
    shard_count: usize,
    mut shard_at: impl FnMut(usize) -> R,
    features: &QueryFeatures,
    exclude: &WorkflowId,
    k: usize,
    cancel: &CancelToken,
    shard_gate: &(impl Fn(usize) -> bool + Sync),
    max_workers: usize,
) -> DegradedSearch {
    let guards: Vec<R> = (0..shard_count).map(&mut shard_at).collect();
    let fronts: Vec<&Corpus> = guards.iter().map(|guard| &**guard).collect();
    let workers = max_workers.max(1).min(shard_count.max(1));
    let threshold = SearchThreshold::new();
    let ticket = AtomicUsize::new(0);
    let mut stats = SearchStats::default();
    let mut answered = vec![false; shard_count];
    let mut parts: Vec<Vec<SearchHit>> = Vec::with_capacity(shard_count);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let (fronts, threshold, ticket) = (&fronts, &threshold, &ticket);
                scope.spawn(move || {
                    let mut drained: Vec<(usize, bool, Vec<SearchHit>)> = Vec::new();
                    let mut worker_stats = SearchStats::default();
                    loop {
                        // ordering: Relaxed — work-stealing shard ticket,
                        // as in `scatter_gather_racing`; the scope join
                        // publishes the results.
                        let shard = ticket.fetch_add(1, Ordering::Relaxed);
                        if shard >= fronts.len() {
                            break;
                        }
                        // A fired deadline stops this worker; shards it
                        // would have claimed stay unanswered.
                        if cancel.is_cancelled() {
                            worker_stats.cancelled = true;
                            break;
                        }
                        // A vetoed shard (injected fault) is skipped but
                        // the worker keeps claiming.
                        if !shard_gate(shard) {
                            continue;
                        }
                        let mut drain_stats = SearchStats::default();
                        let hits = drain_shard(
                            fronts[shard],
                            features,
                            exclude,
                            k,
                            threshold,
                            cancel,
                            &mut drain_stats,
                        );
                        // A drain cut short still contributes the exact
                        // hits it proved; it just stays unanswered.
                        let completed = !drain_stats.cancelled;
                        worker_stats.merge(&drain_stats);
                        drained.push((shard, completed, hits));
                    }
                    (drained, worker_stats)
                })
            })
            .collect();
        for handle in handles {
            let (drained, worker_stats) = handle.join().expect("racing deadline worker panicked");
            stats.merge(&worker_stats);
            for (shard, completed, hits) in drained {
                answered[shard] = completed;
                parts.push(hits);
            }
        }
    });
    let degraded = answered.iter().any(|&a| !a);
    DegradedSearch {
        hits: merge_top_k(parts, k),
        answered,
        degraded,
        stats,
    }
}

/// A concurrent serving wrapper around a [`ShardedCorpus`]: one `RwLock`
/// per shard, so any number of searches proceed in parallel and churn
/// (`add` / `remove`) only write-locks the single shard owning the id.
///
/// # Invariants and consistency model
///
/// * Routing is fixed at construction (partition + shard count); churn
///   never migrates a workflow between shards, so an id has exactly one
///   owner lock.
/// * A search read-locks the owner shard to extract query features, then
///   acquires shard read locks in ascending index order and holds them to
///   the end: a plain search takes **all** of them up front (one
///   consistent cut, scanned as a single global frontier), a deadline
///   search accumulates them as shards are admitted (each shard seen as
///   of its admission instant).  Either way a workflow removed (or added)
///   *before* the search started is guaranteed excluded (or visible) —
///   the churn invariant the stress tests assert.  Deadlock freedom:
///   every multi-lock path takes the routes mutex first (and releases it
///   before shard locks) and orders shard locks ascending; writers hold
///   routes, then exactly one shard write lock.
/// * On a quiescent corpus, results are bit-identical to
///   [`ShardedCorpus::search`] and hence to the single-corpus engine.
pub struct CorpusService {
    config: SimilarityConfig,
    partition: ShardPartition,
    shards: Vec<RwLock<Corpus>>,
    /// Round-robin routing state: id → shard plus the rotation cursor
    /// (unused, but kept consistent, for hash partitions).
    routes: Mutex<(BTreeMap<WorkflowId, u32>, usize)>,
    threads: usize,
    /// Intra-query scan strategy, inherited from the wrapped
    /// [`ShardedCorpus`] (see [`SearchParallelism`]).
    parallelism: SearchParallelism,
}

impl CorpusService {
    /// Wraps a built sharded corpus for concurrent serving (inheriting
    /// its [`SearchParallelism`]).
    pub fn new(sharded: ShardedCorpus) -> Self {
        CorpusService {
            config: sharded.config,
            partition: sharded.partition,
            shards: sharded.shards.into_iter().map(RwLock::new).collect(),
            routes: Mutex::new((sharded.routes, sharded.next_rr)),
            threads: 4,
            parallelism: sharded.parallelism,
        }
    }

    /// Sets the number of worker threads for
    /// [`CorpusService::search_batch`] (at least 1).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Sets the intra-query scan strategy.  Racing searches spawn plain
    /// `std` scoped threads, so a racing service must not be driven from
    /// inside a shuttle-mini model run (the model-check suite races
    /// [`drain_shard`] directly instead).
    pub fn with_parallelism(mut self, parallelism: SearchParallelism) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// The intra-query scan strategy.
    pub fn parallelism(&self) -> SearchParallelism {
        self.parallelism
    }

    /// Unwraps the service back into the single-owner [`ShardedCorpus`].
    pub fn into_sharded(self) -> ShardedCorpus {
        let (routes, next_rr) = self.routes.into_inner().expect("route state poisoned");
        ShardedCorpus {
            config: self.config,
            partition: self.partition,
            shards: self
                .shards
                .into_iter()
                .map(|lock| lock.into_inner().expect("shard lock poisoned"))
                .collect(),
            routes,
            next_rr,
            parallelism: self.parallelism,
        }
    }

    /// The configured similarity algorithm.
    pub fn config(&self) -> &SimilarityConfig {
        &self.config
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Total workflows across shards (each shard counted at the instant
    /// its lock is taken).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| self.read(s).len()).sum()
    }

    /// True when every shard is empty.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| self.read(s).is_empty())
    }

    /// True when the id is resident.
    pub fn contains(&self, id: &WorkflowId) -> bool {
        match self.owner_of(id) {
            Some(shard) => self.read(&self.shards[shard]).index_of(id).is_some(),
            None => false,
        }
    }

    fn read<'a>(&self, lock: &'a RwLock<Corpus>) -> RwLockReadGuard<'a, Corpus> {
        lock.read().expect("shard lock poisoned")
    }

    /// The shard an id routes to (`None` only for round-robin ids never
    /// seen).
    fn owner_of(&self, id: &WorkflowId) -> Option<usize> {
        match self.partition {
            ShardPartition::HashId => Some(hash_route(id, self.shards.len())),
            ShardPartition::RoundRobin => {
                let routes = self.routes.lock().expect("route state poisoned");
                routes.0.get(id).map(|&s| s as usize)
            }
        }
    }

    /// Inserts (or replaces) a workflow, write-locking only the owning
    /// shard.  Returns the shard index.
    ///
    /// Round-robin routing holds the route lock *across* the shard write
    /// (lock order: routes, then shard — the same as
    /// [`CorpusService::remove`]): releasing it between assignment and
    /// insertion would let a concurrent remove of the same id observe the
    /// route before the workflow exists, or delete the route while the
    /// insertion is in flight, stranding a resident without a route.
    pub fn add(&self, wf: Workflow) -> usize {
        match self.partition {
            ShardPartition::HashId => {
                let shard = hash_route(&wf.id, self.shards.len());
                self.shards[shard]
                    .write()
                    .expect("shard lock poisoned")
                    .add(wf);
                shard
            }
            ShardPartition::RoundRobin => {
                let mut routes = self.routes.lock().expect("route state poisoned");
                let shard = match routes.0.get(&wf.id) {
                    Some(&s) => s as usize,
                    None => {
                        let s = routes.1 % self.shards.len();
                        routes.1 += 1;
                        routes.0.insert(wf.id.clone(), s as u32);
                        s
                    }
                };
                self.shards[shard]
                    .write()
                    .expect("shard lock poisoned")
                    .add(wf);
                shard
            }
        }
    }

    /// Removes a workflow by id, write-locking only the owning shard.
    ///
    /// Round-robin routing mutates the route map and the shard under one
    /// route lock (routes, then shard — matching [`CorpusService::add`]),
    /// so the "id resident ⇔ id routed" invariant holds at every instant
    /// another thread can observe.
    pub fn remove(&self, id: &WorkflowId) -> Option<Workflow> {
        match self.partition {
            ShardPartition::HashId => {
                let shard = hash_route(id, self.shards.len());
                self.shards[shard]
                    .write()
                    .expect("shard lock poisoned")
                    .remove(id)
            }
            ShardPartition::RoundRobin => {
                let mut routes = self.routes.lock().expect("route state poisoned");
                let shard = *routes.0.get(id)? as usize;
                let removed = self.shards[shard]
                    .write()
                    .expect("shard lock poisoned")
                    .remove(id);
                if removed.is_some() {
                    routes.0.remove(id);
                }
                removed
            }
        }
    }

    /// Scatter-gather top-k for a resident query id; `None` when the id is
    /// not resident at the time the owning shard is read.  Proceeds
    /// concurrently with searches on every shard and with churn on other
    /// shards.
    pub fn search(&self, query: &WorkflowId, k: usize) -> Option<Vec<SearchHit>> {
        let owner = self.owner_of(query)?;
        let features = {
            let shard = self.read(&self.shards[owner]);
            let wf = shard.get(query)?;
            shard.measure().query_features(wf)
        };
        let (hits, _) = match self.parallelism {
            SearchParallelism::Sequential => scatter_gather(
                self.shards.len(),
                |i| self.read(&self.shards[i]),
                &features,
                query,
                k,
            ),
            SearchParallelism::Racing { max_workers } => scatter_gather_racing(
                self.shards.len(),
                |i| self.read(&self.shards[i]),
                &features,
                query,
                k,
                max_workers,
            ),
        };
        Some(hits)
    }

    /// Deadline-bound scatter-gather over the live corpus: polls `cancel`
    /// between shard lock acquisitions and between candidates of the
    /// global frontier scan, returning the exact partial top-k
    /// flagged [`degraded`](DegradedSearch::degraded) when the deadline
    /// fires mid-search.  `None` when the query id is not resident at the
    /// time the owning shard is read.
    pub fn search_deadline(
        &self,
        query: &WorkflowId,
        k: usize,
        cancel: &CancelToken,
    ) -> Option<DegradedSearch> {
        self.search_deadline_with(query, k, cancel, |_| true)
    }

    /// [`CorpusService::search_deadline`] with a per-shard gate: the gate
    /// runs *before* each shard's read lock is taken and may veto the
    /// visit (returning `false` marks the shard unanswered and the result
    /// degraded) or stall inside it — the hook the serving layer's
    /// fault-injection plan uses to delay or fail individual shards
    /// deterministically.
    pub fn search_deadline_with(
        &self,
        query: &WorkflowId,
        k: usize,
        cancel: &CancelToken,
        shard_gate: impl Fn(usize) -> bool + Sync,
    ) -> Option<DegradedSearch> {
        let owner = self.owner_of(query)?;
        let features = {
            let shard = self.read(&self.shards[owner]);
            let wf = shard.get(query)?;
            shard.measure().query_features(wf)
        };
        Some(match self.parallelism {
            SearchParallelism::Sequential => scatter_gather_deadline(
                self.shards.len(),
                |i| self.read(&self.shards[i]),
                &features,
                query,
                k,
                cancel,
                shard_gate,
            ),
            SearchParallelism::Racing { max_workers } => scatter_gather_deadline_racing(
                self.shards.len(),
                |i| self.read(&self.shards[i]),
                &features,
                query,
                k,
                cancel,
                &shard_gate,
                max_workers,
            ),
        })
    }

    /// Query by example over the live corpus (residents sharing the
    /// query's id are excluded).
    pub fn search_workflow(&self, wf: &Workflow, k: usize) -> Vec<SearchHit> {
        let features = self.read(&self.shards[0]).measure().query_features(wf);
        match self.parallelism {
            SearchParallelism::Sequential => scatter_gather(
                self.shards.len(),
                |i| self.read(&self.shards[i]),
                &features,
                &wf.id,
                k,
            ),
            SearchParallelism::Racing { max_workers } => scatter_gather_racing(
                self.shards.len(),
                |i| self.read(&self.shards[i]),
                &features,
                &wf.id,
                k,
                max_workers,
            ),
        }
        .0
    }

    /// Answers a batch of queries on the service's worker threads, each
    /// query running a full scatter-gather concurrently with the others
    /// (and with any churn).  Results align with `queries`.
    pub fn search_batch(&self, queries: &[WorkflowId], k: usize) -> Vec<Option<Vec<SearchHit>>> {
        if queries.is_empty() {
            return Vec::new();
        }
        let workers = self.threads.min(queries.len());
        let cursor = AtomicUsize::new(0);
        let mut results: Vec<Option<Vec<SearchHit>>> = vec![None; queries.len()];
        let gathered = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let cursor = &cursor;
                    scope.spawn(move || {
                        let mut out = Vec::new();
                        loop {
                            // ordering: Relaxed — work-stealing ticket, as
                            // in `ShardedCorpus::search_batch`: uniqueness
                            // comes from fetch_add's atomicity, publication
                            // of results from the scope join.
                            let qi = cursor.fetch_add(1, Ordering::Relaxed);
                            if qi >= queries.len() {
                                return out;
                            }
                            out.push((qi, self.search(&queries[qi], k)));
                        }
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("batch search worker panicked"))
                .collect::<Vec<_>>()
        });
        for (qi, hits) in gathered {
            results[qi] = hits;
        }
        results
    }

    /// Persists the live corpus as a sharded snapshot: the manifest plus
    /// one snapshot per shard, each shard serialized under its read lock
    /// (a save concurrent with churn is per-shard consistent).
    pub fn save(&self, dir: impl AsRef<Path>) -> io::Result<()> {
        let dir: PathBuf = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        let next_rr = self.routes.lock().expect("route state poisoned").1;
        let manifest = manifest_line(self.shards.len(), self.partition, next_rr, &self.config);
        std::fs::write(dir.join(SHARD_MANIFEST_FILE), manifest)?;
        for (i, lock) in self.shards.iter().enumerate() {
            self.read(lock).save(dir.join(shard_file_name(i)))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wf_model::{builder::WorkflowBuilder, ModuleType};

    fn wf(id: &str, labels: &[&str]) -> Workflow {
        let mut b = WorkflowBuilder::new(id)
            .title(format!("workflow {id}"))
            .tag("test");
        for l in labels {
            b = b.module(*l, ModuleType::WsdlService, |m| m);
        }
        for pair in labels.windows(2) {
            b = b.link(pair[0], pair[1]);
        }
        b.build().unwrap()
    }

    fn sample() -> Vec<Workflow> {
        vec![
            wf("a", &["fetch sequence", "run blast", "render report"]),
            wf("b", &["fetch sequence", "run blast", "plot hits"]),
            wf("c", &["parse tree", "cluster genes"]),
            wf("d", &["parse tree", "cluster genes", "plot hits"]),
            wf("e", &[]),
            wf("f", &["run blast"]),
        ]
    }

    fn config() -> SimilarityConfig {
        SimilarityConfig::best_module_sets()
    }

    fn assert_matches_single(sharded: &ShardedCorpus, what: &str) {
        let single = Corpus::build(config(), sharded_workflows(sharded));
        for id in sharded.ids() {
            for k in [0, 2, 10] {
                let expected = single.top_k(&id, k).expect("resident in single corpus");
                assert_eq!(
                    sharded.search(&id, k).expect("resident in shards"),
                    expected,
                    "{what}: query {id}, k {k}"
                );
            }
        }
    }

    fn sharded_workflows(sharded: &ShardedCorpus) -> Vec<Workflow> {
        sharded
            .ids()
            .iter()
            .map(|id| sharded.get(id).unwrap().clone())
            .collect()
    }

    #[test]
    fn build_routes_every_workflow_to_exactly_one_shard() {
        for partition in [ShardPartition::HashId, ShardPartition::RoundRobin] {
            let sharded = ShardedCorpus::build_with(config(), 3, partition, sample());
            assert_eq!(sharded.len(), 6, "{partition}");
            assert_eq!(sharded.shard_count(), 3);
            for id in sharded.ids() {
                let owner = sharded.shard_of(&id).expect("resident");
                let holders = sharded
                    .shards()
                    .iter()
                    .filter(|s| s.index_of(&id).is_some())
                    .count();
                assert_eq!(holders, 1, "{partition}: {id}");
                assert!(sharded.shards()[owner].index_of(&id).is_some());
            }
            assert!(sharded.contains(&"a".into()));
            assert!(!sharded.contains(&"zzz".into()));
            assert_eq!(sharded.get(&"c".into()).unwrap().module_count(), 2);
        }
    }

    #[test]
    fn round_robin_keeps_shards_balanced() {
        let sharded = ShardedCorpus::build_with(config(), 4, ShardPartition::RoundRobin, sample());
        let sizes: Vec<usize> = sharded.shards().iter().map(Corpus::len).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 6);
        assert!(sizes.iter().all(|&s| s == 1 || s == 2), "{sizes:?}");
    }

    #[test]
    fn zero_shard_count_is_clamped_to_one() {
        let sharded = ShardedCorpus::build(config(), 0, sample());
        assert_eq!(sharded.shard_count(), 1);
        assert_eq!(sharded.len(), 6);
    }

    #[test]
    fn duplicate_build_ids_replace_like_a_single_corpus() {
        let mut workflows = sample();
        workflows.push(wf("b", &["totally different"]));
        let sharded = ShardedCorpus::build(config(), 3, workflows);
        assert_eq!(sharded.len(), 6);
        assert_eq!(sharded.get(&"b".into()).unwrap().module_count(), 1);
    }

    #[test]
    fn search_matches_the_single_corpus_engine_for_every_partition() {
        for shards in [1, 2, 4, 8] {
            for partition in [ShardPartition::HashId, ShardPartition::RoundRobin] {
                let sharded = ShardedCorpus::build_with(config(), shards, partition, sample());
                assert_matches_single(&sharded, &format!("{shards} shards, {partition}"));
            }
        }
    }

    #[test]
    fn unknown_query_ids_are_none_and_k0_is_empty() {
        let sharded = ShardedCorpus::build(config(), 2, sample());
        assert!(sharded.search(&"zzz".into(), 3).is_none());
        assert_eq!(sharded.search(&"a".into(), 0).unwrap(), Vec::new());
        let (_, stats) = sharded.search_with_stats(&"a".into(), 3).unwrap();
        assert_eq!(stats.candidates, 5, "all non-query residents considered");
    }

    #[test]
    fn churn_routes_through_owning_shards() {
        for partition in [ShardPartition::HashId, ShardPartition::RoundRobin] {
            let mut sharded = ShardedCorpus::build_with(config(), 3, partition, sample());
            assert!(sharded.remove(&"b".into()).is_some());
            assert!(sharded.remove(&"b".into()).is_none());
            assert_eq!(sharded.len(), 5);
            let shard = sharded.add(wf("g", &["run blast", "plot hits"]));
            assert_eq!(sharded.shard_of(&"g".into()), Some(shard));
            // Replacement stays in the owning shard.
            let again = sharded.add(wf("g", &["parse tree"]));
            assert_eq!(shard, again, "{partition}");
            assert_eq!(sharded.len(), 6);
            assert_eq!(sharded.get(&"g".into()).unwrap().module_count(), 1);
            assert_matches_single(&sharded, &format!("churned, {partition}"));
        }
    }

    #[test]
    fn search_workflow_answers_external_queries() {
        let sharded = ShardedCorpus::build(config(), 3, sample());
        // A non-resident query scores against everything...
        let external = wf("external", &["run blast", "render report"]);
        let hits = sharded.search_workflow(&external, sharded.len());
        assert_eq!(hits.len(), 6);
        assert!(hits.iter().all(|h| h.id.as_str() != "external"));
        // ... and a resident's workflow reproduces the by-id search.
        let resident = sharded.get(&"a".into()).unwrap().clone();
        assert_eq!(
            sharded.search_workflow(&resident, 3),
            sharded.search(&"a".into(), 3).unwrap()
        );
    }

    #[test]
    fn search_batch_matches_sequential_search() {
        let sharded = ShardedCorpus::build(config(), 4, sample());
        let mut queries: Vec<WorkflowId> = sharded.ids();
        queries.push("zzz".into());
        for threads in [1, 3, 16] {
            let batch = sharded.search_batch(&queries, 3, threads);
            assert_eq!(batch.len(), queries.len());
            for (query, hits) in queries.iter().zip(&batch) {
                assert_eq!(
                    hits.as_ref(),
                    sharded.search(query, 3).as_ref(),
                    "threads {threads}, query {query}"
                );
            }
        }
        assert!(sharded.search_batch(&[], 3, 4).is_empty());
    }

    #[test]
    fn sharded_snapshot_roundtrips_including_empty_shards() {
        let dir = std::env::temp_dir().join("wfsim-shard-snapshot-test");
        let _ = std::fs::remove_dir_all(&dir);
        // Round-robin over more shards than workflows forces empty shards.
        let sharded = ShardedCorpus::build_with(
            config(),
            5,
            ShardPartition::RoundRobin,
            sample().into_iter().take(3),
        );
        assert!(sharded.shards().iter().any(Corpus::is_empty));
        sharded.save(&dir).unwrap();
        let restored = ShardedCorpus::load(&dir, config()).unwrap();
        assert_eq!(restored.shard_count(), 5);
        assert_eq!(restored.partition(), ShardPartition::RoundRobin);
        assert_eq!(restored.ids(), sharded.ids());
        for id in sharded.ids() {
            assert_eq!(
                restored.search(&id, 3).unwrap(),
                sharded.search(&id, 3).unwrap(),
                "query {id}"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sharded_snapshot_rejects_mismatches_with_typed_errors() {
        let dir = std::env::temp_dir().join("wfsim-shard-snapshot-errors");
        let _ = std::fs::remove_dir_all(&dir);
        let sharded = ShardedCorpus::build(config(), 2, sample());
        sharded.save(&dir).unwrap();

        assert!(matches!(
            ShardedCorpus::load(&dir, SimilarityConfig::bag_of_words()),
            Err(ShardSnapshotError::ConfigMismatch { .. })
        ));

        // Corrupt one shard body: the per-shard checksum catches it.
        let shard_path = dir.join(shard_file_name(1));
        let text = std::fs::read_to_string(&shard_path).unwrap();
        std::fs::write(&shard_path, text.replace("\"id\"", "\"ID\"")).unwrap();
        assert!(matches!(
            ShardedCorpus::load(&dir, config()),
            Err(ShardSnapshotError::Shard {
                shard: 1,
                error: SnapshotError::ChecksumMismatch
            })
        ));

        // load_or_build falls back to a clean rebuild.
        let (rebuilt, origin) =
            ShardedCorpus::load_or_build(&dir, config(), 2, ShardPartition::HashId, sample());
        assert!(matches!(origin, ShardOrigin::Rebuilt(_)));
        assert!(!origin.is_snapshot());
        assert_eq!(rebuilt.len(), 6);

        // A missing manifest and a garbage manifest are typed, too.
        std::fs::write(dir.join(SHARD_MANIFEST_FILE), "junk manifest\n").unwrap();
        assert!(matches!(
            ShardedCorpus::load(&dir, config()),
            Err(ShardSnapshotError::Manifest(_))
        ));
        let _ = std::fs::remove_dir_all(&dir);
        assert!(matches!(
            ShardedCorpus::load(&dir, config()),
            Err(ShardSnapshotError::Io(_))
        ));
    }

    #[test]
    fn service_serves_searches_and_churn_through_locks() {
        let service =
            CorpusService::new(ShardedCorpus::build(config(), 3, sample())).with_threads(4);
        assert_eq!(service.shard_count(), 3);
        assert_eq!(service.len(), 6);
        assert!(!service.is_empty());
        assert!(service.contains(&"a".into()));

        let sharded_ref = ShardedCorpus::build(config(), 3, sample());
        for id in sharded_ref.ids() {
            assert_eq!(
                service.search(&id, 4).unwrap(),
                sharded_ref.search(&id, 4).unwrap(),
                "quiescent service must equal the sharded corpus"
            );
        }
        let queries: Vec<WorkflowId> = sharded_ref.ids();
        let batch = service.search_batch(&queries, 4);
        for (query, hits) in queries.iter().zip(&batch) {
            assert_eq!(hits.as_ref(), sharded_ref.search(query, 4).as_ref());
        }

        service.remove(&"b".into());
        assert!(!service.contains(&"b".into()));
        assert!(service.search(&"b".into(), 2).is_none());
        service.add(wf("g", &["run blast"]));
        assert_eq!(service.len(), 6);
        let external = service.search_workflow(&wf("probe", &["run blast"]), 2);
        assert_eq!(external.len(), 2);

        // Round-trip service → sharded keeps contents.
        let back = service.into_sharded();
        assert_eq!(back.len(), 6);
        assert!(back.contains(&"g".into()));
    }

    #[test]
    fn service_save_writes_a_loadable_sharded_snapshot() {
        let dir = std::env::temp_dir().join("wfsim-service-snapshot-test");
        let _ = std::fs::remove_dir_all(&dir);
        let service = CorpusService::new(ShardedCorpus::build_with(
            config(),
            2,
            ShardPartition::RoundRobin,
            sample(),
        ));
        service.add(wf("g", &["run blast"]));
        service.save(&dir).unwrap();
        let restored = ShardedCorpus::load(&dir, config()).unwrap();
        assert_eq!(restored.len(), 7);
        assert!(restored.contains(&"g".into()));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn never_token_deadline_search_equals_plain_search() {
        let sharded = ShardedCorpus::build_with(config(), 3, ShardPartition::RoundRobin, sample());
        for id in sharded.ids() {
            let plain = sharded.search(&id, 3).expect("resident");
            let result = sharded
                .search_deadline(&id, 3, &CancelToken::never())
                .expect("resident");
            assert!(!result.degraded, "a never token cannot degrade");
            assert!(result.answered.iter().all(|&a| a));
            assert_eq!(result.answered_count(), 3);
            assert_eq!(result.hits, plain, "query {id}");
        }
    }

    #[test]
    fn pre_fired_deadline_returns_empty_fully_degraded_result() {
        let sharded = ShardedCorpus::build_with(config(), 2, ShardPartition::RoundRobin, sample());
        let token = CancelToken::never();
        token.cancel();
        let result = sharded
            .search_deadline(&"a".into(), 3, &token)
            .expect("residency is checked before the deadline");
        assert!(result.degraded);
        assert_eq!(result.answered, vec![false, false]);
        assert!(result.hits.is_empty());
        assert!(result.stats.cancelled);
        assert_eq!(result.stats.scored, 0);
    }

    #[test]
    fn vetoed_shard_degrades_coverage_not_correctness() {
        let service = CorpusService::new(ShardedCorpus::build_with(
            config(),
            3,
            ShardPartition::RoundRobin,
            sample(),
        ));
        let query: WorkflowId = "a".into();
        let full = service.search(&query, 10).expect("resident");
        for vetoed in 0..3 {
            let result = service
                .search_deadline_with(&query, 10, &CancelToken::never(), |s| s != vetoed)
                .expect("resident");
            assert!(result.degraded, "vetoing shard {vetoed} must degrade");
            for (shard, &answered) in result.answered.iter().enumerate() {
                assert_eq!(answered, shard != vetoed, "shard {shard}");
            }
            assert_eq!(result.answered_count(), 2);
            // Coverage shrinks — correctness does not: every surviving hit
            // carries the exact score the full search proved for that id.
            assert!(result.hits.len() <= full.len());
            for hit in &result.hits {
                let reference = full
                    .iter()
                    .find(|h| h.id == hit.id)
                    .expect("degraded hit exists in the full result");
                assert_eq!(hit.score.to_bits(), reference.score.to_bits());
            }
        }
    }

    #[test]
    fn deadline_firing_mid_scatter_keeps_admitted_shards_exact() {
        // The deadline fires while shard 2 is being admitted: shards 0 and
        // 1 were already drained, so the partial result must be *exactly*
        // the full ranking restricted to their residents — work completed
        // before the deadline survives it, nothing else leaks in.
        let sharded = ShardedCorpus::build_with(config(), 4, ShardPartition::RoundRobin, sample());
        let admitted: Vec<WorkflowId> = sharded.shards()[..2]
            .iter()
            .flat_map(|shard| shard.ids().to_vec())
            .collect();
        let service = CorpusService::new(sharded);
        let query: WorkflowId = "a".into();
        let full = service.search(&query, 10).expect("resident");
        let token = CancelToken::never();
        let result = service
            .search_deadline_with(&query, 10, &token, |shard| {
                if shard == 2 {
                    token.cancel();
                }
                true
            })
            .expect("resident");
        assert!(result.degraded);
        assert!(result.stats.cancelled);
        assert_eq!(result.answered, vec![true, true, false, false]);
        let expected: Vec<SearchHit> = full
            .iter()
            .filter(|hit| admitted.contains(&hit.id))
            .cloned()
            .collect();
        assert_eq!(result.hits, expected, "admitted shards answer exactly");
        assert!(result.hits.len() < full.len(), "coverage genuinely shrank");
    }

    #[test]
    fn racing_search_is_bit_identical_to_sequential_for_every_partition() {
        for shards in [1, 2, 4, 8] {
            for partition in [ShardPartition::HashId, ShardPartition::RoundRobin] {
                let sequential = ShardedCorpus::build_with(config(), shards, partition, sample());
                for max_workers in [1, 2, 16, usize::MAX] {
                    let racing = ShardedCorpus::build_with(config(), shards, partition, sample())
                        .with_parallelism(SearchParallelism::Racing { max_workers });
                    assert_eq!(
                        racing.parallelism().workers_for(shards),
                        max_workers.max(1).min(shards)
                    );
                    for id in sequential.ids() {
                        for k in [0, 2, 10] {
                            let expected = sequential.search(&id, k).expect("resident");
                            let got = racing.search(&id, k).expect("resident");
                            assert_eq!(got.len(), expected.len());
                            for (g, e) in got.iter().zip(&expected) {
                                assert_eq!(g.id, e.id, "{shards} shards, {max_workers} workers");
                                assert_eq!(g.score.to_bits(), e.score.to_bits());
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn racing_search_workflow_matches_sequential() {
        let sequential = ShardedCorpus::build(config(), 4, sample());
        let racing = ShardedCorpus::build(config(), 4, sample())
            .with_parallelism(SearchParallelism::racing_per_shard());
        let external = wf("external", &["run blast", "render report"]);
        assert_eq!(
            racing.search_workflow(&external, 10),
            sequential.search_workflow(&external, 10)
        );
    }

    #[test]
    fn racing_never_token_deadline_search_equals_plain_search() {
        let sharded = ShardedCorpus::build_with(config(), 3, ShardPartition::RoundRobin, sample())
            .with_parallelism(SearchParallelism::racing_per_shard());
        for id in sharded.ids() {
            let plain = sharded.search(&id, 3).expect("resident");
            let result = sharded
                .search_deadline(&id, 3, &CancelToken::never())
                .expect("resident");
            assert!(!result.degraded, "a never token cannot degrade");
            assert!(result.answered.iter().all(|&a| a));
            assert_eq!(result.hits, plain, "query {id}");
        }
    }

    #[test]
    fn racing_pre_fired_deadline_returns_empty_fully_degraded_result() {
        let sharded = ShardedCorpus::build_with(config(), 2, ShardPartition::RoundRobin, sample())
            .with_parallelism(SearchParallelism::Racing { max_workers: 2 });
        let token = CancelToken::never();
        token.cancel();
        let result = sharded
            .search_deadline(&"a".into(), 3, &token)
            .expect("residency is checked before the deadline");
        assert!(result.degraded);
        assert_eq!(result.answered, vec![false, false]);
        assert!(result.hits.is_empty());
        assert!(result.stats.cancelled);
        assert_eq!(result.stats.scored, 0);
    }

    #[test]
    fn racing_vetoed_shard_degrades_coverage_not_correctness() {
        let service = CorpusService::new(ShardedCorpus::build_with(
            config(),
            3,
            ShardPartition::RoundRobin,
            sample(),
        ))
        .with_parallelism(SearchParallelism::racing_per_shard());
        let query: WorkflowId = "a".into();
        let full = service.search(&query, 10).expect("resident");
        for vetoed in 0..3 {
            let result = service
                .search_deadline_with(&query, 10, &CancelToken::never(), |s| s != vetoed)
                .expect("resident");
            assert!(result.degraded, "vetoing shard {vetoed} must degrade");
            for (shard, &answered) in result.answered.iter().enumerate() {
                assert_eq!(answered, shard != vetoed, "shard {shard}");
            }
            for hit in &result.hits {
                let reference = full
                    .iter()
                    .find(|h| h.id == hit.id)
                    .expect("degraded hit exists in the full result");
                assert_eq!(hit.score.to_bits(), reference.score.to_bits());
            }
        }
    }

    #[test]
    fn racing_zero_workers_clamps_to_one_and_stays_exact() {
        let sharded = ShardedCorpus::build(config(), 3, sample())
            .with_parallelism(SearchParallelism::Racing { max_workers: 0 });
        assert_eq!(sharded.parallelism().workers_for(3), 1);
        assert_matches_single(&sharded, "racing clamped to one worker");
    }

    #[test]
    fn service_inherits_and_returns_parallelism() {
        let sharded = ShardedCorpus::build(config(), 2, sample())
            .with_parallelism(SearchParallelism::Racing { max_workers: 2 });
        let service = CorpusService::new(sharded);
        assert_eq!(
            service.parallelism(),
            SearchParallelism::Racing { max_workers: 2 }
        );
        let back = service.into_sharded();
        assert_eq!(
            back.parallelism(),
            SearchParallelism::Racing { max_workers: 2 }
        );
    }

    #[test]
    fn service_deadline_search_with_open_gate_is_not_degraded() {
        let service = CorpusService::new(ShardedCorpus::build_with(
            config(),
            2,
            ShardPartition::HashId,
            sample(),
        ));
        let query: WorkflowId = "b".into();
        let full = service.search(&query, 4).expect("resident");
        let result = service
            .search_deadline(&query, 4, &CancelToken::never())
            .expect("resident");
        assert!(!result.degraded);
        assert_eq!(result.hits, full);
        assert!(service
            .search_deadline(&"nope".into(), 4, &CancelToken::never())
            .is_none());
    }
}
