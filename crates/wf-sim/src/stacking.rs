//! Beyond score averaging: rank aggregation and weight learning.
//!
//! Section 6 (finding 5) of the paper names "advanced methods such as
//! boosting or stacking" as future work on top of its plain score-averaging
//! ensembles.  This module provides the two natural next steps:
//!
//! * [`RankEnsemble`] — combine measures at the *ranking* level instead of
//!   the score level (a Borda-count aggregation).  This removes the implicit
//!   assumption of score averaging that all members are calibrated on the
//!   same \[0, 1\] scale.
//! * [`learn_weights`] — fit the weights of a weighted-average [`Ensemble`]
//!   to a training objective (e.g. mean ranking correctness against the
//!   expert consensus on a held-out set of queries) with an exhaustive
//!   simplex grid search.  The objective is supplied by the caller so this
//!   crate stays independent of the gold-standard machinery.

use wf_model::Workflow;

use crate::ensemble::Ensemble;
use crate::extended::Measure;
use crate::pipeline::WorkflowSimilarity;

/// An ensemble that aggregates the member measures' *rankings* of a
/// candidate list with Borda counting.
pub struct RankEnsemble {
    members: Vec<Box<dyn Measure>>,
}

impl RankEnsemble {
    /// Creates a rank ensemble from boxed measures.
    pub fn new(members: Vec<Box<dyn Measure>>) -> Self {
        RankEnsemble { members }
    }

    /// Creates a rank ensemble from pipeline measures.
    pub fn from_similarities(members: Vec<WorkflowSimilarity>) -> Self {
        RankEnsemble::new(
            members
                .into_iter()
                .map(|m| Box::new(m) as Box<dyn Measure>)
                .collect(),
        )
    }

    /// The member count.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True when the ensemble has no members.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// The ensemble name, e.g. `borda(BW,MS_ip_te_pll)`.
    pub fn name(&self) -> String {
        let members: Vec<String> = self.members.iter().map(|m| m.measure_name()).collect();
        format!("borda({})", members.join(","))
    }

    /// Ranks the candidates against the query.
    ///
    /// Every member measure scores all candidates; each member's scores are
    /// converted to Borda points (`n - rank`, ties receive the average of
    /// the tied positions' points; candidates the member cannot score
    /// receive 0 points from it).  The result pairs each candidate id with
    /// its mean Borda points across members, sorted descending, and can be
    /// fed directly into `wf_gold::Ranking::from_scores`.
    pub fn rank(&self, query: &Workflow, candidates: &[&Workflow]) -> Vec<(String, f64)> {
        let n = candidates.len();
        let mut points = vec![0.0f64; n];
        for member in &self.members {
            let scores: Vec<Option<f64>> = candidates
                .iter()
                .map(|c| member.measure_opt(query, c))
                .collect();
            // Sort candidate indices by descending score; inapplicable
            // candidates are excluded from this member's vote.
            let mut order: Vec<usize> = (0..n).filter(|i| scores[*i].is_some()).collect();
            let score_of =
                |i: usize| scores[i].expect("order only holds indices whose score is Some");
            order.sort_by(|&i, &j| {
                score_of(j)
                    .partial_cmp(&score_of(i))
                    .expect("similarity scores are not NaN")
            });
            // Assign Borda points n - position, averaging over ties.
            let mut pos = 0usize;
            while pos < order.len() {
                let mut end = pos;
                while end + 1 < order.len()
                    && (score_of(order[end + 1]) - score_of(order[pos])).abs() < 1e-12
                {
                    end += 1;
                }
                let avg_points: f64 =
                    (pos..=end).map(|p| (n - p) as f64).sum::<f64>() / (end - pos + 1) as f64;
                for &idx in &order[pos..=end] {
                    points[idx] += avg_points;
                }
                pos = end + 1;
            }
        }
        let members = self.members.len().max(1) as f64;
        let mut result: Vec<(String, f64)> = candidates
            .iter()
            .zip(&points)
            .map(|(c, p)| (c.id.as_str().to_string(), p / members))
            .collect();
        result.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("points are finite"));
        result
    }
}

impl std::fmt::Debug for RankEnsemble {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RankEnsemble")
            .field("members", &self.name())
            .finish()
    }
}

/// The outcome of a weight-learning run.
#[derive(Debug, Clone, PartialEq)]
pub struct LearnedWeights {
    /// The best weight vector found (sums to 1).
    pub weights: Vec<f64>,
    /// The objective value achieved by those weights.
    pub objective: f64,
}

/// Enumerates all weight vectors of length `members` on the unit simplex
/// with `steps` subdivisions (i.e. weights are multiples of `1/steps`).
pub fn weight_grid(members: usize, steps: usize) -> Vec<Vec<f64>> {
    assert!(members > 0, "at least one member required");
    assert!(steps > 0, "at least one grid step required");
    let mut grid = Vec::new();
    let mut current = vec![0usize; members];
    fill_grid(&mut grid, &mut current, 0, steps, steps);
    grid
}

fn fill_grid(
    grid: &mut Vec<Vec<f64>>,
    current: &mut Vec<usize>,
    index: usize,
    remaining: usize,
    steps: usize,
) {
    if index == current.len() - 1 {
        current[index] = remaining;
        grid.push(current.iter().map(|&c| c as f64 / steps as f64).collect());
        return;
    }
    for units in 0..=remaining {
        current[index] = units;
        fill_grid(grid, current, index + 1, remaining - units, steps);
    }
}

/// Learns ensemble weights by exhaustive grid search on the unit simplex.
///
/// `objective` scores a candidate ensemble (higher is better), typically by
/// computing its mean ranking correctness against the expert consensus on a
/// training set of queries.  Returns the learned weights and the best
/// objective value.  With `steps = 1` this degenerates to picking the single
/// best member; `steps = 10` explores weights in increments of 0.1.
pub fn learn_weights(
    members: &[WorkflowSimilarity],
    steps: usize,
    mut objective: impl FnMut(&Ensemble) -> f64,
) -> LearnedWeights {
    assert!(!members.is_empty(), "at least one member required");
    let mut best: Option<LearnedWeights> = None;
    for weights in weight_grid(members.len(), steps) {
        // Skip degenerate all-zero vectors (cannot happen on the simplex,
        // but keep the guard in case of future changes).
        if weights.iter().all(|w| *w == 0.0) {
            continue;
        }
        let ensemble = Ensemble::weighted(members.to_vec(), weights.clone());
        let value = objective(&ensemble);
        let better = match &best {
            None => true,
            Some(b) => value > b.objective,
        };
        if better {
            best = Some(LearnedWeights {
                weights,
                objective: value,
            });
        }
    }
    best.expect("the simplex grid is never empty")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimilarityConfig;
    use wf_model::{builder::WorkflowBuilder, ModuleType};

    fn annotated(id: &str, title: &str, modules: &[&str]) -> Workflow {
        let mut b = WorkflowBuilder::new(id).title(title);
        for m in modules {
            b = b.module(*m, ModuleType::WsdlService, |x| x);
        }
        for w in modules.windows(2) {
            b = b.link(w[0], w[1]);
        }
        b.build().unwrap()
    }

    #[test]
    fn weight_grid_covers_the_simplex() {
        let grid = weight_grid(2, 4);
        assert_eq!(grid.len(), 5);
        for weights in &grid {
            assert!((weights.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        }
        assert!(grid.contains(&vec![0.0, 1.0]));
        assert!(grid.contains(&vec![1.0, 0.0]));
        assert!(grid.contains(&vec![0.5, 0.5]));
    }

    #[test]
    fn weight_grid_size_follows_stars_and_bars() {
        // C(steps + members - 1, members - 1)
        assert_eq!(weight_grid(3, 4).len(), 15);
        assert_eq!(weight_grid(1, 7), vec![vec![1.0]]);
    }

    #[test]
    #[should_panic(expected = "at least one member")]
    fn weight_grid_rejects_zero_members() {
        let _ = weight_grid(0, 3);
    }

    #[test]
    fn rank_ensemble_orders_by_mean_borda_points() {
        let query = annotated("q", "blast protein search", &["fetch", "blast", "render"]);
        let close = annotated(
            "c",
            "blast protein search workflow",
            &["fetch", "blast", "plot"],
        );
        let far = annotated("f", "weather data import", &["download_csv", "average"]);
        let ensemble = RankEnsemble::from_similarities(vec![
            WorkflowSimilarity::new(SimilarityConfig::bag_of_words()),
            WorkflowSimilarity::new(SimilarityConfig::module_sets_default()),
        ]);
        let ranked = ensemble.rank(&query, &[&far, &close]);
        assert_eq!(ranked.len(), 2);
        assert_eq!(ranked[0].0, "c");
        assert!(ranked[0].1 > ranked[1].1);
    }

    #[test]
    fn rank_ensemble_tolerates_inapplicable_members() {
        // Bag of Tags cannot rate untagged workflows; the structural member
        // still produces a full ranking.
        let query = annotated("q", "blast", &["fetch", "blast"]);
        let a = annotated("a", "blast", &["fetch", "blast"]);
        let b = annotated("b", "other", &["parse"]);
        let ensemble = RankEnsemble::from_similarities(vec![
            WorkflowSimilarity::new(SimilarityConfig::bag_of_tags()),
            WorkflowSimilarity::new(SimilarityConfig::module_sets_default()),
        ]);
        let ranked = ensemble.rank(&query, &[&b, &a]);
        assert_eq!(ranked[0].0, "a");
    }

    #[test]
    fn rank_ensemble_ties_share_points() {
        let query = annotated("q", "blast", &["fetch", "blast"]);
        let a = annotated("a", "blast", &["fetch", "blast"]);
        let b = annotated("b", "blast", &["fetch", "blast"]);
        let ensemble = RankEnsemble::from_similarities(vec![WorkflowSimilarity::new(
            SimilarityConfig::module_sets_default(),
        )]);
        let ranked = ensemble.rank(&query, &[&a, &b]);
        assert!(
            (ranked[0].1 - ranked[1].1).abs() < 1e-12,
            "tied candidates share points"
        );
    }

    #[test]
    fn rank_ensemble_name_lists_members() {
        let ensemble = RankEnsemble::from_similarities(vec![WorkflowSimilarity::new(
            SimilarityConfig::bag_of_words(),
        )]);
        assert_eq!(ensemble.name(), "borda(BW)");
        assert_eq!(ensemble.len(), 1);
        assert!(!ensemble.is_empty());
    }

    #[test]
    fn learn_weights_finds_the_informative_member() {
        // Objective that simply rewards weight on the second member: the
        // grid search must drive the first member's weight to zero.
        let members = vec![
            WorkflowSimilarity::new(SimilarityConfig::bag_of_words()),
            WorkflowSimilarity::new(SimilarityConfig::module_sets_default()),
        ];
        let query = annotated("q", "something entirely different", &["fetch", "blast"]);
        let good = annotated("g", "unrelated words here", &["fetch", "blast"]);
        let bad = annotated("b", "something entirely different", &["parse", "cluster"]);
        let learned = learn_weights(&members, 10, |ensemble| {
            // Reward ranking `good` above `bad` with margin.
            ensemble.similarity(&query, &good) - ensemble.similarity(&query, &bad)
        });
        assert!(learned.weights[1] > learned.weights[0]);
        assert!(learned.objective > 0.0);
    }

    #[test]
    fn learn_weights_with_single_step_picks_one_member() {
        let members = vec![
            WorkflowSimilarity::new(SimilarityConfig::bag_of_words()),
            WorkflowSimilarity::new(SimilarityConfig::module_sets_default()),
        ];
        let learned = learn_weights(&members, 1, |e| e.members().len() as f64);
        // With steps = 1 the grid is {(1,0), (0,1)}; either is fine, but the
        // weights must be a unit vector.
        assert_eq!(learned.weights.iter().filter(|w| **w > 0.5).count(), 1);
    }
}
