//! The three structural workflow-level measures of the paper.
//!
//! * [`module_sets`] — `simMS`: workflows as sets of modules (structure
//!   agnostic),
//! * [`path_sets`] — `simPS`: workflows as sets of source-to-sink paths
//!   (substructure based),
//! * [`graph_edit`] — `simGE`: full-structure comparison via graph edit
//!   distance.

pub mod graph_edit;
pub mod module_sets;
pub mod path_sets;

pub use graph_edit::{graph_edit_similarity, GraphEditDetails};
pub use module_sets::module_sets_similarity;
pub use path_sets::path_sets_similarity;
