//! The Module Sets measure (`simMS`).
//!
//! "Two workflows wf1 and wf2 are treated as sets of modules.  The additive
//! similarity score of the module pairs mapped by maximum weight matching
//! (mw) is used as the non-normalized workflow similarity nnsimMS"
//! (Section 2.1.3), normalized by the similarity-weighted Jaccard index of
//! Section 2.1.4.

use wf_matching::Mapping;
use wf_model::Workflow;

use crate::config::Normalization;
use crate::normalize::jaccard_normalize;

/// Computes `simMS` (or `nnsimMS` when normalization is off) from an
/// already established module mapping.
pub fn module_sets_similarity(
    a: &Workflow,
    b: &Workflow,
    mapping: &Mapping,
    normalization: Normalization,
) -> f64 {
    let nnsim = mapping.total_weight();
    match normalization {
        Normalization::None => nnsim,
        Normalization::SizeNormalized => {
            jaccard_normalize(nnsim, a.module_count(), b.module_count())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping_step::map_modules;
    use crate::module_cmp::ModuleComparisonScheme;
    use wf_matching::MappingStrategy;
    use wf_model::{builder::WorkflowBuilder, ModuleType};
    use wf_repo::PreselectionStrategy;

    fn chain(id: &str, labels: &[&str]) -> Workflow {
        let mut b = WorkflowBuilder::new(id);
        for l in labels {
            b = b.module(*l, ModuleType::WsdlService, |m| m);
        }
        for w in labels.windows(2) {
            b = b.link(w[0], w[1]);
        }
        b.build().unwrap()
    }

    fn sim(a: &Workflow, b: &Workflow, normalization: Normalization) -> f64 {
        let outcome = map_modules(
            a,
            b,
            &ModuleComparisonScheme::pll(),
            PreselectionStrategy::AllPairs,
            MappingStrategy::MaximumWeight,
        );
        module_sets_similarity(a, b, &outcome.mapping, normalization)
    }

    #[test]
    fn identical_workflows_have_similarity_one() {
        let a = chain("a", &["fetch", "blast", "render"]);
        let b = chain("b", &["fetch", "blast", "render"]);
        assert!((sim(&a, &b, Normalization::SizeNormalized) - 1.0).abs() < 1e-9);
        assert!((sim(&a, &b, Normalization::None) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn disjoint_workflows_have_similarity_near_zero() {
        let a = chain("a", &["aaaa", "bbbb"]);
        let b = chain("b", &["xxxx", "yyyy"]);
        assert!(sim(&a, &b, Normalization::SizeNormalized) < 0.05);
    }

    #[test]
    fn partial_overlap_is_between_zero_and_one() {
        let a = chain("a", &["fetch", "blast", "render"]);
        let b = chain("b", &["fetch", "blast", "cluster_results"]);
        let s = sim(&a, &b, Normalization::SizeNormalized);
        assert!(s > 0.4 && s < 1.0, "got {s}");
    }

    #[test]
    fn structure_is_ignored_only_modules_matter() {
        // Same module set, reversed link direction: MS cannot tell them apart.
        let a = chain("a", &["fetch", "blast", "render"]);
        let mut b = chain("b", &["fetch", "blast", "render"]);
        b.links.reverse();
        for l in &mut b.links {
            std::mem::swap(&mut l.from, &mut l.to);
        }
        assert!((sim(&a, &b, Normalization::SizeNormalized) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn size_normalization_penalises_size_mismatch() {
        let small = chain("a", &["fetch", "blast"]);
        let large = chain(
            "b",
            &["fetch", "blast", "parse", "filter", "cluster", "render"],
        );
        let normalized = sim(&small, &large, Normalization::SizeNormalized);
        let raw = sim(&small, &large, Normalization::None);
        assert!((raw - 2.0).abs() < 1e-9, "both small modules map perfectly");
        assert!(
            normalized < 0.5,
            "but the big workflow has much more going on"
        );
    }

    #[test]
    fn empty_workflows_are_identical() {
        let a = WorkflowBuilder::new("a").build().unwrap();
        let b = WorkflowBuilder::new("b").build().unwrap();
        assert_eq!(sim(&a, &b, Normalization::SizeNormalized), 1.0);
    }

    #[test]
    fn measure_is_symmetric() {
        let a = chain("a", &["fetch", "blast", "render"]);
        let b = chain("b", &["fetch_seq", "blastp", "plot", "export"]);
        let ab = sim(&a, &b, Normalization::SizeNormalized);
        let ba = sim(&b, &a, Normalization::SizeNormalized);
        assert!((ab - ba).abs() < 1e-9);
    }
}
