//! The Graph Edit Distance measure (`simGE`).
//!
//! Section 2.1.3: "the full DAG structures of two workflows are compared by
//! computing the graph edit distance …  To transform similarity of modules
//! to identifiers, we set the labels of nodes in the two graphs to be
//! compared to reflect the module mapping derived from maximum weight
//! matching of the modules."  The non-normalized similarity is `−cost`; the
//! normalized form divides by the maximum possible cost
//! (`max(|V1|,|V2|) + |E1| + |E2|` for uniform costs, Section 2.1.4).

use wf_ged::{compute_ged, labeled_graphs_from_mapping, GedBudget, GedCosts, GedOutcome};
use wf_matching::Mapping;
use wf_model::Workflow;

use crate::config::Normalization;
use crate::normalize::ged_normalize;

/// Minimum module-pair similarity for a mapped pair to be treated as "the
/// same" node (shared label) in the edit-distance computation.
///
/// The maximum-weight mapping maps *every* module onto its best partner,
/// however weak; translating arbitrarily weak matches into identical node
/// labels would make any two equally shaped workflows edit-distance 0.
/// SUBDUE's label identifiers are binary, so a cut-off is required; 0.5 is
/// the natural midpoint of the module-similarity range.
pub const MODULE_LABEL_THRESHOLD: f64 = 0.5;

/// Details of one GE comparison, for experiments that report timeout counts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GraphEditDetails {
    /// The raw edit cost.
    pub cost: f64,
    /// The maximum possible cost used for normalization.
    pub max_cost: f64,
    /// The similarity score under the requested normalization.
    pub similarity: f64,
    /// How the distance was obtained (exact, approximate, timed out).
    pub outcome: GedOutcome,
}

/// Computes `simGE` between two workflows given an already established
/// module mapping (only mapped pairs with positive similarity are treated as
/// identically labelled nodes).
pub fn graph_edit_similarity(
    a: &Workflow,
    b: &Workflow,
    mapping: &Mapping,
    budget: &GedBudget,
    normalization: Normalization,
) -> GraphEditDetails {
    let costs = GedCosts::uniform();
    let mapped_pairs: Vec<(usize, usize)> = mapping
        .pairs
        .iter()
        .filter(|p| p.weight >= MODULE_LABEL_THRESHOLD)
        .map(|p| (p.left, p.right))
        .collect();
    let (ga, gb) = labeled_graphs_from_mapping(a, b, &mapped_pairs);
    let outcome = compute_ged(&ga, &gb, &costs, budget);
    let cost = outcome.cost();
    let max_cost = costs.max_cost(
        ga.node_count(),
        gb.node_count(),
        ga.edge_count(),
        gb.edge_count(),
    );
    let similarity = match normalization {
        Normalization::None => -cost,
        Normalization::SizeNormalized => ged_normalize(cost, max_cost),
    };
    GraphEditDetails {
        cost,
        max_cost,
        similarity,
        outcome,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping_step::map_modules;
    use crate::module_cmp::ModuleComparisonScheme;
    use wf_matching::MappingStrategy;
    use wf_model::{builder::WorkflowBuilder, ModuleType};
    use wf_repo::PreselectionStrategy;

    fn wf(id: &str, labels: &[&str], links: &[(&str, &str)]) -> Workflow {
        let mut b = WorkflowBuilder::new(id);
        for l in labels {
            b = b.module(*l, ModuleType::WsdlService, |m| m);
        }
        for (f, t) in links {
            b = b.link(*f, *t);
        }
        b.build().unwrap()
    }

    fn details(a: &Workflow, b: &Workflow, normalization: Normalization) -> GraphEditDetails {
        let outcome = map_modules(
            a,
            b,
            &ModuleComparisonScheme::pll(),
            PreselectionStrategy::AllPairs,
            MappingStrategy::MaximumWeight,
        );
        graph_edit_similarity(a, b, &outcome.mapping, &GedBudget::default(), normalization)
    }

    #[test]
    fn identical_workflows_have_zero_cost_and_similarity_one() {
        let a = wf(
            "a",
            &["fetch", "blast", "render"],
            &[("fetch", "blast"), ("blast", "render")],
        );
        let b = wf(
            "b",
            &["fetch", "blast", "render"],
            &[("fetch", "blast"), ("blast", "render")],
        );
        let d = details(&a, &b, Normalization::SizeNormalized);
        assert_eq!(d.cost, 0.0);
        assert_eq!(d.similarity, 1.0);
        assert!(d.outcome.is_exact());
    }

    #[test]
    fn structural_difference_raises_cost() {
        let linear = wf(
            "a",
            &["fetch", "blast", "render"],
            &[("fetch", "blast"), ("blast", "render")],
        );
        let star = wf(
            "b",
            &["fetch", "blast", "render"],
            &[("fetch", "blast"), ("fetch", "render")],
        );
        let d = details(&linear, &star, Normalization::SizeNormalized);
        assert!(d.cost > 0.0, "one edge differs");
        assert!(d.similarity < 1.0);
        assert!(d.similarity > 0.5, "most of the structure still matches");
    }

    #[test]
    fn unnormalized_similarity_is_negative_cost() {
        let a = wf("a", &["x", "y"], &[("x", "y")]);
        let b = wf("b", &["x", "z"], &[("x", "z")]);
        let d = details(&a, &b, Normalization::None);
        assert_eq!(d.similarity, -d.cost);
        assert!(d.cost > 0.0);
    }

    #[test]
    fn size_mismatch_is_normalized_away_only_partially() {
        let small = wf("a", &["x", "y"], &[("x", "y")]);
        let large = wf(
            "b",
            &["x", "y", "p", "q", "r"],
            &[("x", "y"), ("y", "p"), ("p", "q"), ("q", "r")],
        );
        let d = details(&small, &large, Normalization::SizeNormalized);
        assert!(d.similarity > 0.0 && d.similarity < 1.0);
        // Three nodes and three edges must be inserted.
        assert_eq!(d.cost, 6.0);
    }

    #[test]
    fn max_cost_matches_the_paper_formula() {
        let a = wf("a", &["x", "y"], &[("x", "y")]);
        let b = wf("b", &["u", "v", "w"], &[("u", "v"), ("v", "w")]);
        let d = details(&a, &b, Normalization::SizeNormalized);
        // max(|V1|,|V2|) + |E1| + |E2| = 3 + 1 + 2 = 6
        assert_eq!(d.max_cost, 6.0);
    }

    #[test]
    fn measure_is_symmetric() {
        let a = wf(
            "a",
            &["fetch", "blast", "render"],
            &[("fetch", "blast"), ("blast", "render")],
        );
        let b = wf(
            "b",
            &["fetch", "align", "plot", "export"],
            &[("fetch", "align"), ("align", "plot"), ("plot", "export")],
        );
        let ab = details(&a, &b, Normalization::SizeNormalized).similarity;
        let ba = details(&b, &a, Normalization::SizeNormalized).similarity;
        assert!((ab - ba).abs() < 1e-9);
    }

    #[test]
    fn empty_workflows_are_identical() {
        let a = WorkflowBuilder::new("a").build().unwrap();
        let b = WorkflowBuilder::new("b").build().unwrap();
        let d = details(&a, &b, Normalization::SizeNormalized);
        assert_eq!(d.similarity, 1.0);
        assert_eq!(d.cost, 0.0);
    }
}
