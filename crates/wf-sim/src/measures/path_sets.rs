//! The Path Sets measure (`simPS`).
//!
//! Section 2.1.3: each workflow is topologically decomposed into its set of
//! source-to-sink paths.  Every pair of paths is compared with the
//! maximum-weight *non-crossing* matching of their modules (respecting the
//! module order along the paths); a maximum-weight matching over the path
//! pairs then yields the workflow-level score, normalized by the
//! similarity-weighted Jaccard index over the two path sets.
//!
//! One interpretation choice: the per-path-pair
//! score is itself Jaccard-normalized to `[0, 1]` before the path-level
//! matching, so that `nnsimPS` is measured in "number of equivalent paths"
//! and the final normalization by `|PS1| + |PS2| − nnsimPS` stays within
//! `[0, 1]` exactly as for the Module Sets measure.

use wf_matching::{maximum_weight_mapping, maximum_weight_noncrossing_mapping, SimilarityMatrix};
use wf_model::{ModuleId, Workflow};

use crate::config::Normalization;
use crate::normalize::jaccard_normalize;

/// Computes `simPS` between two workflows.
///
/// `module_matrix` must hold the pairwise module similarities of the two
/// *whole* workflows (rows: modules of `a`, columns: modules of `b`);
/// `paths_a` / `paths_b` are their path decompositions.
pub fn path_sets_similarity(
    a: &Workflow,
    b: &Workflow,
    module_matrix: &SimilarityMatrix,
    paths_a: &[Vec<ModuleId>],
    paths_b: &[Vec<ModuleId>],
    normalization: Normalization,
) -> f64 {
    let _ = (a, b); // sizes enter through the path sets; kept for symmetry with simMS
    if paths_a.is_empty() && paths_b.is_empty() {
        return match normalization {
            Normalization::None => 0.0,
            Normalization::SizeNormalized => 1.0,
        };
    }
    if paths_a.is_empty() || paths_b.is_empty() {
        return 0.0;
    }

    // Pairwise path similarities via the order-respecting mwnc matching.
    let path_matrix = SimilarityMatrix::from_fn(paths_a.len(), paths_b.len(), |i, j| {
        path_pair_similarity(&paths_a[i], &paths_b[j], module_matrix)
    });

    // Maximum-weight matching of the paths themselves.
    let path_mapping = maximum_weight_mapping(&path_matrix);
    let nnsim = path_mapping.total_weight();
    match normalization {
        Normalization::None => nnsim,
        Normalization::SizeNormalized => jaccard_normalize(nnsim, paths_a.len(), paths_b.len()),
    }
}

/// The similarity of two individual paths: the maximum-weight non-crossing
/// matching of their modules, Jaccard-normalized by the path lengths.
pub fn path_pair_similarity(
    path_a: &[ModuleId],
    path_b: &[ModuleId],
    module_matrix: &SimilarityMatrix,
) -> f64 {
    if path_a.is_empty() && path_b.is_empty() {
        return 1.0;
    }
    if path_a.is_empty() || path_b.is_empty() {
        return 0.0;
    }
    let restricted = SimilarityMatrix::from_fn(path_a.len(), path_b.len(), |i, j| {
        module_matrix.get(path_a[i].index(), path_b[j].index())
    });
    let mapping = maximum_weight_noncrossing_mapping(&restricted);
    jaccard_normalize(mapping.total_weight(), path_a.len(), path_b.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Normalization;
    use crate::decompose::path_set;
    use crate::mapping_step::module_similarity_matrix;
    use crate::module_cmp::ModuleComparisonScheme;
    use wf_model::{builder::WorkflowBuilder, ModuleType};
    use wf_repo::PreselectionStrategy;

    fn wf(id: &str, labels: &[&str], links: &[(&str, &str)]) -> Workflow {
        let mut b = WorkflowBuilder::new(id);
        for l in labels {
            b = b.module(*l, ModuleType::WsdlService, |m| m);
        }
        for (f, t) in links {
            b = b.link(*f, *t);
        }
        b.build().unwrap()
    }

    fn sim(a: &Workflow, b: &Workflow, normalization: Normalization) -> f64 {
        let (matrix, _) = module_similarity_matrix(
            a,
            b,
            &ModuleComparisonScheme::pll(),
            PreselectionStrategy::AllPairs,
        );
        let pa = path_set(a, 1000);
        let pb = path_set(b, 1000);
        path_sets_similarity(a, b, &matrix, &pa, &pb, normalization)
    }

    #[test]
    fn identical_workflows_have_similarity_one() {
        let a = wf(
            "a",
            &["fetch", "blast", "render"],
            &[("fetch", "blast"), ("blast", "render")],
        );
        let b = wf(
            "b",
            &["fetch", "blast", "render"],
            &[("fetch", "blast"), ("blast", "render")],
        );
        assert!((sim(&a, &b, Normalization::SizeNormalized) - 1.0).abs() < 1e-9);
        assert!(
            (sim(&a, &b, Normalization::None) - 1.0).abs() < 1e-9,
            "one fully similar path"
        );
    }

    #[test]
    fn disjoint_workflows_have_similarity_near_zero() {
        let a = wf("a", &["aaaa", "bbbb"], &[("aaaa", "bbbb")]);
        let b = wf("b", &["xxxx", "yyyy"], &[("xxxx", "yyyy")]);
        assert!(sim(&a, &b, Normalization::SizeNormalized) < 0.05);
    }

    #[test]
    fn path_sets_sees_order_where_module_sets_does_not() {
        // Same modules, opposite order along the single path.
        let a = wf(
            "a",
            &["fetch", "blast", "render"],
            &[("fetch", "blast"), ("blast", "render")],
        );
        let b = wf(
            "b",
            &["render", "blast", "fetch"],
            &[("render", "blast"), ("blast", "fetch")],
        );
        let s = sim(&a, &b, Normalization::SizeNormalized);
        // The non-crossing matching can only align one module plus the
        // middle one; similarity drops clearly below 1.
        assert!(s < 0.75, "got {s}");
        assert!(s > 0.0);
    }

    #[test]
    fn branching_workflows_compare_path_by_path() {
        // a diamond vs the same diamond: two paths each, both match.
        let diamond = |id: &str| {
            wf(
                id,
                &["start", "left", "right", "end"],
                &[
                    ("start", "left"),
                    ("start", "right"),
                    ("left", "end"),
                    ("right", "end"),
                ],
            )
        };
        let a = diamond("a");
        let b = diamond("b");
        assert!((sim(&a, &b, Normalization::SizeNormalized) - 1.0).abs() < 1e-9);
        assert!(
            (sim(&a, &b, Normalization::None) - 2.0).abs() < 1e-9,
            "two matched paths"
        );
    }

    #[test]
    fn extra_path_reduces_normalized_similarity() {
        let linear = wf(
            "a",
            &["start", "left", "end"],
            &[("start", "left"), ("left", "end")],
        );
        let branched = wf(
            "b",
            &["start", "left", "right_branch", "end"],
            &[
                ("start", "left"),
                ("start", "right_branch"),
                ("left", "end"),
                ("right_branch", "end"),
            ],
        );
        let s = sim(&linear, &branched, Normalization::SizeNormalized);
        assert!(s < 1.0);
        assert!(s > 0.3);
    }

    #[test]
    fn empty_vs_nonempty() {
        let empty = WorkflowBuilder::new("e").build().unwrap();
        let other = wf("o", &["x"], &[]);
        assert_eq!(sim(&empty, &other, Normalization::SizeNormalized), 0.0);
        assert_eq!(
            sim(&empty, &empty.clone(), Normalization::SizeNormalized),
            1.0
        );
    }

    #[test]
    fn measure_is_symmetric() {
        let a = wf(
            "a",
            &["fetch", "blast", "render"],
            &[("fetch", "blast"), ("blast", "render")],
        );
        let b = wf(
            "b",
            &["fetch_data", "blastp", "plot", "extra"],
            &[
                ("fetch_data", "blastp"),
                ("blastp", "plot"),
                ("plot", "extra"),
            ],
        );
        // Symmetry requires transposing the module matrix for the reverse
        // direction, which sim() recomputes from scratch.
        let ab = sim(&a, &b, Normalization::SizeNormalized);
        let ba = sim(&b, &a, Normalization::SizeNormalized);
        assert!((ab - ba).abs() < 1e-9);
    }

    #[test]
    fn path_pair_similarity_respects_order() {
        let a = wf("a", &["m1", "m2", "m3"], &[("m1", "m2"), ("m2", "m3")]);
        let (matrix, _) = module_similarity_matrix(
            &a,
            &a,
            &ModuleComparisonScheme::plm(),
            PreselectionStrategy::AllPairs,
        );
        let forward = vec![ModuleId(0), ModuleId(1), ModuleId(2)];
        let backward = vec![ModuleId(2), ModuleId(1), ModuleId(0)];
        assert_eq!(path_pair_similarity(&forward, &forward, &matrix), 1.0);
        let rev = path_pair_similarity(&forward, &backward, &matrix);
        assert!(rev < 0.5, "only one module can align without crossing");
        assert_eq!(path_pair_similarity(&[], &[], &matrix), 1.0);
        assert_eq!(path_pair_similarity(&forward, &[], &matrix), 0.0);
    }
}
