//! Exact graph edit distance via A* search.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::time::Instant;

use crate::budget::GedBudget;
use crate::cost::GedCosts;
use crate::graph::LabeledGraph;
use crate::state::SearchState;

/// A heap entry ordered by ascending `f = g + h` (BinaryHeap is a max-heap,
/// so the ordering is reversed).
struct Entry {
    f: f64,
    state: SearchState,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.f == other.f
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: smaller f = "greater" priority.
        other
            .f
            .partial_cmp(&self.f)
            .unwrap_or(Ordering::Equal)
            // Prefer deeper states on ties so complete solutions surface early.
            .then_with(|| self.state.depth().cmp(&other.state.depth()))
    }
}

/// Computes the exact graph edit distance between `a` and `b`.
///
/// Returns `None` if the search exceeds the budget's expansion count or time
/// limit — the analogue of the paper's pairs that were "not computable in
/// this timeframe".
pub fn astar_ged(
    a: &LabeledGraph,
    b: &LabeledGraph,
    costs: &GedCosts,
    budget: &GedBudget,
) -> Option<f64> {
    let start = Instant::now();
    let n_a = a.node_count();
    let mut heap = BinaryHeap::new();
    let initial = SearchState::initial(b.node_count());
    let h0 = initial.heuristic(a, b, costs);
    heap.push(Entry {
        f: h0,
        state: initial,
    });

    let mut expansions = 0usize;
    while let Some(Entry { state, .. }) = heap.pop() {
        if state.depth() == n_a {
            return Some(state.cost + state.completion_cost(a, b, costs));
        }
        expansions += 1;
        if expansions > budget.max_expansions {
            return None;
        }
        if let Some(limit) = budget.time_limit {
            // Check the clock only every few hundred expansions to keep the
            // hot loop cheap.
            if expansions.is_multiple_of(256) && start.elapsed() > limit {
                return None;
            }
        }
        for child in state.expand(a, b, costs) {
            let h = child.heuristic(a, b, costs);
            let f = child.cost + h;
            heap.push(Entry { f, state: child });
        }
    }
    // Heap exhausted without reaching a goal: only possible for n_a == 0
    // handled above (depth 0 == n_a), so this is unreachable in practice.
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain(labels: &[u32]) -> LabeledGraph {
        let edges = (0..labels.len().saturating_sub(1))
            .map(|i| (i, i + 1))
            .collect();
        LabeledGraph::new(labels.to_vec(), edges)
    }

    fn exact(a: &LabeledGraph, b: &LabeledGraph) -> f64 {
        astar_ged(a, b, &GedCosts::uniform(), &GedBudget::default()).expect("within budget")
    }

    #[test]
    fn identical_graphs_cost_zero() {
        let g = chain(&[1, 2, 3, 4]);
        assert_eq!(exact(&g, &g), 0.0);
    }

    #[test]
    fn empty_graphs() {
        let e = LabeledGraph::new(vec![], vec![]);
        let g = chain(&[1, 2]);
        assert_eq!(exact(&e, &e), 0.0);
        // Build g from nothing: 2 node insertions + 1 edge insertion.
        assert_eq!(exact(&e, &g), 3.0);
        // Delete g entirely: symmetric.
        assert_eq!(exact(&g, &e), 3.0);
    }

    #[test]
    fn single_label_substitution() {
        let a = chain(&[1, 2, 3]);
        let b = chain(&[1, 9, 3]);
        assert_eq!(exact(&a, &b), 1.0);
    }

    #[test]
    fn node_insertion_with_edge_rewiring() {
        // a: 1 -> 3 ; b: 1 -> 2 -> 3.  Optimal path: substitute a's second
        // node (label 3) into label 2 (cost 1, the 1->2 edge is preserved),
        // then insert the node labelled 3 (cost 1) and its incoming edge
        // (cost 1): total 3.
        let a = chain(&[1, 3]);
        let b = chain(&[1, 2, 3]);
        assert_eq!(exact(&a, &b), 3.0);
    }

    #[test]
    fn distance_is_symmetric_with_uniform_costs() {
        let a = chain(&[1, 2, 3, 4]);
        let b = LabeledGraph::new(vec![1, 2, 5], vec![(0, 1), (0, 2)]);
        assert_eq!(exact(&a, &b), exact(&b, &a));
    }

    #[test]
    fn pure_edge_difference() {
        // Same nodes, a has edge 0->1, b has edge 1->0: delete + insert = 2.
        let a = LabeledGraph::new(vec![1, 2], vec![(0, 1)]);
        let b = LabeledGraph::new(vec![1, 2], vec![(1, 0)]);
        assert_eq!(exact(&a, &b), 2.0);
    }

    #[test]
    fn budget_exhaustion_returns_none() {
        let a = chain(&[1, 2, 3, 4, 5, 6, 7, 8]);
        let b = chain(&[9, 10, 11, 12, 13, 14, 15, 16]);
        let tight = GedBudget {
            max_expansions: 5,
            ..GedBudget::default()
        };
        assert_eq!(astar_ged(&a, &b, &GedCosts::uniform(), &tight), None);
    }

    #[test]
    fn triangle_inequality_on_small_graphs() {
        let g1 = chain(&[1, 2, 3]);
        let g2 = LabeledGraph::new(vec![1, 2], vec![(0, 1)]);
        let g3 = LabeledGraph::new(vec![4, 2, 3], vec![(0, 1), (1, 2), (0, 2)]);
        let d12 = exact(&g1, &g2);
        let d23 = exact(&g2, &g3);
        let d13 = exact(&g1, &g3);
        assert!(d13 <= d12 + d23 + 1e-9);
    }
}
