//! Edit-operation cost configuration.

/// The costs of the six edit operations.
///
/// The paper keeps "SUBDUE's default configuration which defines equal costs
/// of 1 for any of the possible edit operations" and notes that other
/// weightings did not change results significantly; [`GedCosts::uniform`] is
/// therefore the configuration used by all experiments, but the struct
/// allows reproducing that sensitivity check.
#[derive(Debug, Clone, PartialEq)]
pub struct GedCosts {
    /// Cost of inserting a node.
    pub node_insert: f64,
    /// Cost of deleting a node.
    pub node_delete: f64,
    /// Cost of substituting a node by one with a *different* label
    /// (same-label substitutions are free).
    pub node_substitute: f64,
    /// Cost of inserting an edge.
    pub edge_insert: f64,
    /// Cost of deleting an edge.
    pub edge_delete: f64,
}

impl GedCosts {
    /// Uniform costs of 1 for every operation (the paper's configuration).
    pub fn uniform() -> Self {
        GedCosts {
            node_insert: 1.0,
            node_delete: 1.0,
            node_substitute: 1.0,
            edge_insert: 1.0,
            edge_delete: 1.0,
        }
    }

    /// A configuration that penalises structural (edge) differences more
    /// strongly than label differences — one of the alternative weightings
    /// the paper reports testing.
    pub fn structure_heavy() -> Self {
        GedCosts {
            node_insert: 1.0,
            node_delete: 1.0,
            node_substitute: 0.5,
            edge_insert: 2.0,
            edge_delete: 2.0,
        }
    }

    /// The cheapest way to account for one extra node on either side.
    pub fn min_node_indel(&self) -> f64 {
        self.node_insert.min(self.node_delete)
    }

    /// The maximum possible cost of editing graphs with the given sizes —
    /// the denominator of the paper's GED normalization (Section 2.1.4):
    /// `max(|V1|, |V2|) + |E1| + |E2|` scaled by the respective costs.
    ///
    /// With uniform costs this is exactly the paper's formula.
    pub fn max_cost(&self, nodes_a: usize, nodes_b: usize, edges_a: usize, edges_b: usize) -> f64 {
        let node_part = nodes_a.max(nodes_b) as f64
            * self
                .node_substitute
                .max(self.node_insert)
                .max(self.node_delete);
        let edge_part = edges_a as f64 * self.edge_delete + edges_b as f64 * self.edge_insert;
        node_part + edge_part
    }
}

impl Default for GedCosts {
    fn default() -> Self {
        GedCosts::uniform()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_costs_are_all_one() {
        let c = GedCosts::uniform();
        assert_eq!(c.node_insert, 1.0);
        assert_eq!(c.node_delete, 1.0);
        assert_eq!(c.node_substitute, 1.0);
        assert_eq!(c.edge_insert, 1.0);
        assert_eq!(c.edge_delete, 1.0);
        assert_eq!(GedCosts::default(), c);
    }

    #[test]
    fn max_cost_matches_paper_formula_for_uniform_costs() {
        let c = GedCosts::uniform();
        // max(|V1|,|V2|) + |E1| + |E2| = max(3,5) + 2 + 4 = 11
        assert_eq!(c.max_cost(3, 5, 2, 4), 11.0);
        assert_eq!(c.max_cost(0, 0, 0, 0), 0.0);
    }

    #[test]
    fn min_node_indel_picks_the_cheaper_operation() {
        let mut c = GedCosts::uniform();
        c.node_insert = 0.25;
        assert_eq!(c.min_node_indel(), 0.25);
    }

    #[test]
    fn structure_heavy_weights_edges_more() {
        let c = GedCosts::structure_heavy();
        assert!(c.edge_insert > c.node_substitute);
    }
}
