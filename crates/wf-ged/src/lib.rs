//! # wf-ged — label-aware graph edit distance
//!
//! The paper's third structural measure compares "the full DAG structures of
//! two workflows … by computing the graph edit distance using the SUBDUE
//! package" (Section 2.1.3, following Xiang & Madey \[38\]).  SUBDUE is a
//! closed C distribution; this crate substitutes an equivalent GED engine
//! with the same cost model:
//!
//! * uniform edit costs of 1 for every operation (node/edge insertion,
//!   deletion, substitution), as in the paper's configuration;
//! * node identity established through *labels*: the module mapping computed
//!   by the similarity framework is transformed into shared node labels
//!   ([`labels`]), exactly as the paper does when converting workflows into
//!   SUBDUE's input format;
//! * a per-pair time budget ([`budget`]): the paper allowed each of the 240
//!   ranking pairs at most 5 minutes and reports that 23 pairs were not
//!   computable in time (dropping to one after Importance Projection).
//!
//! Two search strategies are provided:
//!
//! * [`astar`] — exact A* search over partial node assignments (optimal, but
//!   exponential in the worst case; used for small graphs and for validating
//!   the approximation),
//! * [`beam`] — beam-search approximation (polynomial, always terminates,
//!   upper-bounds the exact distance).
//!
//! [`compute_ged`] combines them under a [`budget::GedBudget`].

#![deny(unsafe_code)]

pub mod astar;
pub mod beam;
pub mod budget;
pub mod cost;
pub mod graph;
pub mod labels;
pub mod state;

pub use astar::astar_ged;
pub use beam::beam_ged;
pub use budget::{GedBudget, GedOutcome};
pub use cost::GedCosts;
pub use graph::LabeledGraph;
pub use labels::labeled_graphs_from_mapping;

/// Computes the graph edit distance between two labeled graphs under the
/// given costs and budget.
///
/// The exact A* search is attempted first when both graphs are within
/// [`GedBudget::exact_node_limit`]; if it exceeds the budget (or the graphs
/// are too large) the beam-search approximation is used.  The returned
/// [`GedOutcome`] records which path was taken so that experiments can
/// report, like the paper, how many pairs were "not computable" exactly
/// within the time frame.
pub fn compute_ged(
    a: &LabeledGraph,
    b: &LabeledGraph,
    costs: &GedCosts,
    budget: &GedBudget,
) -> GedOutcome {
    if a.node_count() <= budget.exact_node_limit && b.node_count() <= budget.exact_node_limit {
        if let Some(cost) = astar_ged(a, b, costs, budget) {
            return GedOutcome::Exact(cost);
        }
        // Exact search exhausted its budget; fall back to the approximation.
        let approx = beam_ged(a, b, costs, budget.beam_width);
        return GedOutcome::TimedOut(approx);
    }
    GedOutcome::Approximate(beam_ged(a, b, costs, budget.beam_width))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_graphs_have_zero_distance() {
        let g = LabeledGraph::new(vec![1, 2, 3], vec![(0, 1), (1, 2)]);
        let out = compute_ged(&g, &g, &GedCosts::uniform(), &GedBudget::default());
        assert_eq!(out.cost(), 0.0);
        assert!(matches!(out, GedOutcome::Exact(_)));
    }

    #[test]
    fn large_graphs_fall_back_to_beam() {
        let n = 40;
        let labels: Vec<u32> = (0..n as u32).collect();
        let edges: Vec<(usize, usize)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        let g = LabeledGraph::new(labels, edges);
        let out = compute_ged(&g, &g, &GedCosts::uniform(), &GedBudget::default());
        assert!(matches!(out, GedOutcome::Approximate(_)));
        assert_eq!(out.cost(), 0.0, "beam still finds the identity mapping");
    }

    #[test]
    fn outcome_reports_exact_vs_approximate() {
        let a = LabeledGraph::new(vec![1, 2], vec![(0, 1)]);
        let b = LabeledGraph::new(vec![1, 3], vec![(0, 1)]);
        let out = compute_ged(&a, &b, &GedCosts::uniform(), &GedBudget::default());
        assert!(out.is_exact());
        assert_eq!(out.cost(), 1.0, "one node substitution");
    }
}
