//! The labeled-graph representation on which GED operates.

use std::collections::BTreeSet;

use wf_model::Workflow;

/// A small directed graph with integer node labels.
///
/// Node identity for the edit distance is determined entirely by the label:
/// substituting a node for a node with the same label costs nothing,
/// substituting across different labels costs [`crate::GedCosts::node_substitute`].
/// Edges are unlabeled and directed; parallel edges are collapsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LabeledGraph {
    labels: Vec<u32>,
    edges: BTreeSet<(usize, usize)>,
}

impl LabeledGraph {
    /// Creates a graph from node labels and an edge list.
    ///
    /// Edges referencing non-existent nodes are dropped; duplicates are
    /// collapsed.
    pub fn new(labels: Vec<u32>, edges: Vec<(usize, usize)>) -> Self {
        let n = labels.len();
        let edges = edges.into_iter().filter(|&(u, v)| u < n && v < n).collect();
        LabeledGraph { labels, edges }
    }

    /// Builds a labeled graph from a workflow, assigning equal labels to
    /// modules with equal (case-insensitive) label strings.
    ///
    /// This mirrors the "label matching" identification of modules used by
    /// several earlier studies and is handy in tests; the similarity
    /// framework instead derives labels from an explicit module mapping via
    /// [`crate::labels::labeled_graphs_from_mapping`].
    pub fn from_workflow_by_label(wf: &Workflow) -> Self {
        let mut seen: Vec<String> = Vec::new();
        let mut labels = Vec::with_capacity(wf.module_count());
        for m in &wf.modules {
            let key = m.label.to_lowercase();
            let id = match seen.iter().position(|s| *s == key) {
                Some(i) => i as u32,
                None => {
                    seen.push(key);
                    (seen.len() - 1) as u32
                }
            };
            labels.push(id);
        }
        let edges = wf
            .graph()
            .edges()
            .into_iter()
            .map(|(u, v)| (u.index(), v.index()))
            .collect();
        LabeledGraph::new(labels, edges)
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.labels.len()
    }

    /// Number of distinct directed edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// The label of a node.
    pub fn label(&self, node: usize) -> u32 {
        self.labels[node]
    }

    /// All node labels.
    pub fn labels(&self) -> &[u32] {
        &self.labels
    }

    /// True if the directed edge `(u, v)` exists.
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        self.edges.contains(&(u, v))
    }

    /// Iterates over all edges.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.edges.iter().copied()
    }

    /// The number of edges incident (in either direction) to `node`.
    pub fn degree(&self, node: usize) -> usize {
        self.edges
            .iter()
            .filter(|&&(u, v)| u == node || v == node)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wf_model::{builder::WorkflowBuilder, ModuleType};

    #[test]
    fn construction_drops_invalid_and_duplicate_edges() {
        let g = LabeledGraph::new(vec![0, 1], vec![(0, 1), (0, 1), (5, 0), (1, 9)]);
        assert_eq!(g.node_count(), 2);
        assert_eq!(g.edge_count(), 1);
        assert!(g.has_edge(0, 1));
        assert!(!g.has_edge(1, 0));
    }

    #[test]
    fn degree_counts_both_directions() {
        let g = LabeledGraph::new(vec![0, 1, 2], vec![(0, 1), (1, 2)]);
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.degree(0), 1);
    }

    #[test]
    fn from_workflow_by_label_shares_labels_case_insensitively() {
        // Labels differing only in case are distinct to the builder but are
        // identified with each other by the label-based graph conversion.
        let wf = WorkflowBuilder::new("w")
            .module("BLAST", ModuleType::WsdlService, |m| m)
            .module("blast", ModuleType::WsdlService, |m| m)
            .module("render", ModuleType::BeanshellScript, |m| m)
            .link("BLAST", "render")
            .build()
            .unwrap();
        let g = LabeledGraph::from_workflow_by_label(&wf);
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.label(0), g.label(1), "case-insensitive identification");
        assert_ne!(g.label(0), g.label(2));

        let wf2 = WorkflowBuilder::new("w2")
            .module("blast_search", ModuleType::WsdlService, |m| m)
            .module("render", ModuleType::BeanshellScript, |m| m)
            .link("blast_search", "render")
            .build()
            .unwrap();
        let g2 = LabeledGraph::from_workflow_by_label(&wf2);
        assert_ne!(g2.label(0), g2.label(1));
    }
}
