//! Partial node-assignment states shared by the A* and beam searches.
//!
//! Both searches process the nodes of the first graph in a fixed order
//! (0, 1, 2, …).  A state records, for the already processed prefix, which
//! node of the second graph each node was mapped to (`Some(v)`) or that it
//! was deleted (`None`), together with the accumulated edit cost.  Edge
//! costs are charged incrementally: when node `k` is processed, every edge
//! between `k` and an already processed node is accounted for exactly once.

use crate::cost::GedCosts;
use crate::graph::LabeledGraph;

/// A partial assignment of the first `mapping.len()` nodes of graph `a`.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchState {
    /// For each processed node of `a`: its image in `b`, or `None` if
    /// deleted.
    pub mapping: Vec<Option<usize>>,
    /// Which nodes of `b` are already used as images.
    pub used_b: Vec<bool>,
    /// Accumulated edit cost of the processed prefix.
    pub cost: f64,
}

impl SearchState {
    /// The initial state: nothing processed, zero cost.
    pub fn initial(b_nodes: usize) -> Self {
        SearchState {
            mapping: Vec::new(),
            used_b: vec![false; b_nodes],
            cost: 0.0,
        }
    }

    /// Number of processed nodes of `a`.
    pub fn depth(&self) -> usize {
        self.mapping.len()
    }

    /// Expands this state by assigning the next node of `a` (at index
    /// `depth()`) either to every unused node of `b` or to deletion.
    pub fn expand(&self, a: &LabeledGraph, b: &LabeledGraph, costs: &GedCosts) -> Vec<SearchState> {
        let k = self.depth();
        debug_assert!(k < a.node_count());
        let mut children = Vec::with_capacity(b.node_count() + 1);
        // Option 1: map node k onto each unused node of b.
        for v in 0..b.node_count() {
            if self.used_b[v] {
                continue;
            }
            let delta = self.assignment_delta(a, b, costs, k, Some(v));
            let mut child = self.clone();
            child.mapping.push(Some(v));
            child.used_b[v] = true;
            child.cost += delta;
            children.push(child);
        }
        // Option 2: delete node k.
        let delta = self.assignment_delta(a, b, costs, k, None);
        let mut child = self.clone();
        child.mapping.push(None);
        child.cost += delta;
        children.push(child);
        children
    }

    /// The incremental cost of assigning node `k` of `a` to `target`.
    fn assignment_delta(
        &self,
        a: &LabeledGraph,
        b: &LabeledGraph,
        costs: &GedCosts,
        k: usize,
        target: Option<usize>,
    ) -> f64 {
        let mut delta = match target {
            Some(v) => {
                if a.label(k) == b.label(v) {
                    0.0
                } else {
                    costs.node_substitute
                }
            }
            None => costs.node_delete,
        };
        // Edge costs against every already processed node.
        for (u, &tu) in self.mapping.iter().enumerate() {
            // Edge u -> k in a.
            if a.has_edge(u, k) {
                let preserved = matches!((tu, target), (Some(x), Some(y)) if b.has_edge(x, y));
                if !preserved {
                    delta += costs.edge_delete;
                }
            } else if let (Some(x), Some(y)) = (tu, target) {
                if b.has_edge(x, y) {
                    delta += costs.edge_insert;
                }
            }
            // Edge k -> u in a.
            if a.has_edge(k, u) {
                let preserved = matches!((target, tu), (Some(x), Some(y)) if b.has_edge(x, y));
                if !preserved {
                    delta += costs.edge_delete;
                }
            } else if let (Some(x), Some(y)) = (target, tu) {
                if b.has_edge(x, y) {
                    delta += costs.edge_insert;
                }
            }
        }
        delta
    }

    /// The cost of completing this state once *all* nodes of `a` have been
    /// processed: inserting every unused node of `b` and every edge of `b`
    /// with at least one unused endpoint.
    pub fn completion_cost(&self, a: &LabeledGraph, b: &LabeledGraph, costs: &GedCosts) -> f64 {
        debug_assert_eq!(self.depth(), a.node_count());
        let mut cost = 0.0;
        for v in 0..b.node_count() {
            if !self.used_b[v] {
                cost += costs.node_insert;
            }
        }
        for (x, y) in b.edges() {
            if !self.used_b[x] || !self.used_b[y] {
                cost += costs.edge_insert;
            }
        }
        cost
    }

    /// An admissible lower bound on the remaining cost (node operations
    /// only): surplus nodes on either side must be deleted / inserted, and
    /// remaining nodes whose labels cannot be matched must at least be
    /// substituted.
    pub fn heuristic(&self, a: &LabeledGraph, b: &LabeledGraph, costs: &GedCosts) -> f64 {
        let k = self.depth();
        let remaining_a = a.node_count() - k;
        let available_b = self.used_b.iter().filter(|&&u| !u).count();
        let surplus = if remaining_a >= available_b {
            (remaining_a - available_b) as f64 * costs.node_delete
        } else {
            (available_b - remaining_a) as f64 * costs.node_insert
        };

        // Multiset overlap of remaining labels.
        let mut counts: std::collections::BTreeMap<u32, (usize, usize)> = Default::default();
        for v in k..a.node_count() {
            counts.entry(a.label(v)).or_default().0 += 1;
        }
        for v in 0..b.node_count() {
            if !self.used_b[v] {
                counts.entry(b.label(v)).or_default().1 += 1;
            }
        }
        let overlap: usize = counts.values().map(|(ca, cb)| ca.min(cb)).sum();
        let pairable = remaining_a.min(available_b);
        let mismatched = pairable.saturating_sub(overlap);
        let sub_bound = mismatched as f64
            * costs
                .node_substitute
                .min(costs.node_delete + costs.node_insert);
        surplus + sub_bound
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain(labels: &[u32]) -> LabeledGraph {
        let edges = (0..labels.len().saturating_sub(1))
            .map(|i| (i, i + 1))
            .collect();
        LabeledGraph::new(labels.to_vec(), edges)
    }

    #[test]
    fn initial_state_is_empty() {
        let s = SearchState::initial(3);
        assert_eq!(s.depth(), 0);
        assert_eq!(s.cost, 0.0);
        assert_eq!(s.used_b, vec![false, false, false]);
    }

    #[test]
    fn expansion_produces_one_child_per_free_target_plus_deletion() {
        let a = chain(&[1, 2]);
        let b = chain(&[1, 2, 3]);
        let children = SearchState::initial(3).expand(&a, &b, &GedCosts::uniform());
        assert_eq!(children.len(), 4, "3 assignments + 1 deletion");
        // Mapping node 0 (label 1) to b node 0 (label 1) is free.
        let free = children
            .iter()
            .find(|c| c.mapping == vec![Some(0)])
            .unwrap();
        assert_eq!(free.cost, 0.0);
        // Mapping to a different label costs a substitution.
        let sub = children
            .iter()
            .find(|c| c.mapping == vec![Some(1)])
            .unwrap();
        assert_eq!(sub.cost, 1.0);
        // Deleting costs node_delete.
        let del = children.iter().find(|c| c.mapping == vec![None]).unwrap();
        assert_eq!(del.cost, 1.0);
    }

    #[test]
    fn edge_costs_are_charged_incrementally() {
        let costs = GedCosts::uniform();
        // a: 0 -> 1 ; b: no edge between its two nodes.
        let a = chain(&[1, 2]);
        let b = LabeledGraph::new(vec![1, 2], vec![]);
        let s0 = SearchState::initial(2);
        let s1 = s0
            .expand(&a, &b, &costs)
            .into_iter()
            .find(|c| c.mapping == vec![Some(0)])
            .unwrap();
        let s2 = s1
            .expand(&a, &b, &costs)
            .into_iter()
            .find(|c| c.mapping == vec![Some(0), Some(1)])
            .unwrap();
        // Node costs 0 (labels match), edge 0->1 of a must be deleted.
        assert_eq!(s2.cost, 1.0);
        assert_eq!(s2.completion_cost(&a, &b, &costs), 0.0);
    }

    #[test]
    fn completion_inserts_unused_nodes_and_their_edges() {
        let costs = GedCosts::uniform();
        let a = LabeledGraph::new(vec![1], vec![]);
        let b = chain(&[1, 2, 3]); // edges (0,1),(1,2)
        let s1 = SearchState::initial(3)
            .expand(&a, &b, &costs)
            .into_iter()
            .find(|c| c.mapping == vec![Some(0)])
            .unwrap();
        // Two b nodes unused -> 2 insertions; both b edges touch an unused
        // node -> 2 edge insertions.
        assert_eq!(s1.completion_cost(&a, &b, &costs), 4.0);
    }

    #[test]
    fn heuristic_is_zero_for_identical_remaining_graphs() {
        let a = chain(&[1, 2, 3]);
        let s = SearchState::initial(3);
        assert_eq!(s.heuristic(&a, &a, &GedCosts::uniform()), 0.0);
    }

    #[test]
    fn heuristic_counts_surplus_and_label_mismatch() {
        let costs = GedCosts::uniform();
        let a = chain(&[1, 2, 3]);
        let b = chain(&[1]);
        let s = SearchState::initial(1);
        // Two surplus a nodes must be deleted.
        assert_eq!(s.heuristic(&a, &b, &costs), 2.0);

        let b2 = chain(&[7, 8, 9]);
        let s2 = SearchState::initial(3);
        // All three pairable nodes have mismatched labels.
        assert_eq!(s2.heuristic(&a, &b2, &costs), 3.0);
    }
}
