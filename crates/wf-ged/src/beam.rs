//! Beam-search approximation of the graph edit distance.
//!
//! The beam search processes the nodes of the first graph in the same fixed
//! order as the exact A* search but keeps only the `beam_width` most
//! promising partial states per depth.  The result is an *upper bound* on
//! the exact distance that is exact for `beam_width` large enough; with the
//! default width it is exact on all small workflow graphs we tested while
//! remaining polynomial, which is what makes the Graph Edit Distance measure
//! usable on the full corpus (the role SUBDUE's heuristics played in the
//! paper).

use crate::cost::GedCosts;
use crate::graph::LabeledGraph;
use crate::state::SearchState;

/// Computes an upper bound on the graph edit distance using beam search with
/// the given beam width (at least 1).
pub fn beam_ged(a: &LabeledGraph, b: &LabeledGraph, costs: &GedCosts, beam_width: usize) -> f64 {
    let width = beam_width.max(1);
    let mut beam = vec![SearchState::initial(b.node_count())];
    for _depth in 0..a.node_count() {
        let mut next: Vec<SearchState> = Vec::with_capacity(beam.len() * (b.node_count() + 1));
        for state in &beam {
            next.extend(state.expand(a, b, costs));
        }
        // Keep the most promising states by g + h.
        next.sort_by(|x, y| {
            let fx = x.cost + x.heuristic(a, b, costs);
            let fy = y.cost + y.heuristic(a, b, costs);
            fx.partial_cmp(&fy).unwrap_or(std::cmp::Ordering::Equal)
        });
        next.truncate(width);
        beam = next;
    }
    beam.iter()
        .map(|s| s.cost + s.completion_cost(a, b, costs))
        .fold(f64::INFINITY, f64::min)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::astar::astar_ged;
    use crate::budget::GedBudget;

    fn chain(labels: &[u32]) -> LabeledGraph {
        let edges = (0..labels.len().saturating_sub(1))
            .map(|i| (i, i + 1))
            .collect();
        LabeledGraph::new(labels.to_vec(), edges)
    }

    #[test]
    fn identical_graphs_cost_zero() {
        let g = chain(&[1, 2, 3, 4, 5]);
        assert_eq!(beam_ged(&g, &g, &GedCosts::uniform(), 8), 0.0);
    }

    #[test]
    fn beam_width_one_still_terminates() {
        let a = chain(&[1, 2, 3]);
        let b = chain(&[3, 2, 1]);
        let cost = beam_ged(&a, &b, &GedCosts::uniform(), 1);
        assert!(cost.is_finite());
        assert!(cost >= 0.0);
    }

    #[test]
    fn zero_width_is_clamped_to_one() {
        let a = chain(&[1, 2]);
        assert!(beam_ged(&a, &a, &GedCosts::uniform(), 0).is_finite());
    }

    #[test]
    fn upper_bounds_the_exact_distance() {
        let costs = GedCosts::uniform();
        let budget = GedBudget::default();
        let cases = [
            (chain(&[1, 2, 3]), chain(&[1, 9, 3])),
            (chain(&[1, 3]), chain(&[1, 2, 3])),
            (
                LabeledGraph::new(vec![1, 2, 3, 4], vec![(0, 1), (0, 2), (1, 3), (2, 3)]),
                LabeledGraph::new(vec![1, 2, 4], vec![(0, 1), (1, 2)]),
            ),
            (
                LabeledGraph::new(vec![5, 6], vec![(0, 1)]),
                LabeledGraph::new(vec![6, 5], vec![(0, 1)]),
            ),
        ];
        for (a, b) in cases {
            let exact = astar_ged(&a, &b, &costs, &budget).unwrap();
            for width in [1, 4, 32] {
                let approx = beam_ged(&a, &b, &costs, width);
                assert!(
                    approx + 1e-9 >= exact,
                    "beam {width} gave {approx} below exact {exact}"
                );
            }
            // A generous beam matches the exact distance on these tiny graphs.
            assert!((beam_ged(&a, &b, &costs, 64) - exact).abs() < 1e-9);
        }
    }

    #[test]
    fn wider_beams_never_hurt() {
        let a = LabeledGraph::new(
            vec![1, 2, 3, 4, 5],
            vec![(0, 1), (1, 2), (2, 3), (3, 4), (0, 4)],
        );
        let b = LabeledGraph::new(vec![5, 4, 3, 2, 1], vec![(0, 1), (1, 2), (2, 3), (3, 4)]);
        let costs = GedCosts::uniform();
        let narrow = beam_ged(&a, &b, &costs, 1);
        let wide = beam_ged(&a, &b, &costs, 128);
        assert!(wide <= narrow + 1e-9);
    }

    #[test]
    fn handles_empty_first_graph() {
        let e = LabeledGraph::new(vec![], vec![]);
        let b = chain(&[1, 2]);
        // Everything in b must be inserted: 2 nodes + 1 edge.
        assert_eq!(beam_ged(&e, &b, &GedCosts::uniform(), 4), 3.0);
    }
}
