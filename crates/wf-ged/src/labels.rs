//! Deriving shared node labels from a module mapping.
//!
//! SUBDUE (and therefore the paper's GED measure) identifies nodes through
//! their labels.  "To transform similarity of modules to identifiers, we set
//! the labels of nodes in the two graphs to be compared to reflect the
//! module mapping derived from maximum weight matching of the modules"
//! (Section 2.1.3).  This module performs exactly that conversion: given two
//! workflows and the list of mapped module pairs, it produces two
//! [`LabeledGraph`]s in which mapped modules share a fresh label and all
//! other modules carry unique labels.

use wf_model::Workflow;

use crate::graph::LabeledGraph;

/// Converts two workflows into labeled graphs that encode the given module
/// mapping.
///
/// `mapped_pairs` lists `(module index in a, module index in b)` pairs; each
/// pair is assigned a shared label, every unmapped module a unique one.
/// Pairs with out-of-range indices are ignored.  The DAG structure (distinct
/// directed edges) is taken from the workflows unchanged.
pub fn labeled_graphs_from_mapping(
    a: &Workflow,
    b: &Workflow,
    mapped_pairs: &[(usize, usize)],
) -> (LabeledGraph, LabeledGraph) {
    let n_a = a.module_count();
    let n_b = b.module_count();
    let mut labels_a: Vec<Option<u32>> = vec![None; n_a];
    let mut labels_b: Vec<Option<u32>> = vec![None; n_b];
    let mut next_label = 0u32;
    for &(ia, ib) in mapped_pairs {
        if ia < n_a && ib < n_b && labels_a[ia].is_none() && labels_b[ib].is_none() {
            labels_a[ia] = Some(next_label);
            labels_b[ib] = Some(next_label);
            next_label += 1;
        }
    }
    let mut finalize = |labels: Vec<Option<u32>>| -> Vec<u32> {
        labels
            .into_iter()
            .map(|l| {
                l.unwrap_or_else(|| {
                    let fresh = next_label;
                    next_label += 1;
                    fresh
                })
            })
            .collect()
    };
    let labels_a = finalize(labels_a);
    let labels_b = finalize(labels_b);

    let edges_of = |wf: &Workflow| {
        wf.graph()
            .edges()
            .into_iter()
            .map(|(u, v)| (u.index(), v.index()))
            .collect::<Vec<_>>()
    };
    (
        LabeledGraph::new(labels_a, edges_of(a)),
        LabeledGraph::new(labels_b, edges_of(b)),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use wf_model::{builder::WorkflowBuilder, ModuleType};

    fn chain(id: &str, labels: &[&str]) -> Workflow {
        let mut b = WorkflowBuilder::new(id);
        for l in labels {
            b = b.module(*l, ModuleType::WsdlService, |m| m);
        }
        for w in labels.windows(2) {
            b = b.link(w[0], w[1]);
        }
        b.build().unwrap()
    }

    #[test]
    fn mapped_modules_share_labels() {
        let a = chain("a", &["fetch", "blast", "render"]);
        let b = chain("b", &["get", "blast_search", "plot"]);
        let (ga, gb) = labeled_graphs_from_mapping(&a, &b, &[(0, 0), (1, 1), (2, 2)]);
        assert_eq!(ga.labels(), gb.labels());
        assert_eq!(ga.edge_count(), 2);
        assert_eq!(gb.edge_count(), 2);
    }

    #[test]
    fn unmapped_modules_get_unique_labels() {
        let a = chain("a", &["fetch", "blast"]);
        let b = chain("b", &["get", "blast_search", "plot"]);
        let (ga, gb) = labeled_graphs_from_mapping(&a, &b, &[(1, 1)]);
        assert_eq!(ga.label(1), gb.label(1), "mapped pair shares a label");
        assert_ne!(ga.label(0), gb.label(0));
        assert_ne!(ga.label(0), gb.label(2));
        // All labels across both graphs except the shared one are distinct.
        let mut all: Vec<u32> = ga.labels().iter().chain(gb.labels()).copied().collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 4, "5 modules, one shared label");
    }

    #[test]
    fn invalid_and_duplicate_pairs_are_ignored() {
        let a = chain("a", &["x", "y"]);
        let b = chain("b", &["u", "v"]);
        let (ga, gb) =
            labeled_graphs_from_mapping(&a, &b, &[(0, 0), (0, 1), (9, 1), (1, 9), (1, 1)]);
        assert_eq!(ga.label(0), gb.label(0));
        assert_eq!(ga.label(1), gb.label(1));
        assert_ne!(ga.label(0), ga.label(1));
    }

    #[test]
    fn empty_mapping_yields_all_distinct_labels() {
        let a = chain("a", &["x", "y"]);
        let b = chain("b", &["u"]);
        let (ga, gb) = labeled_graphs_from_mapping(&a, &b, &[]);
        let mut all: Vec<u32> = ga.labels().iter().chain(gb.labels()).copied().collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 3);
    }
}
