//! Per-pair computation budgets and search outcomes.
//!
//! The paper "allowed match cost computation of each of the 240 pairs of
//! scientific workflows to take a maximum of 5 minutes" and reports how many
//! pairs could not be computed in that time (Section 5.1.1 and 5.1.4).  The
//! [`GedBudget`] makes those limits explicit and configurable, and the
//! [`GedOutcome`] records whether a distance is exact, approximate or the
//! result of a timeout so that experiments can report the same counts.

use std::time::Duration;

/// Resource limits for one graph-edit-distance computation.
#[derive(Debug, Clone, PartialEq)]
pub struct GedBudget {
    /// Maximum number of nodes (in either graph) for which the exact A*
    /// search is attempted at all.
    pub exact_node_limit: usize,
    /// Maximum number of A* state expansions before giving up.
    pub max_expansions: usize,
    /// Optional wall-clock limit for the exact search.
    pub time_limit: Option<Duration>,
    /// Beam width used by the approximate fallback.
    pub beam_width: usize,
}

impl GedBudget {
    /// A small budget for unit tests and interactive use.
    pub fn small() -> Self {
        GedBudget {
            exact_node_limit: 8,
            max_expansions: 20_000,
            time_limit: Some(Duration::from_millis(250)),
            beam_width: 16,
        }
    }

    /// The budget mirroring the paper's evaluation setting: a generous
    /// expansion budget with a 5-minute wall-clock cap per pair.
    pub fn paper() -> Self {
        GedBudget {
            exact_node_limit: 16,
            max_expansions: 5_000_000,
            time_limit: Some(Duration::from_secs(300)),
            beam_width: 64,
        }
    }
}

impl Default for GedBudget {
    fn default() -> Self {
        GedBudget {
            exact_node_limit: 12,
            max_expansions: 200_000,
            time_limit: Some(Duration::from_secs(5)),
            beam_width: 32,
        }
    }
}

/// The result of a graph-edit-distance computation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GedOutcome {
    /// The exact distance, found by A* within the budget.
    Exact(f64),
    /// An upper bound from beam search, used because the graphs exceeded the
    /// exact-search size limit.
    Approximate(f64),
    /// An upper bound from beam search, used because the exact search ran
    /// out of budget (the paper's "not computable in this timeframe" case).
    TimedOut(f64),
}

impl GedOutcome {
    /// The edit cost regardless of how it was obtained.
    pub fn cost(&self) -> f64 {
        match self {
            GedOutcome::Exact(c) | GedOutcome::Approximate(c) | GedOutcome::TimedOut(c) => *c,
        }
    }

    /// True if the cost is exact.
    pub fn is_exact(&self) -> bool {
        matches!(self, GedOutcome::Exact(_))
    }

    /// True if the exact search was attempted but exceeded its budget.
    pub fn timed_out(&self) -> bool {
        matches!(self, GedOutcome::TimedOut(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_budget_is_reasonable() {
        let b = GedBudget::default();
        assert!(b.exact_node_limit >= 8);
        assert!(b.max_expansions >= 10_000);
        assert!(b.beam_width >= 1);
    }

    #[test]
    fn paper_budget_uses_five_minutes() {
        assert_eq!(
            GedBudget::paper().time_limit,
            Some(Duration::from_secs(300))
        );
    }

    #[test]
    fn outcome_accessors() {
        assert_eq!(GedOutcome::Exact(2.0).cost(), 2.0);
        assert!(GedOutcome::Exact(2.0).is_exact());
        assert!(!GedOutcome::Exact(2.0).timed_out());
        assert!(!GedOutcome::Approximate(3.0).is_exact());
        assert!(GedOutcome::TimedOut(4.0).timed_out());
        assert_eq!(GedOutcome::TimedOut(4.0).cost(), 4.0);
    }
}
