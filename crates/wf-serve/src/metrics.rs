//! Serving metrics: lock-free atomic counters and fixed-bucket latency
//! histograms, cheap enough to record on every request and snapshot from a
//! STATS request without pausing the workers.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// A monotonically increasing event counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    pub const fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    pub fn incr(&self) {
        // ordering: Relaxed — pure event count; readers only need an
        // eventually consistent total, never cross-counter coherence.
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    pub fn add(&self, n: u64) {
        // ordering: Relaxed — same as `incr`.
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        // ordering: Relaxed — snapshot reads tolerate slight staleness.
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of power-of-two latency buckets: bucket `i` holds samples in
/// `[2^i, 2^(i+1))` microseconds, so the top bucket starts at ~9 minutes —
/// far beyond any serving deadline.
pub const HISTOGRAM_BUCKETS: usize = 30;

/// A fixed-bucket (power-of-two microsecond) latency histogram.  Recording
/// is one relaxed atomic add; quantiles are computed from a snapshot, so
/// p50/p95/p99 cost nothing until asked for.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum_us: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram::new()
    }
}

impl LatencyHistogram {
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_us: AtomicU64::new(0),
        }
    }

    fn bucket_of(us: u64) -> usize {
        // ilog2 of the clamped sample; sample 0 lands in bucket 0.
        let clamped = us.max(1);
        ((63 - clamped.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
    }

    pub fn record(&self, latency: Duration) {
        self.record_us(latency.as_micros().min(u128::from(u64::MAX)) as u64);
    }

    pub fn record_us(&self, us: u64) {
        // ordering: Relaxed — independent statistical counters; a snapshot
        // that tears between them is still a valid histogram.
        self.buckets[Self::bucket_of(us)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed); // ordering: same — independent counter
        self.sum_us.fetch_add(us, Ordering::Relaxed); // ordering: same — independent counter
    }

    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            // ordering: Relaxed — see `record_us`.
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            count: self.count.load(Ordering::Relaxed), // ordering: see `record_us`
            sum_us: self.sum_us.load(Ordering::Relaxed), // ordering: see `record_us`
        }
    }
}

/// A point-in-time copy of a [`LatencyHistogram`], with quantile queries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    pub count: u64,
    pub sum_us: u64,
}

impl HistogramSnapshot {
    /// The quantile in microseconds: locate the bucket holding rank
    /// `ceil(q * count)` and interpolate linearly *within* it by the
    /// rank's position among the bucket's samples.  Returns 0 for an
    /// empty histogram.
    ///
    /// The interpolation matters at power-of-two bucket edges: reporting
    /// every in-bucket rank as the bucket's upper edge collapses p50, p95
    /// and p99 to one value whenever the bulk of samples shares a bucket,
    /// which is the common case for a tight latency distribution.  Spread
    /// uniformly across the bucket instead, the quantiles stay distinct
    /// and each is still within the bucket that truly contains its rank.
    pub fn quantile_us(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let clamped = q.clamp(0.0, 1.0);
        let rank = ((clamped * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if seen + n >= rank {
                // Bucket 0 spans [0, 2) µs; bucket i ≥ 1 spans
                // [2^i, 2^(i+1)) µs — lower edge `lower`, width `width`.
                let (lower, width) = if i == 0 {
                    (0, 2)
                } else {
                    (1u64 << i, 1u64 << i)
                };
                // 1-based position of the rank among this bucket's n
                // samples, placed at the *midpoint* of its 1/n-wide slot:
                // (2·in_rank − 1)·width / (2n).  Upper-edge placement
                // (in_rank·width/n) reports a lone sample at the bucket's
                // top — overstating p50 by up to ~2× for a one-sample
                // bucket — while midpoints stay unbiased for any count.
                let in_rank = rank - seen;
                let offset = ((2 * u128::from(in_rank) - 1) * u128::from(width)
                    / (2 * u128::from(n))) as u64;
                return (lower + offset).min(lower + width - 1);
            }
            seen += n;
        }
        (1u64 << HISTOGRAM_BUCKETS) - 1
    }

    pub fn mean_us(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_us as f64 / self.count as f64
        }
    }
}

/// All counters the server maintains.  One instance per server, shared by
/// every reader and worker thread.
#[derive(Debug, Default)]
pub struct ServeMetrics {
    /// Connections accepted.
    pub connections: Counter,
    /// Requests decoded (inline and queued alike).
    pub requests: Counter,
    /// Non-error responses written.
    pub responses_ok: Counter,
    /// Typed error responses written (including sheds).
    pub responses_error: Counter,
    /// Requests shed by admission control (every worker queue full).
    pub shed: Counter,
    /// Searches that returned a degraded (partial) result.
    pub degraded: Counter,
    /// Frames rejected by the codec.
    pub bad_frames: Counter,
    /// Faults the injection plan actually fired.
    pub faults_injected: Counter,
    /// End-to-end search latency (arrival to reply encoding).
    pub search_latency: LatencyHistogram,
}

impl ServeMetrics {
    pub fn new() -> Self {
        ServeMetrics::default()
    }

    pub fn snapshot(&self) -> StatsSnapshot {
        let lat = self.search_latency.snapshot();
        StatsSnapshot {
            connections: self.connections.get(),
            requests: self.requests.get(),
            responses_ok: self.responses_ok.get(),
            responses_error: self.responses_error.get(),
            shed: self.shed.get(),
            degraded: self.degraded.get(),
            bad_frames: self.bad_frames.get(),
            faults_injected: self.faults_injected.get(),
            searches: lat.count,
            search_p50_us: lat.quantile_us(0.50),
            search_p95_us: lat.quantile_us(0.95),
            search_p99_us: lat.quantile_us(0.99),
        }
    }
}

/// The wire-encodable snapshot a STATS request returns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsSnapshot {
    pub connections: u64,
    pub requests: u64,
    pub responses_ok: u64,
    pub responses_error: u64,
    pub shed: u64,
    pub degraded: u64,
    pub bad_frames: u64,
    pub faults_injected: u64,
    pub searches: u64,
    pub search_p50_us: u64,
    pub search_p95_us: u64,
    pub search_p99_us: u64,
}

impl StatsSnapshot {
    /// Number of u64 fields on the wire; the codec encodes/decodes exactly
    /// this many, in `as_fields` order.
    pub const FIELD_COUNT: usize = 12;

    pub fn as_fields(&self) -> [u64; Self::FIELD_COUNT] {
        [
            self.connections,
            self.requests,
            self.responses_ok,
            self.responses_error,
            self.shed,
            self.degraded,
            self.bad_frames,
            self.faults_injected,
            self.searches,
            self.search_p50_us,
            self.search_p95_us,
            self.search_p99_us,
        ]
    }

    pub fn from_fields(fields: &[u64; Self::FIELD_COUNT]) -> Self {
        StatsSnapshot {
            connections: fields[0],
            requests: fields[1],
            responses_ok: fields[2],
            responses_error: fields[3],
            shed: fields[4],
            degraded: fields[5],
            bad_frames: fields[6],
            faults_injected: fields[7],
            searches: fields[8],
            search_p50_us: fields[9],
            search_p95_us: fields[10],
            search_p99_us: fields[11],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges() {
        assert_eq!(LatencyHistogram::bucket_of(0), 0);
        assert_eq!(LatencyHistogram::bucket_of(1), 0);
        assert_eq!(LatencyHistogram::bucket_of(2), 1);
        assert_eq!(LatencyHistogram::bucket_of(3), 1);
        assert_eq!(LatencyHistogram::bucket_of(1024), 10);
        assert_eq!(LatencyHistogram::bucket_of(u64::MAX), HISTOGRAM_BUCKETS - 1);
    }

    #[test]
    fn quantiles_bracket_samples() {
        let h = LatencyHistogram::new();
        for us in [100u64, 200, 300, 400, 50_000] {
            h.record_us(us);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 5);
        // p50 over {100,200,300,400,50_000}: rank 3 → 300µs bucket
        // [256,512), first of that bucket's two samples sits at the
        // midpoint of the lower half → 256 + 256/4.
        assert_eq!(snap.quantile_us(0.50), 320);
        // p99 lands in the 50ms sample's bucket [32768, 65536); the sole
        // sample interpolates to the bucket midpoint, not the upper edge.
        assert_eq!(snap.quantile_us(0.99), 32_768 + 16_384);
        assert!(snap.mean_us() > 0.0);
    }

    #[test]
    fn quantiles_within_one_bucket_stay_distinct() {
        // 100 samples, all in bucket [1024, 2048).  Reporting the bucket's
        // upper edge for every rank would collapse p50 = p95 = p99 = 2047;
        // within-bucket interpolation keeps them distinct and ordered.
        let h = LatencyHistogram::new();
        for _ in 0..100 {
            h.record_us(1500);
        }
        let snap = h.snapshot();
        assert_eq!(snap.quantile_us(0.50), 1024 + (2 * 50 - 1) * 1024 / 200);
        assert_eq!(snap.quantile_us(0.95), 1024 + (2 * 95 - 1) * 1024 / 200);
        assert_eq!(snap.quantile_us(0.99), 1024 + (2 * 99 - 1) * 1024 / 200);
        let (p50, p95, p99) = (
            snap.quantile_us(0.50),
            snap.quantile_us(0.95),
            snap.quantile_us(0.99),
        );
        assert!(p50 < p95 && p95 < p99 && p99 < 2048);
    }

    #[test]
    fn single_sample_reports_its_bucket_midpoint() {
        // Rank 1-of-1 used to interpolate to `width` — the bucket's upper
        // edge — so a lone 1500µs sample reported p50 = 2047µs, ~2× the
        // bucket's lower edge.  The midpoint rule pins it to 1536µs.
        let h = LatencyHistogram::new();
        h.record_us(1500);
        let snap = h.snapshot();
        assert_eq!(snap.count, 1);
        for q in [0.01, 0.50, 0.99] {
            assert_eq!(snap.quantile_us(q), 1024 + 512);
        }
    }

    #[test]
    fn two_samples_split_the_bucket_into_quarters() {
        // Two samples in [1024, 2048): midpoints of the two half-slots
        // land at the bucket's first and third quartile.
        let h = LatencyHistogram::new();
        h.record_us(1100);
        h.record_us(1900);
        let snap = h.snapshot();
        assert_eq!(snap.count, 2);
        assert_eq!(snap.quantile_us(0.50), 1024 + 256);
        assert_eq!(snap.quantile_us(0.99), 1024 + 768);
    }

    #[test]
    fn zero_microsecond_samples_interpolate_inside_bucket_zero() {
        let h = LatencyHistogram::new();
        for us in [0u64, 0, 1, 1] {
            h.record_us(us);
        }
        let snap = h.snapshot();
        // Bucket 0 spans [0, 2): every quantile stays below 2µs.
        assert!(snap.quantile_us(0.99) <= 1);
    }

    #[test]
    fn empty_histogram_is_zero() {
        let snap = LatencyHistogram::new().snapshot();
        assert_eq!(snap.quantile_us(0.5), 0);
        assert_eq!(snap.mean_us(), 0.0);
    }

    #[test]
    fn stats_field_roundtrip() {
        let snap = StatsSnapshot {
            connections: 1,
            requests: 2,
            responses_ok: 3,
            responses_error: 4,
            shed: 5,
            degraded: 6,
            bad_frames: 7,
            faults_injected: 8,
            searches: 9,
            search_p50_us: 10,
            search_p95_us: 11,
            search_p99_us: 12,
        };
        assert_eq!(StatsSnapshot::from_fields(&snap.as_fields()), snap);
    }
}
