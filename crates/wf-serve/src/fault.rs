//! Deterministic fault injection for the serving stack.
//!
//! A [`FaultPlan`] describes *which* faults to inject — delayed shards,
//! shard visit failures, replies dropped mid-frame, slow-loris reply
//! writers — and a seed.  The live [`FaultState`] turns the plan into
//! per-event decisions that are a pure function of `(seed, site, sequence
//! number)`: the Nth decision at a given site is identical on every run
//! with the same seed, regardless of thread scheduling at *other* sites.
//! Re-running a failing integration test with its printed seed replays the
//! same fault pattern.
//!
//! Decisions deliberately key on a per-site monotonic sequence, not on
//! request ids: a retried request gets a *fresh* decision, so a plan that
//! drops 30% of replies slows clients down but cannot doom any particular
//! request id forever.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use wf_repo::CancelToken;

/// Fault decision sites — mixed into the hash so shard faults and reply
/// faults draw from independent deterministic streams.
const SITE_SHARD_FAIL: u64 = 0x51;
const SITE_REPLY_DROP: u64 = 0x52;
const SITE_REPLY_SLOW: u64 = 0x53;

/// What a deterministic fault plan does to the serving stack.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    seed: u64,
    slow_shards: Vec<usize>,
    shard_delay: Duration,
    fail_shards_per_mille: u16,
    drop_replies_per_mille: u16,
    slow_replies_per_mille: u16,
    slow_reply_pace: Duration,
}

impl FaultPlan {
    /// An empty plan (no faults) with the given replay seed.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            ..FaultPlan::default()
        }
    }

    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Every visit to one of `shards` stalls for `delay` before the scan
    /// (cooperatively — the stall aborts early when the request's deadline
    /// fires, so a delayed shard degrades the result instead of blowing
    /// the SLO).
    pub fn delay_shards(mut self, shards: &[usize], delay: Duration) -> Self {
        self.slow_shards = shards.to_vec();
        self.shard_delay = delay;
        self
    }

    /// Vetoes roughly `per_mille`/1000 shard visits (the shard reports as
    /// unanswered and the search result degrades).
    pub fn fail_shards(mut self, per_mille: u16) -> Self {
        self.fail_shards_per_mille = per_mille.min(1000);
        self
    }

    /// Drops roughly `per_mille`/1000 replies mid-frame: a few header
    /// bytes are written, then the connection is severed — the client sees
    /// a truncated frame or a reset, both retryable.
    pub fn drop_replies(mut self, per_mille: u16) -> Self {
        self.drop_replies_per_mille = per_mille.min(1000);
        self
    }

    /// Writes roughly `per_mille`/1000 replies one byte at a time with
    /// `pace` between bytes — a slow-loris server exercising client read
    /// timeouts.
    pub fn slow_replies(mut self, per_mille: u16, pace: Duration) -> Self {
        self.slow_replies_per_mille = per_mille.min(1000);
        self.slow_reply_pace = pace;
        self
    }

    pub fn has_faults(&self) -> bool {
        !self.slow_shards.is_empty()
            || self.fail_shards_per_mille > 0
            || self.drop_replies_per_mille > 0
            || self.slow_replies_per_mille > 0
    }
}

/// What to do to one shard visit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardFault {
    /// Visit the shard normally.
    Pass,
    /// Stall (cooperatively) before scanning the shard.
    Delay(Duration),
    /// Veto the visit: the shard goes unanswered and the result degrades.
    Fail,
}

/// What to do to one reply write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplyFault {
    /// Write the reply normally.
    Pass,
    /// Write a few bytes of the frame, then sever the connection.
    Drop,
    /// Write the frame one byte at a time with this pace between bytes.
    SlowLoris(Duration),
}

/// The live decision engine for a [`FaultPlan`].
#[derive(Debug)]
pub struct FaultState {
    plan: FaultPlan,
    shard_seq: AtomicU64,
    reply_seq: AtomicU64,
}

/// 64-bit FNV-1a over the decision coordinates — stable, dependency-free,
/// and well-mixed enough for per-mille draws.
fn fnv_mix(seed: u64, site: u64, seq: u64) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for word in [seed, site, seq] {
        for byte in word.to_le_bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
    h
}

impl FaultState {
    pub fn new(plan: FaultPlan) -> Self {
        FaultState {
            plan,
            shard_seq: AtomicU64::new(0),
            reply_seq: AtomicU64::new(0),
        }
    }

    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    fn draw(&self, site: u64, seq: u64, per_mille: u16) -> bool {
        per_mille > 0 && fnv_mix(self.plan.seed, site, seq) % 1000 < u64::from(per_mille)
    }

    /// The decision for the next visit to `shard`.  Delays are
    /// deterministic per shard (listed shards always stall); failures draw
    /// from the seeded per-mille stream.
    pub fn shard_fault(&self, shard: usize) -> ShardFault {
        // ordering: Relaxed — the sequence only needs to be unique and
        // monotonic per site; decisions never synchronise other memory.
        let seq = self.shard_seq.fetch_add(1, Ordering::Relaxed);
        if self.plan.slow_shards.contains(&shard) {
            return ShardFault::Delay(self.plan.shard_delay);
        }
        if self.draw(SITE_SHARD_FAIL, seq, self.plan.fail_shards_per_mille) {
            return ShardFault::Fail;
        }
        ShardFault::Pass
    }

    /// The decision for the next reply write.
    pub fn reply_fault(&self) -> ReplyFault {
        // ordering: Relaxed — see `shard_fault`.
        let seq = self.reply_seq.fetch_add(1, Ordering::Relaxed);
        if self.draw(SITE_REPLY_DROP, seq, self.plan.drop_replies_per_mille) {
            return ReplyFault::Drop;
        }
        if self.draw(SITE_REPLY_SLOW, seq, self.plan.slow_replies_per_mille) {
            return ReplyFault::SlowLoris(self.plan.slow_reply_pace);
        }
        ReplyFault::Pass
    }
}

/// Sleeps for up to `total`, polling `cancel` in small slices and
/// returning early (false) the moment the token fires.  Injected shard
/// delays stall through this so a delayed shard degrades the search
/// instead of holding the worker past the request's deadline.
///
/// When the token carries a deadline, each nap is additionally clamped to
/// the token's time remaining, so the wake-up lands *at* the deadline
/// rather than up to one full slice past it — at a 2 ms slice the
/// overshoot was half the budget of a tight 4 ms SLO.
pub fn cooperative_sleep(cancel: &CancelToken, total: Duration) -> bool {
    cooperative_sleep_sliced(cancel, total, Duration::from_millis(2))
}

fn cooperative_sleep_sliced(cancel: &CancelToken, total: Duration, slice: Duration) -> bool {
    let mut remaining = total;
    while !remaining.is_zero() {
        if cancel.is_cancelled() {
            return false;
        }
        let mut nap = remaining.min(slice);
        if let Some(left) = cancel.remaining() {
            // A zero `left` means the token fired between the check above
            // and here; skip the nap and let the next check latch it.
            nap = nap.min(left);
        }
        std::thread::sleep(nap);
        remaining = remaining.saturating_sub(nap.max(Duration::from_micros(1)));
    }
    !cancel.is_cancelled()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_deterministic_per_seed() {
        let plan = FaultPlan::new(0xFEED)
            .fail_shards(300)
            .drop_replies(250)
            .slow_replies(100, Duration::from_millis(1));
        let a = FaultState::new(plan.clone());
        let b = FaultState::new(plan);
        let shard_a: Vec<_> = (0..200).map(|s| a.shard_fault(s % 8)).collect();
        let shard_b: Vec<_> = (0..200).map(|s| b.shard_fault(s % 8)).collect();
        assert_eq!(shard_a, shard_b);
        let reply_a: Vec<_> = (0..200).map(|_| a.reply_fault()).collect();
        let reply_b: Vec<_> = (0..200).map(|_| b.reply_fault()).collect();
        assert_eq!(reply_a, reply_b);
        // The rates actually bite: some but not all decisions fault.
        assert!(shard_a.contains(&ShardFault::Fail));
        assert!(shard_a.contains(&ShardFault::Pass));
        assert!(reply_a.contains(&ReplyFault::Drop));
        assert!(reply_a.contains(&ReplyFault::Pass));
    }

    #[test]
    fn different_seeds_differ() {
        let a = FaultState::new(FaultPlan::new(1).drop_replies(500));
        let b = FaultState::new(FaultPlan::new(2).drop_replies(500));
        let da: Vec<_> = (0..64).map(|_| a.reply_fault()).collect();
        let db: Vec<_> = (0..64).map(|_| b.reply_fault()).collect();
        assert_ne!(da, db);
    }

    #[test]
    fn listed_shards_always_delay() {
        let s = FaultState::new(FaultPlan::new(7).delay_shards(&[2], Duration::from_millis(40)));
        for _ in 0..16 {
            assert_eq!(
                s.shard_fault(2),
                ShardFault::Delay(Duration::from_millis(40))
            );
            assert_eq!(s.shard_fault(0), ShardFault::Pass);
        }
    }

    #[test]
    fn cooperative_sleep_aborts_on_cancel() {
        let cancel = CancelToken::after(Duration::from_millis(8));
        let started = std::time::Instant::now();
        let completed = cooperative_sleep(&cancel, Duration::from_millis(500));
        assert!(!completed);
        assert!(started.elapsed() < Duration::from_millis(200));
    }

    #[test]
    fn cooperative_sleep_wakes_at_the_deadline_not_a_slice_past_it() {
        // A coarse 80 ms slice against a 10 ms deadline: without the
        // time-remaining clamp the first nap sleeps the full slice and
        // wakes ~70 ms after the deadline fired; with it, the nap is cut
        // to the deadline and the wake-up lands within scheduler noise.
        let cancel = CancelToken::after(Duration::from_millis(10));
        let started = std::time::Instant::now();
        let completed = cooperative_sleep_sliced(
            &cancel,
            Duration::from_millis(500),
            Duration::from_millis(80),
        );
        assert!(!completed);
        let elapsed = started.elapsed();
        assert!(
            elapsed >= Duration::from_millis(8),
            "woke before the deadline: {elapsed:?}"
        );
        assert!(
            elapsed < Duration::from_millis(60),
            "overshot the deadline by most of a slice: {elapsed:?}"
        );
    }

    #[test]
    fn cooperative_sleep_completes_without_deadline() {
        let cancel = CancelToken::never();
        assert!(cooperative_sleep(&cancel, Duration::from_millis(4)));
    }

    #[test]
    fn empty_plan_passes_everything() {
        let s = FaultState::new(FaultPlan::new(99));
        assert!(!s.plan().has_faults());
        assert_eq!(s.shard_fault(0), ShardFault::Pass);
        assert_eq!(s.reply_fault(), ReplyFault::Pass);
    }
}
