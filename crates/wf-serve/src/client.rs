//! A retrying client for the serving protocol.
//!
//! The client distinguishes **retryable** failures — connection refused or
//! reset, truncated replies, read timeouts, and typed
//! [`ServeError::Overloaded`] sheds — from **non-retryable** typed errors
//! (bad request, not found), and retries the former with jittered
//! exponential backoff on a *fresh connection*, reusing the *same request
//! id* so the caller can account for every logical query exactly once.
//! All protocol operations are idempotent, which is what makes blind
//! resending safe.

use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use wf_model::Workflow;

use crate::metrics::StatsSnapshot;
use crate::protocol::{
    decode_response, encode_request, read_frame, FrameError, Hit, Request, Response, ServeError,
    WireError, DEFAULT_MAX_FRAME_LEN,
};

/// Client tuning knobs.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Budget for one attempt's reply (connect + write + read).
    pub request_timeout: Duration,
    /// Retryable failures tolerated before giving up (total attempts is
    /// `max_retries + 1`).
    pub max_retries: u32,
    /// First backoff delay; doubles per retry.
    pub backoff_base: Duration,
    /// Backoff ceiling.
    pub backoff_cap: Duration,
    /// Seed for deterministic backoff jitter.
    pub seed: u64,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            request_timeout: Duration::from_secs(2),
            max_retries: 5,
            backoff_base: Duration::from_millis(10),
            backoff_cap: Duration::from_millis(500),
            seed: 0x5EED,
        }
    }
}

/// Why a request ultimately failed.
#[derive(Debug)]
pub enum ClientError {
    /// The server answered with a non-retryable typed error.
    Rejected(ServeError),
    /// Every attempt failed retryably; `last` describes the final one.
    Exhausted { attempts: u32, last: String },
    /// The server's reply decoded but did not match the request (wrong
    /// request id or variant) — a protocol violation, not retryable.
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Rejected(err) => write!(f, "request rejected: {err}"),
            ClientError::Exhausted { attempts, last } => {
                write!(f, "request failed after {attempts} attempts: {last}")
            }
            ClientError::Protocol(detail) => write!(f, "protocol violation: {detail}"),
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Rejected(err) => Some(err),
            _ => None,
        }
    }
}

/// A search outcome with its degradation flags.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchOutcome {
    pub request_id: u64,
    pub hits: Vec<Hit>,
    pub degraded: bool,
    pub answered: Vec<bool>,
}

/// How one attempt failed (internal): socket-level failures — refused,
/// reset, timed out, truncated frame — all retryable on a fresh
/// connection.
struct AttemptError {
    detail: String,
}

fn transport(detail: impl Into<String>) -> AttemptError {
    AttemptError {
        detail: detail.into(),
    }
}

/// A blocking protocol client with automatic retry.
pub struct Client {
    addr: SocketAddr,
    config: ClientConfig,
    stream: Option<TcpStream>,
    next_request_id: u64,
    rng: u64,
    retries: u64,
}

impl Client {
    pub fn new(addr: SocketAddr, config: ClientConfig) -> Self {
        // xorshift needs a non-zero state; fold the address port in so
        // concurrently-seeded clients still jitter apart.
        let rng = (config.seed ^ (u64::from(addr.port()) << 17)) | 1;
        Client {
            addr,
            config,
            stream: None,
            next_request_id: 1,
            rng,
            retries: 0,
        }
    }

    pub fn connect(addr: SocketAddr) -> Self {
        Client::new(addr, ClientConfig::default())
    }

    /// Retries (re-sent attempts) performed over this client's lifetime.
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// Sends a request, retrying retryable failures, and returns the
    /// matched `(request_id, response)` pair.
    pub fn request(&mut self, request: &Request) -> Result<(u64, Response), ClientError> {
        let request_id = self.next_request_id;
        self.next_request_id += 1;
        let frame = encode_request(request_id, request);
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            match self.attempt(request_id, &frame) {
                Ok(Response::Error(err)) if !err.is_retryable() => {
                    return Err(ClientError::Rejected(err));
                }
                Ok(Response::Error(ServeError::Overloaded { retry_after_ms })) => {
                    if attempt > self.config.max_retries {
                        return Err(ClientError::Exhausted {
                            attempts: attempt,
                            last: format!("still overloaded (hint {retry_after_ms}ms)"),
                        });
                    }
                    self.retries += 1;
                    std::thread::sleep(self.backoff(attempt, Some(retry_after_ms)));
                }
                Ok(response) => return Ok((request_id, response)),
                Err(AttemptError { detail }) => {
                    // The connection is suspect: drop it so the next
                    // attempt reconnects and no stale reply can desync us.
                    self.stream = None;
                    if attempt > self.config.max_retries {
                        return Err(ClientError::Exhausted {
                            attempts: attempt,
                            last: detail,
                        });
                    }
                    self.retries += 1;
                    std::thread::sleep(self.backoff(attempt, None));
                }
            }
        }
    }

    /// One send/receive attempt over the (re)used connection.
    fn attempt(&mut self, request_id: u64, frame: &[u8]) -> Result<Response, AttemptError> {
        use std::io::Write;
        let timeout = self.config.request_timeout;
        if self.stream.is_none() {
            let stream = TcpStream::connect_timeout(&self.addr, timeout)
                .and_then(|s| s.set_read_timeout(Some(timeout)).map(|()| s))
                .and_then(|s| s.set_write_timeout(Some(timeout)).map(|()| s))
                .and_then(|s| s.set_nodelay(true).map(|()| s))
                .map_err(|e| transport(format!("connect: {e}")))?;
            self.stream = Some(stream);
        }
        let stream = match self.stream.as_mut() {
            Some(stream) => stream,
            None => return Err(transport("no connection")),
        };
        stream
            .write_all(frame)
            .map_err(|e| transport(format!("send: {e}")))?;
        let payload = match read_frame(stream, DEFAULT_MAX_FRAME_LEN, timeout) {
            Ok(Some(payload)) => payload,
            // The read timeout elapsed with no reply byte: a slow or dead
            // server — retryable.
            Ok(None) => return Err(transport("reply timed out")),
            Err(FrameError::Closed) => return Err(transport("connection closed")),
            Err(FrameError::Io(e)) => return Err(transport(format!("recv: {e}"))),
            Err(FrameError::Wire(e)) => {
                // Garbled framing on the reply path (e.g. a drop fault
                // severed mid-frame): retryable on a fresh connection.
                return Err(transport(format!("reply framing: {e}")));
            }
        };
        match decode_response(&payload) {
            Ok((rid, response)) if rid == request_id => Ok(response),
            Ok((rid, _)) => Err(transport(format!(
                "reply for request {rid}, expected {request_id} — resyncing"
            ))),
            Err(WireError::Truncated { .. }) => Err(transport("truncated reply")),
            Err(e) => Err(transport(format!("reply decode: {e}"))),
        }
    }

    /// Jittered exponential backoff: `base * 2^(attempt-1)` capped, half
    /// fixed and half jittered, never below the server's retry hint.
    ///
    /// A hinted retry keeps its own jitter: the server hands the *same*
    /// `retry_after_ms` to every client it sheds in one overload wave, so
    /// flooring at the bare hint would march the whole wave back in
    /// lockstep and re-shed it (thundering herd).  When the hint exceeds
    /// the computed delay, the retry is spread uniformly over
    /// `[hint, hint + base)` instead.
    fn backoff(&mut self, attempt: u32, hint_ms: Option<u32>) -> Duration {
        let shift = (attempt - 1).min(16);
        let exp = self
            .config
            .backoff_base
            .saturating_mul(1u32 << shift)
            .min(self.config.backoff_cap);
        let exp_us = exp.as_micros().min(u128::from(u64::MAX)) as u64;
        let jitter = if exp_us > 1 {
            self.next_rand() % (exp_us / 2 + 1)
        } else {
            0
        };
        let delay = Duration::from_micros(exp_us / 2 + jitter);
        let hint = match hint_ms {
            Some(hint) => Duration::from_millis(u64::from(hint)),
            None => return delay,
        };
        if delay >= hint {
            return delay;
        }
        let base_us = self
            .config
            .backoff_base
            .as_micros()
            .min(u128::from(u64::MAX)) as u64;
        let spread = if base_us > 0 {
            self.next_rand() % base_us
        } else {
            0
        };
        hint + Duration::from_micros(spread)
    }

    /// xorshift64 — deterministic per seed, good enough for jitter.
    fn next_rand(&mut self) -> u64 {
        let mut x = self.rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng = x;
        x
    }

    // -- Convenience wrappers -------------------------------------------

    pub fn ping(&mut self) -> Result<u64, ClientError> {
        match self.request(&Request::Ping)? {
            (rid, Response::Pong) => Ok(rid),
            (_, other) => Err(ClientError::Protocol(format!(
                "expected Pong, got {other:?}"
            ))),
        }
    }

    /// Top-k search with an optional per-request deadline (0 = server
    /// default).
    pub fn search(
        &mut self,
        query: &str,
        k: u32,
        deadline_ms: u32,
    ) -> Result<SearchOutcome, ClientError> {
        let request = Request::Search {
            query: query.to_owned(),
            k,
            deadline_ms,
        };
        match self.request(&request)? {
            (
                request_id,
                Response::Hits {
                    degraded,
                    answered,
                    hits,
                },
            ) => Ok(SearchOutcome {
                request_id,
                hits,
                degraded,
                answered,
            }),
            (_, other) => Err(ClientError::Protocol(format!(
                "expected Hits, got {other:?}"
            ))),
        }
    }

    /// Ships a workflow to the server; returns the shard it landed on.
    pub fn add(&mut self, workflow: &Workflow) -> Result<u32, ClientError> {
        let workflow_json = serde_json::to_string(workflow)
            .map_err(|e| ClientError::Protocol(format!("encode workflow: {e}")))?;
        match self.request(&Request::Add { workflow_json })? {
            (_, Response::Added { shard }) => Ok(shard),
            (_, other) => Err(ClientError::Protocol(format!(
                "expected Added, got {other:?}"
            ))),
        }
    }

    pub fn remove(&mut self, id: &str) -> Result<bool, ClientError> {
        match self.request(&Request::Remove { id: id.to_owned() })? {
            (_, Response::Removed { existed }) => Ok(existed),
            (_, other) => Err(ClientError::Protocol(format!(
                "expected Removed, got {other:?}"
            ))),
        }
    }

    pub fn stats(&mut self) -> Result<StatsSnapshot, ClientError> {
        match self.request(&Request::Stats)? {
            (_, Response::Stats(snapshot)) => Ok(snapshot),
            (_, other) => Err(ClientError::Protocol(format!(
                "expected Stats, got {other:?}"
            ))),
        }
    }

    // A remote corpus size has no cheap `is_empty` twin: every probe is a
    // round trip, so one fallible accessor is the whole surface.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&mut self) -> Result<u64, ClientError> {
        match self.request(&Request::Len)? {
            (_, Response::Len { len }) => Ok(len),
            (_, other) => Err(ClientError::Protocol(format!(
                "expected Len, got {other:?}"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_and_respects_hint() {
        let addr: SocketAddr = match "127.0.0.1:9".parse() {
            Ok(a) => a,
            Err(_) => unreachable!("literal address parses"),
        };
        let mut client = Client::new(addr, ClientConfig::default());
        let first = client.backoff(1, None);
        let fifth = client.backoff(5, None);
        assert!(fifth >= first);
        assert!(fifth <= client.config.backoff_cap + client.config.backoff_cap / 2);
        let hinted = client.backoff(1, Some(400));
        assert!(hinted >= Duration::from_millis(400));
        assert!(hinted < Duration::from_millis(400) + client.config.backoff_base);
    }

    #[test]
    fn hinted_backoff_spreads_a_shed_wave() {
        // Sixteen clients shed in the same overload wave all receive the
        // same retry_after hint.  Their retry instants must spread over
        // [hint, hint + base), not collapse onto the bare hint.
        let addr: SocketAddr = match "127.0.0.1:9".parse() {
            Ok(a) => a,
            Err(_) => unreachable!("literal address parses"),
        };
        let hint = Duration::from_millis(400);
        let delays: std::collections::BTreeSet<Duration> = (0..16u64)
            .map(|c| {
                let mut client = Client::new(
                    addr,
                    ClientConfig {
                        seed: 0x5EED + c,
                        ..ClientConfig::default()
                    },
                );
                client.backoff(1, Some(400))
            })
            .collect();
        for &delay in &delays {
            assert!(delay >= hint, "retry below the server hint: {delay:?}");
            assert!(
                delay < hint + Duration::from_millis(10),
                "retry past the jitter window: {delay:?}"
            );
        }
        assert!(
            delays.len() >= 8,
            "retry instants collapsed to {} distinct values (thundering herd)",
            delays.len()
        );
    }

    #[test]
    fn jitter_is_deterministic_per_seed() {
        let addr: SocketAddr = match "127.0.0.1:9".parse() {
            Ok(a) => a,
            Err(_) => unreachable!("literal address parses"),
        };
        let mut a = Client::new(
            addr,
            ClientConfig {
                seed: 11,
                ..ClientConfig::default()
            },
        );
        let mut b = Client::new(
            addr,
            ClientConfig {
                seed: 11,
                ..ClientConfig::default()
            },
        );
        let da: Vec<_> = (1..6).map(|i| a.backoff(i, None)).collect();
        let db: Vec<_> = (1..6).map(|i| b.backoff(i, None)).collect();
        assert_eq!(da, db);
    }

    #[test]
    fn connect_failure_exhausts_with_transport_error() {
        // Port 1 on loopback is almost certainly closed; connection is
        // refused immediately, so retries stay fast.
        let addr: SocketAddr = match "127.0.0.1:1".parse() {
            Ok(a) => a,
            Err(_) => unreachable!("literal address parses"),
        };
        let mut client = Client::new(
            addr,
            ClientConfig {
                max_retries: 1,
                backoff_base: Duration::from_millis(1),
                backoff_cap: Duration::from_millis(2),
                request_timeout: Duration::from_millis(200),
                ..ClientConfig::default()
            },
        );
        match client.ping() {
            Err(ClientError::Exhausted { attempts: 2, .. }) => {}
            other => panic!("expected Exhausted after 2 attempts, got {other:?}"),
        }
        assert_eq!(client.retries(), 1);
    }
}
