//! The wire protocol: a length-prefixed binary framing with a strict,
//! allocation-bounded codec.
//!
//! Every frame on the wire is
//!
//! ```text
//! [u32 payload-length (BE)] [payload]
//! payload = [u8 version] [u64 request-id (BE)] [u8 tag] [body]
//! ```
//!
//! The request id is chosen by the client and echoed verbatim in the reply,
//! so a caller can account for every in-flight query even when replies are
//! retried or arrive after a reconnect.  The codec is *strict*: truncated,
//! oversized, wrong-version and garbage frames decode to a typed
//! [`WireError`] — never a panic — and no decode allocates more memory than
//! the (already length-checked) frame it was handed.

use std::io::Read;
use std::net::TcpStream;
use std::time::{Duration, Instant};

use crate::metrics::StatsSnapshot;

/// The protocol version this build speaks.  A frame carrying any other
/// version byte is rejected with [`WireError::BadVersion`] before its body
/// is looked at.
pub const PROTOCOL_VERSION: u8 = 1;

/// Default ceiling on a single frame's payload length.  Frames declaring a
/// larger payload are rejected *before* the payload buffer is allocated,
/// bounding what a hostile or corrupted peer can make the server allocate.
pub const DEFAULT_MAX_FRAME_LEN: u32 = 8 * 1024 * 1024;

/// Smallest legal payload: version byte + request id + tag.
pub const MIN_PAYLOAD_LEN: u32 = 10;

/// A request frame, as decoded from the wire.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness probe; answered on the connection's reader thread so it
    /// stays responsive even when the worker queues are saturated.
    Ping,
    /// Top-k similarity search for a resident workflow id, with an optional
    /// per-request deadline (0 = server default).
    Search {
        query: String,
        k: u32,
        deadline_ms: u32,
    },
    /// Add (or replace) a workflow, shipped as the JSON encoding of
    /// [`wf_model::Workflow`].
    Add { workflow_json: String },
    /// Remove a workflow by id.
    Remove { id: String },
    /// Server metrics snapshot; answered on the reader thread.
    Stats,
    /// Resident workflow count; answered on the reader thread.
    Len,
}

/// One search hit on the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct Hit {
    pub id: String,
    pub score: f64,
}

/// A response frame, as decoded from the wire.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    Pong,
    /// Search results.  `answered[s]` is true when shard `s` ran its scan
    /// to completion; `degraded` is true when any shard did not (deadline
    /// fired or a fault vetoed the visit) — the hits are then the exact
    /// top-k over the candidates that *were* scored.
    Hits {
        degraded: bool,
        answered: Vec<bool>,
        hits: Vec<Hit>,
    },
    /// Workflow accepted; `shard` is the shard it now lives on.
    Added {
        shard: u32,
    },
    /// Removal outcome; `existed` is false when the id was not resident.
    Removed {
        existed: bool,
    },
    Stats(StatsSnapshot),
    Len {
        len: u64,
    },
    /// A typed error reply.  Only [`ServeError::Overloaded`] is retryable.
    Error(ServeError),
}

/// Typed server-side error replies.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The query id is not resident in the corpus.
    NotFound { id: String },
    /// Admission control shed the request: every worker queue was full.
    /// Retry after roughly `retry_after_ms` — the server's hint, derived
    /// from its queue drain rate configuration.
    Overloaded { retry_after_ms: u32 },
    /// The request was well-framed but semantically invalid (bad workflow
    /// JSON, undecodable body).  Never retryable.
    BadRequest { detail: String },
    /// The server failed internally while handling the request.
    Internal { detail: String },
}

impl ServeError {
    /// True for errors a client may transparently retry.
    pub fn is_retryable(&self) -> bool {
        matches!(self, ServeError::Overloaded { .. })
    }
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::NotFound { id } => write!(f, "workflow {id:?} is not resident"),
            ServeError::Overloaded { retry_after_ms } => {
                write!(f, "server overloaded; retry after {retry_after_ms}ms")
            }
            ServeError::BadRequest { detail } => write!(f, "bad request: {detail}"),
            ServeError::Internal { detail } => write!(f, "internal server error: {detail}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// Everything that can go wrong decoding a frame.  Strictly typed so tests
/// (and clients) can distinguish a truncated frame from a version mismatch
/// from garbage — and so the decoder provably never panics.
#[derive(Debug, Clone, PartialEq)]
pub enum WireError {
    /// The body ended before a declared field; `needed` bytes were
    /// required, `have` remained.
    Truncated { needed: usize, have: usize },
    /// The frame declared a payload larger than the configured ceiling.
    Oversized { len: u32, max: u32 },
    /// The version byte was not [`PROTOCOL_VERSION`].
    BadVersion { found: u8 },
    /// The tag byte named no known request/response variant.
    UnknownTag { tag: u8 },
    /// The body decoded completely but `extra` bytes trailed it.
    TrailingBytes { extra: usize },
    /// A structurally invalid field (bad UTF-8, non-boolean flag, unknown
    /// error code, payload shorter than the fixed header).
    Malformed(String),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated { needed, have } => {
                write!(
                    f,
                    "truncated frame: needed {needed} more bytes, have {have}"
                )
            }
            WireError::Oversized { len, max } => {
                write!(
                    f,
                    "oversized frame: payload of {len} bytes exceeds the {max}-byte limit"
                )
            }
            WireError::BadVersion { found } => write!(
                f,
                "unsupported protocol version {found} (this build speaks {PROTOCOL_VERSION})"
            ),
            WireError::UnknownTag { tag } => write!(f, "unknown message tag {tag:#04x}"),
            WireError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing bytes after a complete message body")
            }
            WireError::Malformed(detail) => write!(f, "malformed frame: {detail}"),
        }
    }
}

impl std::error::Error for WireError {}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

const TAG_PING: u8 = 0x01;
const TAG_SEARCH: u8 = 0x02;
const TAG_ADD: u8 = 0x03;
const TAG_REMOVE: u8 = 0x04;
const TAG_STATS: u8 = 0x05;
const TAG_LEN: u8 = 0x06;

const TAG_PONG: u8 = 0x81;
const TAG_HITS: u8 = 0x82;
const TAG_ADDED: u8 = 0x83;
const TAG_REMOVED: u8 = 0x84;
const TAG_STATS_REPLY: u8 = 0x85;
const TAG_LEN_REPLY: u8 = 0x86;
const TAG_ERROR: u8 = 0xE0;

const ERR_NOT_FOUND: u8 = 0x01;
const ERR_OVERLOADED: u8 = 0x02;
const ERR_BAD_REQUEST: u8 = 0x03;
const ERR_INTERNAL: u8 = 0x04;

struct FrameBuilder {
    buf: Vec<u8>,
}

impl FrameBuilder {
    /// Starts a frame: reserves the length prefix and writes the header.
    fn new(request_id: u64, tag: u8) -> Self {
        let mut buf = Vec::with_capacity(64);
        buf.extend_from_slice(&[0, 0, 0, 0]);
        buf.push(PROTOCOL_VERSION);
        buf.extend_from_slice(&request_id.to_be_bytes());
        buf.push(tag);
        FrameBuilder { buf }
    }

    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn bool(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }

    fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_be_bytes());
    }

    fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Backfills the length prefix and returns the finished frame.
    fn finish(mut self) -> Vec<u8> {
        let payload_len = (self.buf.len() - 4) as u32;
        self.buf[..4].copy_from_slice(&payload_len.to_be_bytes());
        self.buf
    }
}

/// Encodes a request into a complete frame (length prefix included).
pub fn encode_request(request_id: u64, req: &Request) -> Vec<u8> {
    let mut b;
    match req {
        Request::Ping => b = FrameBuilder::new(request_id, TAG_PING),
        Request::Search {
            query,
            k,
            deadline_ms,
        } => {
            b = FrameBuilder::new(request_id, TAG_SEARCH);
            b.str(query);
            b.u32(*k);
            b.u32(*deadline_ms);
        }
        Request::Add { workflow_json } => {
            b = FrameBuilder::new(request_id, TAG_ADD);
            b.str(workflow_json);
        }
        Request::Remove { id } => {
            b = FrameBuilder::new(request_id, TAG_REMOVE);
            b.str(id);
        }
        Request::Stats => b = FrameBuilder::new(request_id, TAG_STATS),
        Request::Len => b = FrameBuilder::new(request_id, TAG_LEN),
    }
    b.finish()
}

/// Encodes a response into a complete frame (length prefix included).
pub fn encode_response(request_id: u64, resp: &Response) -> Vec<u8> {
    let mut b;
    match resp {
        Response::Pong => b = FrameBuilder::new(request_id, TAG_PONG),
        Response::Hits {
            degraded,
            answered,
            hits,
        } => {
            b = FrameBuilder::new(request_id, TAG_HITS);
            b.bool(*degraded);
            b.u16(answered.len() as u16);
            for &a in answered {
                b.bool(a);
            }
            b.u32(hits.len() as u32);
            for hit in hits {
                b.str(&hit.id);
                b.f64(hit.score);
            }
        }
        Response::Added { shard } => {
            b = FrameBuilder::new(request_id, TAG_ADDED);
            b.u32(*shard);
        }
        Response::Removed { existed } => {
            b = FrameBuilder::new(request_id, TAG_REMOVED);
            b.bool(*existed);
        }
        Response::Stats(stats) => {
            b = FrameBuilder::new(request_id, TAG_STATS_REPLY);
            for v in stats.as_fields() {
                b.u64(v);
            }
        }
        Response::Len { len } => {
            b = FrameBuilder::new(request_id, TAG_LEN_REPLY);
            b.u64(*len);
        }
        Response::Error(err) => {
            b = FrameBuilder::new(request_id, TAG_ERROR);
            match err {
                ServeError::NotFound { id } => {
                    b.u8(ERR_NOT_FOUND);
                    b.str(id);
                }
                ServeError::Overloaded { retry_after_ms } => {
                    b.u8(ERR_OVERLOADED);
                    b.u32(*retry_after_ms);
                }
                ServeError::BadRequest { detail } => {
                    b.u8(ERR_BAD_REQUEST);
                    b.str(detail);
                }
                ServeError::Internal { detail } => {
                    b.u8(ERR_INTERNAL);
                    b.str(detail);
                }
            }
        }
    }
    b.finish()
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

/// A bounds-checked reader over a frame payload.  Every accessor returns
/// [`WireError::Truncated`] instead of slicing out of range, and string
/// lengths are validated against the *remaining* bytes before any
/// allocation, so a hostile length field cannot trigger an outsized `Vec`.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated {
                needed: n,
                have: self.remaining(),
            });
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn bool(&mut self) -> Result<bool, WireError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(WireError::Malformed(format!(
                "boolean field holds {other}, expected 0 or 1"
            ))),
        }
    }

    fn u16(&mut self) -> Result<u16, WireError> {
        let b = self.take(2)?;
        Ok(u16::from_be_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        let b = self.take(4)?;
        Ok(u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        let b = self.take(8)?;
        let mut raw = [0u8; 8];
        raw.copy_from_slice(b);
        Ok(u64::from_be_bytes(raw))
    }

    fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn str(&mut self) -> Result<String, WireError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        match std::str::from_utf8(bytes) {
            Ok(s) => Ok(s.to_owned()),
            Err(_) => Err(WireError::Malformed("string field is not UTF-8".to_owned())),
        }
    }

    fn finish(self) -> Result<(), WireError> {
        if self.remaining() > 0 {
            return Err(WireError::TrailingBytes {
                extra: self.remaining(),
            });
        }
        Ok(())
    }
}

/// Validates the fixed header and returns `(request_id, tag, body cursor)`.
fn decode_header(payload: &[u8]) -> Result<(u64, u8, Cursor<'_>), WireError> {
    if (payload.len() as u64) < u64::from(MIN_PAYLOAD_LEN) {
        return Err(WireError::Malformed(format!(
            "payload of {} bytes is shorter than the {MIN_PAYLOAD_LEN}-byte header",
            payload.len()
        )));
    }
    let mut c = Cursor::new(payload);
    let version = c.u8()?;
    if version != PROTOCOL_VERSION {
        return Err(WireError::BadVersion { found: version });
    }
    let request_id = c.u64()?;
    let tag = c.u8()?;
    Ok((request_id, tag, c))
}

/// Best-effort request id extraction from a frame that may fail full
/// decoding — used by the server to address a typed error reply at the
/// request that caused it.  `None` when even the header is unreadable.
pub fn peek_request_id(payload: &[u8]) -> Option<u64> {
    if payload.len() < MIN_PAYLOAD_LEN as usize || payload[0] != PROTOCOL_VERSION {
        return None;
    }
    let mut raw = [0u8; 8];
    raw.copy_from_slice(&payload[1..9]);
    Some(u64::from_be_bytes(raw))
}

/// Decodes a request payload (the bytes after the length prefix).
pub fn decode_request(payload: &[u8]) -> Result<(u64, Request), WireError> {
    let (request_id, tag, mut c) = decode_header(payload)?;
    let req = match tag {
        TAG_PING => Request::Ping,
        TAG_SEARCH => {
            let query = c.str()?;
            let k = c.u32()?;
            let deadline_ms = c.u32()?;
            Request::Search {
                query,
                k,
                deadline_ms,
            }
        }
        TAG_ADD => Request::Add {
            workflow_json: c.str()?,
        },
        TAG_REMOVE => Request::Remove { id: c.str()? },
        TAG_STATS => Request::Stats,
        TAG_LEN => Request::Len,
        tag => return Err(WireError::UnknownTag { tag }),
    };
    c.finish()?;
    Ok((request_id, req))
}

/// Decodes a response payload (the bytes after the length prefix).
pub fn decode_response(payload: &[u8]) -> Result<(u64, Response), WireError> {
    let (request_id, tag, mut c) = decode_header(payload)?;
    let resp = match tag {
        TAG_PONG => Response::Pong,
        TAG_HITS => {
            let degraded = c.bool()?;
            let shard_count = c.u16()? as usize;
            // One byte per shard flag must still be present — checked
            // before the Vec is sized, so a hostile count cannot force an
            // allocation beyond the frame.
            if c.remaining() < shard_count {
                return Err(WireError::Truncated {
                    needed: shard_count,
                    have: c.remaining(),
                });
            }
            let mut answered = Vec::with_capacity(shard_count);
            for _ in 0..shard_count {
                answered.push(c.bool()?);
            }
            let hit_count = c.u32()? as usize;
            // Each hit is at least 12 bytes (4-byte id length + 8-byte
            // score); reject impossible counts before allocating.
            if c.remaining() / 12 < hit_count {
                return Err(WireError::Truncated {
                    needed: hit_count.saturating_mul(12),
                    have: c.remaining(),
                });
            }
            let mut hits = Vec::with_capacity(hit_count);
            for _ in 0..hit_count {
                let id = c.str()?;
                let score = c.f64()?;
                hits.push(Hit { id, score });
            }
            Response::Hits {
                degraded,
                answered,
                hits,
            }
        }
        TAG_ADDED => Response::Added { shard: c.u32()? },
        TAG_REMOVED => Response::Removed { existed: c.bool()? },
        TAG_STATS_REPLY => {
            let mut fields = [0u64; StatsSnapshot::FIELD_COUNT];
            for slot in &mut fields {
                *slot = c.u64()?;
            }
            Response::Stats(StatsSnapshot::from_fields(&fields))
        }
        TAG_LEN_REPLY => Response::Len { len: c.u64()? },
        TAG_ERROR => {
            let code = c.u8()?;
            let err = match code {
                ERR_NOT_FOUND => ServeError::NotFound { id: c.str()? },
                ERR_OVERLOADED => ServeError::Overloaded {
                    retry_after_ms: c.u32()?,
                },
                ERR_BAD_REQUEST => ServeError::BadRequest { detail: c.str()? },
                ERR_INTERNAL => ServeError::Internal { detail: c.str()? },
                code => {
                    return Err(WireError::Malformed(format!(
                        "unknown error code {code:#04x}"
                    )))
                }
            };
            Response::Error(err)
        }
        tag => return Err(WireError::UnknownTag { tag }),
    };
    c.finish()?;
    Ok((request_id, resp))
}

// ---------------------------------------------------------------------------
// Frame transport
// ---------------------------------------------------------------------------

/// Transport-level failure while reading a frame off a socket.
#[derive(Debug)]
pub enum FrameError {
    /// The peer closed the connection cleanly between frames.
    Closed,
    /// The socket failed (reset, mid-frame EOF, stalled past the frame
    /// deadline).  The connection is unusable afterwards.
    Io(std::io::Error),
    /// The framing itself was invalid (oversized or impossibly short
    /// declared length).  The stream position is lost; close the
    /// connection after replying.
    Wire(WireError),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Closed => write!(f, "connection closed by peer"),
            FrameError::Io(e) => write!(f, "socket error while reading frame: {e}"),
            FrameError::Wire(e) => write!(f, "invalid framing: {e}"),
        }
    }
}

impl std::error::Error for FrameError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FrameError::Io(e) => Some(e),
            FrameError::Wire(e) => Some(e),
            FrameError::Closed => None,
        }
    }
}

fn is_timeout(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

/// Fills `buf` from the stream, tolerating read-timeout ticks until
/// `deadline`.  `idle_ok` makes a timeout *before the first byte* return
/// `Ok(false)` (an idle poll tick) instead of an error.
fn read_full(
    stream: &mut TcpStream,
    buf: &mut [u8],
    started: Instant,
    deadline: Duration,
    idle_ok: bool,
) -> Result<bool, FrameError> {
    let mut got = 0usize;
    while got < buf.len() {
        match stream.read(&mut buf[got..]) {
            Ok(0) => {
                if got == 0 && idle_ok {
                    return Err(FrameError::Closed);
                }
                return Err(FrameError::Io(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "connection dropped mid-frame",
                )));
            }
            Ok(n) => {
                got += n;
                // A slow-loris peer defeats the read timeout by trickling
                // one byte per interval — so the frame deadline must also
                // be enforced on the making-progress path.
                if got < buf.len() && started.elapsed() >= deadline {
                    return Err(FrameError::Io(std::io::Error::new(
                        std::io::ErrorKind::TimedOut,
                        "frame not completed within the frame deadline",
                    )));
                }
            }
            Err(e) if is_timeout(&e) => {
                if got == 0 && idle_ok {
                    return Ok(false);
                }
                // Mid-frame stall: keep polling until the per-frame
                // deadline, then give up on the connection.  This bounds
                // how long a slow-loris writer can hold a reader thread.
                if started.elapsed() >= deadline {
                    return Err(FrameError::Io(std::io::Error::new(
                        std::io::ErrorKind::TimedOut,
                        "frame not completed within the frame deadline",
                    )));
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    Ok(true)
}

/// Reads one frame's payload off the socket.  Returns `Ok(None)` when the
/// socket's read timeout elapsed before any byte arrived (an idle tick —
/// callers use it to poll a shutdown flag).  Once the first header byte
/// arrives the whole frame must land within `frame_deadline`, which bounds
/// slow-loris senders.
pub fn read_frame(
    stream: &mut TcpStream,
    max_len: u32,
    frame_deadline: Duration,
) -> Result<Option<Vec<u8>>, FrameError> {
    let started = Instant::now();
    let mut header = [0u8; 4];
    if !read_full(stream, &mut header, started, frame_deadline, true)? {
        return Ok(None);
    }
    let len = u32::from_be_bytes(header);
    if len < MIN_PAYLOAD_LEN {
        return Err(FrameError::Wire(WireError::Malformed(format!(
            "declared payload of {len} bytes is shorter than the {MIN_PAYLOAD_LEN}-byte header"
        ))));
    }
    if len > max_len {
        return Err(FrameError::Wire(WireError::Oversized { len, max: max_len }));
    }
    let mut payload = vec![0u8; len as usize];
    read_full(stream, &mut payload, started, frame_deadline, false)?;
    Ok(Some(payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_request(req: Request) {
        let frame = encode_request(42, &req);
        let (len, payload) = frame.split_at(4);
        assert_eq!(
            u32::from_be_bytes([len[0], len[1], len[2], len[3]]) as usize,
            payload.len()
        );
        let (rid, back) = decode_request(payload).expect("roundtrip");
        assert_eq!(rid, 42);
        assert_eq!(back, req);
    }

    #[test]
    fn request_roundtrips() {
        roundtrip_request(Request::Ping);
        roundtrip_request(Request::Search {
            query: "wf-007".to_owned(),
            k: 10,
            deadline_ms: 250,
        });
        roundtrip_request(Request::Add {
            workflow_json: "{\"id\":\"x\"}".to_owned(),
        });
        roundtrip_request(Request::Remove {
            id: "wf-1".to_owned(),
        });
        roundtrip_request(Request::Stats);
        roundtrip_request(Request::Len);
    }

    #[test]
    fn response_roundtrips() {
        let resp = Response::Hits {
            degraded: true,
            answered: vec![true, false, true],
            hits: vec![
                Hit {
                    id: "a".to_owned(),
                    score: 0.75,
                },
                Hit {
                    id: "b".to_owned(),
                    score: 0.5,
                },
            ],
        };
        let frame = encode_response(7, &resp);
        let (rid, back) = decode_response(&frame[4..]).expect("roundtrip");
        assert_eq!(rid, 7);
        assert_eq!(back, resp);
    }

    #[test]
    fn truncated_body_is_typed() {
        let frame = encode_request(
            1,
            &Request::Remove {
                id: "abcdef".to_owned(),
            },
        );
        let payload = &frame[4..frame.len() - 3];
        match decode_request(payload) {
            Err(WireError::Truncated { .. }) => {}
            other => panic!("expected Truncated, got {other:?}"),
        }
    }

    #[test]
    fn wrong_version_is_typed() {
        let mut frame = encode_request(1, &Request::Ping);
        frame[4] = 9;
        assert_eq!(
            decode_request(&frame[4..]),
            Err(WireError::BadVersion { found: 9 })
        );
    }

    #[test]
    fn trailing_bytes_are_typed() {
        let mut frame = encode_request(1, &Request::Ping);
        frame.push(0xFF);
        match decode_request(&frame[4..]) {
            Err(WireError::TrailingBytes { extra: 1 }) => {}
            other => panic!("expected TrailingBytes, got {other:?}"),
        }
    }

    #[test]
    fn unknown_tag_is_typed() {
        let mut frame = encode_request(1, &Request::Ping);
        frame[13] = 0x7F;
        assert_eq!(
            decode_request(&frame[4..]),
            Err(WireError::UnknownTag { tag: 0x7F })
        );
    }

    #[test]
    fn hostile_hit_count_does_not_allocate() {
        // A Hits frame declaring u32::MAX hits with an empty body must be
        // rejected by the pre-allocation count check.
        let mut b = FrameBuilder::new(3, TAG_HITS);
        b.bool(false);
        b.u16(0);
        b.u32(u32::MAX);
        let frame = b.finish();
        match decode_response(&frame[4..]) {
            Err(WireError::Truncated { .. }) => {}
            other => panic!("expected Truncated, got {other:?}"),
        }
    }

    #[test]
    fn peek_request_id_reads_header_only() {
        let frame = encode_request(0xDEAD_BEEF, &Request::Stats);
        assert_eq!(peek_request_id(&frame[4..]), Some(0xDEAD_BEEF));
        assert_eq!(peek_request_id(&frame[4..8]), None);
    }

    #[test]
    fn errors_display() {
        let err: Box<dyn std::error::Error> = Box::new(WireError::UnknownTag { tag: 2 });
        assert!(err.to_string().contains("unknown message tag"));
        let err: Box<dyn std::error::Error> =
            Box::new(ServeError::Overloaded { retry_after_ms: 25 });
        assert!(err.to_string().contains("retry after 25ms"));
    }
}
