//! # wf-serve — a fault-tolerant network front end for the corpus service
//!
//! Scaling the paper's repository-scale retrieval (Section 5.2) past one
//! process means putting the sharded [`wf_sim::CorpusService`] behind a
//! wire, and a wire brings failure modes the in-process stack never sees:
//! slow peers, dropped connections, overload, partial progress.  This
//! crate is that front end, built on `std::net` alone:
//!
//! * [`protocol`] — a length-prefixed binary framing with a strict codec:
//!   truncated, oversized, wrong-version and garbage frames decode to
//!   typed [`WireError`]s, never panics or unbounded allocations.
//! * [`server`] — acceptor + per-connection readers + a bounded worker
//!   pool.  Admission control sheds (typed [`ServeError::Overloaded`]
//!   with a retry hint) instead of queueing without bound; per-request
//!   deadlines ride the [`wf_repo::CancelToken`] into the scatter-gather
//!   scan and come back as exact *degraded* partial results that record
//!   which shards answered.
//! * [`client`] — a retrying client with jittered exponential backoff
//!   that distinguishes retryable (overload, reset, timeout) from
//!   non-retryable (bad request) failures and reuses request ids across
//!   retries so every in-flight query is accounted for exactly once.
//! * [`fault`] — a deterministic fault-injection plan (delayed shards,
//!   replies dropped mid-frame, slow-loris writers, vetoed shard visits)
//!   replayable from a single seed.
//! * [`metrics`] — lock-free counters and fixed-bucket latency histograms
//!   (p50/p95/p99) exposed over the wire via the STATS request.

#![deny(unsafe_code)]

pub mod client;
pub mod fault;
pub mod metrics;
pub mod protocol;
pub mod server;

pub use client::{Client, ClientConfig, ClientError, SearchOutcome};
pub use fault::{FaultPlan, FaultState, ReplyFault, ShardFault};
pub use metrics::{
    Counter, HistogramSnapshot, LatencyHistogram, ServeMetrics, StatsSnapshot, HISTOGRAM_BUCKETS,
};
pub use protocol::{
    decode_request, decode_response, encode_request, encode_response, read_frame, FrameError, Hit,
    Request, Response, ServeError, WireError, DEFAULT_MAX_FRAME_LEN, PROTOCOL_VERSION,
};
pub use server::{Server, ServerConfig, ServerHandle};
