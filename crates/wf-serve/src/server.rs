//! The serving front end: a TCP server over a shared [`CorpusService`].
//!
//! Thread model:
//!
//! * one **acceptor** thread;
//! * one **reader** thread per connection — decodes frames, answers
//!   control requests (PING/STATS/LEN) inline so health checks stay
//!   responsive under load, and enqueues work requests;
//! * a fixed pool of **worker** threads, each draining a *bounded* queue.
//!
//! Admission control is shed-on-full: when every worker queue is at
//! capacity the request is answered immediately with a typed
//! [`ServeError::Overloaded`] carrying a retry hint, instead of queueing
//! without bound.  Deadlines are anchored at *arrival*, so time spent
//! queued counts against the budget and an expired job degrades quickly
//! instead of occupying its worker.

use std::collections::VecDeque;
use std::io::Write;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use wf_model::{Workflow, WorkflowId};
use wf_repo::CancelToken;
use wf_sim::CorpusService;

use crate::fault::{cooperative_sleep, FaultPlan, FaultState, ReplyFault, ShardFault};
use crate::metrics::{ServeMetrics, StatsSnapshot};
use crate::protocol::{
    decode_request, encode_response, peek_request_id, read_frame, FrameError, Hit, Request,
    Response, ServeError, DEFAULT_MAX_FRAME_LEN,
};

/// Tuning knobs for a [`Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads (one bounded queue each).
    pub workers: usize,
    /// Per-worker queue capacity; the total admission window is
    /// `workers * queue_depth` plus the requests currently executing.
    pub queue_depth: usize,
    /// Deadline applied to searches that do not carry their own
    /// (`deadline_ms == 0`); 0 disables the default.
    pub default_deadline_ms: u32,
    /// The retry hint shed responses carry.
    pub retry_after_ms: u32,
    /// Ceiling on a single frame's payload.
    pub max_frame_len: u32,
    /// Socket read timeout — the shutdown-poll granularity for reader
    /// threads.
    pub read_timeout: Duration,
    /// Once a frame's first byte arrives the rest must land within this
    /// budget (bounds slow-loris senders).
    pub frame_deadline: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            queue_depth: 64,
            default_deadline_ms: 0,
            retry_after_ms: 25,
            max_frame_len: DEFAULT_MAX_FRAME_LEN,
            read_timeout: Duration::from_millis(50),
            frame_deadline: Duration::from_secs(5),
        }
    }
}

/// Locks a mutex, recovering the guard if a panicking thread poisoned it —
/// queue and writer state stay structurally valid across panics.
fn lock_recover<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    match mutex.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// One queued unit of work.
struct Job {
    request_id: u64,
    request: Request,
    arrival: Instant,
    writer: Arc<ConnWriter>,
}

/// A bounded MPSC queue feeding one worker.
struct WorkQueue {
    jobs: Mutex<VecDeque<Job>>,
    available: Condvar,
    capacity: usize,
}

impl WorkQueue {
    fn new(capacity: usize) -> Self {
        WorkQueue {
            jobs: Mutex::new(VecDeque::with_capacity(capacity)),
            available: Condvar::new(),
            capacity,
        }
    }

    /// Non-blocking admission: hands the job back when the queue is full.
    fn try_push(&self, job: Job) -> Result<(), Job> {
        let mut q = lock_recover(&self.jobs);
        if q.len() >= self.capacity {
            return Err(job);
        }
        q.push_back(job);
        drop(q);
        self.available.notify_one();
        Ok(())
    }

    /// Blocks up to `timeout` for a job.
    fn pop(&self, timeout: Duration) -> Option<Job> {
        let mut q = lock_recover(&self.jobs);
        if q.is_empty() {
            let (guard, _) = match self.available.wait_timeout(q, timeout) {
                Ok(pair) => pair,
                Err(poisoned) => poisoned.into_inner(),
            };
            q = guard;
        }
        q.pop_front()
    }
}

/// The per-connection reply writer.  A mutex keeps frames atomic when a
/// worker reply and an inline (reader-thread) reply race; reply faults are
/// applied here, at the last moment before bytes hit the socket.
struct ConnWriter {
    stream: Mutex<TcpStream>,
    dead: AtomicBool,
}

impl ConnWriter {
    fn new(stream: TcpStream) -> Self {
        ConnWriter {
            stream: Mutex::new(stream),
            dead: AtomicBool::new(false),
        }
    }

    fn is_dead(&self) -> bool {
        // ordering: Relaxed — advisory flag; readers re-check via failed
        // socket ops, so no other memory hangs off this load.
        self.dead.load(Ordering::Relaxed)
    }

    fn mark_dead(&self) {
        // ordering: Relaxed — one-way advisory latch, see `is_dead`.
        self.dead.store(true, Ordering::Relaxed);
    }

    /// Writes a complete reply frame, applying any reply fault the plan
    /// draws.  Returns false when the connection is (or becomes) unusable.
    fn write_reply(&self, frame: &[u8], shared: &Shared) -> bool {
        if self.is_dead() {
            return false;
        }
        let fault = match &shared.fault {
            Some(state) => state.reply_fault(),
            None => ReplyFault::Pass,
        };
        let mut stream = lock_recover(&self.stream);
        let ok = match fault {
            ReplyFault::Pass => stream.write_all(frame).is_ok(),
            ReplyFault::Drop => {
                shared.metrics.faults_injected.incr();
                // A taste of the header, then a hard sever: the client
                // sees a truncated frame or a connection reset.
                let cut = frame.len().min(3);
                let _ = stream.write_all(&frame[..cut]);
                let _ = stream.flush();
                let _ = stream.shutdown(Shutdown::Both);
                false
            }
            ReplyFault::SlowLoris(pace) => {
                shared.metrics.faults_injected.incr();
                // Byte-at-a-time for the first stretch of the frame —
                // enough to trip a client read timeout — then normal
                // writes so the fault bounds its own duration.
                const PACED_BYTES: usize = 64;
                let paced = frame.len().min(PACED_BYTES);
                let mut ok = true;
                for byte in &frame[..paced] {
                    if stream.write_all(std::slice::from_ref(byte)).is_err() {
                        ok = false;
                        break;
                    }
                    let _ = stream.flush();
                    std::thread::sleep(pace);
                }
                ok && stream.write_all(&frame[paced..]).is_ok()
            }
        };
        if !ok {
            self.mark_dead();
        }
        ok
    }
}

/// State shared by the acceptor, readers and workers.
struct Shared {
    service: Arc<CorpusService>,
    config: ServerConfig,
    fault: Option<FaultState>,
    metrics: ServeMetrics,
    shutdown: AtomicBool,
    queues: Vec<WorkQueue>,
    round_robin: AtomicUsize,
}

impl Shared {
    fn shutting_down(&self) -> bool {
        // ordering: Relaxed — shutdown is a one-way advisory flag polled
        // on timeouts; no data is published through it.
        self.shutdown.load(Ordering::Relaxed)
    }
}

/// The serving front end.  [`Server::start`] binds a loopback listener and
/// returns a handle; the server runs until the handle shuts down (or
/// drops).
pub struct Server;

impl Server {
    /// Starts a server on `127.0.0.1` (ephemeral port) over the given
    /// service, optionally under a deterministic fault plan.
    pub fn start(
        service: Arc<CorpusService>,
        config: ServerConfig,
        fault: Option<FaultPlan>,
    ) -> std::io::Result<ServerHandle> {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let addr = listener.local_addr()?;
        let workers = config.workers.max(1);
        let queue_depth = config.queue_depth.max(1);
        let shared = Arc::new(Shared {
            service,
            config,
            fault: fault.map(FaultState::new),
            metrics: ServeMetrics::new(),
            shutdown: AtomicBool::new(false),
            queues: (0..workers).map(|_| WorkQueue::new(queue_depth)).collect(),
            round_robin: AtomicUsize::new(0),
        });

        let worker_handles = (0..workers)
            .map(|w| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("wf-serve-worker-{w}"))
                    .spawn(move || worker_loop(&shared, w))
            })
            .collect::<std::io::Result<Vec<_>>>()?;

        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("wf-serve-acceptor".to_owned())
                .spawn(move || acceptor_loop(&listener, &shared))?
        };

        Ok(ServerHandle {
            addr,
            shared,
            acceptor: Some(acceptor),
            workers: worker_handles,
        })
    }
}

/// Handle to a running server; shuts the server down when dropped.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A live snapshot of the server's metrics.
    pub fn metrics(&self) -> StatsSnapshot {
        self.shared.metrics.snapshot()
    }

    /// Stops accepting, drains the worker queues and joins the worker and
    /// acceptor threads.  Reader threads notice the flag within one read
    /// timeout and exit on their own.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        // ordering: Relaxed — advisory latch; the dummy connection below
        // and the condvar wakeups are the actual synchronisation edges.
        if !self.shared.shutdown.swap(true, Ordering::Relaxed) {
            for queue in &self.shared.queues {
                queue.available.notify_all();
            }
            // Unblock the acceptor's blocking `accept`.
            let _ = TcpStream::connect(self.addr);
        }
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

fn acceptor_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    for incoming in listener.incoming() {
        if shared.shutting_down() {
            break;
        }
        let stream = match incoming {
            Ok(stream) => stream,
            Err(_) => continue,
        };
        let shared = Arc::clone(shared);
        let spawned = std::thread::Builder::new()
            .name("wf-serve-conn".to_owned())
            .spawn(move || reader_loop(stream, &shared));
        if spawned.is_err() {
            // Thread spawn failed (resource exhaustion): drop the
            // connection rather than the server.
            continue;
        }
    }
}

fn reader_loop(mut stream: TcpStream, shared: &Arc<Shared>) {
    shared.metrics.connections.incr();
    if stream
        .set_read_timeout(Some(shared.config.read_timeout))
        .is_err()
    {
        return;
    }
    let writer = match stream.try_clone() {
        Ok(clone) => Arc::new(ConnWriter::new(clone)),
        Err(_) => return,
    };
    loop {
        if shared.shutting_down() || writer.is_dead() {
            break;
        }
        match read_frame(
            &mut stream,
            shared.config.max_frame_len,
            shared.config.frame_deadline,
        ) {
            Ok(None) => continue,
            Ok(Some(payload)) => match decode_request(&payload) {
                Ok((request_id, request)) => {
                    shared.metrics.requests.incr();
                    dispatch(request_id, request, &writer, shared);
                }
                Err(wire) => {
                    // The frame boundary was sound, only the body was
                    // garbage — reply typed and keep the connection.
                    shared.metrics.bad_frames.incr();
                    let request_id = peek_request_id(&payload).unwrap_or(0);
                    send_reply(
                        request_id,
                        &Response::Error(ServeError::BadRequest {
                            detail: wire.to_string(),
                        }),
                        &writer,
                        shared,
                    );
                }
            },
            Err(FrameError::Wire(wire)) => {
                // The framing itself is lost (oversized / impossible
                // length): reply typed, then close — we can no longer
                // find the next frame boundary.
                shared.metrics.bad_frames.incr();
                send_reply(
                    0,
                    &Response::Error(ServeError::BadRequest {
                        detail: wire.to_string(),
                    }),
                    &writer,
                    shared,
                );
                break;
            }
            Err(FrameError::Closed) | Err(FrameError::Io(_)) => break,
        }
    }
}

/// Routes one decoded request: control requests answer inline on the
/// reader thread; work requests go through admission control.
fn dispatch(request_id: u64, request: Request, writer: &Arc<ConnWriter>, shared: &Arc<Shared>) {
    match request {
        Request::Ping => send_reply(request_id, &Response::Pong, writer, shared),
        Request::Stats => send_reply(
            request_id,
            &Response::Stats(shared.metrics.snapshot()),
            writer,
            shared,
        ),
        Request::Len => send_reply(
            request_id,
            &Response::Len {
                len: shared.service.len() as u64,
            },
            writer,
            shared,
        ),
        request @ (Request::Search { .. } | Request::Add { .. } | Request::Remove { .. }) => {
            let job = Job {
                request_id,
                request,
                arrival: Instant::now(),
                writer: Arc::clone(writer),
            };
            enqueue_or_shed(job, shared);
        }
    }
}

/// Admission control: offer the job to every worker queue once (starting
/// round-robin); shed with a typed Overloaded reply when all are full.
fn enqueue_or_shed(job: Job, shared: &Arc<Shared>) {
    // ordering: Relaxed — the counter only spreads load; any interleaving
    // is correct.
    let start = shared.round_robin.fetch_add(1, Ordering::Relaxed);
    let n = shared.queues.len();
    let mut job = job;
    for i in 0..n {
        match shared.queues[(start + i) % n].try_push(job) {
            Ok(()) => return,
            Err(back) => job = back,
        }
    }
    shared.metrics.shed.incr();
    let reply = Response::Error(ServeError::Overloaded {
        retry_after_ms: shared.config.retry_after_ms,
    });
    let writer = Arc::clone(&job.writer);
    send_reply(job.request_id, &reply, &writer, shared);
}

/// Encodes and writes a reply, bumping the ok/error response counters.
fn send_reply(request_id: u64, response: &Response, writer: &Arc<ConnWriter>, shared: &Shared) {
    if matches!(response, Response::Error(_)) {
        shared.metrics.responses_error.incr();
    } else {
        shared.metrics.responses_ok.incr();
    }
    let frame = encode_response(request_id, response);
    writer.write_reply(&frame, shared);
}

fn worker_loop(shared: &Arc<Shared>, index: usize) {
    let queue = &shared.queues[index];
    loop {
        match queue.pop(Duration::from_millis(50)) {
            Some(job) => {
                let response = execute(&job, shared);
                send_reply(job.request_id, &response, &job.writer, shared);
            }
            None => {
                if shared.shutting_down() {
                    break;
                }
            }
        }
    }
}

/// Runs one work request against the corpus service.
fn execute(job: &Job, shared: &Shared) -> Response {
    match &job.request {
        Request::Search {
            query,
            k,
            deadline_ms,
        } => {
            let budget_ms = if *deadline_ms > 0 {
                *deadline_ms
            } else {
                shared.config.default_deadline_ms
            };
            // Anchor the deadline at arrival so queueing time counts
            // against the budget: a job that aged out in the queue
            // degrades immediately instead of hogging its worker.
            let cancel = if budget_ms > 0 {
                CancelToken::at(job.arrival + Duration::from_millis(u64::from(budget_ms)))
            } else {
                CancelToken::never()
            };
            let gate = |shard: usize| -> bool {
                match &shared.fault {
                    None => true,
                    Some(state) => match state.shard_fault(shard) {
                        ShardFault::Pass => true,
                        ShardFault::Delay(delay) => {
                            shared.metrics.faults_injected.incr();
                            cooperative_sleep(&cancel, delay);
                            true
                        }
                        ShardFault::Fail => {
                            shared.metrics.faults_injected.incr();
                            false
                        }
                    },
                }
            };
            let query_id = WorkflowId::new(query.clone());
            let outcome =
                shared
                    .service
                    .search_deadline_with(&query_id, *k as usize, &cancel, gate);
            shared.metrics.search_latency.record(job.arrival.elapsed());
            match outcome {
                None => Response::Error(ServeError::NotFound { id: query.clone() }),
                Some(result) => {
                    if result.degraded {
                        shared.metrics.degraded.incr();
                    }
                    Response::Hits {
                        degraded: result.degraded,
                        answered: result.answered,
                        hits: result
                            .hits
                            .into_iter()
                            .map(|hit| Hit {
                                id: hit.id.0,
                                score: hit.score,
                            })
                            .collect(),
                    }
                }
            }
        }
        Request::Add { workflow_json } => match serde_json::from_str::<Workflow>(workflow_json) {
            Ok(workflow) => Response::Added {
                shard: shared.service.add(workflow) as u32,
            },
            Err(err) => Response::Error(ServeError::BadRequest {
                detail: format!("workflow json: {err}"),
            }),
        },
        Request::Remove { id } => Response::Removed {
            existed: shared
                .service
                .remove(&WorkflowId::new(id.clone()))
                .is_some(),
        },
        // Control requests never reach a queue; answering Pong keeps the
        // match total without a panic path.
        Request::Ping | Request::Stats | Request::Len => Response::Pong,
    }
}
