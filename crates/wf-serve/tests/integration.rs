//! End-to-end degradation-path tests over real loopback sockets.
//!
//! Each test drives the full stack — client, framed protocol, admission
//! control, worker pool, deadline-aware scatter-gather, fault injection —
//! and asserts one of the three degradation paths the serving layer
//! promises, deterministically from a fault seed:
//!
//! 1. **Deadline** — a deadlined query against deliberately delayed shards
//!    returns a *partial* result flagged degraded, inside the SLO, with
//!    exact scores and an honest per-shard answer map.
//! 2. **Saturation** — a request burst against a tiny worker pool is shed
//!    with typed `Overloaded` replies instead of queueing without bound,
//!    and every request is answered exactly once.
//! 3. **Connection drops** — a client retrying with jittered backoff
//!    recovers from injected mid-frame reply drops, with request ids
//!    accounting for every in-flight query.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use wf_corpus::{generate_taverna_corpus, TavernaCorpusConfig};
use wf_model::{ModuleType, WorkflowBuilder, WorkflowId};
use wf_serve::{
    Client, ClientConfig, ClientError, FaultPlan, Request, Response, ServeError, Server,
    ServerConfig,
};
use wf_sim::{CorpusService, SearchParallelism, ShardedCorpus, SimilarityConfig};

/// The one replay seed these tests inject faults from.  Printed in every
/// assertion context so a failure names the seed that reproduces it.
const FAULT_SEED: u64 = 0xD15C0;

fn build_service(size: usize, shards: usize) -> (Arc<CorpusService>, Vec<String>) {
    let workflows = generate_taverna_corpus(&TavernaCorpusConfig::small(size, 21)).0;
    let ids: Vec<String> = workflows.iter().map(|w| w.id.0.clone()).collect();
    let service = Arc::new(CorpusService::new(ShardedCorpus::build(
        SimilarityConfig::best_module_sets(),
        shards,
        workflows,
    )));
    (service, ids)
}

fn fast_client(addr: std::net::SocketAddr, seed: u64) -> Client {
    Client::new(
        addr,
        ClientConfig {
            request_timeout: Duration::from_secs(5),
            max_retries: 8,
            backoff_base: Duration::from_millis(5),
            backoff_cap: Duration::from_millis(80),
            seed,
        },
    )
}

/// Degradation path 1: the deadline fires while two shards stall, and the
/// reply is a partial result — degraded flag set, slow shards reported
/// unanswered, every returned score bit-identical to the full engine's.
#[test]
fn deadline_returns_partial_degraded_result_within_slo() {
    let (service, ids) = build_service(40, 4);
    let plan = FaultPlan::new(FAULT_SEED).delay_shards(&[1, 2], Duration::from_millis(400));
    let server = Server::start(
        Arc::clone(&service),
        ServerConfig {
            workers: 2,
            ..ServerConfig::default()
        },
        Some(plan),
    )
    .expect("server starts");

    let mut client = fast_client(server.addr(), 1);
    let query = &ids[0];
    let deadline_ms = 80u32;
    let started = Instant::now();
    let outcome = client
        .search(query, 10, deadline_ms)
        .expect("deadlined search still answers");
    let elapsed = started.elapsed();

    // SLO: the reply must come back near the deadline, nowhere near the
    // 400ms the stalled shards would have cost (seed {FAULT_SEED}).
    assert!(
        elapsed < Duration::from_millis(300),
        "deadline {deadline_ms}ms blew the SLO: took {elapsed:?} (seed {FAULT_SEED:#x})"
    );
    assert!(outcome.degraded, "stalled shards must degrade the result");
    assert_eq!(outcome.answered.len(), 4, "one answer flag per shard");
    assert!(
        outcome.answered[0],
        "the undelayed first shard answers in full"
    );
    assert!(
        !outcome.answered[1] || !outcome.answered[2],
        "a 400ms-delayed shard cannot answer inside an 80ms deadline"
    );

    // Partial means *truncated*, never *wrong*: every hit the degraded
    // reply does return carries the exact score the full (unfaulted,
    // undeadlined) search computes for that workflow.
    let full = service
        .search(&WorkflowId::new(query.clone()), ids.len())
        .expect("query resident");
    let reference: HashMap<&str, f64> = full.iter().map(|h| (h.id.0.as_str(), h.score)).collect();
    assert!(!outcome.hits.is_empty() || reference.is_empty());
    for hit in &outcome.hits {
        let expected = reference
            .get(hit.id.as_str())
            .unwrap_or_else(|| panic!("degraded hit {} not in reference", hit.id));
        assert_eq!(
            hit.score.to_bits(),
            expected.to_bits(),
            "degraded score for {} must be exact",
            hit.id
        );
    }

    let stats = server.metrics();
    assert!(stats.degraded >= 1, "server must count the degraded reply");
    assert!(
        stats.faults_injected >= 1,
        "the shard delay fault must have fired"
    );
    server.shutdown();
}

/// The racing scatter-gather serves the same degradation contract over
/// the wire: with intra-query shard workers racing the shared threshold,
/// a deadlined query against a stalled shard still returns a flagged
/// degraded partial with honest per-shard answered bits and exact scores
/// — and, because each stalled shard only costs its *own* worker, the
/// undelayed shards all answer.
#[test]
fn racing_deadline_returns_partial_degraded_result_within_slo() {
    let (service, ids) = {
        let workflows = generate_taverna_corpus(&TavernaCorpusConfig::small(40, 21)).0;
        let ids: Vec<String> = workflows.iter().map(|w| w.id.0.clone()).collect();
        let service = Arc::new(CorpusService::new(
            ShardedCorpus::build(SimilarityConfig::best_module_sets(), 4, workflows)
                .with_parallelism(SearchParallelism::racing_per_shard()),
        ));
        (service, ids)
    };
    let plan = FaultPlan::new(FAULT_SEED).delay_shards(&[2], Duration::from_millis(400));
    let server = Server::start(
        Arc::clone(&service),
        ServerConfig {
            workers: 2,
            ..ServerConfig::default()
        },
        Some(plan),
    )
    .expect("server starts");

    let mut client = fast_client(server.addr(), 7);
    let query = &ids[0];
    let started = Instant::now();
    let outcome = client
        .search(query, 10, 80)
        .expect("deadlined racing search still answers");
    let elapsed = started.elapsed();
    assert!(
        elapsed < Duration::from_millis(300),
        "racing deadline blew the SLO: took {elapsed:?} (seed {FAULT_SEED:#x})"
    );
    assert!(
        outcome.degraded,
        "the stalled shard must degrade the result"
    );
    assert_eq!(outcome.answered.len(), 4, "one answer flag per shard");
    assert!(
        !outcome.answered[2],
        "a 400ms-delayed shard cannot answer inside an 80ms deadline"
    );
    // The stall pins one worker; every other shard has its own and
    // finishes well inside the deadline.
    for shard in [0usize, 1, 3] {
        assert!(
            outcome.answered[shard],
            "undelayed shard {shard} must answer under racing workers"
        );
    }

    let full = service
        .search(&WorkflowId::new(query.clone()), ids.len())
        .expect("query resident");
    let reference: HashMap<&str, f64> = full.iter().map(|h| (h.id.0.as_str(), h.score)).collect();
    for hit in &outcome.hits {
        let expected = reference
            .get(hit.id.as_str())
            .unwrap_or_else(|| panic!("degraded hit {} not in reference", hit.id));
        assert_eq!(
            hit.score.to_bits(),
            expected.to_bits(),
            "degraded racing score for {} must be exact",
            hit.id
        );
    }
    server.shutdown();
}

/// The same fault plan replayed from the same seed yields the same
/// degraded answer map — the property that makes a failing run's printed
/// seed actually reproducible.
#[test]
fn deadline_degradation_is_deterministic_per_seed() {
    let mut replies = Vec::new();
    for _run in 0..2 {
        let (service, ids) = build_service(24, 4);
        let plan = FaultPlan::new(FAULT_SEED).delay_shards(&[1, 3], Duration::from_millis(400));
        let server =
            Server::start(service, ServerConfig::default(), Some(plan)).expect("server starts");
        let mut client = fast_client(server.addr(), 2);
        let outcome = client
            .search(&ids[0], 5, 80)
            .expect("deadlined search answers");
        replies.push((outcome.degraded, outcome.answered, outcome.hits));
        server.shutdown();
    }
    assert_eq!(
        replies[0], replies[1],
        "same corpus, same fault seed, same deadline → same degraded reply"
    );
}

/// Degradation path 2: a burst against workers=1/queue_depth=2 sheds with
/// typed Overloaded replies carrying the retry hint — bounded queueing,
/// every request answered exactly once — and the system recovers once the
/// burst drains.
#[test]
fn saturation_sheds_with_typed_overloaded_instead_of_queueing() {
    let (service, ids) = build_service(32, 4);
    // Slow every shard so an admitted search occupies its worker long
    // enough for the whole burst to arrive while it runs.
    let plan = FaultPlan::new(FAULT_SEED).delay_shards(&[0, 1, 2, 3], Duration::from_millis(100));
    let retry_after_ms = 40u32;
    let server = Server::start(
        Arc::clone(&service),
        ServerConfig {
            workers: 1,
            queue_depth: 2,
            retry_after_ms,
            ..ServerConfig::default()
        },
        Some(plan),
    )
    .expect("server starts");
    let addr = server.addr();

    const BURST: usize = 16;
    let ok = Arc::new(AtomicU64::new(0));
    let shed = Arc::new(AtomicU64::new(0));
    let barrier = Arc::new(Barrier::new(BURST));
    let handles: Vec<_> = (0..BURST)
        .map(|i| {
            let ok = Arc::clone(&ok);
            let shed = Arc::clone(&shed);
            let barrier = Arc::clone(&barrier);
            let query = ids[i % ids.len()].clone();
            std::thread::spawn(move || {
                // No retries: each thread reports its request's one true
                // outcome so the shed/served accounting is exact.
                let mut client = Client::new(
                    addr,
                    ClientConfig {
                        request_timeout: Duration::from_secs(10),
                        max_retries: 0,
                        ..ClientConfig::default()
                    },
                );
                barrier.wait();
                match client.search(&query, 5, 0) {
                    Ok(outcome) => {
                        assert!(!outcome.hits.is_empty());
                        ok.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(ClientError::Exhausted { last, .. }) => {
                        assert!(
                            last.contains(&format!("hint {retry_after_ms}ms")),
                            "shed reply must carry the configured retry hint, got: {last}"
                        );
                        shed.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(other) => panic!("unexpected failure under saturation: {other}"),
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().expect("burst thread");
    }

    let ok = ok.load(Ordering::Relaxed);
    let shed = shed.load(Ordering::Relaxed);
    assert_eq!(
        ok + shed,
        BURST as u64,
        "every request in the burst gets exactly one answer"
    );
    assert!(ok >= 1, "the admission window serves some of the burst");
    assert!(
        shed >= BURST as u64 - 6,
        "a 1-worker/depth-2 server must shed most of a {BURST}-request burst, shed only {shed}"
    );
    let stats = server.metrics();
    assert_eq!(stats.shed, shed, "server-side shed accounting matches");
    assert!(
        stats.shed >= BURST as u64 - 6,
        "shedding, not unbounded queueing"
    );

    // Recovery: once the burst has drained, a retrying client succeeds.
    let mut client = fast_client(addr, 3);
    let outcome = client.search(&ids[0], 5, 0).expect("server recovered");
    assert!(!outcome.degraded);
    server.shutdown();
}

/// Degradation path 3: with ~30% of replies severed mid-frame, a retrying
/// client recovers every query — request ids account for each in-flight
/// query exactly once, results stay exact, and the injected drops are
/// visible in the server's fault counter.
#[test]
fn client_backoff_recovers_from_injected_connection_drops() {
    let (service, ids) = build_service(36, 4);
    let plan = FaultPlan::new(FAULT_SEED).drop_replies(300);
    let server = Server::start(
        Arc::clone(&service),
        ServerConfig {
            workers: 3,
            ..ServerConfig::default()
        },
        Some(plan),
    )
    .expect("server starts");
    let addr = server.addr();

    let reference: HashMap<String, Vec<(String, u64)>> = ids
        .iter()
        .map(|id| {
            let hits = service
                .search(&WorkflowId::new(id.clone()), 5)
                .expect("resident");
            (
                id.clone(),
                hits.into_iter()
                    .map(|h| (h.id.0, h.score.to_bits()))
                    .collect(),
            )
        })
        .collect();

    const CLIENTS: usize = 4;
    const QUERIES_PER_CLIENT: usize = 8;
    let total_retries = Arc::new(AtomicU64::new(0));
    let handles: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let ids = ids.clone();
            let reference = reference.clone();
            let total_retries = Arc::clone(&total_retries);
            std::thread::spawn(move || {
                let mut client = fast_client(addr, 100 + c as u64);
                for q in 0..QUERIES_PER_CLIENT {
                    let query = &ids[(c * QUERIES_PER_CLIENT + q) % ids.len()];
                    let outcome = client
                        .search(query, 5, 0)
                        .unwrap_or_else(|e| panic!("query {query} lost to drops: {e}"));
                    // Request ids are per-client sequential: every logical
                    // query is answered exactly once, in order, retries
                    // notwithstanding.
                    assert_eq!(
                        outcome.request_id,
                        (q + 1) as u64,
                        "request id accounting for client {c}"
                    );
                    assert!(!outcome.degraded, "drops must not degrade results");
                    let got: Vec<(String, u64)> = outcome
                        .hits
                        .iter()
                        .map(|h| (h.id.clone(), h.score.to_bits()))
                        .collect();
                    assert_eq!(
                        &got, &reference[query],
                        "retried query {query} must return the exact reference top-k"
                    );
                }
                total_retries.fetch_add(client.retries(), Ordering::Relaxed);
            })
        })
        .collect();
    for handle in handles {
        handle.join().expect("client thread");
    }

    assert!(
        total_retries.load(Ordering::Relaxed) > 0,
        "a 30% drop plan must force at least one retry (seed {FAULT_SEED:#x})"
    );
    let stats = server.metrics();
    assert!(
        stats.faults_injected > 0,
        "the drop faults must actually have fired"
    );
    server.shutdown();
}

/// Slow-loris replies trip the client's read timeout and are retried on a
/// fresh connection until a clean reply lands.
#[test]
fn client_times_out_slow_loris_replies_and_retries() {
    let (service, ids) = build_service(24, 2);
    // Half the replies are written one byte every 10ms — far slower than
    // the client's 150ms read timeout.
    let plan = FaultPlan::new(FAULT_SEED).slow_replies(500, Duration::from_millis(10));
    let server =
        Server::start(service, ServerConfig::default(), Some(plan)).expect("server starts");

    let mut client = Client::new(
        server.addr(),
        ClientConfig {
            request_timeout: Duration::from_millis(150),
            max_retries: 10,
            backoff_base: Duration::from_millis(2),
            backoff_cap: Duration::from_millis(20),
            seed: 9,
        },
    );
    let mut served = 0;
    for id in ids.iter().take(6) {
        let outcome = client.search(id, 3, 0).expect("retry outlasts slow-loris");
        assert!(!outcome.degraded);
        served += 1;
    }
    assert_eq!(served, 6);
    assert!(
        client.retries() > 0,
        "a 50% slow-loris plan must trip at least one timeout"
    );
    server.shutdown();
}

/// Control-plane smoke: PING/STATS/LEN answer inline, ADD ships a workflow
/// as JSON across the wire, REMOVE takes it back out, and malformed
/// requests get typed BadRequest replies without killing the connection.
#[test]
fn control_plane_add_remove_and_typed_errors() {
    let (service, ids) = build_service(20, 2);
    let server =
        Server::start(Arc::clone(&service), ServerConfig::default(), None).expect("server starts");
    let mut client = fast_client(server.addr(), 4);

    client.ping().expect("ping");
    assert_eq!(client.len().expect("len"), 20);

    // A workflow crosses the wire as JSON and becomes searchable.
    let wf = WorkflowBuilder::new("wired-1")
        .title("BLAST over the wire")
        .module("fetch", ModuleType::WsdlService, |m| {
            m.service("ebi.ac.uk", "fetch_fasta", "http://ebi.ac.uk/ws")
        })
        .module("blast", ModuleType::WsdlService, |m| {
            m.service("ebi.ac.uk", "blastp", "http://ebi.ac.uk/blast")
        })
        .link("fetch", "blast")
        .build()
        .expect("valid workflow");
    client.add(&wf).expect("add over the wire");
    assert_eq!(client.len().expect("len"), 21);
    let outcome = client.search("wired-1", 5, 0).expect("new resident serves");
    assert_eq!(outcome.answered.len(), 2);
    assert!(!outcome.degraded);

    // Searching a missing id is a typed, non-retryable NotFound.
    match client.search("no-such-workflow", 5, 0) {
        Err(ClientError::Rejected(ServeError::NotFound { id })) => {
            assert_eq!(id, "no-such-workflow");
        }
        other => panic!("expected typed NotFound, got {other:?}"),
    }

    // Garbage workflow JSON is a typed BadRequest, and the connection
    // survives to serve the next request.
    match client.request(&Request::Add {
        workflow_json: "{definitely not json".to_owned(),
    }) {
        Err(ClientError::Rejected(ServeError::BadRequest { .. })) => {}
        other => panic!("expected typed BadRequest, got {other:?}"),
    }
    assert!(client.remove("wired-1").expect("remove"));
    assert!(!client.remove("wired-1").expect("second remove is a no-op"));
    assert_eq!(client.len().expect("len"), 20);

    // The metrics snapshot crosses the wire and is coherent.
    let stats = client.stats().expect("stats");
    assert!(stats.requests >= 8);
    assert!(stats.responses_ok >= 6);
    assert!(stats.responses_error >= 2);
    assert!(stats.searches >= 2);
    assert!(stats.search_p50_us <= stats.search_p95_us);
    assert!(stats.search_p95_us <= stats.search_p99_us);
    assert_eq!(stats.shed, 0);

    // The connection still serves after the error traffic above.
    match client.request(&Request::Ping) {
        Ok((_, Response::Pong)) => {}
        other => panic!("expected Pong after error traffic, got {other:?}"),
    }
    server.shutdown();
    assert_eq!(ids.len(), 20);
}

/// Raw wire-level garbage: a well-framed frame with a bogus tag draws a
/// typed BadRequest reply correlated by request id and the connection
/// survives; an impossible declared length draws a typed reply and then a
/// clean close (the frame boundary is unrecoverable).
#[test]
fn wire_garbage_gets_typed_reply_and_connection_survives() {
    use std::io::{Read, Write};
    use wf_serve::{
        decode_response, encode_request, read_frame, FrameError, DEFAULT_MAX_FRAME_LEN,
    };

    let (service, _ids) = build_service(12, 2);
    let server = Server::start(service, ServerConfig::default(), None).expect("server starts");
    let mut sock = std::net::TcpStream::connect(server.addr()).expect("connect");
    sock.set_read_timeout(Some(Duration::from_secs(5)))
        .expect("timeout");

    // Well-framed, unknown tag 0x7F, request id 77.
    let mut frame = vec![0u8, 0, 0, 10, 1];
    frame.extend_from_slice(&77u64.to_be_bytes());
    frame.push(0x7F);
    sock.write_all(&frame).expect("send garbage tag");
    let payload = read_frame(&mut sock, DEFAULT_MAX_FRAME_LEN, Duration::from_secs(5))
        .expect("reply arrives")
        .expect("reply not an idle tick");
    match decode_response(&payload) {
        Ok((77, Response::Error(ServeError::BadRequest { detail }))) => {
            assert!(
                detail.contains("unknown message tag"),
                "detail names the defect: {detail}"
            );
        }
        other => panic!("expected typed BadRequest for request 77, got {other:?}"),
    }

    // The same connection still serves a valid request afterwards.
    sock.write_all(&encode_request(78, &Request::Ping))
        .expect("send ping");
    let payload = read_frame(&mut sock, DEFAULT_MAX_FRAME_LEN, Duration::from_secs(5))
        .expect("pong arrives")
        .expect("pong not an idle tick");
    match decode_response(&payload) {
        Ok((78, Response::Pong)) => {}
        other => panic!("expected Pong, got {other:?}"),
    }

    // An impossible declared length: typed reply, then a clean close.
    sock.write_all(&[0xFF, 0xFF, 0xFF, 0xFF])
        .expect("send oversized header");
    let payload = read_frame(&mut sock, DEFAULT_MAX_FRAME_LEN, Duration::from_secs(5))
        .expect("typed reply before close")
        .expect("reply not an idle tick");
    match decode_response(&payload) {
        Ok((0, Response::Error(ServeError::BadRequest { detail }))) => {
            assert!(
                detail.contains("oversized"),
                "detail names the defect: {detail}"
            );
        }
        other => panic!("expected typed BadRequest for oversized frame, got {other:?}"),
    }
    match read_frame(&mut sock, DEFAULT_MAX_FRAME_LEN, Duration::from_secs(5)) {
        Err(FrameError::Closed) => {}
        Ok(None) => panic!("server left the connection open after losing framing"),
        other => panic!("expected a clean close, got {other:?}"),
    }
    let _ = sock.read(&mut [0u8; 1]);
    server.shutdown();
}
