//! Property tests for the wire codec: every variant roundtrips
//! bit-exactly, and truncated / corrupted / random-byte frames always
//! decode to a *typed* [`WireError`] — never a panic and never an
//! allocation beyond the frame the decoder was handed.

use proptest::prelude::*;
use wf_serve::{
    decode_request, decode_response, encode_request, encode_response, Hit, Request, Response,
    ServeError, StatsSnapshot, WireError, PROTOCOL_VERSION,
};

fn requests_from(s: String, k: u32, deadline_ms: u32) -> Vec<Request> {
    vec![
        Request::Ping,
        Request::Search {
            query: s.clone(),
            k,
            deadline_ms,
        },
        Request::Add {
            workflow_json: s.clone(),
        },
        Request::Remove { id: s },
        Request::Stats,
        Request::Len,
    ]
}

fn responses_from(
    s: String,
    flags: Vec<bool>,
    hits: Vec<(String, u64)>,
    nums: (u32, u64),
) -> Vec<Response> {
    let (small, big) = nums;
    let mut stats_fields = [0u64; StatsSnapshot::FIELD_COUNT];
    for (i, slot) in stats_fields.iter_mut().enumerate() {
        *slot = big.wrapping_add(i as u64);
    }
    vec![
        Response::Pong,
        Response::Hits {
            degraded: flags.first().copied().unwrap_or(false),
            answered: flags,
            hits: hits
                .into_iter()
                .map(|(id, bits)| Hit {
                    id,
                    score: f64::from_bits(bits),
                })
                .collect(),
        },
        Response::Added { shard: small },
        Response::Removed {
            existed: big % 2 == 0,
        },
        Response::Stats(StatsSnapshot::from_fields(&stats_fields)),
        Response::Len { len: big },
        Response::Error(ServeError::NotFound { id: s.clone() }),
        Response::Error(ServeError::Overloaded {
            retry_after_ms: small,
        }),
        Response::Error(ServeError::BadRequest { detail: s.clone() }),
        Response::Error(ServeError::Internal { detail: s }),
    ]
}

/// NaN-aware score equality: the codec must preserve the exact bit
/// pattern, which `PartialEq` on f64 cannot observe through NaN.
fn responses_bit_equal(a: &Response, b: &Response) -> bool {
    match (a, b) {
        (
            Response::Hits {
                degraded: da,
                answered: aa,
                hits: ha,
            },
            Response::Hits {
                degraded: db,
                answered: ab,
                hits: hb,
            },
        ) => {
            da == db
                && aa == ab
                && ha.len() == hb.len()
                && ha
                    .iter()
                    .zip(hb)
                    .all(|(x, y)| x.id == y.id && x.score.to_bits() == y.score.to_bits())
        }
        _ => a == b,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every request variant roundtrips through the codec bit-exactly,
    /// for arbitrary strings (including empty) and field values.
    #[test]
    fn every_request_variant_roundtrips(
        rid in 0u64..=u64::MAX,
        s in "[a-zA-Z0-9_ ]{0,60}",
        k in 0u32..=u32::MAX,
        deadline_ms in 0u32..=u32::MAX,
    ) {
        for req in requests_from(s.clone(), k, deadline_ms) {
            let frame = encode_request(rid, &req);
            let declared = u32::from_be_bytes([frame[0], frame[1], frame[2], frame[3]]) as usize;
            prop_assert_eq!(declared, frame.len() - 4);
            let (got_rid, got) = decode_request(&frame[4..]).expect("valid frame decodes");
            prop_assert_eq!(got_rid, rid);
            prop_assert_eq!(got, req);
        }
    }

    /// Every response variant — including every typed error — roundtrips
    /// bit-exactly, scores included (even NaN bit patterns).
    #[test]
    fn every_response_variant_roundtrips(
        rid in 0u64..=u64::MAX,
        s in "[a-zA-Z0-9_ ]{0,40}",
        flags in proptest::collection::vec(0u8..=1, 0..12),
        hits in proptest::collection::vec(("[a-z0-9]{1,20}", 0u64..=u64::MAX), 0..8),
        small in 0u32..=u32::MAX,
        big in 0u64..=u64::MAX,
    ) {
        let flags: Vec<bool> = flags.into_iter().map(|b| b == 1).collect();
        for resp in responses_from(s.clone(), flags, hits.clone(), (small, big)) {
            let frame = encode_response(rid, &resp);
            let (got_rid, got) = decode_response(&frame[4..]).expect("valid frame decodes");
            prop_assert_eq!(got_rid, rid);
            prop_assert!(
                responses_bit_equal(&got, &resp),
                "response did not roundtrip: {:?} vs {:?}", got, resp
            );
        }
    }

    /// Every strict prefix of a valid frame decodes to a typed error —
    /// never a panic, never a spurious success.
    #[test]
    fn truncated_frames_yield_typed_errors(
        rid in 0u64..=u64::MAX,
        s in "[a-z0-9 ]{0,40}",
        k in 0u32..=1000,
        cut in 0usize..=1000,
    ) {
        for req in requests_from(s.clone(), k, 0) {
            let frame = encode_request(rid, &req);
            let payload = &frame[4..];
            let cut = cut % payload.len();
            prop_assert!(
                decode_request(&payload[..cut]).is_err(),
                "a {cut}-byte prefix of a {}-byte payload decoded", payload.len()
            );
        }
        for resp in responses_from(s.clone(), vec![true, false], Vec::new(), (k, 9)) {
            let frame = encode_response(rid, &resp);
            let payload = &frame[4..];
            let cut = cut % payload.len();
            prop_assert!(decode_response(&payload[..cut]).is_err());
        }
    }

    /// A wrong version byte is rejected as `BadVersion` before the body is
    /// interpreted.
    #[test]
    fn wrong_version_is_rejected(
        rid in 0u64..=u64::MAX,
        s in "[a-z]{0,20}",
        version in 2u8..=u8::MAX,
    ) {
        // PROTOCOL_VERSION is 1; cover 0 explicitly and 2..=255 randomly.
        prop_assert_eq!(PROTOCOL_VERSION, 1);
        for bad in [0u8, version] {
            for req in requests_from(s.clone(), 3, 0) {
                let mut frame = encode_request(rid, &req);
                frame[4] = bad;
                prop_assert_eq!(
                    decode_request(&frame[4..]),
                    Err(WireError::BadVersion { found: bad })
                );
            }
        }
    }

    /// Appending junk to a valid body is caught as `TrailingBytes`.
    #[test]
    fn trailing_bytes_are_rejected(
        rid in 0u64..=u64::MAX,
        s in "[a-z]{0,20}",
        junk in proptest::collection::vec(0u8..=255, 1..16),
    ) {
        for req in requests_from(s.clone(), 3, 0) {
            let mut frame = encode_request(rid, &req);
            frame.extend_from_slice(&junk);
            match decode_request(&frame[4..]) {
                Err(WireError::TrailingBytes { extra }) => prop_assert_eq!(extra, junk.len()),
                // A junk first byte of a string length field can also read
                // as a truncation — typed either way.
                Err(_) => {}
                Ok(got) => prop_assert!(false, "junk-suffixed frame decoded: {:?}", got),
            }
        }
    }

    /// Fully random byte payloads never panic the decoders: they either
    /// decode (a coincidence the framing allows) or yield a typed error.
    #[test]
    fn random_bytes_never_panic(
        payload in proptest::collection::vec(0u8..=255, 0..200),
    ) {
        let _ = decode_request(&payload);
        let _ = decode_response(&payload);
    }

    /// A hostile declared element count (hit count or shard count far
    /// beyond the actual bytes) is rejected by the pre-allocation bound
    /// check — typed `Truncated`, no outsized `Vec`.
    #[test]
    fn hostile_counts_are_rejected_before_allocation(
        rid in 0u64..=u64::MAX,
        hit_count in 1_000u32..=u32::MAX,
        shard_count in 1_000u16..=u16::MAX,
    ) {
        // Hand-build a Hits payload: header, degraded=0, huge shard
        // count, no flag bytes.
        let mut payload = vec![PROTOCOL_VERSION];
        payload.extend_from_slice(&rid.to_be_bytes());
        payload.push(0x82);
        payload.push(0);
        payload.extend_from_slice(&shard_count.to_be_bytes());
        match decode_response(&payload) {
            Err(WireError::Truncated { .. }) => {}
            other => prop_assert!(false, "hostile shard count: {:?}", other),
        }

        // Same with a plausible shard section but a huge hit count.
        let mut payload = vec![PROTOCOL_VERSION];
        payload.extend_from_slice(&rid.to_be_bytes());
        payload.push(0x82);
        payload.push(0);
        payload.extend_from_slice(&1u16.to_be_bytes());
        payload.push(1);
        payload.extend_from_slice(&hit_count.to_be_bytes());
        match decode_response(&payload) {
            Err(WireError::Truncated { .. }) => {}
            other => prop_assert!(false, "hostile hit count: {:?}", other),
        }
    }
}
