//! Module usage statistics across a repository.
//!
//! The paper observes that "modules used most frequently across different
//! workflows often provide trivial, rather unspecific functionality"
//! (Section 2.1.5, citing the authors' earlier corpus study \[35\]) and
//! names automatic, frequency-based importance scoring as future work.
//! [`UsageStatistics`] provides the counts such scoring needs: how many
//! distinct workflows each module *signature* occurs in.

use std::collections::BTreeMap;
use std::collections::BTreeSet;

use wf_model::{Module, Workflow};

use crate::repository::Repository;

/// Per-signature usage counts over a repository.
///
/// A module's *signature* is, in order of preference, its service URI (for
/// service modules), otherwise its lowercased label.  This groups the many
/// author-renamed instances of the same service while keeping distinct local
/// scripts apart.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct UsageStatistics {
    /// signature -> number of distinct workflows containing it.
    workflow_counts: BTreeMap<String, usize>,
    /// Total number of workflows the statistics were computed over.
    total_workflows: usize,
}

impl UsageStatistics {
    /// The signature used to identify "the same" module across workflows.
    pub fn signature(module: &Module) -> String {
        match &module.service_uri {
            Some(uri) if !uri.is_empty() => format!("uri:{}", uri.to_lowercase()),
            _ => format!("label:{}", module.label.to_lowercase()),
        }
    }

    /// Computes usage statistics over all workflows of a repository.
    pub fn from_repository(repo: &Repository) -> Self {
        Self::from_workflows(repo.iter())
    }

    /// Computes usage statistics over an iterator of workflows.
    pub fn from_workflows<'a>(workflows: impl IntoIterator<Item = &'a Workflow>) -> Self {
        let mut counts: BTreeMap<String, usize> = BTreeMap::new();
        let mut total = 0usize;
        for wf in workflows {
            total += 1;
            let signatures: BTreeSet<String> =
                wf.modules.iter().map(UsageStatistics::signature).collect();
            for sig in signatures {
                *counts.entry(sig).or_insert(0) += 1;
            }
        }
        UsageStatistics {
            workflow_counts: counts,
            total_workflows: total,
        }
    }

    /// Number of workflows the statistics cover.
    pub fn total_workflows(&self) -> usize {
        self.total_workflows
    }

    /// In how many distinct workflows the module's signature occurs.
    pub fn workflow_count(&self, module: &Module) -> usize {
        self.workflow_counts
            .get(&UsageStatistics::signature(module))
            .copied()
            .unwrap_or(0)
    }

    /// The fraction of workflows containing the module's signature
    /// (document frequency), in `[0, 1]`.
    pub fn document_frequency(&self, module: &Module) -> f64 {
        if self.total_workflows == 0 {
            return 0.0;
        }
        self.workflow_count(module) as f64 / self.total_workflows as f64
    }

    /// The `k` most frequently used signatures, most frequent first.
    pub fn most_frequent(&self, k: usize) -> Vec<(&str, usize)> {
        let mut all: Vec<(&str, usize)> = self
            .workflow_counts
            .iter()
            .map(|(s, &c)| (s.as_str(), c))
            .collect();
        all.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
        all.truncate(k);
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wf_model::{builder::WorkflowBuilder, ModuleType};

    fn wf(id: &str, with_split: bool) -> Workflow {
        let mut b = WorkflowBuilder::new(id)
            .module("fetch_data", ModuleType::WsdlService, |m| {
                m.service("ebi.ac.uk", "fetch", "http://ebi.ac.uk/ws")
            })
            .module("analyse", ModuleType::BeanshellScript, |m| m.script("x"));
        b = b.link("fetch_data", "analyse");
        if with_split {
            b = b
                .module("split_string", ModuleType::LocalOperation, |m| m)
                .link("analyse", "split_string");
        }
        b.build().unwrap()
    }

    #[test]
    fn signatures_prefer_service_uri_over_label() {
        let w = wf("a", false);
        let fetch = w.module_by_label("fetch_data").unwrap();
        let analyse = w.module_by_label("analyse").unwrap();
        assert_eq!(UsageStatistics::signature(fetch), "uri:http://ebi.ac.uk/ws");
        assert_eq!(UsageStatistics::signature(analyse), "label:analyse");
    }

    #[test]
    fn counts_are_per_workflow_not_per_occurrence() {
        let corpus = vec![wf("a", true), wf("b", true), wf("c", false)];
        let stats = UsageStatistics::from_workflows(&corpus);
        assert_eq!(stats.total_workflows(), 3);
        let split = corpus[0].module_by_label("split_string").unwrap();
        assert_eq!(stats.workflow_count(split), 2);
        let fetch = corpus[0].module_by_label("fetch_data").unwrap();
        assert_eq!(stats.workflow_count(fetch), 3);
        assert!((stats.document_frequency(split) - 2.0 / 3.0).abs() < 1e-9);
        assert!((stats.document_frequency(fetch) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn unknown_modules_have_zero_frequency() {
        let stats = UsageStatistics::from_workflows(&[wf("a", false)]);
        let other = WorkflowBuilder::new("x")
            .module("exotic_tool", ModuleType::GalaxyTool, |m| m)
            .build()
            .unwrap();
        let module = other.module_by_label("exotic_tool").unwrap();
        assert_eq!(stats.workflow_count(module), 0);
        assert_eq!(stats.document_frequency(module), 0.0);
    }

    #[test]
    fn empty_statistics_are_safe() {
        let stats = UsageStatistics::default();
        let w = wf("a", false);
        assert_eq!(stats.document_frequency(&w.modules[0]), 0.0);
        assert!(stats.most_frequent(5).is_empty());
    }

    #[test]
    fn most_frequent_orders_by_count() {
        let corpus = vec![wf("a", true), wf("b", true), wf("c", false)];
        let stats = UsageStatistics::from_workflows(&corpus);
        let top = stats.most_frequent(2);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].1, 3);
        assert!(top[0].1 >= top[1].1);
    }

    #[test]
    fn from_repository_matches_from_workflows() {
        let corpus = vec![wf("a", true), wf("b", false)];
        let repo = Repository::from_workflows(corpus.clone());
        assert_eq!(
            UsageStatistics::from_repository(&repo),
            UsageStatistics::from_workflows(&corpus)
        );
    }
}
