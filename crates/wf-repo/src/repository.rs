//! An in-memory workflow repository.

use std::collections::BTreeMap;

use wf_model::{CorpusStats, Workflow, WorkflowId};

/// A collection of workflows addressable by id — the stand-in for a public
/// repository such as myExperiment or the Galaxy repository.
#[derive(Debug, Clone, Default)]
pub struct Repository {
    workflows: Vec<Workflow>,
    index: BTreeMap<WorkflowId, usize>,
}

impl Repository {
    /// Creates an empty repository.
    pub fn new() -> Self {
        Repository::default()
    }

    /// Builds a repository from a corpus of workflows.  Workflows with
    /// duplicate ids replace earlier ones (last upload wins, as in real
    /// repositories where a new version supersedes the old).
    pub fn from_workflows(workflows: impl IntoIterator<Item = Workflow>) -> Self {
        let mut repo = Repository::new();
        for wf in workflows {
            repo.insert(wf);
        }
        repo
    }

    /// Inserts (or replaces) a workflow.
    pub fn insert(&mut self, wf: Workflow) {
        match self.index.get(&wf.id) {
            Some(&pos) => self.workflows[pos] = wf,
            None => {
                self.index.insert(wf.id.clone(), self.workflows.len());
                self.workflows.push(wf);
            }
        }
    }

    /// Removes a workflow by id, returning it.  Later workflows shift down
    /// one position (insertion order of the survivors is preserved), exactly
    /// like the corpus-layer `remove`, so repository and corpus stay
    /// index-aligned under churn.
    pub fn remove(&mut self, id: &WorkflowId) -> Option<Workflow> {
        let pos = self.index.remove(id)?;
        let removed = self.workflows.remove(pos);
        for index in self.index.values_mut() {
            if *index > pos {
                *index -= 1;
            }
        }
        Some(removed)
    }

    /// Number of stored workflows.
    pub fn len(&self) -> usize {
        self.workflows.len()
    }

    /// True if the repository is empty.
    pub fn is_empty(&self) -> bool {
        self.workflows.is_empty()
    }

    /// Looks up a workflow by id.
    pub fn get(&self, id: &WorkflowId) -> Option<&Workflow> {
        self.index.get(id).map(|&pos| &self.workflows[pos])
    }

    /// Looks up a workflow by its id string.
    pub fn get_str(&self, id: &str) -> Option<&Workflow> {
        self.get(&WorkflowId::new(id))
    }

    /// True if a workflow with this id exists.
    pub fn contains(&self, id: &WorkflowId) -> bool {
        self.index.contains_key(id)
    }

    /// Iterates over all workflows in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &Workflow> {
        self.workflows.iter()
    }

    /// All workflow ids in insertion order.
    pub fn ids(&self) -> Vec<&WorkflowId> {
        self.workflows.iter().map(|w| &w.id).collect()
    }

    /// The underlying workflows as a slice.
    pub fn workflows(&self) -> &[Workflow] {
        &self.workflows
    }

    /// Aggregate statistics over the stored corpus.
    pub fn stats(&self) -> Option<CorpusStats> {
        CorpusStats::of(&self.workflows)
    }

    /// Applies a transformation to every workflow, producing a new
    /// repository (used to build an importance-projected copy of the corpus
    /// once, instead of projecting on every comparison).
    pub fn map_workflows(&self, f: impl FnMut(&Workflow) -> Workflow) -> Repository {
        Repository::from_workflows(self.workflows.iter().map(f))
    }
}

impl FromIterator<Workflow> for Repository {
    fn from_iter<T: IntoIterator<Item = Workflow>>(iter: T) -> Self {
        Repository::from_workflows(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wf_model::{builder::WorkflowBuilder, ModuleType};

    fn wf(id: &str, n: usize) -> Workflow {
        let mut b = WorkflowBuilder::new(id).title(format!("workflow {id}"));
        for i in 0..n {
            b = b.module(format!("m{i}"), ModuleType::WsdlService, |m| m);
            if i > 0 {
                b = b.link(format!("m{}", i - 1), format!("m{i}"));
            }
        }
        b.build().unwrap()
    }

    #[test]
    fn insert_get_and_len() {
        let repo = Repository::from_workflows(vec![wf("a", 2), wf("b", 3)]);
        assert_eq!(repo.len(), 2);
        assert!(!repo.is_empty());
        assert!(repo.contains(&WorkflowId::new("a")));
        assert_eq!(repo.get_str("b").unwrap().module_count(), 3);
        assert!(repo.get_str("zzz").is_none());
        assert_eq!(repo.ids().len(), 2);
    }

    #[test]
    fn duplicate_ids_replace_earlier_entries() {
        let mut repo = Repository::new();
        repo.insert(wf("a", 2));
        repo.insert(wf("a", 5));
        assert_eq!(repo.len(), 1);
        assert_eq!(repo.get_str("a").unwrap().module_count(), 5);
    }

    #[test]
    fn remove_shifts_later_workflows_down() {
        let mut repo = Repository::from_workflows(vec![wf("a", 1), wf("b", 2), wf("c", 3)]);
        let removed = repo.remove(&WorkflowId::new("b")).unwrap();
        assert_eq!(removed.id.as_str(), "b");
        assert_eq!(repo.len(), 2);
        assert!(repo.remove(&WorkflowId::new("b")).is_none());
        let ids: Vec<&str> = repo.iter().map(|w| w.id.as_str()).collect();
        assert_eq!(ids, vec!["a", "c"]);
        // Index lookups still resolve after the shift.
        assert_eq!(repo.get_str("c").unwrap().module_count(), 3);
        assert_eq!(repo.get_str("a").unwrap().module_count(), 1);
    }

    #[test]
    fn iteration_preserves_insertion_order() {
        let repo: Repository = vec![wf("x", 1), wf("y", 2), wf("z", 3)]
            .into_iter()
            .collect();
        let ids: Vec<&str> = repo.iter().map(|w| w.id.as_str()).collect();
        assert_eq!(ids, vec!["x", "y", "z"]);
    }

    #[test]
    fn stats_and_map() {
        let repo = Repository::from_workflows(vec![wf("a", 2), wf("b", 4)]);
        let stats = repo.stats().unwrap();
        assert_eq!(stats.workflows, 2);
        assert!((stats.mean_modules - 3.0).abs() < 1e-9);

        let truncated =
            repo.map_workflows(|w| w.restrict_to(&w.module_ids().take(1).collect::<Vec<_>>(), &[]));
        assert_eq!(truncated.stats().unwrap().mean_modules, 1.0);
        assert_eq!(truncated.len(), 2);
    }

    #[test]
    fn empty_repository_has_no_stats() {
        assert!(Repository::new().stats().is_none());
        assert!(Repository::new().is_empty());
    }
}
