//! Technical type equivalence classes.
//!
//! The `te` preselection strategy of the paper casts module types "to
//! equivalence classes based on the categorization proposed in \[37\]"
//! (Wassink et al.): all web-service related types form one class, scripts
//! another, and so on.  The motivation quoted in the paper is that Taverna
//! web-service modules are typed with a variety of identifiers
//! (`arbitrarywsdl`, `wsdl`, `soaplabwsdl`, …) that should be comparable.

use std::fmt;

use serde::{Deserialize, Serialize};
use wf_model::ModuleType;

/// A coarse technical class of module types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum TypeClass {
    /// Remote (web) service invocations of any flavour.
    WebService,
    /// Author-provided scripts executed locally (Beanshell, RShell, …).
    Script,
    /// Predefined local operations, string constants and ports.
    LocalOperation,
    /// Nested sub-workflows.
    SubWorkflow,
    /// Galaxy tool invocations.
    Tool,
    /// Anything not covered above.
    Other,
}

impl TypeClass {
    /// The equivalence class of a module type.
    pub fn of(module_type: &ModuleType) -> TypeClass {
        if module_type.is_service() {
            TypeClass::WebService
        } else if module_type.is_script() {
            TypeClass::Script
        } else {
            match module_type {
                ModuleType::LocalOperation
                | ModuleType::StringConstant
                | ModuleType::InputPort
                | ModuleType::OutputPort => TypeClass::LocalOperation,
                ModuleType::SubWorkflow => TypeClass::SubWorkflow,
                ModuleType::GalaxyTool => TypeClass::Tool,
                _ => TypeClass::Other,
            }
        }
    }

    /// A stable lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            TypeClass::WebService => "web_service",
            TypeClass::Script => "script",
            TypeClass::LocalOperation => "local_operation",
            TypeClass::SubWorkflow => "sub_workflow",
            TypeClass::Tool => "tool",
            TypeClass::Other => "other",
        }
    }
}

impl fmt::Display for TypeClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_wsdl_variants_share_the_web_service_class() {
        for ty in [
            ModuleType::WsdlService,
            ModuleType::SoaplabService,
            ModuleType::ArbitraryWsdl,
            ModuleType::RestService,
            ModuleType::BioMart,
            ModuleType::BioMoby,
        ] {
            assert_eq!(TypeClass::of(&ty), TypeClass::WebService, "{ty}");
        }
    }

    #[test]
    fn scripts_and_locals_are_separate_classes() {
        assert_eq!(
            TypeClass::of(&ModuleType::BeanshellScript),
            TypeClass::Script
        );
        assert_eq!(TypeClass::of(&ModuleType::RShell), TypeClass::Script);
        assert_eq!(
            TypeClass::of(&ModuleType::LocalOperation),
            TypeClass::LocalOperation
        );
        assert_eq!(
            TypeClass::of(&ModuleType::StringConstant),
            TypeClass::LocalOperation
        );
        assert_eq!(
            TypeClass::of(&ModuleType::InputPort),
            TypeClass::LocalOperation
        );
        assert_ne!(
            TypeClass::of(&ModuleType::BeanshellScript),
            TypeClass::of(&ModuleType::LocalOperation)
        );
    }

    #[test]
    fn remaining_types_map_to_their_classes() {
        assert_eq!(
            TypeClass::of(&ModuleType::SubWorkflow),
            TypeClass::SubWorkflow
        );
        assert_eq!(TypeClass::of(&ModuleType::GalaxyTool), TypeClass::Tool);
        assert_eq!(
            TypeClass::of(&ModuleType::Other("mystery".into())),
            TypeClass::Other
        );
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(TypeClass::WebService.to_string(), "web_service");
        assert_eq!(TypeClass::Tool.name(), "tool");
    }
}
