//! # wf-repo — workflow repositories and repository-derived knowledge
//!
//! The paper's Section 2.1.5 introduces two uses of knowledge derived from
//! the repository as a whole, and Section 5.2 evaluates retrieval over the
//! full repository.  This crate provides that substrate:
//!
//! * [`repository`] — an in-memory workflow repository (the stand-in for
//!   myExperiment / Galaxy) with id lookup and corpus statistics.
//! * [`type_classes`] — the technical *type equivalence classes* (web
//!   service, script, local operation, …) following the categorisation of
//!   Wassink et al. \[37\].
//! * [`preselect`] — module-pair preselection strategies: all pairs (`ta`),
//!   strict type matching, and type-equivalence classes (`te`); includes the
//!   pair-count accounting behind the paper's reported 2.3× reduction in
//!   pairwise module comparisons.
//! * [`usage`] — module usage statistics across the repository (how often a
//!   label / service appears), the ingredient for automatic importance
//!   scoring.
//! * [`importance`] — importance scores for modules: the paper's manual
//!   type-based selection plus the frequency-based automatic scoring it
//!   names as future work.
//! * [`projection`] — the *Importance Projection* (`ip`) preprocessing:
//!   projecting a workflow onto its important modules while preserving the
//!   paths between them as edges of the transitive reduction.
//! * [`search`] — a top-k similarity search engine over a repository,
//!   generic over the similarity measure and optionally parallelised
//!   (lock-free: per-thread bounded heaps merged at join).
//! * [`index`] — the index-accelerated search path: a token inverted index
//!   over module labels plus an exact upper-bound pruning top-k search over
//!   any corpus-resident measure ([`CorpusScorer`]).
//! * [`mining`] — Apriori frequent itemset mining over module and tag sets,
//!   the repository-level ingredient of the *frequent module / tag set*
//!   similarity of Stoyanovich et al. \[36\].

#![deny(unsafe_code)]

pub mod importance;
pub mod index;
pub mod mining;
pub mod preselect;
pub mod projection;
pub mod repository;
pub mod search;
pub mod type_classes;
pub mod usage;

pub use importance::{ImportanceConfig, ImportanceScorer};
pub use index::{
    scan_ranked_candidates, scan_ranked_candidates_parallel, scan_top_k, sort_best_bound_first,
    CorpusScorer, IndexedSearchEngine, RankedCandidate, RankedFrontier, SearchStats, TokenIndex,
};
pub use mining::{mine_repository, mine_transactions, FrequentItemsets, ItemSource, MiningConfig};
pub use preselect::{
    candidate_pair_iter, candidate_pairs, pair_reduction_factor, PreselectionStrategy,
};
pub use projection::importance_projection;
pub use repository::Repository;
pub use search::{merge_top_k, CancelToken, SearchEngine, SearchHit, SearchThreshold, TopK};
pub use type_classes::TypeClass;
pub use usage::UsageStatistics;
