//! Module-pair preselection strategies.
//!
//! "To reduce the amount of module pair comparisons, restrictions can be
//! imposed on candidate pairs by requiring certain module attributes to
//! match" (Section 2.1.5).  Three strategies are evaluated in the paper:
//!
//! * `ta` — no restriction, the full Cartesian product of the module sets;
//! * strict type matching — only modules with the *identical* type
//!   identifier are compared (this was found to hurt ranking correctness);
//! * `te` — type equivalence classes: modules may be compared if their types
//!   fall into the same technical class (web service, script, …); this keeps
//!   quality while cutting the number of pairwise comparisons by roughly
//!   2.3× on the paper's corpus.

use std::fmt;

use wf_model::{Module, ModuleId, Workflow};

use crate::type_classes::TypeClass;

/// The candidate-pair selection strategies of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PreselectionStrategy {
    /// `ta`: compare every pair of modules.
    AllPairs,
    /// Compare only modules with the exact same type identifier.
    StrictType,
    /// `te`: compare modules whose types fall into the same equivalence
    /// class.
    TypeEquivalence,
}

impl PreselectionStrategy {
    /// The shorthand used in algorithm names (`ta` / `tt` / `te`).
    pub fn shorthand(self) -> &'static str {
        match self {
            PreselectionStrategy::AllPairs => "ta",
            PreselectionStrategy::StrictType => "tt",
            PreselectionStrategy::TypeEquivalence => "te",
        }
    }

    /// True if the pair (a, b) may be compared under this strategy.
    pub fn allows(self, a: &Module, b: &Module) -> bool {
        match self {
            PreselectionStrategy::AllPairs => true,
            PreselectionStrategy::StrictType => a.module_type == b.module_type,
            PreselectionStrategy::TypeEquivalence => {
                TypeClass::of(&a.module_type) == TypeClass::of(&b.module_type)
            }
        }
    }
}

impl fmt::Display for PreselectionStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.shorthand())
    }
}

/// The candidate module pairs of two workflows under a strategy, as a lazy
/// iterator over the (filtered) Cartesian product.
///
/// The allocation-free form of [`candidate_pairs`]: hot loops that only
/// *walk* or *count* the pairs (the matrix builder, the pair-count
/// accounting) never materialise a `Vec` per workflow pair.
pub fn candidate_pair_iter<'w>(
    a: &'w Workflow,
    b: &'w Workflow,
    strategy: PreselectionStrategy,
) -> impl Iterator<Item = (ModuleId, ModuleId)> + 'w {
    a.modules.iter().flat_map(move |ma| {
        b.modules
            .iter()
            .filter(move |mb| strategy.allows(ma, mb))
            .map(move |mb| (ma.id, mb.id))
    })
}

/// The candidate module pairs of two workflows under a strategy.
pub fn candidate_pairs(
    a: &Workflow,
    b: &Workflow,
    strategy: PreselectionStrategy,
) -> Vec<(ModuleId, ModuleId)> {
    candidate_pair_iter(a, b, strategy).collect()
}

/// The factor by which a strategy reduces the number of pairwise module
/// comparisons relative to the full Cartesian product, summed over a set of
/// workflow pairs — the quantity behind the paper's "reduction … by a factor
/// of 2.3 (172k/74k)".
///
/// Returns `None` if the restricted count is zero (no comparison allowed at
/// all, in which case a factor is meaningless).
pub fn pair_reduction_factor(
    pairs: &[(&Workflow, &Workflow)],
    strategy: PreselectionStrategy,
) -> Option<f64> {
    let mut full = 0usize;
    let mut restricted = 0usize;
    for (a, b) in pairs {
        full += a.module_count() * b.module_count();
        restricted += candidate_pair_iter(a, b, strategy).count();
    }
    if restricted == 0 {
        None
    } else {
        Some(full as f64 / restricted as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wf_model::{builder::WorkflowBuilder, ModuleType};

    fn mixed(id: &str) -> Workflow {
        WorkflowBuilder::new(id)
            .module("ws1", ModuleType::WsdlService, |m| m)
            .module("ws2", ModuleType::SoaplabService, |m| m)
            .module("script", ModuleType::BeanshellScript, |m| m)
            .module("local", ModuleType::LocalOperation, |m| m)
            .link("ws1", "script")
            .link("ws2", "script")
            .link("script", "local")
            .build()
            .unwrap()
    }

    #[test]
    fn all_pairs_is_the_cartesian_product() {
        let (a, b) = (mixed("a"), mixed("b"));
        let pairs = candidate_pairs(&a, &b, PreselectionStrategy::AllPairs);
        assert_eq!(pairs.len(), 16);
    }

    #[test]
    fn strict_type_only_keeps_identical_types() {
        let (a, b) = (mixed("a"), mixed("b"));
        let pairs = candidate_pairs(&a, &b, PreselectionStrategy::StrictType);
        // Each of the four modules matches exactly its counterpart: wsdl-wsdl,
        // soaplab-soaplab, beanshell-beanshell, local-local.
        assert_eq!(pairs.len(), 4);
    }

    #[test]
    fn type_equivalence_merges_service_flavours() {
        let (a, b) = (mixed("a"), mixed("b"));
        let pairs = candidate_pairs(&a, &b, PreselectionStrategy::TypeEquivalence);
        // Two web services on each side -> 4 pairs, plus script-script and
        // local-local.
        assert_eq!(pairs.len(), 6);
        // te is strictly more permissive than strict type matching…
        assert!(pairs.len() > candidate_pairs(&a, &b, PreselectionStrategy::StrictType).len());
        // …and strictly less than all pairs.
        assert!(pairs.len() < candidate_pairs(&a, &b, PreselectionStrategy::AllPairs).len());
    }

    #[test]
    fn allows_agrees_with_candidate_pairs() {
        let a = mixed("a");
        let b = mixed("b");
        let ws = a.module_by_label("ws1").unwrap();
        let soap = b.module_by_label("ws2").unwrap();
        let script = b.module_by_label("script").unwrap();
        assert!(PreselectionStrategy::TypeEquivalence.allows(ws, soap));
        assert!(!PreselectionStrategy::StrictType.allows(ws, soap));
        assert!(!PreselectionStrategy::TypeEquivalence.allows(ws, script));
        assert!(PreselectionStrategy::AllPairs.allows(ws, script));
    }

    #[test]
    fn reduction_factor_reports_savings() {
        let a = mixed("a");
        let b = mixed("b");
        let pairs = vec![(&a, &b)];
        let te = pair_reduction_factor(&pairs, PreselectionStrategy::TypeEquivalence).unwrap();
        assert!((te - 16.0 / 6.0).abs() < 1e-9);
        let ta = pair_reduction_factor(&pairs, PreselectionStrategy::AllPairs).unwrap();
        assert_eq!(ta, 1.0);
    }

    #[test]
    fn reduction_factor_is_none_when_nothing_is_comparable() {
        let a = WorkflowBuilder::new("a")
            .module("x", ModuleType::WsdlService, |m| m)
            .build()
            .unwrap();
        let b = WorkflowBuilder::new("b")
            .module("y", ModuleType::BeanshellScript, |m| m)
            .build()
            .unwrap();
        assert!(pair_reduction_factor(&[(&a, &b)], PreselectionStrategy::StrictType).is_none());
    }

    #[test]
    fn shorthands() {
        assert_eq!(PreselectionStrategy::AllPairs.to_string(), "ta");
        assert_eq!(PreselectionStrategy::StrictType.to_string(), "tt");
        assert_eq!(PreselectionStrategy::TypeEquivalence.to_string(), "te");
    }
}
