//! Importance scores for modules.
//!
//! "Not all modules in a scientific workflow contribute equally to the
//! workflow's specific functionality … we assign a score to each module
//! indicating the importance of the module for a workflow's specific
//! functionality.  Only modules with a score above a configurable threshold
//! are kept" (Section 2.1.5).  In the paper the selection is manual, "based
//! on module types": predefined trivial local operations are removed.  The
//! paper names frequency-based automatic selection as future work; both are
//! implemented here.

use wf_model::Module;

use crate::type_classes::TypeClass;
use crate::usage::UsageStatistics;

/// Configuration of importance scoring.
#[derive(Debug, Clone, PartialEq)]
pub struct ImportanceConfig {
    /// Modules with a score strictly below this threshold are removed by the
    /// Importance Projection.
    pub threshold: f64,
    /// If true, scores are additionally damped by how ubiquitous a module is
    /// across the repository (the paper's future-work extension).  Requires
    /// usage statistics to have any effect.
    pub frequency_adjusted: bool,
}

impl Default for ImportanceConfig {
    fn default() -> Self {
        ImportanceConfig {
            threshold: 0.5,
            frequency_adjusted: false,
        }
    }
}

impl ImportanceConfig {
    /// The paper's manual, type-based selection: keep everything that is not
    /// a predefined trivial local operation.
    pub fn type_based() -> Self {
        ImportanceConfig::default()
    }

    /// The automatic, frequency-adjusted variant.
    pub fn frequency_based() -> Self {
        ImportanceConfig {
            threshold: 0.5,
            frequency_adjusted: true,
        }
    }
}

/// Scores modules by their importance for a workflow's specific function.
#[derive(Debug, Clone, Default)]
pub struct ImportanceScorer {
    config: ImportanceConfig,
    usage: Option<UsageStatistics>,
}

impl ImportanceScorer {
    /// Creates a scorer with the given configuration and no usage
    /// statistics.
    pub fn new(config: ImportanceConfig) -> Self {
        ImportanceScorer {
            config,
            usage: None,
        }
    }

    /// Creates a scorer that can use repository usage statistics.
    pub fn with_usage(config: ImportanceConfig, usage: UsageStatistics) -> Self {
        ImportanceScorer {
            config,
            usage: Some(usage),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &ImportanceConfig {
        &self.config
    }

    /// The base score of a module, from its technical class alone.
    ///
    /// Web services and tools carry the workflow's domain functionality
    /// (score 1.0), scripts usually implement bespoke analysis steps (0.8),
    /// sub-workflows aggregate functionality (0.8), while predefined local
    /// operations, constants and ports are "trivial, rather unspecific" (0.0).
    pub fn base_score(module: &Module) -> f64 {
        match TypeClass::of(&module.module_type) {
            TypeClass::WebService | TypeClass::Tool => 1.0,
            TypeClass::Script | TypeClass::SubWorkflow => 0.8,
            TypeClass::LocalOperation => 0.0,
            TypeClass::Other => 0.6,
        }
    }

    /// The (possibly frequency-adjusted) importance score of a module.
    pub fn score(&self, module: &Module) -> f64 {
        let base = ImportanceScorer::base_score(module);
        if !self.config.frequency_adjusted {
            return base;
        }
        let Some(usage) = &self.usage else {
            return base;
        };
        // Damp ubiquitous modules: a signature occurring in (almost) every
        // workflow carries little specific information.  The damping keeps
        // rare modules untouched and scales linearly down to 0.25 for a
        // module present in every workflow.
        let df = usage.document_frequency(module);
        base * (1.0 - 0.75 * df)
    }

    /// True if the module survives the importance threshold.
    pub fn is_important(&self, module: &Module) -> bool {
        self.score(module) >= self.config.threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::repository::Repository;
    use wf_model::{builder::WorkflowBuilder, ModuleType, Workflow};

    fn workflow(id: &str) -> Workflow {
        WorkflowBuilder::new(id)
            .module("blast", ModuleType::WsdlService, |m| {
                m.service("ebi.ac.uk", "blastp", "http://ebi.ac.uk/blast")
            })
            .module("parse_hits", ModuleType::BeanshellScript, |m| m.script("x"))
            .module("split_string", ModuleType::LocalOperation, |m| m)
            .module("out", ModuleType::OutputPort, |m| m)
            .link("blast", "parse_hits")
            .link("parse_hits", "split_string")
            .link("split_string", "out")
            .build()
            .unwrap()
    }

    #[test]
    fn type_based_scores_follow_the_papers_manual_selection() {
        let wf = workflow("a");
        let scorer = ImportanceScorer::new(ImportanceConfig::type_based());
        assert!(scorer.is_important(wf.module_by_label("blast").unwrap()));
        assert!(scorer.is_important(wf.module_by_label("parse_hits").unwrap()));
        assert!(!scorer.is_important(wf.module_by_label("split_string").unwrap()));
        assert!(!scorer.is_important(wf.module_by_label("out").unwrap()));
    }

    #[test]
    fn base_scores_are_ordered_by_specificity() {
        let wf = workflow("a");
        let blast = ImportanceScorer::base_score(wf.module_by_label("blast").unwrap());
        let script = ImportanceScorer::base_score(wf.module_by_label("parse_hits").unwrap());
        let local = ImportanceScorer::base_score(wf.module_by_label("split_string").unwrap());
        assert!(blast > script);
        assert!(script > local);
        assert_eq!(local, 0.0);
    }

    #[test]
    fn frequency_adjustment_dampens_ubiquitous_modules() {
        // The blast service occurs in every workflow of the corpus; a rare
        // tool occurs only once.
        let mut corpus = vec![workflow("a"), workflow("b"), workflow("c")];
        corpus[2] = WorkflowBuilder::new("c")
            .module("blast", ModuleType::WsdlService, |m| {
                m.service("ebi.ac.uk", "blastp", "http://ebi.ac.uk/blast")
            })
            .module("rare_tool", ModuleType::WsdlService, |m| {
                m.service("rare.org", "special", "http://rare.org/ws")
            })
            .link("blast", "rare_tool")
            .build()
            .unwrap();
        let repo = Repository::from_workflows(corpus.clone());
        let usage = UsageStatistics::from_repository(&repo);
        let scorer = ImportanceScorer::with_usage(ImportanceConfig::frequency_based(), usage);
        let blast = corpus[2].module_by_label("blast").unwrap();
        let rare = corpus[2].module_by_label("rare_tool").unwrap();
        assert!(scorer.score(rare) > scorer.score(blast));
        // Without adjustment both score identically.
        let plain = ImportanceScorer::new(ImportanceConfig::type_based());
        assert_eq!(plain.score(rare), plain.score(blast));
    }

    #[test]
    fn frequency_adjustment_without_usage_statistics_is_a_noop() {
        let wf = workflow("a");
        let scorer = ImportanceScorer::new(ImportanceConfig::frequency_based());
        assert_eq!(
            scorer.score(wf.module_by_label("blast").unwrap()),
            ImportanceScorer::base_score(wf.module_by_label("blast").unwrap())
        );
    }

    #[test]
    fn threshold_is_configurable() {
        let wf = workflow("a");
        let strict = ImportanceScorer::new(ImportanceConfig {
            threshold: 0.9,
            frequency_adjusted: false,
        });
        assert!(strict.is_important(wf.module_by_label("blast").unwrap()));
        assert!(!strict.is_important(wf.module_by_label("parse_hits").unwrap()));
    }
}
