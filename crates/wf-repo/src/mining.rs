//! Frequent itemset mining over a workflow repository.
//!
//! Stoyanovich et al. \[36\] compare workflows by the *frequent tag sets*
//! and *frequent module sets* they contain: itemsets that occur in at least
//! a minimum number of workflows of the repository.  This module provides
//! the repository-level mining step (a textbook Apriori implementation —
//! repository sizes are in the low thousands, so candidate generation with
//! support counting is entirely sufficient) and the per-workflow lookup of
//! contained frequent itemsets that the corresponding similarity measure in
//! `wf-sim` builds on.

use std::collections::{BTreeMap, BTreeSet};

use wf_model::Workflow;

use crate::repository::Repository;
use crate::usage::UsageStatistics;

/// What a "transaction" (one workflow's item set) is made of.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ItemSource {
    /// One item per module, identified by its usage signature (label plus
    /// identifying attributes) — the *frequent module sets* of \[36\].
    ModuleSignatures,
    /// One item per lowercased module label.
    ModuleLabels,
    /// One item per keyword tag — the *frequent tag sets* of \[36\].
    Tags,
}

impl ItemSource {
    /// Extracts the item set of a single workflow.
    pub fn items(self, wf: &Workflow) -> BTreeSet<String> {
        match self {
            ItemSource::ModuleSignatures => {
                wf.modules.iter().map(UsageStatistics::signature).collect()
            }
            ItemSource::ModuleLabels => wf.modules.iter().map(|m| m.label.to_lowercase()).collect(),
            ItemSource::Tags => wf
                .annotations
                .tags
                .iter()
                .map(|t| t.to_lowercase())
                .collect(),
        }
    }

    /// A short name used in experiment output.
    pub fn name(self) -> &'static str {
        match self {
            ItemSource::ModuleSignatures => "module-signatures",
            ItemSource::ModuleLabels => "module-labels",
            ItemSource::Tags => "tags",
        }
    }
}

/// Configuration of the Apriori mining run.
#[derive(Debug, Clone, PartialEq)]
pub struct MiningConfig {
    /// Minimum relative support: an itemset is frequent when it occurs in at
    /// least `min_support * |repository|` workflows (with an absolute floor
    /// of [`MiningConfig::min_support_count`]).
    pub min_support: f64,
    /// Absolute floor for the support count (default 2: an itemset occurring
    /// in a single workflow tells nothing about similarity).
    pub min_support_count: usize,
    /// Largest itemset size to mine (default 4; larger sets are rare and
    /// expensive to enumerate).
    pub max_size: usize,
}

impl Default for MiningConfig {
    fn default() -> Self {
        MiningConfig {
            min_support: 0.01,
            min_support_count: 2,
            max_size: 4,
        }
    }
}

impl MiningConfig {
    /// A configuration with the given relative minimum support.
    pub fn with_min_support(min_support: f64) -> Self {
        MiningConfig {
            min_support,
            ..MiningConfig::default()
        }
    }

    /// The effective absolute support threshold for a repository of
    /// `transactions` workflows.
    pub fn support_threshold(&self, transactions: usize) -> usize {
        let relative = (self.min_support * transactions as f64).ceil() as usize;
        relative.max(self.min_support_count).max(1)
    }
}

/// One frequent itemset and its support count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrequentItemset {
    /// The items, sorted.
    pub items: Vec<String>,
    /// In how many workflows of the repository the itemset occurs.
    pub support: usize,
}

impl FrequentItemset {
    /// The itemset size.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when the itemset has no items (never produced by mining).
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// True when every item of the itemset occurs in `items`.
    pub fn contained_in(&self, items: &BTreeSet<String>) -> bool {
        self.items.iter().all(|i| items.contains(i))
    }
}

/// The result of mining one repository: all frequent itemsets, the item
/// source and thresholds used, and lookup helpers.
#[derive(Debug, Clone, PartialEq)]
pub struct FrequentItemsets {
    source: ItemSource,
    itemsets: Vec<FrequentItemset>,
    transaction_count: usize,
    support_threshold: usize,
}

impl FrequentItemsets {
    /// The mined frequent itemsets, sorted by descending support and then by
    /// items.
    pub fn itemsets(&self) -> &[FrequentItemset] {
        &self.itemsets
    }

    /// Number of frequent itemsets found.
    pub fn len(&self) -> usize {
        self.itemsets.len()
    }

    /// True when no itemset reached the support threshold.
    pub fn is_empty(&self) -> bool {
        self.itemsets.is_empty()
    }

    /// The item source the transactions were built from.
    pub fn source(&self) -> ItemSource {
        self.source
    }

    /// Number of workflows the itemsets were mined from.
    pub fn transaction_count(&self) -> usize {
        self.transaction_count
    }

    /// The absolute support threshold that was applied.
    pub fn support_threshold(&self) -> usize {
        self.support_threshold
    }

    /// All frequent itemsets of exactly `k` items.
    pub fn of_size(&self, k: usize) -> Vec<&FrequentItemset> {
        self.itemsets.iter().filter(|s| s.len() == k).collect()
    }

    /// Indices (into [`FrequentItemsets::itemsets`]) of the frequent
    /// itemsets contained in the given workflow.  This is the feature
    /// representation used by the frequent-set similarity measure.
    pub fn contained_in_workflow(&self, wf: &Workflow) -> BTreeSet<usize> {
        let items = self.source.items(wf);
        self.itemsets
            .iter()
            .enumerate()
            .filter(|(_, s)| s.contained_in(&items))
            .map(|(i, _)| i)
            .collect()
    }
}

/// Mines frequent itemsets from a repository.
pub fn mine_repository(
    repo: &Repository,
    source: ItemSource,
    config: &MiningConfig,
) -> FrequentItemsets {
    let transactions: Vec<BTreeSet<String>> = repo.iter().map(|wf| source.items(wf)).collect();
    mine_transactions(&transactions, source, config)
}

/// Mines frequent itemsets from pre-extracted transactions.
pub fn mine_transactions(
    transactions: &[BTreeSet<String>],
    source: ItemSource,
    config: &MiningConfig,
) -> FrequentItemsets {
    let threshold = config.support_threshold(transactions.len());
    let mut result: Vec<FrequentItemset> = Vec::new();

    // Level 1: frequent single items.
    let mut counts: BTreeMap<&str, usize> = BTreeMap::new();
    for t in transactions {
        for item in t {
            *counts.entry(item.as_str()).or_insert(0) += 1;
        }
    }
    let mut current: Vec<Vec<String>> = counts
        .iter()
        .filter(|(_, &c)| c >= threshold)
        .map(|(item, _)| vec![(*item).to_string()])
        .collect();
    for set in &current {
        result.push(FrequentItemset {
            items: set.clone(),
            support: counts[set[0].as_str()],
        });
    }

    // Levels 2..=max_size: Apriori candidate generation + support counting.
    let mut size = 1;
    while !current.is_empty() && size < config.max_size {
        size += 1;
        let frequent_prev: BTreeSet<&[String]> = current.iter().map(|s| s.as_slice()).collect();
        let mut candidates: BTreeSet<Vec<String>> = BTreeSet::new();
        for (i, a) in current.iter().enumerate() {
            for b in current.iter().skip(i + 1) {
                // Join step: the two (k-1)-itemsets must share their first
                // k-2 items (both are sorted).
                if a[..size - 2] != b[..size - 2] {
                    continue;
                }
                let mut candidate = a.clone();
                candidate.push(b[size - 2].clone());
                candidate.sort();
                candidate.dedup();
                if candidate.len() != size {
                    continue;
                }
                // Prune step: every (k-1)-subset must itself be frequent.
                let all_subsets_frequent = (0..size).all(|skip| {
                    let subset: Vec<String> = candidate
                        .iter()
                        .enumerate()
                        .filter(|(idx, _)| *idx != skip)
                        .map(|(_, it)| it.clone())
                        .collect();
                    frequent_prev.contains(subset.as_slice())
                });
                if all_subsets_frequent {
                    candidates.insert(candidate);
                }
            }
        }
        let mut next: Vec<Vec<String>> = Vec::new();
        for candidate in candidates {
            let support = transactions
                .iter()
                .filter(|t| candidate.iter().all(|i| t.contains(i)))
                .count();
            if support >= threshold {
                result.push(FrequentItemset {
                    items: candidate.clone(),
                    support,
                });
                next.push(candidate);
            }
        }
        current = next;
    }

    result.sort_by(|a, b| {
        b.support
            .cmp(&a.support)
            .then_with(|| a.items.cmp(&b.items))
    });
    FrequentItemsets {
        source,
        itemsets: result,
        transaction_count: transactions.len(),
        support_threshold: threshold,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wf_model::{builder::WorkflowBuilder, ModuleType};

    fn wf(id: &str, labels: &[&str], tags: &[&str]) -> Workflow {
        let mut b = WorkflowBuilder::new(id);
        for l in labels {
            b = b.module(*l, ModuleType::WsdlService, |m| m);
        }
        for w in labels.windows(2) {
            b = b.link(w[0], w[1]);
        }
        for t in tags {
            b = b.tag(*t);
        }
        b.build().unwrap()
    }

    fn toy_repo() -> Repository {
        Repository::from_workflows(vec![
            wf("w1", &["fetch", "blast", "render"], &["alignment", "blast"]),
            wf("w2", &["fetch", "blast", "plot"], &["alignment", "blast"]),
            wf("w3", &["fetch", "blast"], &["alignment"]),
            wf("w4", &["parse", "cluster"], &["clustering"]),
            wf("w5", &["parse", "cluster", "plot"], &["clustering"]),
        ])
    }

    fn set(items: &[&str]) -> BTreeSet<String> {
        items.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn support_threshold_combines_relative_and_absolute_floors() {
        let config = MiningConfig {
            min_support: 0.1,
            min_support_count: 2,
            max_size: 3,
        };
        assert_eq!(config.support_threshold(5), 2, "absolute floor wins");
        assert_eq!(config.support_threshold(100), 10, "relative part wins");
        assert_eq!(
            MiningConfig::with_min_support(0.0).support_threshold(0),
            2,
            "never below the absolute floor"
        );
    }

    #[test]
    fn single_items_are_mined_with_correct_support() {
        let repo = toy_repo();
        let mined = mine_repository(&repo, ItemSource::ModuleLabels, &MiningConfig::default());
        let fetch = mined
            .itemsets()
            .iter()
            .find(|s| s.items == vec!["fetch".to_string()])
            .expect("fetch is frequent");
        assert_eq!(fetch.support, 3);
        let blast = mined
            .itemsets()
            .iter()
            .find(|s| s.items == vec!["blast".to_string()])
            .expect("blast is frequent");
        assert_eq!(blast.support, 3);
        // "render" occurs once only — below the absolute floor of 2.
        assert!(mined
            .itemsets()
            .iter()
            .all(|s| !s.items.contains(&"render".to_string())));
    }

    #[test]
    fn pairs_and_triples_are_mined() {
        let repo = toy_repo();
        let mined = mine_repository(&repo, ItemSource::ModuleLabels, &MiningConfig::default());
        let pair = mined
            .itemsets()
            .iter()
            .find(|s| s.items == vec!["blast".to_string(), "fetch".to_string()])
            .expect("the {fetch, blast} pair is frequent");
        assert_eq!(pair.support, 3);
        let cluster_pair = mined
            .itemsets()
            .iter()
            .find(|s| s.items == vec!["cluster".to_string(), "parse".to_string()])
            .expect("the {parse, cluster} pair is frequent");
        assert_eq!(cluster_pair.support, 2);
        // No triple reaches support 2 with distinct membership except none:
        // {fetch, blast, render} and {fetch, blast, plot} occur once each.
        assert!(mined.of_size(3).is_empty());
    }

    #[test]
    fn apriori_matches_brute_force_on_a_small_corpus() {
        let repo = toy_repo();
        let config = MiningConfig::default();
        let mined = mine_repository(&repo, ItemSource::ModuleLabels, &config);

        // Brute force: enumerate all subsets of size 1..=3 of the item
        // universe and count their support directly.
        let transactions: Vec<BTreeSet<String>> = repo
            .iter()
            .map(|wf| ItemSource::ModuleLabels.items(wf))
            .collect();
        let universe: Vec<String> = transactions
            .iter()
            .flat_map(|t| t.iter().cloned())
            .collect::<BTreeSet<_>>()
            .into_iter()
            .collect();
        let threshold = config.support_threshold(transactions.len());
        let mut expected = 0usize;
        let n = universe.len();
        for mask in 1u32..(1 << n) {
            let size = mask.count_ones() as usize;
            if size > config.max_size {
                continue;
            }
            let items: Vec<&String> = (0..n)
                .filter(|i| mask & (1 << i) != 0)
                .map(|i| &universe[i])
                .collect();
            let support = transactions
                .iter()
                .filter(|t| items.iter().all(|i| t.contains(*i)))
                .count();
            if support >= threshold {
                expected += 1;
            }
        }
        assert_eq!(mined.len(), expected);
    }

    #[test]
    fn tag_mining_uses_the_tag_item_source() {
        let repo = toy_repo();
        let mined = mine_repository(&repo, ItemSource::Tags, &MiningConfig::default());
        assert_eq!(mined.source(), ItemSource::Tags);
        let alignment = mined
            .itemsets()
            .iter()
            .find(|s| s.items == vec!["alignment".to_string()])
            .expect("alignment tag is frequent");
        assert_eq!(alignment.support, 3);
        let pair = mined
            .itemsets()
            .iter()
            .find(|s| s.items == vec!["alignment".to_string(), "blast".to_string()])
            .expect("the {alignment, blast} tag pair is frequent");
        assert_eq!(pair.support, 2);
    }

    #[test]
    fn contained_in_workflow_returns_only_contained_itemsets() {
        let repo = toy_repo();
        let mined = mine_repository(&repo, ItemSource::ModuleLabels, &MiningConfig::default());
        let w3 = repo.get_str("w3").unwrap();
        let contained = mined.contained_in_workflow(w3);
        for idx in &contained {
            let itemset = &mined.itemsets()[*idx];
            assert!(itemset.contained_in(&set(&["fetch", "blast"])));
        }
        // w3 = {fetch, blast} contains exactly the frequent sets {fetch},
        // {blast} and {fetch, blast}.
        assert_eq!(contained.len(), 3);
    }

    #[test]
    fn itemsets_are_sorted_by_descending_support() {
        let repo = toy_repo();
        let mined = mine_repository(&repo, ItemSource::ModuleLabels, &MiningConfig::default());
        let supports: Vec<usize> = mined.itemsets().iter().map(|s| s.support).collect();
        let mut sorted = supports.clone();
        sorted.sort_by(|a, b| b.cmp(a));
        assert_eq!(supports, sorted);
    }

    #[test]
    fn empty_repository_mines_nothing() {
        let repo = Repository::new();
        let mined = mine_repository(&repo, ItemSource::ModuleLabels, &MiningConfig::default());
        assert!(mined.is_empty());
        assert_eq!(mined.transaction_count(), 0);
    }

    #[test]
    fn max_size_limits_mined_itemsets() {
        let repo = Repository::from_workflows(vec![
            wf("a", &["x", "y", "z", "w"], &[]),
            wf("b", &["x", "y", "z", "w"], &[]),
        ]);
        let config = MiningConfig {
            min_support: 0.0,
            min_support_count: 2,
            max_size: 2,
        };
        let mined = mine_repository(&repo, ItemSource::ModuleLabels, &config);
        assert!(mined.itemsets().iter().all(|s| s.len() <= 2));
        assert_eq!(mined.of_size(1).len(), 4);
        assert_eq!(mined.of_size(2).len(), 6);
    }

    #[test]
    fn signature_source_separates_equal_labels_with_different_services() {
        let a = WorkflowBuilder::new("a")
            .module("lookup", ModuleType::WsdlService, |m| {
                m.service("ebi.ac.uk", "dbfetch", "http://ebi.ac.uk/dbfetch")
            })
            .build()
            .unwrap();
        let b = WorkflowBuilder::new("b")
            .module("lookup", ModuleType::WsdlService, |m| {
                m.service("kegg.jp", "get", "http://kegg.jp/get")
            })
            .build()
            .unwrap();
        let sig_a = ItemSource::ModuleSignatures.items(&a);
        let sig_b = ItemSource::ModuleSignatures.items(&b);
        assert_ne!(sig_a, sig_b, "different services must not collapse");
        assert_eq!(
            ItemSource::ModuleLabels.items(&a),
            ItemSource::ModuleLabels.items(&b),
            "label source intentionally collapses them"
        );
    }
}
