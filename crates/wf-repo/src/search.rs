//! Top-k similarity search over a repository.
//!
//! The retrieval experiment of the paper (Section 5.2) runs each algorithm
//! "to each retrieve the top-10 similar workflows from our complete dataset
//! of 1483 Taverna workflows".  [`SearchEngine`] implements exactly that
//! operation, generic over the similarity measure (any
//! `Fn(&Workflow, &Workflow) -> f64`), with a lock-free multi-threaded
//! scoring path for large corpora: every worker keeps its own bounded
//! top-k heap and the per-thread winners are merged once at join, so no
//! mutex sits on the scoring hot path.
//!
//! For corpus-resident measures that can *bound* scores cheaply, the
//! index-accelerated engine in [`crate::index`] prunes candidates before
//! scoring them; this module provides the exhaustive baseline and the
//! shared top-k machinery.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::atomic::Ordering as AtomicOrdering;

// The model-checkable atomic shim: `std::sync::atomic::AtomicU64` outside
// a model run, a deterministic scheduling point inside one (see
// `vendor/shuttle-mini` and `wf-analyze`'s model-check suite).
use shuttle_mini::sync::atomic::AtomicU64;

use wf_model::{Workflow, WorkflowId};

use crate::repository::Repository;

/// One search result: a workflow id and its similarity to the query.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchHit {
    /// The id of the retrieved workflow.
    pub id: WorkflowId,
    /// Its similarity to the query workflow.
    pub score: f64,
}

/// The canonical result ordering: higher scores first, ties broken by
/// ascending workflow id.  `Ordering::Less` means `a` ranks before `b`.
pub(crate) fn hit_ordering(a: &SearchHit, b: &SearchHit) -> Ordering {
    b.score
        .partial_cmp(&a.score)
        .unwrap_or(Ordering::Equal)
        .then_with(|| a.id.cmp(&b.id))
}

/// Heap entry ordered so that the *worst* hit is the heap maximum.
struct WorstFirst(SearchHit);

impl PartialEq for WorstFirst {
    fn eq(&self, other: &Self) -> bool {
        hit_ordering(&self.0, &other.0) == Ordering::Equal
    }
}

impl Eq for WorstFirst {}

impl PartialOrd for WorstFirst {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for WorstFirst {
    fn cmp(&self, other: &Self) -> Ordering {
        // A hit that ranks *later* (Greater in hit_ordering) is "bigger"
        // here, so BinaryHeap::peek surfaces the weakest kept hit.
        hit_ordering(&self.0, &other.0)
    }
}

/// A bounded top-k accumulator over [`SearchHit`]s.
///
/// Keeps at most `k` hits; the weakest kept hit is inspectable in `O(1)`,
/// which lets bound-aware callers stop scoring candidates that provably
/// cannot enter the result list.  Produces exactly the hits (ids, scores
/// and tie-order) a full sort of all inserted hits would produce.
pub struct TopK {
    k: usize,
    heap: BinaryHeap<WorstFirst>,
}

impl TopK {
    /// An accumulator for the best `k` hits.
    pub fn new(k: usize) -> Self {
        TopK {
            k,
            heap: BinaryHeap::with_capacity(k.min(1024).saturating_add(1)),
        }
    }

    /// True once `k` hits are kept (new hits must displace the weakest).
    pub fn is_full(&self) -> bool {
        self.heap.len() >= self.k
    }

    /// The score of the weakest kept hit, if the accumulator is full.
    pub fn worst_score(&self) -> Option<f64> {
        if self.is_full() {
            self.heap.peek().map(|w| w.0.score)
        } else {
            None
        }
    }

    /// Offers one hit, keeping it only while it belongs to the top `k`.
    pub fn insert(&mut self, hit: SearchHit) {
        if self.k == 0 {
            return;
        }
        if self.heap.len() < self.k {
            self.heap.push(WorstFirst(hit));
            return;
        }
        let worst = self.heap.peek().expect("heap is full, k > 0");
        if hit_ordering(&hit, &worst.0) == Ordering::Less {
            self.heap.pop();
            self.heap.push(WorstFirst(hit));
        }
    }

    /// The kept hits, best first.
    pub fn into_sorted_hits(self) -> Vec<SearchHit> {
        let mut hits: Vec<SearchHit> = self.heap.into_iter().map(|w| w.0).collect();
        hits.sort_unstable_by(hit_ordering);
        hits
    }

    /// The kept hits in heap order (for merging several accumulators).
    pub fn into_hits(self) -> Vec<SearchHit> {
        self.heap.into_iter().map(|w| w.0).collect()
    }
}

/// Merges several partial hit lists into one global top-k, best first.
///
/// This is the single gather step shared by every fan-out search path: the
/// per-thread winners of the parallel engines and the per-shard winners of
/// a scatter-gather search both feed their partial lists through here.  The
/// merge runs every hit through one bounded [`TopK`] heap
/// (`O(total · log k)` instead of sorting all partials), so it produces
/// exactly the hits — ids, scores *and* tie order — that a full
/// [canonical](TopK) sort of the concatenated partials would produce,
/// regardless of the order in which the partial lists arrive.
pub fn merge_top_k(parts: impl IntoIterator<Item = Vec<SearchHit>>, k: usize) -> Vec<SearchHit> {
    let mut top = TopK::new(k);
    for part in parts {
        for hit in part {
            top.insert(hit);
        }
    }
    top.into_sorted_hits()
}

/// A monotonically rising score floor shared by the branches of one
/// fan-out top-k search (worker threads, or the shards of a scatter-gather
/// search).
///
/// Every branch publishes the score of its weakest kept hit once its local
/// [`TopK`] is full; [`SearchThreshold::floor`] is the maximum published so
/// far.  Because a published floor is the k-th best of `k` *true* scores of
/// distinct candidates, the final global k-th best score is at least the
/// floor — so a candidate whose admissible upper bound falls *strictly*
/// below the floor can never enter the merged top-k (ties at the floor are
/// still scored), and pruning on it keeps the gathered result bit-identical
/// under every interleaving.
///
/// Lock-free: the floor is an `AtomicU64` holding the score's IEEE-754
/// bits, which order like the scores themselves for the non-negative values
/// the [`CorpusScorer`](crate::CorpusScorer) contract guarantees.
#[derive(Debug, Default)]
pub struct SearchThreshold(AtomicU64);

impl SearchThreshold {
    /// A threshold with floor 0 (nothing published yet; with strict-below
    /// pruning a zero floor prunes nothing, as bounds are non-negative).
    pub fn new() -> Self {
        SearchThreshold(AtomicU64::new(0.0f64.to_bits()))
    }

    /// Publishes a branch's weakest kept score; the floor only ever rises.
    /// Non-finite or negative scores are ignored.
    pub fn observe(&self, score: f64) {
        if score.is_finite() && score >= 0.0 {
            // ordering: Relaxed — the floor is a monotone pruning hint, not
            // a synchronization edge.  fetch_max keeps the cell itself
            // consistent; a reader that misses this publication merely
            // prunes less and still produces the exact top-k.
            self.0.fetch_max(score.to_bits(), AtomicOrdering::Relaxed);
        }
    }

    /// The highest score floor published so far.
    pub fn floor(&self) -> f64 {
        // ordering: Relaxed — a stale floor is always a *lower* floor
        // (the cell only rises), and a lower floor is admissible: it can
        // only under-prune, never skip a true top-k candidate.
        f64::from_bits(self.0.load(AtomicOrdering::Relaxed))
    }
}

/// A cooperative cancellation token with an optional deadline, shared by
/// every branch of one search (the shards of a scatter-gather, the workers
/// of a parallel scan).
///
/// Serving a query under a latency SLO means the search must be able to
/// *stop* — not block past its deadline — and return whatever it has
/// proven so far.  The token carries that decision: branches poll
/// [`CancelToken::is_cancelled`] between candidates and abandon the rest
/// of their stream once it fires, flagging the abandonment in their
/// [`SearchStats`](crate::SearchStats) so callers can mark the merged
/// result `degraded` instead of presenting a partial answer as complete.
///
/// Cancellation fires when the deadline passes *or* when a caller flips
/// the flag explicitly ([`CancelToken::cancel`]); once fired it never
/// resets.  Every score a cancelled search returns is still a true score —
/// cancellation only truncates the candidate stream, it never corrupts it.
#[derive(Debug)]
pub struct CancelToken {
    cancelled: std::sync::atomic::AtomicBool,
    deadline: Option<std::time::Instant>,
}

impl CancelToken {
    /// A token that never fires on its own (no deadline); only an explicit
    /// [`CancelToken::cancel`] can trip it.  This is the token every
    /// non-deadline search path uses — checking it costs one relaxed load.
    pub fn never() -> Self {
        CancelToken {
            cancelled: std::sync::atomic::AtomicBool::new(false),
            deadline: None,
        }
    }

    /// A token that fires at `deadline`.
    pub fn at(deadline: std::time::Instant) -> Self {
        CancelToken {
            cancelled: std::sync::atomic::AtomicBool::new(false),
            deadline: Some(deadline),
        }
    }

    /// A token that fires `budget` from now.
    pub fn after(budget: std::time::Duration) -> Self {
        CancelToken::at(std::time::Instant::now() + budget)
    }

    /// Trips the token immediately (idempotent; never un-trips).
    pub fn cancel(&self) {
        // ordering: Relaxed — the flag is a monotone one-way latch carrying
        // no payload: a branch that observes it late merely scores a few
        // more candidates, and every candidate it scores is still exact.
        self.cancelled.store(true, AtomicOrdering::Relaxed);
    }

    /// True once the token has fired (explicitly or by deadline).  A
    /// deadline expiry is latched into the flag so later polls skip the
    /// clock read.
    pub fn is_cancelled(&self) -> bool {
        // ordering: Relaxed — see `cancel`: a stale read only delays the
        // stop by one poll interval and never affects result exactness.
        if self.cancelled.load(AtomicOrdering::Relaxed) {
            return true;
        }
        match self.deadline {
            Some(deadline) if std::time::Instant::now() >= deadline => {
                self.cancel();
                true
            }
            _ => false,
        }
    }

    /// Time left until the deadline (`None` without a deadline, zero once
    /// passed or cancelled).
    pub fn remaining(&self) -> Option<std::time::Duration> {
        let deadline = self.deadline?;
        // ordering: Relaxed — same one-way latch as `is_cancelled`.
        if self.cancelled.load(AtomicOrdering::Relaxed) {
            return Some(std::time::Duration::ZERO);
        }
        Some(deadline.saturating_duration_since(std::time::Instant::now()))
    }
}

/// A top-k similarity search engine over one repository.
pub struct SearchEngine<'r, F> {
    repository: &'r Repository,
    similarity: F,
    /// Number of worker threads used by [`SearchEngine::top_k_parallel`].
    threads: usize,
}

impl<'r, F> SearchEngine<'r, F>
where
    F: Fn(&Workflow, &Workflow) -> f64 + Sync,
{
    /// Creates a search engine over `repository` using the given similarity
    /// measure.
    pub fn new(repository: &'r Repository, similarity: F) -> Self {
        SearchEngine {
            repository,
            similarity,
            threads: 4,
        }
    }

    /// Sets the number of worker threads for parallel search (at least 1).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Scores every workflow in the repository against the query and returns
    /// the `k` most similar ones, best first.  The query workflow itself
    /// (same id) is excluded — retrieving the query is trivially perfect and
    /// the paper's result lists do not contain it.
    pub fn top_k(&self, query: &Workflow, k: usize) -> Vec<SearchHit> {
        let mut hits: Vec<SearchHit> = self
            .repository
            .iter()
            .filter(|wf| wf.id != query.id)
            .map(|wf| SearchHit {
                id: wf.id.clone(),
                score: (self.similarity)(query, wf),
            })
            .collect();
        sort_and_truncate(&mut hits, k);
        hits
    }

    /// Like [`SearchEngine::top_k`] but scoring workflows on several threads
    /// (std scoped threads, so the similarity closure only needs to be
    /// `Sync`, not `'static`).  Each worker fills a private bounded top-k
    /// heap over its slice of the corpus; the per-thread winners are merged
    /// after the workers join — no locks anywhere on the scoring path, and
    /// the result is identical to the sequential [`SearchEngine::top_k`].
    pub fn top_k_parallel(&self, query: &Workflow, k: usize) -> Vec<SearchHit> {
        let candidates: Vec<&Workflow> = self
            .repository
            .iter()
            .filter(|wf| wf.id != query.id)
            .collect();
        if candidates.is_empty() || k == 0 {
            return Vec::new();
        }
        let threads = self.threads.min(candidates.len());
        let chunk_size = candidates.len().div_ceil(threads);
        std::thread::scope(|scope| {
            let workers: Vec<_> = candidates
                .chunks(chunk_size)
                .map(|chunk| {
                    let similarity = &self.similarity;
                    scope.spawn(move || {
                        let mut local = TopK::new(k);
                        for wf in chunk {
                            local.insert(SearchHit {
                                id: wf.id.clone(),
                                score: similarity(query, wf),
                            });
                        }
                        local.into_hits()
                    })
                })
                .collect();
            merge_top_k(
                workers
                    .into_iter()
                    .map(|w| w.join().expect("search worker panicked")),
                k,
            )
        })
    }

    /// Ranks an explicit candidate list (by id) against the query — the
    /// operation behind the first (ranking) experiment, where each query
    /// comes with 10 preselected candidates.  Unknown ids are skipped.
    pub fn rank_candidates(
        &self,
        query: &Workflow,
        candidate_ids: &[WorkflowId],
    ) -> Vec<SearchHit> {
        let mut hits: Vec<SearchHit> = candidate_ids
            .iter()
            .filter_map(|id| self.repository.get(id))
            .map(|wf| SearchHit {
                id: wf.id.clone(),
                score: (self.similarity)(query, wf),
            })
            .collect();
        sort_and_truncate(&mut hits, usize::MAX);
        hits
    }
}

/// Keeps the best `k` hits of `hits`, sorted best first.
///
/// Uses `select_nth_unstable_by` to partition the top `k` in `O(n)` before
/// sorting only those `k`, so retrieving 10 results from a large corpus
/// stops paying the full `O(n log n)`.
pub(crate) fn sort_and_truncate(hits: &mut Vec<SearchHit>, k: usize) {
    if k == 0 {
        hits.clear();
        return;
    }
    if k < hits.len() {
        hits.select_nth_unstable_by(k - 1, hit_ordering);
        hits.truncate(k);
    }
    hits.sort_unstable_by(hit_ordering);
}

#[cfg(test)]
mod tests {
    use super::*;
    use wf_model::{builder::WorkflowBuilder, ModuleType};

    fn wf(id: &str, labels: &[&str]) -> Workflow {
        let mut b = WorkflowBuilder::new(id).title(format!("workflow {id}"));
        for l in labels {
            b = b.module(*l, ModuleType::WsdlService, |m| m);
        }
        for pair in labels.windows(2) {
            b = b.link(pair[0], pair[1]);
        }
        b.build().unwrap()
    }

    /// Similarity: Jaccard overlap of module label sets.
    fn label_overlap(a: &Workflow, b: &Workflow) -> f64 {
        let la: std::collections::BTreeSet<&str> =
            a.modules.iter().map(|m| m.label.as_str()).collect();
        let lb: std::collections::BTreeSet<&str> =
            b.modules.iter().map(|m| m.label.as_str()).collect();
        let inter = la.intersection(&lb).count() as f64;
        let union = la.union(&lb).count() as f64;
        if union == 0.0 {
            0.0
        } else {
            inter / union
        }
    }

    fn repository() -> Repository {
        Repository::from_workflows(vec![
            wf("q", &["fetch", "blast", "plot"]),
            wf("close", &["fetch", "blast", "render"]),
            wf("medium", &["fetch", "align"]),
            wf("far", &["download", "cluster"]),
        ])
    }

    #[test]
    fn top_k_orders_by_similarity_and_excludes_the_query() {
        let repo = repository();
        let engine = SearchEngine::new(&repo, label_overlap);
        let query = repo.get_str("q").unwrap();
        let hits = engine.top_k(query, 10);
        assert_eq!(hits.len(), 3);
        assert_eq!(hits[0].id.as_str(), "close");
        assert_eq!(hits[1].id.as_str(), "medium");
        assert_eq!(hits[2].id.as_str(), "far");
        assert!(hits[0].score > hits[1].score);
        assert!(hits.iter().all(|h| h.id.as_str() != "q"));
    }

    #[test]
    fn top_k_truncates_to_k() {
        let repo = repository();
        let engine = SearchEngine::new(&repo, label_overlap);
        let query = repo.get_str("q").unwrap();
        assert_eq!(engine.top_k(query, 1).len(), 1);
        assert_eq!(engine.top_k(query, 0).len(), 0);
    }

    #[test]
    fn parallel_search_matches_sequential_search() {
        let repo = repository();
        let engine = SearchEngine::new(&repo, label_overlap).with_threads(3);
        let query = repo.get_str("q").unwrap();
        assert_eq!(engine.top_k(query, 10), engine.top_k_parallel(query, 10));
        assert_eq!(engine.top_k(query, 2), engine.top_k_parallel(query, 2));
    }

    #[test]
    fn parallel_search_on_empty_repository() {
        let repo = Repository::from_workflows(vec![wf("q", &["a"])]);
        let engine = SearchEngine::new(&repo, label_overlap);
        let query = repo.get_str("q").unwrap().clone();
        assert!(engine.top_k_parallel(&query, 5).is_empty());
    }

    #[test]
    fn rank_candidates_scores_only_the_given_ids() {
        let repo = repository();
        let engine = SearchEngine::new(&repo, label_overlap);
        let query = repo.get_str("q").unwrap();
        let hits = engine.rank_candidates(
            query,
            &[
                WorkflowId::new("far"),
                WorkflowId::new("close"),
                WorkflowId::new("does-not-exist"),
            ],
        );
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0].id.as_str(), "close");
        assert_eq!(hits[1].id.as_str(), "far");
    }

    #[test]
    fn ties_are_broken_deterministically_by_id() {
        let repo = Repository::from_workflows(vec![
            wf("q", &["a"]),
            wf("z-tied", &["x"]),
            wf("a-tied", &["y"]),
        ]);
        let engine = SearchEngine::new(&repo, |_: &Workflow, _: &Workflow| 0.5);
        let query = repo.get_str("q").unwrap();
        let hits = engine.top_k(query, 10);
        assert_eq!(hits[0].id.as_str(), "a-tied");
        assert_eq!(hits[1].id.as_str(), "z-tied");
    }

    #[test]
    fn topk_accumulator_equals_full_sort() {
        // Scores engineered with duplicates to exercise tie handling.
        let scores = [0.5, 0.9, 0.5, 0.1, 0.9, 0.3, 0.5, 0.0, 1.0, 0.9];
        let hits: Vec<SearchHit> = scores
            .iter()
            .enumerate()
            .map(|(i, &s)| SearchHit {
                id: WorkflowId::new(format!("w{i:02}")),
                score: s,
            })
            .collect();
        for k in 0..=scores.len() + 1 {
            let mut acc = TopK::new(k);
            for h in &hits {
                acc.insert(h.clone());
            }
            let mut expected = hits.clone();
            sort_and_truncate(&mut expected, k);
            assert_eq!(acc.into_sorted_hits(), expected, "k = {k}");
        }
    }

    fn hit(id: &str, score: f64) -> SearchHit {
        SearchHit {
            id: WorkflowId::new(id),
            score,
        }
    }

    /// The merge contract: for any split of the hits into partial lists,
    /// merging equals a full canonical sort of the concatenation.
    #[test]
    fn merge_top_k_equals_full_sort_for_any_partition() {
        let hits = vec![
            hit("w05", 0.5),
            hit("w01", 0.9),
            hit("w09", 0.5), // ties with w05 and w03 — id order decides
            hit("w07", 0.1),
            hit("w03", 0.5),
            hit("w02", 0.9), // ties with w01
            hit("w08", 0.0),
        ];
        let splits: Vec<Vec<Vec<SearchHit>>> = vec![
            vec![hits.clone()],                                   // one part
            hits.iter().map(|h| vec![h.clone()]).collect(),       // singletons
            vec![hits[..3].to_vec(), vec![], hits[3..].to_vec()], // empty part
        ];
        for k in [0, 1, 3, hits.len(), hits.len() + 5] {
            let mut expected = hits.clone();
            sort_and_truncate(&mut expected, k);
            for (i, parts) in splits.iter().enumerate() {
                assert_eq!(
                    merge_top_k(parts.clone(), k),
                    expected,
                    "k = {k}, split {i}"
                );
            }
        }
    }

    #[test]
    fn merge_top_k_edge_cases() {
        // k = 0 and no parts at all.
        assert!(merge_top_k(vec![vec![hit("a", 1.0)]], 0).is_empty());
        assert!(merge_top_k(Vec::<Vec<SearchHit>>::new(), 5).is_empty());
        // k far beyond the corpus returns everything, sorted.
        let merged = merge_top_k(vec![vec![hit("b", 0.2)], vec![hit("a", 0.8)]], 100);
        assert_eq!(merged.len(), 2);
        assert_eq!(merged[0].id.as_str(), "a");
        // Equal scores everywhere: pure ascending-id order survives.
        let tied = merge_top_k(
            vec![vec![hit("z", 0.5), hit("m", 0.5)], vec![hit("a", 0.5)]],
            2,
        );
        assert_eq!(tied[0].id.as_str(), "a");
        assert_eq!(tied[1].id.as_str(), "m");
    }

    #[test]
    fn search_threshold_is_a_monotone_maximum() {
        let t = SearchThreshold::new();
        assert_eq!(t.floor(), 0.0);
        t.observe(0.4);
        assert_eq!(t.floor(), 0.4);
        t.observe(0.2); // lower publications never sink the floor
        assert_eq!(t.floor(), 0.4);
        t.observe(0.9);
        assert_eq!(t.floor(), 0.9);
        t.observe(f64::NAN);
        t.observe(f64::INFINITY);
        t.observe(-1.0);
        assert_eq!(t.floor(), 0.9, "junk observations are ignored");
    }

    #[test]
    fn partial_sort_matches_full_sort_on_random_scores() {
        // Deterministic pseudo-random scores via a simple LCG.
        let mut state = 0x2545_f491_4f6c_dd1du64;
        let mut hits = Vec::new();
        for i in 0..200 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let score = ((state >> 11) % 1000) as f64 / 1000.0;
            hits.push(SearchHit {
                id: WorkflowId::new(format!("w{i:03}")),
                score,
            });
        }
        for k in [0, 1, 7, 10, 199, 200, 500] {
            let mut full = hits.clone();
            full.sort_by(hit_ordering);
            full.truncate(k);
            let mut partial = hits.clone();
            sort_and_truncate(&mut partial, k);
            assert_eq!(partial, full, "k = {k}");
        }
    }

    #[test]
    fn cancel_token_never_never_fires() {
        let token = CancelToken::never();
        assert!(!token.is_cancelled());
        assert_eq!(token.remaining(), None);
        token.cancel();
        assert!(token.is_cancelled(), "explicit cancel always latches");
    }

    #[test]
    fn cancel_token_deadline_latches_once_elapsed() {
        let token = CancelToken::after(std::time::Duration::from_millis(5));
        assert!(token.remaining().is_some());
        let started = std::time::Instant::now();
        while !token.is_cancelled() {
            assert!(
                started.elapsed() < std::time::Duration::from_secs(2),
                "a 5ms deadline must fire"
            );
            std::thread::yield_now();
        }
        // Once fired the token stays fired, even though the deadline
        // instant itself never changes.
        assert!(token.is_cancelled());
        assert_eq!(token.remaining(), Some(std::time::Duration::ZERO));
    }

    #[test]
    fn cancel_token_is_shareable_across_threads() {
        let token = CancelToken::never();
        std::thread::scope(|scope| {
            scope.spawn(|| token.cancel());
        });
        assert!(token.is_cancelled());
    }
}
