//! Top-k similarity search over a repository.
//!
//! The retrieval experiment of the paper (Section 5.2) runs each algorithm
//! "to each retrieve the top-10 similar workflows from our complete dataset
//! of 1483 Taverna workflows".  [`SearchEngine`] implements exactly that
//! operation, generic over the similarity measure (any
//! `Fn(&Workflow, &Workflow) -> f64`), with an optional multi-threaded
//! scoring path for large corpora.

use parking_lot::Mutex;
use wf_model::{Workflow, WorkflowId};

use crate::repository::Repository;

/// One search result: a workflow id and its similarity to the query.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchHit {
    /// The id of the retrieved workflow.
    pub id: WorkflowId,
    /// Its similarity to the query workflow.
    pub score: f64,
}

/// A top-k similarity search engine over one repository.
pub struct SearchEngine<'r, F> {
    repository: &'r Repository,
    similarity: F,
    /// Number of worker threads used by [`SearchEngine::top_k_parallel`].
    threads: usize,
}

impl<'r, F> SearchEngine<'r, F>
where
    F: Fn(&Workflow, &Workflow) -> f64 + Sync,
{
    /// Creates a search engine over `repository` using the given similarity
    /// measure.
    pub fn new(repository: &'r Repository, similarity: F) -> Self {
        SearchEngine {
            repository,
            similarity,
            threads: 4,
        }
    }

    /// Sets the number of worker threads for parallel search (at least 1).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Scores every workflow in the repository against the query and returns
    /// the `k` most similar ones, best first.  The query workflow itself
    /// (same id) is excluded — retrieving the query is trivially perfect and
    /// the paper's result lists do not contain it.
    pub fn top_k(&self, query: &Workflow, k: usize) -> Vec<SearchHit> {
        let mut hits: Vec<SearchHit> = self
            .repository
            .iter()
            .filter(|wf| wf.id != query.id)
            .map(|wf| SearchHit {
                id: wf.id.clone(),
                score: (self.similarity)(query, wf),
            })
            .collect();
        sort_and_truncate(&mut hits, k);
        hits
    }

    /// Like [`SearchEngine::top_k`] but scoring workflows on several threads
    /// (std scoped threads, so the similarity closure only needs to be
    /// `Sync`, not `'static`).
    pub fn top_k_parallel(&self, query: &Workflow, k: usize) -> Vec<SearchHit> {
        let candidates: Vec<&Workflow> = self
            .repository
            .iter()
            .filter(|wf| wf.id != query.id)
            .collect();
        if candidates.is_empty() {
            return Vec::new();
        }
        let threads = self.threads.min(candidates.len());
        let results: Mutex<Vec<SearchHit>> = Mutex::new(Vec::with_capacity(candidates.len()));
        let chunk_size = candidates.len().div_ceil(threads);
        std::thread::scope(|scope| {
            for chunk in candidates.chunks(chunk_size) {
                let results = &results;
                let similarity = &self.similarity;
                scope.spawn(move || {
                    let local: Vec<SearchHit> = chunk
                        .iter()
                        .map(|wf| SearchHit {
                            id: wf.id.clone(),
                            score: similarity(query, wf),
                        })
                        .collect();
                    results.lock().extend(local);
                });
            }
        });
        let mut hits = results.into_inner();
        sort_and_truncate(&mut hits, k);
        hits
    }

    /// Ranks an explicit candidate list (by id) against the query — the
    /// operation behind the first (ranking) experiment, where each query
    /// comes with 10 preselected candidates.  Unknown ids are skipped.
    pub fn rank_candidates(
        &self,
        query: &Workflow,
        candidate_ids: &[WorkflowId],
    ) -> Vec<SearchHit> {
        let mut hits: Vec<SearchHit> = candidate_ids
            .iter()
            .filter_map(|id| self.repository.get(id))
            .map(|wf| SearchHit {
                id: wf.id.clone(),
                score: (self.similarity)(query, wf),
            })
            .collect();
        sort_and_truncate(&mut hits, usize::MAX);
        hits
    }
}

fn sort_and_truncate(hits: &mut Vec<SearchHit>, k: usize) {
    hits.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.id.cmp(&b.id))
    });
    if k < hits.len() {
        hits.truncate(k);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wf_model::{builder::WorkflowBuilder, ModuleType};

    fn wf(id: &str, labels: &[&str]) -> Workflow {
        let mut b = WorkflowBuilder::new(id).title(format!("workflow {id}"));
        for l in labels {
            b = b.module(*l, ModuleType::WsdlService, |m| m);
        }
        for pair in labels.windows(2) {
            b = b.link(pair[0], pair[1]);
        }
        b.build().unwrap()
    }

    /// Similarity: Jaccard overlap of module label sets.
    fn label_overlap(a: &Workflow, b: &Workflow) -> f64 {
        let la: std::collections::BTreeSet<&str> =
            a.modules.iter().map(|m| m.label.as_str()).collect();
        let lb: std::collections::BTreeSet<&str> =
            b.modules.iter().map(|m| m.label.as_str()).collect();
        let inter = la.intersection(&lb).count() as f64;
        let union = la.union(&lb).count() as f64;
        if union == 0.0 {
            0.0
        } else {
            inter / union
        }
    }

    fn repository() -> Repository {
        Repository::from_workflows(vec![
            wf("q", &["fetch", "blast", "plot"]),
            wf("close", &["fetch", "blast", "render"]),
            wf("medium", &["fetch", "align"]),
            wf("far", &["download", "cluster"]),
        ])
    }

    #[test]
    fn top_k_orders_by_similarity_and_excludes_the_query() {
        let repo = repository();
        let engine = SearchEngine::new(&repo, label_overlap);
        let query = repo.get_str("q").unwrap();
        let hits = engine.top_k(query, 10);
        assert_eq!(hits.len(), 3);
        assert_eq!(hits[0].id.as_str(), "close");
        assert_eq!(hits[1].id.as_str(), "medium");
        assert_eq!(hits[2].id.as_str(), "far");
        assert!(hits[0].score > hits[1].score);
        assert!(hits.iter().all(|h| h.id.as_str() != "q"));
    }

    #[test]
    fn top_k_truncates_to_k() {
        let repo = repository();
        let engine = SearchEngine::new(&repo, label_overlap);
        let query = repo.get_str("q").unwrap();
        assert_eq!(engine.top_k(query, 1).len(), 1);
        assert_eq!(engine.top_k(query, 0).len(), 0);
    }

    #[test]
    fn parallel_search_matches_sequential_search() {
        let repo = repository();
        let engine = SearchEngine::new(&repo, label_overlap).with_threads(3);
        let query = repo.get_str("q").unwrap();
        assert_eq!(engine.top_k(query, 10), engine.top_k_parallel(query, 10));
    }

    #[test]
    fn parallel_search_on_empty_repository() {
        let repo = Repository::from_workflows(vec![wf("q", &["a"])]);
        let engine = SearchEngine::new(&repo, label_overlap);
        let query = repo.get_str("q").unwrap().clone();
        assert!(engine.top_k_parallel(&query, 5).is_empty());
    }

    #[test]
    fn rank_candidates_scores_only_the_given_ids() {
        let repo = repository();
        let engine = SearchEngine::new(&repo, label_overlap);
        let query = repo.get_str("q").unwrap();
        let hits = engine.rank_candidates(
            query,
            &[
                WorkflowId::new("far"),
                WorkflowId::new("close"),
                WorkflowId::new("does-not-exist"),
            ],
        );
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0].id.as_str(), "close");
        assert_eq!(hits[1].id.as_str(), "far");
    }

    #[test]
    fn ties_are_broken_deterministically_by_id() {
        let repo = Repository::from_workflows(vec![
            wf("q", &["a"]),
            wf("z-tied", &["x"]),
            wf("a-tied", &["y"]),
        ]);
        let engine = SearchEngine::new(&repo, |_: &Workflow, _: &Workflow| 0.5);
        let query = repo.get_str("q").unwrap();
        let hits = engine.top_k(query, 10);
        assert_eq!(hits[0].id.as_str(), "a-tied");
        assert_eq!(hits[1].id.as_str(), "z-tied");
    }
}
