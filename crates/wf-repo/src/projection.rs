//! Importance Projection (`ip`) preprocessing.
//!
//! "Only modules with a score above a configurable threshold are kept …
//! the workflow is thus projected onto its most relevant modules.  In order
//! to make full use of this projection in all our structural similarity
//! measures, all paths between important modules are preserved as edges in
//! terms of the transitive reduction of the resulting DAG" (Section 2.1.5
//! and Figure 3 of the paper).

use std::collections::BTreeMap;

use wf_model::{ModuleId, Workflow};

use crate::importance::ImportanceScorer;

/// Projects a workflow onto its important modules.
///
/// Modules whose importance score falls below the scorer's threshold are
/// removed.  If two kept modules were connected by one or more paths whose
/// intermediate modules are all removed, they are connected by a single
/// edge; the resulting edge set is reduced to its transitive reduction so
/// that no redundant shortcuts remain.
pub fn importance_projection(wf: &Workflow, scorer: &ImportanceScorer) -> Workflow {
    let keep: Vec<ModuleId> = wf
        .modules
        .iter()
        .filter(|m| scorer.is_important(m))
        .map(|m| m.id)
        .collect();
    project_onto(wf, &keep)
}

/// Projects a workflow onto an explicit set of modules, preserving
/// connectivity through removed modules (the primitive behind
/// [`importance_projection`], exposed for tests and for experiments that
/// select modules by other criteria).
pub fn project_onto(wf: &Workflow, keep: &[ModuleId]) -> Workflow {
    let graph = wf.graph();
    let n = wf.module_count();
    let mut kept = vec![false; n];
    for id in keep {
        if id.index() < n {
            kept[id.index()] = true;
        }
    }

    // For every kept module, find all kept modules reachable through paths
    // whose *intermediate* nodes are all removed.
    let mut bridged_edges: Vec<(ModuleId, ModuleId)> = Vec::new();
    for start in 0..n {
        if !kept[start] {
            continue;
        }
        let mut visited = vec![false; n];
        let mut stack: Vec<usize> = graph
            .successors(ModuleId(start as u32))
            .iter()
            .map(|m| m.index())
            .collect();
        while let Some(v) = stack.pop() {
            if visited[v] {
                continue;
            }
            visited[v] = true;
            if kept[v] {
                bridged_edges.push((ModuleId(start as u32), ModuleId(v as u32)));
                // Do not traverse past a kept module: the path beyond it is
                // represented by that module's own outgoing edges.
                continue;
            }
            for s in graph.successors(ModuleId(v as u32)) {
                if !visited[s.index()] {
                    stack.push(s.index());
                }
            }
        }
    }

    // Restrict the workflow to the kept modules with no links, then add the
    // bridged edges (translated to the new dense id space) and reduce them
    // transitively.
    let mut keep_sorted: Vec<ModuleId> = keep.to_vec();
    keep_sorted.sort_unstable();
    keep_sorted.dedup();
    let remap: BTreeMap<ModuleId, ModuleId> = keep_sorted
        .iter()
        .enumerate()
        .map(|(new, old)| (*old, ModuleId(new as u32)))
        .collect();

    let translated: Vec<(ModuleId, ModuleId)> = bridged_edges
        .iter()
        .filter_map(|(f, t)| Some((*remap.get(f)?, *remap.get(t)?)))
        .collect();

    // Build an intermediate workflow carrying the bridged edges, then apply
    // the transitive reduction of its graph.
    let mut projected = wf.restrict_to(&keep_sorted, &translated);
    // Drop the links that came from the original workflow (restrict_to keeps
    // direct links between kept modules, which are a subset of the bridged
    // edges anyway) and replace them by the transitive reduction.
    let reduced = projected.graph().transitive_reduction();
    projected.links = reduced
        .into_iter()
        .map(|(f, t)| wf_model::Datalink::new(f, t))
        .collect();
    projected
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::importance::{ImportanceConfig, ImportanceScorer};
    use wf_model::{builder::WorkflowBuilder, ModuleType};

    /// fetch(ws) -> split(local) -> analyse(script) -> format(local) -> plot(ws)
    /// plus a parallel shortcut fetch -> rename(local) -> plot.
    fn noisy_workflow() -> Workflow {
        WorkflowBuilder::new("noisy")
            .module("fetch", ModuleType::WsdlService, |m| m)
            .module("split", ModuleType::LocalOperation, |m| m)
            .module("analyse", ModuleType::BeanshellScript, |m| m)
            .module("format", ModuleType::LocalOperation, |m| m)
            .module("plot", ModuleType::WsdlService, |m| m)
            .module("rename", ModuleType::LocalOperation, |m| m)
            .link("fetch", "split")
            .link("split", "analyse")
            .link("analyse", "format")
            .link("format", "plot")
            .link("fetch", "rename")
            .link("rename", "plot")
            .build()
            .unwrap()
    }

    fn scorer() -> ImportanceScorer {
        ImportanceScorer::new(ImportanceConfig::type_based())
    }

    #[test]
    fn trivial_modules_are_removed_and_paths_bridged() {
        let wf = noisy_workflow();
        let projected = importance_projection(&wf, &scorer());
        assert_eq!(projected.module_count(), 3, "fetch, analyse, plot survive");
        let labels: Vec<&str> = projected.modules.iter().map(|m| m.label.as_str()).collect();
        assert_eq!(labels, vec!["fetch", "analyse", "plot"]);
        // fetch -> analyse (via split), analyse -> plot (via format); the
        // direct fetch -> plot bridge (via rename) is removed by the
        // transitive reduction.
        let g = projected.graph();
        let edges: Vec<(u32, u32)> = g.edges().iter().map(|(a, b)| (a.0, b.0)).collect();
        assert_eq!(edges, vec![(0, 1), (1, 2)]);
    }

    #[test]
    fn projection_reduces_average_module_count() {
        // The paper reports the projection shrinking workflows from 11.3 to
        // 4.7 modules on average; here we just verify it never grows them.
        let wf = noisy_workflow();
        let projected = importance_projection(&wf, &scorer());
        assert!(projected.module_count() <= wf.module_count());
        assert!(projected.link_count() <= wf.link_count());
    }

    #[test]
    fn workflow_of_only_important_modules_keeps_its_reduced_structure() {
        let wf = WorkflowBuilder::new("clean")
            .module("a", ModuleType::WsdlService, |m| m)
            .module("b", ModuleType::WsdlService, |m| m)
            .module("c", ModuleType::WsdlService, |m| m)
            .link("a", "b")
            .link("b", "c")
            .link("a", "c") // redundant shortcut
            .build()
            .unwrap();
        let projected = importance_projection(&wf, &scorer());
        assert_eq!(projected.module_count(), 3);
        // The transitive reduction removes the redundant a -> c edge.
        assert_eq!(projected.link_count(), 2);
    }

    #[test]
    fn workflow_of_only_trivial_modules_projects_to_empty() {
        let wf = WorkflowBuilder::new("trivial")
            .module("split", ModuleType::LocalOperation, |m| m)
            .module("join", ModuleType::LocalOperation, |m| m)
            .link("split", "join")
            .build()
            .unwrap();
        let projected = importance_projection(&wf, &scorer());
        assert_eq!(projected.module_count(), 0);
        assert_eq!(projected.link_count(), 0);
    }

    #[test]
    fn annotations_and_id_are_preserved() {
        let mut wf = noisy_workflow();
        wf.annotations.title = Some("Noisy workflow".into());
        wf.annotations.tags.push("test".into());
        let projected = importance_projection(&wf, &scorer());
        assert_eq!(projected.id, wf.id);
        assert_eq!(projected.annotations, wf.annotations);
    }

    #[test]
    fn project_onto_explicit_selection() {
        let wf = noisy_workflow();
        // Keep only the two web services.
        let keep: Vec<ModuleId> = wf
            .modules
            .iter()
            .filter(|m| m.module_type == ModuleType::WsdlService)
            .map(|m| m.id)
            .collect();
        let projected = project_onto(&wf, &keep);
        assert_eq!(projected.module_count(), 2);
        // fetch reaches plot through removed modules on two routes -> one edge.
        assert_eq!(projected.link_count(), 1);
        let g = projected.graph();
        assert_eq!(g.sources().len(), 1);
        assert_eq!(g.sinks().len(), 1);
    }

    #[test]
    fn projection_is_idempotent() {
        let wf = noisy_workflow();
        let once = importance_projection(&wf, &scorer());
        let twice = importance_projection(&once, &scorer());
        assert_eq!(once, twice);
    }
}
